#!/usr/bin/env bash
# Tier-1 gate: release build, lint wall, test suite (including a
# debug-assert run of the engine-vs-oracle property tests), and the
# benchmark artifacts.
#
# Usage: scripts/tier1.sh
# Emits BENCH_engine.json (register-tiled baseline), BENCH_simd.json
# (vectorized data path vs that baseline), BENCH_serve.json (serving
# layer, smoke shape), BENCH_steal.json (scheduler comparison, smoke
# shape), BENCH_fused.json (fused GCN pipeline vs unfused, smoke
# shape), BENCH_widedim.json (wide-feature-dim layer pipeline vs
# the pre-revision data path, smoke shape), BENCH_autotune.json
# (measured arm selection vs hand-pinned configs, smoke shape),
# BENCH_spgemm.json (CSR x CSR engine vs the sequential oracle, smoke
# shape), BENCH_batch.json (block-diagonal mega-batching vs
# per-request serving, smoke shape), and BENCH_shard.json (multi-shard
# scale-out vs one engine, smoke shape) in the repository root, then
# validates their common schema.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
cargo test --workspace -q
# Debug build (debug_assertions on): overflow checks and the engine's
# internal invariant asserts are live while the oracle property tests run —
# once on the default (vectorized) path and once with the data path pinned
# to the scalar oracle via the force-scalar feature.
cargo test -q -p mpspmm-core --test engine_oracle
# The same oracle suite with the auto-tuner live on every engine
# (MPSPMM_TUNE): arms only select among already-pinned strategies, so
# exploration must never leave the oracle tolerance. (The fused_oracle
# suite asserts run-to-run *bit* equality and would be perturbed by arm
# switching mid-exploration; it stays untuned by design.)
MPSPMM_TUNE=1 cargo test -q -p mpspmm-core --test engine_oracle
# The SpGEMM oracle suite under live tuning: accumulator arms only move
# rows between bit-identical strategies, so exploration runs must stay
# bit-equal to the sequential oracle.
MPSPMM_TUNE=1 cargo test -q -p mpspmm-core --test spgemm_oracle
cargo test -q -p mpspmm-core --features force-scalar
# The work-stealing scheduler, the SpGEMM engine, and the block-diagonal
# mega-batch path promise bit-identical output at any worker count: pin
# the resolved count to a matrix of values and re-run their property
# tests (debug build, invariant asserts live). batch_oracle sweeps
# packed-vs-sequential across DataPath x SchedPolicy, including empty
# graphs and single-graph windows.
for w in 1 2 8; do
  MPSPMM_WORKERS=$w cargo test -q -p mpspmm-core --test engine_stealing
  MPSPMM_WORKERS=$w cargo test -q -p mpspmm-core --test spgemm_oracle
  MPSPMM_WORKERS=$w cargo test -q -p mpspmm-core --test batch_oracle
done
# The fused layer pipeline promises fused == unfused at every worker
# count; re-run its oracle property suite across the same matrix.
for w in 1 2 8; do
  MPSPMM_WORKERS=$w cargo test -q -p mpspmm-gcn --test fused_oracle
done
# The sharded scatter/gather path promises bit-identity to the
# sequential reference at every shard x worker combination; sweep the
# full matrix with each cell in its own process (MPSPMM_SHARDS pins the
# shard count, MPSPMM_WORKERS the total worker count the engine splits).
for w in 1 2 8; do
  for s in 1 2 4; do
    MPSPMM_WORKERS=$w MPSPMM_SHARDS=$s \
      cargo test -q -p mpspmm-core --test shard_oracle
  done
done
cargo run --release -p mpspmm-bench --bin bench_engine
cargo run --release -p mpspmm-bench --bin bench_simd
cargo run --release -p mpspmm-bench --bin bench_serve -- --smoke
cargo run --release -p mpspmm-bench --bin bench_steal -- --smoke
cargo run --release -p mpspmm-bench --bin bench_fused -- --smoke
cargo run --release -p mpspmm-bench --bin bench_widedim -- --smoke
cargo run --release -p mpspmm-bench --bin bench_spgemm -- --smoke
# Mega-batch bench, smoke shape: exercises the packed serving pipeline
# end to end (bulk admission, block-diagonal assembly, scatter) and its
# untimed bit-identity spot check against the sequential oracle.
cargo run --release -p mpspmm-bench --bin bench_batch -- --smoke
# Sharded scale-out bench, smoke shape: real bit-identity of every
# shard x worker cell against the sequential oracle plus the modeled
# bandwidth-domain scaling curve (the 2.5x floor is full-mode only).
cargo run --release -p mpspmm-bench --bin bench_shard -- --smoke
# Auto-tuner bench under a throwaway calibration directory: one run
# proves both the cold start (exploration under the overhead bound) and
# the warm restart (a rebuilt engine + tuner pair re-admits every plan
# from the persisted table with zero explorations).
calib_dir="$(mktemp -d)"
trap 'rm -rf "$calib_dir"' EXIT
MPSPMM_CALIB_PATH="$calib_dir/calib.v1" \
  cargo run --release -p mpspmm-bench --bin bench_autotune -- --smoke
scripts/check_bench_schema.sh
