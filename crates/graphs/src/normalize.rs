//! GCN preprocessing of adjacency matrices.
//!
//! A GCN layer computes `σ(Â · X · W)` where `Â = D^{-1/2}(A + I)D^{-1/2}`
//! is the symmetrically normalized adjacency matrix with self loops
//! (Kipf & Welling). The SpMM kernels under study are agnostic to the
//! values, but the GCN examples and the Figure 8 online-inference scenario
//! use properly normalized operands.

use mpspmm_sparse::CsrMatrix;

/// Returns `A + I`: the adjacency matrix with self loops added.
///
/// Rows that already contain a diagonal entry keep it (the value is left
/// unchanged); all other rows get a diagonal entry of `1.0`.
pub fn add_self_loops(a: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    assert_eq!(a.rows(), a.cols(), "adjacency matrix must be square");
    let n = a.rows();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_indices = Vec::with_capacity(a.nnz() + n);
    let mut values = Vec::with_capacity(a.nnz() + n);
    row_ptr.push(0usize);
    for r in 0..n {
        let row = a.row(r);
        let mut inserted = false;
        for (&c, &v) in row.cols.iter().zip(row.vals) {
            if !inserted && c > r {
                col_indices.push(r);
                values.push(1.0);
                inserted = true;
            }
            col_indices.push(c);
            values.push(v);
            if c == r {
                inserted = true;
            }
        }
        if !inserted {
            col_indices.push(r);
            values.push(1.0);
        }
        row_ptr.push(col_indices.len());
    }
    CsrMatrix::new(n, n, row_ptr, col_indices, values)
        .expect("self-loop insertion preserves CSR invariants")
}

/// Computes the symmetric GCN normalization `Â = D^{-1/2}(A + I)D^{-1/2}`,
/// where `D` is the degree matrix of `A + I` (row sums of the 0/1 pattern).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn gcn_normalize(a: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    let with_loops = add_self_loops(a);
    let n = with_loops.rows();
    let inv_sqrt_deg: Vec<f32> = (0..n)
        .map(|r| {
            let d = with_loops.row_nnz(r) as f32;
            1.0 / d.sqrt()
        })
        .collect();
    let (rows, cols, row_ptr, col_indices, mut values) = with_loops.into_raw_parts();
    let mut k = 0usize;
    for r in 0..rows {
        while k < row_ptr[r + 1] {
            values[k] *= inv_sqrt_deg[r] * inv_sqrt_deg[col_indices[k]];
            k += 1;
        }
    }
    CsrMatrix::new(rows, cols, row_ptr, col_indices, values)
        .expect("rescaling values preserves CSR invariants")
}

/// Computes the row-normalized aggregation operator `D^{-1}(A + I)` used
/// by mean-aggregator GNNs (GraphSAGE-mean): each node averages itself
/// with its neighbours.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn mean_normalize(a: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    let with_loops = add_self_loops(a);
    let n = with_loops.rows();
    let inv_deg: Vec<f32> = (0..n).map(|r| 1.0 / with_loops.row_nnz(r) as f32).collect();
    let (rows, cols, row_ptr, col_indices, mut values) = with_loops.into_raw_parts();
    let mut k = 0usize;
    for r in 0..rows {
        while k < row_ptr[r + 1] {
            values[k] *= inv_deg[r];
            k += 1;
        }
    }
    CsrMatrix::new(rows, cols, row_ptr, col_indices, values)
        .expect("rescaling values preserves CSR invariants")
}

/// Computes the GIN-style sum aggregation operator `A + (1 + ε)·I`:
/// neighbour features are summed and the node's own feature is weighted by
/// `1 + ε` (Xu et al., "How powerful are graph neural networks?", one of
/// the GNN models whose varying hidden dimensions motivate the paper's
/// §III-C dimension study).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn sum_with_self_loops(a: &CsrMatrix<f32>, epsilon: f32) -> CsrMatrix<f32> {
    let with_loops = add_self_loops(a);
    let (rows, cols, row_ptr, col_indices, mut values) = with_loops.into_raw_parts();
    let mut k = 0usize;
    for r in 0..rows {
        while k < row_ptr[r + 1] {
            if col_indices[k] == r {
                values[k] *= 1.0 + epsilon;
            }
            k += 1;
        }
    }
    CsrMatrix::new(rows, cols, row_ptr, col_indices, values)
        .expect("rescaling values preserves CSR invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_sparse::CsrMatrix;

    fn path3() -> CsrMatrix<f32> {
        // 0 - 1 - 2 undirected path.
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
            .unwrap()
    }

    #[test]
    fn self_loops_added_once() {
        let a = path3();
        let al = add_self_loops(&a);
        assert_eq!(al.nnz(), a.nnz() + 3);
        for r in 0..3 {
            assert!(al.row(r).cols.contains(&r), "row {r} missing diagonal");
        }
        // Idempotent on the pattern: adding again must keep diagonal unique.
        let al2 = add_self_loops(&al);
        assert_eq!(al2.nnz(), al.nnz());
    }

    #[test]
    fn self_loop_insertion_keeps_sorted_columns() {
        let a = CsrMatrix::from_triplets(3, 3, &[(1, 0, 1.0), (1, 2, 1.0)]).unwrap();
        let al = add_self_loops(&a);
        assert_eq!(al.row(1).cols, &[0, 1, 2]);
        assert_eq!(al.row(0).cols, &[0]);
    }

    #[test]
    fn normalization_values_match_formula() {
        let a = path3();
        let norm = gcn_normalize(&a);
        // Degrees with self loops: d0 = 2, d1 = 3, d2 = 2.
        let expect_01 = 1.0 / (2.0f32 * 3.0).sqrt();
        let expect_11 = 1.0 / 3.0;
        let d = norm.to_dense();
        assert!((d.get(0, 1) - expect_01).abs() < 1e-6);
        assert!((d.get(1, 1) - expect_11).abs() < 1e-6);
        assert!((d.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalized_matrix_is_symmetric_for_symmetric_input() {
        let norm = gcn_normalize(&path3());
        assert!(norm.is_symmetric());
    }

    #[test]
    fn mean_normalize_rows_sum_to_one() {
        let m = mean_normalize(&path3());
        for r in 0..m.rows() {
            let s: f32 = m.row(r).vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
        // Node 1 has degree 3 with the self loop: every weight is 1/3.
        assert!(m.row(1).vals.iter().all(|&v| (v - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn gin_operator_weights_self_loop() {
        let m = sum_with_self_loops(&path3(), 0.5);
        let d = m.to_dense();
        assert!((d.get(1, 1) - 1.5).abs() < 1e-6, "self weight is 1 + eps");
        assert!((d.get(1, 0) - 1.0).abs() < 1e-6, "neighbours stay at 1");
        // eps = 0 degenerates to plain A + I.
        let plain = sum_with_self_loops(&path3(), 0.0);
        assert_eq!(plain, add_self_loops(&path3()));
    }

    #[test]
    fn normalized_values_lie_in_unit_interval() {
        // Every entry is 1/sqrt(d_i d_j) with d ≥ 1, hence in (0, 1].
        let norm = gcn_normalize(&path3());
        for &v in norm.values() {
            assert!(v > 0.0 && v <= 1.0, "value {v} outside (0, 1]");
        }
        // A d-regular graph with self loops has constant row sums of
        // exactly 1: check on a 4-cycle (degree 2 + self loop = 3).
        let cycle = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 0, 1.0),
                (0, 3, 1.0),
            ],
        )
        .unwrap();
        let norm = gcn_normalize(&cycle);
        for r in 0..norm.rows() {
            let s: f32 = norm.row(r).vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }
}
