//! Integration tests for the offline/online scheduling modes (§III-D)
//! and schedule serialization.

use merge_path_spmm::core::executor::{execute_parallel, execute_sequential};
use merge_path_spmm::core::{plan_from_schedule, MergePathSpmm, Schedule, SpmmKernel};
use merge_path_spmm::gcn::ops::random_features;
use merge_path_spmm::graphs::{DatasetSpec, GraphClass};

fn graph() -> merge_path_spmm::sparse::CsrMatrix<f32> {
    DatasetSpec::custom("oo", GraphClass::PowerLaw, 700, 3_000, 150).synthesize(3)
}

#[test]
fn offline_schedule_reuse_is_bit_identical() {
    let a = graph();
    let b = random_features(a.cols(), 16, 1.0, 2);
    let kernel = MergePathSpmm::with_threads(37);
    let (online, _) = kernel.spmm_sequential(&a, &b).expect("online run");
    let schedule = kernel.schedule(&a, 16);
    for _ in 0..3 {
        let plan = plan_from_schedule(&schedule, &a);
        let (offline, _) = execute_sequential(&plan, &a, &b).expect("offline run");
        assert_eq!(online, offline, "offline reuse must be bit-identical");
    }
}

#[test]
fn parallel_execution_stays_within_tolerance_of_sequential() {
    let a = graph();
    let b = random_features(a.cols(), 8, 1.0, 9);
    let kernel = MergePathSpmm::with_threads(64);
    let plan = kernel.plan(&a, 8);
    let (seq, seq_stats) = execute_sequential(&plan, &a, &b).expect("sequential");
    for workers in [1usize, 2, 4, 8] {
        let (par, par_stats) = execute_parallel(&plan, &a, &b, workers).expect("parallel");
        assert!(par.approx_eq(&seq, 1e-3).expect("same shape"));
        assert_eq!(par_stats, seq_stats, "stats are execution-order independent");
    }
}

#[test]
fn schedule_serde_round_trip_preserves_plans() {
    let a = graph();
    let schedule = Schedule::build(&a, 53);
    let encoded = serde_json_encode(&schedule);
    let decoded: Schedule = serde_json_decode(&encoded);
    assert_eq!(schedule, decoded);
    assert_eq!(
        plan_from_schedule(&schedule, &a),
        plan_from_schedule(&decoded, &a)
    );
}

#[test]
fn stale_schedule_is_rejected() {
    let a = graph();
    let other = DatasetSpec::custom("oo2", GraphClass::PowerLaw, 700, 3_100, 150).synthesize(4);
    let schedule = Schedule::build(&a, 16);
    assert!(schedule.matches(&a));
    assert!(!schedule.matches(&other), "nnz changed: schedule is stale");
}

// Minimal JSON helpers via serde's data model exercised through the
// `serde_json`-free route: round-trip with `bincode`-like manual encoding
// is overkill, so we use the `serde` test channel: encode to a string via
// `format!` is not deserializable — instead round-trip through
// `serde_json` would add a dependency. We use `postcard`-style... simplest:
// use `serde_json` via `serde::Serialize` into a `Vec<u8>` with the
// `serde_json` crate is unavailable; rely on `ron`-free manual check:
// since `Schedule` derives PartialEq + Serialize + Deserialize, we verify
// the round trip through the `serde_transcode`-free in-memory
// `serde_value` approach below.
fn serde_json_encode(s: &Schedule) -> String {
    // Hand-rolled JSON via serde's own Serializer implementation from the
    // `serde` ecosystem is unavailable offline; use the debug form plus a
    // rebuild check instead. To keep this test meaningful without a JSON
    // dependency, encode with `bincode`-style: the `postcard`/`serde_json`
    // crates are not offline-approved, so we serialize through
    // `serde::Serialize` into this custom writer.
    json_value(s)
}

fn serde_json_decode(s: &str) -> Schedule {
    json_parse(s)
}

// --- tiny self-contained JSON round trip for the test -------------------
// (The workspace deliberately avoids a JSON dependency; this encodes just
// enough of serde's data model for `Schedule`.)

fn json_value<T: serde::Serialize>(value: &T) -> String {
    let v = serde_value::to_value(value);
    serde_value::render(&v)
}

fn json_parse(s: &str) -> Schedule {
    let v = serde_value::parse(s);
    serde_value::from_value(&v)
}

mod serde_value {
    //! Just enough of a JSON tree for `Schedule` (unsigned integers,
    //! sequences, structs).

    use merge_path_spmm::core::Schedule;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        U64(u64),
        Seq(Vec<Value>),
        Map(Vec<(String, Value)>),
    }

    pub fn to_value<T: serde::Serialize>(v: &T) -> Value {
        let mut ser = Ser;
        v.serialize(&mut ser).expect("schedule serializes")
    }

    pub fn render(v: &Value) -> String {
        match v {
            Value::U64(n) => n.to_string(),
            Value::Seq(items) => {
                let inner: Vec<String> = items.iter().map(render).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Map(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{k}\":{}", render(v)))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }

    pub fn parse(s: &str) -> Value {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.value()
    }

    pub fn from_value(v: &Value) -> Schedule {
        // Rebuild through the derived Deserialize using our own
        // deserializer over the value tree.
        let mut de = De { value: v };
        serde::Deserialize::deserialize(&mut de).expect("schedule deserializes")
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn peek(&self) -> u8 {
            self.bytes[self.pos]
        }
        fn value(&mut self) -> Value {
            match self.peek() {
                b'[' => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    while self.peek() != b']' {
                        items.push(self.value());
                        if self.peek() == b',' {
                            self.pos += 1;
                        }
                    }
                    self.pos += 1;
                    Value::Seq(items)
                }
                b'{' => {
                    self.pos += 1;
                    let mut fields = Vec::new();
                    while self.peek() != b'}' {
                        assert_eq!(self.peek(), b'"');
                        self.pos += 1;
                        let start = self.pos;
                        while self.peek() != b'"' {
                            self.pos += 1;
                        }
                        let key = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                        self.pos += 1; // closing quote
                        assert_eq!(self.peek(), b':');
                        self.pos += 1;
                        fields.push((key, self.value()));
                        if self.peek() == b',' {
                            self.pos += 1;
                        }
                    }
                    self.pos += 1;
                    Value::Map(fields)
                }
                _ => {
                    let start = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                    Value::U64(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("digits")
                            .parse()
                            .expect("u64"),
                    )
                }
            }
        }
    }

    // ---- serializer ----
    pub struct Ser;

    #[derive(Debug)]
    pub struct Error(String);
    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
    impl std::error::Error for Error {}
    impl serde::ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }
    impl serde::de::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! unsupported {
        ($($f:ident: $t:ty),*) => {
            $(fn $f(self, _v: $t) -> Result<Value, Error> {
                Err(serde::ser::Error::custom("unsupported"))
            })*
        };
    }

    impl serde::Serializer for &mut Ser {
        type Ok = Value;
        type Error = Error;
        type SerializeSeq = SeqSer;
        type SerializeTuple = SeqSer;
        type SerializeTupleStruct = SeqSer;
        type SerializeTupleVariant = SeqSer;
        type SerializeMap = MapSer;
        type SerializeStruct = MapSer;
        type SerializeStructVariant = MapSer;

        fn serialize_u8(self, v: u8) -> Result<Value, Error> {
            Ok(Value::U64(v as u64))
        }
        fn serialize_u16(self, v: u16) -> Result<Value, Error> {
            Ok(Value::U64(v as u64))
        }
        fn serialize_u32(self, v: u32) -> Result<Value, Error> {
            Ok(Value::U64(v as u64))
        }
        fn serialize_u64(self, v: u64) -> Result<Value, Error> {
            Ok(Value::U64(v))
        }
        unsupported! {
            serialize_bool: bool, serialize_i8: i8, serialize_i16: i16,
            serialize_i32: i32, serialize_i64: i64, serialize_f32: f32,
            serialize_f64: f64, serialize_char: char, serialize_str: &str,
            serialize_bytes: &[u8]
        }
        fn serialize_none(self) -> Result<Value, Error> {
            Err(serde::ser::Error::custom("unsupported"))
        }
        fn serialize_some<T: serde::Serialize + ?Sized>(self, _: &T) -> Result<Value, Error> {
            Err(serde::ser::Error::custom("unsupported"))
        }
        fn serialize_unit(self) -> Result<Value, Error> {
            Err(serde::ser::Error::custom("unsupported"))
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<Value, Error> {
            Err(serde::ser::Error::custom("unsupported"))
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
        ) -> Result<Value, Error> {
            Err(serde::ser::Error::custom("unsupported"))
        }
        fn serialize_newtype_struct<T: serde::Serialize + ?Sized>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<Value, Error> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: serde::Serialize + ?Sized>(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: &T,
        ) -> Result<Value, Error> {
            Err(serde::ser::Error::custom("unsupported"))
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<SeqSer, Error> {
            Ok(SeqSer(Vec::new()))
        }
        fn serialize_tuple(self, len: usize) -> Result<SeqSer, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(self, _: &'static str, len: usize) -> Result<SeqSer, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<SeqSer, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, _: Option<usize>) -> Result<MapSer, Error> {
            Ok(MapSer(Vec::new()))
        }
        fn serialize_struct(self, _: &'static str, _: usize) -> Result<MapSer, Error> {
            Ok(MapSer(Vec::new()))
        }
        fn serialize_struct_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<MapSer, Error> {
            Ok(MapSer(Vec::new()))
        }
    }

    pub struct SeqSer(Vec<Value>);
    impl serde::ser::SerializeSeq for SeqSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_element<T: serde::Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            self.0.push(v.serialize(&mut Ser)?);
            Ok(())
        }
        fn end(self) -> Result<Value, Error> {
            Ok(Value::Seq(self.0))
        }
    }
    impl serde::ser::SerializeTuple for SeqSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_element<T: serde::Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            serde::ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<Value, Error> {
            serde::ser::SerializeSeq::end(self)
        }
    }
    impl serde::ser::SerializeTupleStruct for SeqSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_field<T: serde::Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            serde::ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<Value, Error> {
            serde::ser::SerializeSeq::end(self)
        }
    }
    impl serde::ser::SerializeTupleVariant for SeqSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_field<T: serde::Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            serde::ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<Value, Error> {
            serde::ser::SerializeSeq::end(self)
        }
    }

    pub struct MapSer(Vec<(String, Value)>);
    impl serde::ser::SerializeStruct for MapSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_field<T: serde::Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            self.0.push((key.to_string(), v.serialize(&mut Ser)?));
            Ok(())
        }
        fn end(self) -> Result<Value, Error> {
            Ok(Value::Map(self.0))
        }
    }
    impl serde::ser::SerializeMap for MapSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_key<T: serde::Serialize + ?Sized>(&mut self, _k: &T) -> Result<(), Error> {
            Err(serde::ser::Error::custom("unsupported"))
        }
        fn serialize_value<T: serde::Serialize + ?Sized>(&mut self, _v: &T) -> Result<(), Error> {
            Err(serde::ser::Error::custom("unsupported"))
        }
        fn end(self) -> Result<Value, Error> {
            Ok(Value::Map(self.0))
        }
    }
    impl serde::ser::SerializeStructVariant for MapSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_field<T: serde::Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            serde::ser::SerializeStruct::serialize_field(self, key, v)
        }
        fn end(self) -> Result<Value, Error> {
            serde::ser::SerializeStruct::end(self)
        }
    }

    // ---- deserializer ----
    pub struct De<'v> {
        pub value: &'v Value,
    }

    impl<'de, 'v> serde::Deserializer<'de> for &mut De<'v> {
        type Error = Error;

        fn deserialize_any<V: serde::de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            match self.value {
                Value::U64(n) => visitor.visit_u64(*n),
                Value::Seq(items) => visitor.visit_seq(SeqDe { items, pos: 0 }),
                Value::Map(fields) => visitor.visit_map(MapDe { fields, pos: 0 }),
            }
        }

        serde::forward_to_deserialize_any! {
            bool i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 f32 f64 char str
            string bytes byte_buf option unit unit_struct newtype_struct seq
            tuple tuple_struct map struct enum identifier ignored_any
        }
    }

    struct SeqDe<'v> {
        items: &'v [Value],
        pos: usize,
    }
    impl<'de, 'v> serde::de::SeqAccess<'de> for SeqDe<'v> {
        type Error = Error;
        fn next_element_seed<T: serde::de::DeserializeSeed<'de>>(
            &mut self,
            seed: T,
        ) -> Result<Option<T::Value>, Error> {
            if self.pos >= self.items.len() {
                return Ok(None);
            }
            let mut de = De {
                value: &self.items[self.pos],
            };
            self.pos += 1;
            seed.deserialize(&mut de).map(Some)
        }
    }

    struct MapDe<'v> {
        fields: &'v [(String, Value)],
        pos: usize,
    }
    impl<'de, 'v> serde::de::MapAccess<'de> for MapDe<'v> {
        type Error = Error;
        fn next_key_seed<K: serde::de::DeserializeSeed<'de>>(
            &mut self,
            seed: K,
        ) -> Result<Option<K::Value>, Error> {
            if self.pos >= self.fields.len() {
                return Ok(None);
            }
            let key = &self.fields[self.pos].0;
            seed.deserialize(serde::de::value::StrDeserializer::new(key))
                .map(Some)
        }
        fn next_value_seed<V: serde::de::DeserializeSeed<'de>>(
            &mut self,
            seed: V,
        ) -> Result<V::Value, Error> {
            let mut de = De {
                value: &self.fields[self.pos].1,
            };
            self.pos += 1;
            seed.deserialize(&mut de)
        }
    }
}
