//! Lowering [`KernelPlan`]s to warp-level work (§III-C thread→SIMD
//! mapping).
//!
//! Dimension-to-lane mapping regimes:
//!
//! * `dim == lanes`: one logical thread per warp.
//! * `dim > lanes`: either **replicate** each logical thread across
//!   `ceil(dim/lanes)` warps, one per 32-wide dimension slice (§III-C2,
//!   MergePath-SpMM), or **serialize** the extra slices inside a single
//!   warp (GNNAdvisor's behaviour, §IV-A).
//! * `dim < lanes`: either **pack** `lanes/dim` logical threads into one
//!   warp, advancing in lockstep at the pace of the longest (§III-C3,
//!   MergePath-SpMM and GNNAdvisor-opt), or give each thread a whole warp
//!   and waste the remaining lanes (plain GNNAdvisor).

use mpspmm_core::{Flush, KernelPlan, SimdMapping};

use crate::warp::{KernelRun, WarpWork};

/// How a kernel maps logical threads onto warps outside the
/// `dim == lanes` sweet spot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweringPolicy {
    /// Pack several logical threads per warp when `dim < lanes`.
    pub pack_small_dims: bool,
    /// Replicate threads across slice warps when `dim > lanes`
    /// (otherwise slices serialize inside one warp).
    pub replicate_large_dims: bool,
}

impl LoweringPolicy {
    /// MergePath-SpMM (and row-splitting): pack small dims, replicate
    /// large dims (§III-C).
    pub fn merge_path() -> Self {
        Self {
            pack_small_dims: true,
            replicate_large_dims: true,
        }
    }

    /// Plain GNNAdvisor: no packing (idle lanes below 32 dims), slices
    /// serialized within the warp above 32 dims (§IV-A).
    pub fn gnnadvisor() -> Self {
        Self {
            pack_small_dims: false,
            replicate_large_dims: false,
        }
    }

    /// GNNAdvisor-opt: packs neighbor groups per warp at small dims, still
    /// serializes large dims in-warp.
    pub fn gnnadvisor_opt() -> Self {
        Self {
            pack_small_dims: true,
            replicate_large_dims: false,
        }
    }
}

/// Lowers a kernel plan with the MergePath-SpMM policy.
pub fn lower(plan: &KernelPlan, dim: usize, lanes: usize, xw_rows: usize) -> KernelRun {
    lower_with_policy(plan, dim, lanes, LoweringPolicy::merge_path(), xw_rows)
}

/// Lowers a kernel plan for dense dimension `dim` on `lanes`-wide warps
/// under the given policy. `xw_rows` sizes the scattered-access working
/// set (the dense operand's row count).
pub fn lower_with_policy(
    plan: &KernelPlan,
    dim: usize,
    lanes: usize,
    policy: LoweringPolicy,
    xw_rows: usize,
) -> KernelRun {
    assert!(dim > 0, "dimension must be positive");
    let mapping = SimdMapping::for_dim(dim, lanes);
    let slices = mapping.warps_per_thread as u64;
    let mut warps = Vec::new();
    let mut total_carries = 0u64;

    // Per-logical-thread raw work.
    let thread_work: Vec<WarpWork> = plan
        .threads
        .iter()
        .map(|tp| {
            let mut w = WarpWork {
                packed: 1,
                ..WarpWork::default()
            };
            for seg in &tp.segments {
                if seg.is_empty() {
                    continue;
                }
                let len = seg.len() as u64;
                w.steps += len;
                w.mem_ops += len;
                match seg.flush {
                    Flush::Regular => w.regular_flushes += 1,
                    Flush::Atomic => w.atomic_rows.push(seg.row),
                    Flush::Carry => w.carry_flushes += 1,
                }
            }
            w
        })
        .collect();

    if slices > 1 {
        if policy.replicate_large_dims {
            // One warp per 32-dim slice; each slice re-walks the
            // non-zeros for its own dimensions and flushes its share.
            for tw in &thread_work {
                total_carries += tw.carry_flushes * slices;
                for _ in 0..slices {
                    warps.push(tw.clone());
                }
            }
        } else {
            // Slices serialized inside one warp: the warp issues `slices`
            // passes worth of steps, loads, and flushes.
            for tw in &thread_work {
                total_carries += tw.carry_flushes * slices;
                let mut w = WarpWork {
                    steps: tw.steps * slices,
                    mem_ops: tw.mem_ops * slices,
                    regular_flushes: tw.regular_flushes * slices,
                    carry_flushes: tw.carry_flushes * slices,
                    atomic_rows: Vec::with_capacity(tw.atomic_rows.len() * slices as usize),
                    packed: 1,
                };
                for _ in 0..slices {
                    w.atomic_rows.extend_from_slice(&tw.atomic_rows);
                }
                warps.push(w);
            }
        }
    } else if mapping.threads_per_warp > 1 && policy.pack_small_dims {
        // dim < lanes, packed: groups advance at the slowest member's
        // pace; memory operations and flushes are issued by every member.
        for group in thread_work.chunks(mapping.threads_per_warp) {
            let mut w = WarpWork {
                steps: group.iter().map(|t| t.steps).max().unwrap_or(0),
                packed: group.len() as u32,
                ..WarpWork::default()
            };
            for t in group {
                w.mem_ops += t.mem_ops;
                w.regular_flushes += t.regular_flushes;
                w.atomic_rows.extend_from_slice(&t.atomic_rows);
                w.carry_flushes += t.carry_flushes;
                total_carries += t.carry_flushes;
            }
            warps.push(w);
        }
    } else {
        // One logical thread per warp (dim == lanes, or unpacked
        // baseline wasting idle lanes).
        for tw in &thread_work {
            total_carries += tw.carry_flushes;
        }
        warps = thread_work;
    }

    KernelRun {
        warps,
        dim,
        xw_rows,
        // The SpMM operand is a square adjacency matrix, so the output has
        // as many rows as XW.
        out_rows: xw_rows,
        total_carries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_core::{Segment, ThreadPlan};

    fn seg(row: usize, nz_start: usize, nz_end: usize, flush: Flush) -> Segment {
        Segment {
            row,
            nz_start,
            nz_end,
            flush,
        }
    }

    fn plan_with_nnz(per_thread: &[u64]) -> KernelPlan {
        let mut nz = 0usize;
        KernelPlan {
            threads: per_thread
                .iter()
                .map(|&n| {
                    let s = seg(0, nz, nz + n as usize, Flush::Atomic);
                    nz += n as usize;
                    ThreadPlan { segments: vec![s] }
                })
                .collect(),
        }
    }

    #[test]
    fn dim_equals_lanes_is_one_to_one() {
        let plan = plan_with_nnz(&[3, 5]);
        let run = lower(&plan, 32, 32, 100);
        assert_eq!(run.warps.len(), 2);
        assert_eq!(run.warps[0].steps, 3);
        assert_eq!(run.warps[1].steps, 5);
    }

    #[test]
    fn dim_above_lanes_replicates_threads() {
        // §III-C2: "If the dimension size is 64, each thread is executed
        // using two warps."
        let plan = plan_with_nnz(&[4]);
        let run = lower(&plan, 64, 32, 100);
        assert_eq!(run.warps.len(), 2);
        assert!(run.warps.iter().all(|w| w.steps == 4));
        let run = lower(&plan, 128, 32, 100);
        assert_eq!(run.warps.len(), 4);
    }

    #[test]
    fn dim_above_lanes_serializes_for_gnnadvisor() {
        let plan = plan_with_nnz(&[4]);
        let run = lower_with_policy(&plan, 64, 32, LoweringPolicy::gnnadvisor(), 100);
        assert_eq!(run.warps.len(), 1);
        assert_eq!(run.warps[0].steps, 8, "two slices serialized in-warp");
        assert_eq!(run.warps[0].atomic_rows.len(), 2);
    }

    #[test]
    fn dim_below_lanes_packed_takes_max_steps() {
        // §III-C3: dim 16 → two threads per warp; divergence means the
        // warp advances at the slower thread's pace.
        let plan = plan_with_nnz(&[3, 7, 2]);
        let run = lower(&plan, 16, 32, 100);
        assert_eq!(run.warps.len(), 2);
        assert_eq!(run.warps[0].steps, 7);
        assert_eq!(run.warps[0].mem_ops, 10);
        assert_eq!(run.warps[0].atomic_rows.len(), 2);
        assert_eq!(run.warps[1].steps, 2);
    }

    #[test]
    fn unpacked_baseline_wastes_lanes() {
        let plan = plan_with_nnz(&[3, 7, 2]);
        let run = lower_with_policy(&plan, 16, 32, LoweringPolicy::gnnadvisor(), 100);
        assert_eq!(run.warps.len(), 3, "GNNAdvisor baseline: one NG per warp");
        assert_eq!(run.warps[1].steps, 7);
    }

    #[test]
    fn dim_two_packs_sixteen_threads() {
        let plan = plan_with_nnz(&[1; 32]);
        let run = lower(&plan, 2, 32, 10);
        assert_eq!(run.warps.len(), 2);
        assert_eq!(run.warps[0].mem_ops, 16);
    }

    #[test]
    fn carries_are_counted_and_scaled_by_slices() {
        let plan = KernelPlan {
            threads: vec![ThreadPlan {
                segments: vec![seg(0, 0, 3, Flush::Carry), seg(1, 3, 5, Flush::Regular)],
            }],
        };
        let run = lower(&plan, 32, 32, 10);
        assert_eq!(run.total_carries, 1);
        assert_eq!(run.warps[0].regular_flushes, 1);
        assert_eq!(run.warps[0].carry_flushes, 1);
        // dim 64: the carry must be flushed for both slices.
        let run = lower(&plan, 64, 32, 10);
        assert_eq!(run.total_carries, 2);
    }
}
