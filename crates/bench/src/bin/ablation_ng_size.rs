//! Ablation — GNNAdvisor's neighbor-group size sensitivity.
//!
//! The paper uses the average degree as GNNAdvisor's default NG size
//! (§IV-A). This ablation sweeps the NG size on the GPU model to show the
//! baseline was configured favourably: the default sits at or near the
//! sweep optimum on most graphs, so MergePath-SpMM's Figure 4 advantage is
//! not an artifact of a detuned baseline.

use mpspmm_bench::{banner, full_size_requested, load, SEED};
use mpspmm_core::NnzSplitSpmm;
use mpspmm_graphs::find_dataset;
use mpspmm_simt::{GpuConfig, GpuKernel};

const SAMPLE: [&str; 5] = ["Cora", "Pubmed", "email-Enron", "Nell", "PPI"];
const NG_SIZES: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn main() {
    let full = full_size_requested();
    banner(
        "Ablation: NG size",
        "GNNAdvisor neighbor-group size sweep (kernel µs, dim 16)",
        full,
    );
    println!("sample: {SAMPLE:?}, seed {SEED}\n");

    let cfg = GpuConfig::rtx6000();
    print!("{:<14} {:>9}", "Graph", "default");
    for ng in NG_SIZES {
        print!(" {ng:>8}");
    }
    println!(" {:>9}", "best ng");
    for name in SAMPLE {
        let (_, a) = load(find_dataset(name).expect("in Table II"), full);
        let default_ng = NnzSplitSpmm::new().ng_size_for(&a);
        let default_t = GpuKernel::GnnAdvisor {
            opt: false,
            ng_size: None,
        }
        .simulate(&a, 16, &cfg)
        .micros;
        print!("{name:<14} {default_t:>9.2}");
        let mut best = (default_ng, default_t);
        for ng in NG_SIZES {
            let t = GpuKernel::GnnAdvisor {
                opt: false,
                ng_size: Some(ng),
            }
            .simulate(&a, 16, &cfg)
            .micros;
            if t < best.1 {
                best = (ng, t);
            }
            print!(" {t:>8.2}");
        }
        println!(" {:>9}", best.0);
        println!(
            "{:<14} (default ng = avg degree = {default_ng}; best within {:.0}% of default)",
            "",
            (default_t / best.1 - 1.0) * 100.0
        );
    }
    println!(
        "\nReading: tiny NGs explode the atomic count; huge NGs reintroduce \
         row-splitting imbalance. The average-degree default the paper uses \
         is a sane operating point, so the Figure 4 comparison is fair."
    );
}
