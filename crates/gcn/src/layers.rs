//! Beyond GCN: the other aggregation-style GNN layers the paper cites as
//! motivation (§I: GraphSAGE, GIN) — all built on the same pluggable SpMM
//! aggregation, and all with *different* dense-dimension profiles, which
//! is exactly why §III-C studies a range of dimension sizes.

use mpspmm_core::{ExecEngine, SpmmKernel};
use mpspmm_sparse::{CsrMatrix, DenseMatrix, SparseFormatError};

use crate::ops::{gemm, Activation};

/// A Graph Isomorphism Network layer (Xu et al.):
/// `H' = MLP((A + (1 + ε)I) · H)` — sum aggregation first (an SpMM at the
/// *input* feature width), then a two-layer MLP.
///
/// Build the sum operator with
/// [`mpspmm_graphs::sum_with_self_loops`](https://docs.rs/)-style
/// preprocessing and pass it as `op`.
#[derive(Debug, Clone, PartialEq)]
pub struct GinLayer {
    w1: DenseMatrix<f32>,
    w2: DenseMatrix<f32>,
    activation: Activation,
}

impl GinLayer {
    /// Creates a GIN layer with MLP weights `w1` (`in × hidden`) and `w2`
    /// (`hidden × out`).
    ///
    /// # Panics
    ///
    /// Panics if the MLP widths do not chain.
    pub fn new(w1: DenseMatrix<f32>, w2: DenseMatrix<f32>, activation: Activation) -> Self {
        assert_eq!(w1.cols(), w2.rows(), "MLP widths must chain");
        Self { w1, w2, activation }
    }

    /// Input feature width (the SpMM dense dimension of this layer).
    pub fn in_features(&self) -> usize {
        self.w1.rows()
    }

    /// Output feature width.
    pub fn out_features(&self) -> usize {
        self.w2.cols()
    }

    /// Forward pass: `MLP(op · H)` with ReLU inside the MLP and this
    /// layer's activation outside.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] on inconsistent shapes.
    pub fn forward(
        &self,
        op: &CsrMatrix<f32>,
        h: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        // Aggregation FIRST (unlike GCN): the SpMM runs at the input
        // width, so GIN exercises different Figure 6/7 dimension points.
        let agg = kernel.spmm(op, h)?;
        self.finish_mlp(agg)
    }

    /// Forward pass through `engine`'s plan cache (see
    /// [`crate::GcnLayer::forward_cached`] for the epoch contract). The
    /// sum aggregation is a dense matrix, so both MLP products run on the
    /// engine's parallel blocked GEMM and their scratch recycles through
    /// the buffer arena.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] on inconsistent shapes.
    pub fn forward_cached(
        &self,
        op: &CsrMatrix<f32>,
        h: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
        engine: &ExecEngine,
        epoch: u64,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let (agg, _) = engine.spmm_cached(kernel, op, h, epoch)?;
        let mut hidden = engine.gemm(&agg, &self.w1)?;
        engine.recycle(agg);
        Activation::Relu.apply(&mut hidden);
        let mut out = engine.gemm(&hidden, &self.w2)?;
        engine.recycle(hidden);
        self.activation.apply(&mut out);
        Ok(out)
    }

    fn finish_mlp(&self, agg: DenseMatrix<f32>) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let mut hidden = gemm(&agg, &self.w1)?;
        Activation::Relu.apply(&mut hidden);
        let mut out = gemm(&hidden, &self.w2)?;
        self.activation.apply(&mut out);
        Ok(out)
    }
}

/// A GraphSAGE layer with mean aggregation (Hamilton et al.):
/// `H' = σ(H·W_self + (D⁻¹(A + I))·H·W_neigh)`.
///
/// Pass the row-normalized mean operator (`mean_normalize`) as `op`.
#[derive(Debug, Clone, PartialEq)]
pub struct SageMeanLayer {
    w_self: DenseMatrix<f32>,
    w_neigh: DenseMatrix<f32>,
    activation: Activation,
}

impl SageMeanLayer {
    /// Creates a layer from the self- and neighbour-path weights (both
    /// `in × out`).
    ///
    /// # Panics
    ///
    /// Panics if the two weight matrices disagree in shape.
    pub fn new(
        w_self: DenseMatrix<f32>,
        w_neigh: DenseMatrix<f32>,
        activation: Activation,
    ) -> Self {
        assert_eq!(w_self.rows(), w_neigh.rows(), "input widths must match");
        assert_eq!(w_self.cols(), w_neigh.cols(), "output widths must match");
        Self {
            w_self,
            w_neigh,
            activation,
        }
    }

    /// Input feature width.
    pub fn in_features(&self) -> usize {
        self.w_self.rows()
    }

    /// Output feature width (the SpMM dense dimension of this layer).
    pub fn out_features(&self) -> usize {
        self.w_self.cols()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] on inconsistent shapes.
    pub fn forward(
        &self,
        op: &CsrMatrix<f32>,
        h: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let neigh = kernel.spmm(op, &gemm(h, &self.w_neigh)?)?;
        self.combine(h, neigh)
    }

    /// Forward pass through `engine`'s plan cache (see
    /// [`crate::GcnLayer::forward_cached`] for the epoch contract). Both
    /// dense products (`H·W_neigh` and `H·W_self`) run on the engine's
    /// parallel blocked GEMM; the neighbour product recycles through the
    /// buffer arena as soon as the aggregation has consumed it.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] on inconsistent shapes.
    pub fn forward_cached(
        &self,
        op: &CsrMatrix<f32>,
        h: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
        engine: &ExecEngine,
        epoch: u64,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let hw_neigh = engine.gemm(h, &self.w_neigh)?;
        let (neigh, _) = engine.spmm_cached(kernel, op, &hw_neigh, epoch)?;
        engine.recycle(hw_neigh);
        let mut out = engine.gemm(h, &self.w_self)?;
        if out.rows() != neigh.rows() || out.cols() != neigh.cols() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (out.rows(), out.cols()),
                right: (neigh.rows(), neigh.cols()),
            });
        }
        for (dst, &src) in out.as_mut_slice().iter_mut().zip(neigh.as_slice()) {
            *dst += src;
        }
        engine.recycle(neigh);
        self.activation.apply(&mut out);
        Ok(out)
    }

    fn combine(
        &self,
        h: &DenseMatrix<f32>,
        neigh: DenseMatrix<f32>,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let mut out = gemm(h, &self.w_self)?;
        if out.rows() != neigh.rows() || out.cols() != neigh.cols() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (out.rows(), out.cols()),
                right: (neigh.rows(), neigh.cols()),
            });
        }
        for (dst, &src) in out.as_mut_slice().iter_mut().zip(neigh.as_slice()) {
            *dst += src;
        }
        self.activation.apply(&mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{random_features, xavier_init};
    use mpspmm_core::{MergePathSpmm, SerialSpmm};
    use mpspmm_graphs::{mean_normalize, sum_with_self_loops, DatasetSpec, GraphClass};

    fn graph() -> CsrMatrix<f32> {
        DatasetSpec::custom("l", GraphClass::PowerLaw, 120, 500, 30).synthesize(4)
    }

    #[test]
    fn gin_forward_shapes_and_kernel_agreement() {
        let a = graph();
        let op = sum_with_self_loops(&a, 0.3);
        let layer = GinLayer::new(
            xavier_init(12, 24, 1),
            xavier_init(24, 6, 2),
            Activation::Identity,
        );
        assert_eq!(layer.in_features(), 12);
        assert_eq!(layer.out_features(), 6);
        let x = random_features(a.rows(), 12, 0.5, 3);
        let serial = layer.forward(&op, &x, &SerialSpmm).unwrap();
        let parallel = layer
            .forward(&op, &x, &MergePathSpmm::with_threads(16))
            .unwrap();
        assert_eq!(serial.cols(), 6);
        assert!(parallel.approx_eq(&serial, 1e-3).unwrap());
    }

    #[test]
    fn gin_epsilon_changes_output() {
        let a = graph();
        let layer = GinLayer::new(xavier_init(8, 8, 5), xavier_init(8, 4, 6), Activation::Relu);
        let x = random_features(a.rows(), 8, 0.5, 7);
        let small = layer
            .forward(&sum_with_self_loops(&a, 0.0), &x, &SerialSpmm)
            .unwrap();
        let large = layer
            .forward(&sum_with_self_loops(&a, 2.0), &x, &SerialSpmm)
            .unwrap();
        assert!(small.max_abs_diff(&large).unwrap() > 1e-4);
    }

    #[test]
    fn sage_mean_forward_matches_manual_composition() {
        let a = graph();
        let op = mean_normalize(&a);
        let w_self = xavier_init(10, 5, 8);
        let w_neigh = xavier_init(10, 5, 9);
        let layer = SageMeanLayer::new(w_self.clone(), w_neigh.clone(), Activation::Identity);
        let x = random_features(a.rows(), 10, 0.5, 10);
        let got = layer.forward(&op, &x, &SerialSpmm).unwrap();
        // Manual: H W_self + op (H W_neigh).
        let mut want = gemm(&x, &w_self).unwrap();
        let neigh = SerialSpmm.spmm(&op, &gemm(&x, &w_neigh).unwrap()).unwrap();
        for (dst, &src) in want.as_mut_slice().iter_mut().zip(neigh.as_slice()) {
            *dst += src;
        }
        assert!(got.approx_eq(&want, 1e-5).unwrap());
    }

    #[test]
    #[should_panic(expected = "MLP widths must chain")]
    fn gin_rejects_mismatched_mlp() {
        GinLayer::new(xavier_init(8, 9, 0), xavier_init(8, 4, 0), Activation::Relu);
    }

    #[test]
    #[should_panic(expected = "output widths must match")]
    fn sage_rejects_mismatched_weights() {
        SageMeanLayer::new(xavier_init(8, 4, 0), xavier_init(8, 5, 0), Activation::Relu);
    }
}
