//! Mega-batch benchmark — block-diagonal graph packing vs per-request
//! serving.
//!
//! The workload the packing scheduler exists for: thousands of distinct
//! Type II-sized graphs (50–500 nnz each — molecular-dataset scale),
//! every request carrying a *different* graph, so the classic coalescing
//! batcher can never merge anything (its batch key is the graph
//! version). Two closed-loop modes, interleaved pass-by-pass over the
//! same registered population (see [`paired_run`] for why pairing):
//!
//! The served workload is two-layer GCN inference through **one shared
//! model** (the mega-batch registration shape: thousands of graphs, one
//! `Arc<GcnModel>`):
//!
//! * **per-request**: packing off, every request runs its own GCN
//!   forward — two GEMMs and two aggregation SpMMs *per tiny graph*,
//!   each an engine run with plan lookup, pool dispatch, and arena
//!   traffic.
//! * **packed**: packing on, a batch window admits requests for
//!   different graphs, concatenates them into one block-diagonal CSR,
//!   runs `forward_mega_batched` — one GEMM + one SpMM per layer for
//!   the *whole window* — and scatters each tenant's row band back out.
//!
//! The headline is the goodput ratio in graphs/sec **at fixed p95** —
//! the median over interleaved passes of the per-pass ratio: the
//! packed run must not buy its throughput with a worse tail, so the
//! binary asserts `packed p95 <= per-request p95` alongside the >= 5x
//! goodput floor (full mode; `--smoke` runs the same shape smaller and
//! only prints). Before anything is timed, a bit-identity spot check
//! packs a window and compares every scattered band against the
//! sequential per-graph oracle — exact equality, not tolerance.
//!
//! Writes `BENCH_batch.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpspmm_bench::SEED;
use mpspmm_core::{default_workers, ExecEngine, MergePathSpmm};
use mpspmm_gcn::GcnModel;
use mpspmm_graphs::{gcn_normalize, DatasetSpec, GraphClass};
use mpspmm_serve::{Request, ServeConfig, ServeStats, Server, Workload};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Model input feature width (and therefore the per-request dense
/// width): small, like molecular node features — engine-run overhead
/// dominates the per-graph compute.
const IN_FEATURES: usize = 4;
/// Hidden width of the shared two-layer model.
const HIDDEN: usize = 4;
/// Output classes of the shared model.
const CLASSES: usize = 2;
/// Burst width, and therefore the packing window's graph budget: the
/// client submits one burst, waits for every reply, then submits the
/// next — the batch-synchronous shape of epoch-style inference over a
/// registered population. Aligned bursts mean successive packed windows
/// repeat their composition exactly, so passes after the first reuse the
/// batch-shape-class plan instead of re-planning.
const BURST: usize = 256;
/// Tenants the burst is spread over (results scatter per tenant).
const TENANTS: usize = 8;

struct Shape {
    graphs: usize,
    passes: usize,
}

fn shape(smoke: bool) -> Shape {
    if smoke {
        Shape {
            graphs: 512,
            passes: 1,
        }
    } else {
        Shape {
            graphs: 2048,
            passes: 5,
        }
    }
}

/// The Type II population: structured graphs with 50–500 non-zeros and
/// near-uniform degrees, sized like single molecules.
fn population(count: usize) -> Vec<CsrMatrix<f32>> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    (0..count)
        .map(|i| {
            let nnz = rng.gen_range(50usize..=500);
            let nodes = (nnz / 4).max(16);
            gcn_normalize(
                &DatasetSpec::custom("typeII-tiny", GraphClass::Structured, nodes, nnz, 8)
                    .synthesize(SEED ^ i as u64),
            )
        })
        .collect()
}

fn feature_for(a: &CsrMatrix<f32>, salt: u64) -> Arc<DenseMatrix<f32>> {
    let mut rng = SmallRng::seed_from_u64(SEED ^ salt.wrapping_mul(0x9E37_79B9));
    Arc::new(DenseMatrix::from_fn(a.cols(), IN_FEATURES, |_, _| {
        rng.gen_range(-1.0f32..1.0)
    }))
}

fn shared_model() -> Arc<GcnModel> {
    Arc::new(GcnModel::two_layer(IN_FEATURES, HIDDEN, CLASSES, SEED))
}

fn server(
    engine: &Arc<ExecEngine>,
    graphs: &[CsrMatrix<f32>],
    model: &Arc<GcnModel>,
    config: ServeConfig,
) -> Server {
    let srv = Server::start(Arc::clone(engine), Box::new(MergePathSpmm::new()), config);
    for (i, a) in graphs.iter().enumerate() {
        srv.registry()
            .register_shared(&format!("g{i}"), a.clone(), Some(Arc::clone(model)));
    }
    srv
}

struct RunResult {
    mode: &'static str,
    graphs_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    stats: ServeStats,
}

/// Median of an unsorted sample (mean of the middle two when even).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let mid = xs.len() / 2;
    if xs.len().is_multiple_of(2) {
        (xs[mid - 1] + xs[mid]) / 2.0
    } else {
        xs[mid]
    }
}

/// Batch-synchronous load: submit one `BURST`-wide burst of requests —
/// every one for a *different* graph, spread over `TENANTS` tenants —
/// wait for all replies, then the next burst, sweeping the population
/// once. Burst boundaries are aligned to the population, so the packed
/// server sees the same window composition every pass.
///
/// The two modes use their natural front doors: per-request serving
/// submits (and is answered) one request at a time — that is the
/// baseline being measured — while the mega-batch client ships each
/// burst through [`Server::submit_many`], the bulk-admission half of
/// the packed pipeline.
fn sweep(
    srv: &Server,
    packed: bool,
    graphs: &[CsrMatrix<f32>],
    features: &[Arc<DenseMatrix<f32>>],
    names: &[String],
    tenants: &[String],
) {
    let request = |g: usize| Request {
        graph: names[g].clone(),
        tenant: tenants[g % TENANTS].clone(),
        features: Arc::clone(&features[g]),
        workload: Workload::Gcn,
        deadline: None,
    };
    for burst in graphs
        .chunks(BURST)
        .enumerate()
        .map(|(b, c)| (b * BURST, c))
    {
        let (base, chunk) = burst;
        if packed {
            let reqs: Vec<Request> = (0..chunk.len()).map(|i| request(base + i)).collect();
            let (rejected, ticket) = srv.submit_many(reqs);
            assert!(
                rejected.iter().all(Option::is_none),
                "burst stays under the tenant bounds"
            );
            for (i, slot) in ticket.wait_all().into_iter().enumerate() {
                slot.expect("every admitted request replies")
                    .unwrap_or_else(|e| panic!("request g{} failed: {e}", base + i));
            }
        } else {
            let tickets: Vec<_> = (0..chunk.len())
                .map(|i| {
                    srv.submit(request(base + i))
                        .expect("burst stays under the tenant bounds")
                })
                .collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                ticket
                    .wait()
                    .unwrap_or_else(|e| panic!("request g{} failed: {e}", base + i));
            }
        }
    }
}

/// Runs both modes as a **paired, interleaved** measurement: both
/// servers stay up for the whole benchmark and each pass times one
/// per-request sweep immediately followed by one packed sweep over the
/// same population. The headline speedup is the **median over passes of
/// the per-pass goodput ratio**.
///
/// Two separate noise sources on a single shared core make the naive
/// sum-everything measurement unstable, and the pairing kills both:
///
/// * **millisecond preemption spikes** hit one pass of one mode — the
///   median discards them, symmetrically for both modes;
/// * **slow-minutes drift** (a sibling process, frequency change) spans
///   many seconds — it slows a base pass and the packed pass *next to
///   it* by the same factor, so their ratio barely moves, whereas two
///   back-to-back single-mode runs would let the drift land entirely on
///   one side of the division.
fn paired_run(
    engine: &Arc<ExecEngine>,
    graphs: &[CsrMatrix<f32>],
    features: &[Arc<DenseMatrix<f32>>],
    model: &Arc<GcnModel>,
    base_cfg: ServeConfig,
    packed_cfg: ServeConfig,
    shape: &Shape,
) -> (RunResult, RunResult, f64) {
    // Packed sweeps per timed pass. The packed side is ~6x faster, so a
    // single sweep of it spans a ~6x shorter wall-clock window than the
    // base sweep next to it — a scheduler-noise burst then eats a far
    // larger *fraction* of the packed sample than of the base sample,
    // biasing the per-pass ratio downward. Six packed sweeps per pass
    // give both modes comparable exposure windows (and average each
    // packed sample over 6x more windows).
    const PACKED_REPS: usize = 6;
    let base_srv = server(engine, graphs, model, base_cfg);
    let packed_srv = server(engine, graphs, model, packed_cfg);
    let tenants: Vec<String> = (0..TENANTS).map(|t| format!("tenant-{t}")).collect();
    let names: Vec<String> = (0..shape.graphs).map(|g| format!("g{g}")).collect();
    // One untimed warm pass per mode: page in the arenas and let each
    // server reach its steady state (the packed side's plan and pack
    // caches, the per-request side's thrashing plan cache — which the
    // warm pass cannot help, by construction of the workload). Timed
    // passes then measure steady serving, not first-touch costs.
    sweep(&base_srv, false, graphs, features, &names, &tenants);
    sweep(&packed_srv, true, graphs, features, &names, &tenants);
    let warmed_base = base_srv.stats().completed as usize;
    let warmed_packed = packed_srv.stats().completed as usize;
    let mut base_gps = Vec::with_capacity(shape.passes);
    let mut packed_gps = Vec::with_capacity(shape.passes);
    let mut ratios = Vec::with_capacity(shape.passes);
    for pass in 0..shape.passes {
        let t0 = Instant::now();
        sweep(&base_srv, false, graphs, features, &names, &tenants);
        let b = shape.graphs as f64 / t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for _rep in 0..PACKED_REPS {
            sweep(&packed_srv, true, graphs, features, &names, &tenants);
        }
        let p = (PACKED_REPS * shape.graphs) as f64 / t0.elapsed().as_secs_f64();
        println!(
            "pass {}: per-request {:>8.0} graphs/s, packed {:>8.0} graphs/s, ratio {:.2}x",
            pass + 1,
            b,
            p,
            p / b
        );
        base_gps.push(b);
        packed_gps.push(p);
        ratios.push(p / b);
    }
    let total = shape.graphs * shape.passes;
    let base_stats = base_srv.stats();
    let packed_stats = packed_srv.stats();
    assert_eq!(base_stats.completed as usize, warmed_base + total);
    assert_eq!(
        packed_stats.completed as usize,
        warmed_packed + total * PACKED_REPS
    );
    base_srv.shutdown();
    packed_srv.shutdown();
    let speedup = median(ratios);
    let base = RunResult {
        mode: "per-request",
        graphs_per_sec: median(base_gps),
        p50_us: base_stats.latency.p50_us,
        p95_us: base_stats.latency.p95_us,
        p99_us: base_stats.latency.p99_us,
        stats: base_stats,
    };
    let packed = RunResult {
        mode: "packed",
        graphs_per_sec: median(packed_gps),
        p50_us: packed_stats.latency.p50_us,
        p95_us: packed_stats.latency.p95_us,
        p99_us: packed_stats.latency.p99_us,
        stats: packed_stats,
    };
    (base, packed, speedup)
}

/// Bit-identity spot check, untimed: one packed window over a mixed
/// population slice must scatter back the exact bits of the sequential
/// per-graph oracle.
fn spot_check(
    engine: &Arc<ExecEngine>,
    graphs: &[CsrMatrix<f32>],
    features: &[Arc<DenseMatrix<f32>>],
    model: &Arc<GcnModel>,
) {
    let srv = server(
        engine,
        &graphs[..8],
        model,
        ServeConfig {
            pack_graphs: true,
            max_linger: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = (0..8)
        .map(|g| {
            srv.submit(Request {
                graph: format!("g{g}"),
                tenant: "oracle".into(),
                features: Arc::clone(&features[g]),
                workload: Workload::Gcn,
                deadline: None,
            })
            .expect("spot check admission")
        })
        .collect();
    // Per-graph reference: a 1-worker engine with an unsplit-row plan
    // replays the same flat per-row folds as the packed row bands.
    let ref_engine = ExecEngine::new(1);
    let ref_kernel = MergePathSpmm::with_threads(1);
    for (g, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().expect("spot check request");
        let want = model
            .forward_cached(&graphs[g], &features[g], &ref_kernel, &ref_engine, g as u64)
            .expect("oracle forward");
        assert_eq!(
            got.max_abs_diff(&want).expect("same shape"),
            0.0,
            "packed result for graph {g} deviated from the sequential oracle"
        );
    }
    let packed = srv.stats().packed_batches;
    assert!(packed >= 1, "spot check never exercised a packed window");
    srv.shutdown();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = shape(smoke);
    println!("==================================================================");
    println!(
        "BENCH batch: block-diagonal mega-batching vs per-request serving{}",
        if smoke { " (--smoke)" } else { "" }
    );
    println!(
        "inputs: {} Type II graphs (50-500 nnz, seed {SEED}), shared {}-{}-{} GCN, \
         {}-graph bursts over {} tenants x {} passes",
        shape.graphs, IN_FEATURES, HIDDEN, CLASSES, BURST, TENANTS, shape.passes
    );
    println!("==================================================================");

    let graphs = population(shape.graphs);
    let features: Vec<Arc<DenseMatrix<f32>>> = graphs
        .iter()
        .enumerate()
        .map(|(i, a)| feature_for(a, i as u64))
        .collect();
    let model = shared_model();
    let engine = Arc::new(ExecEngine::new(default_workers()));

    spot_check(&engine, &graphs, &features, &model);
    println!("bit-identity spot check: packed window == sequential oracle, exact");

    let per_request_cfg = ServeConfig {
        max_batch_cols: 1, // every request is its own engine run
        max_linger: Duration::ZERO,
        tenant_queue_limit: BURST,
        ..ServeConfig::default()
    };
    let packed_cfg = ServeConfig {
        pack_graphs: true,
        max_batch_graphs: BURST,
        // The window waits for the whole burst; it closes early the
        // moment the graph budget is reached.
        max_linger: Duration::from_millis(5),
        tenant_queue_limit: BURST,
        ..ServeConfig::default()
    };

    let (base, packed, speedup) = paired_run(
        &engine,
        &graphs,
        &features,
        &model,
        per_request_cfg,
        packed_cfg,
        &shape,
    );

    println!(
        "\n{:<12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "mode", "graphs/s", "p50 us", "p95 us", "p99 us", "graphs/batch", "pack eff"
    );
    for r in [&base, &packed] {
        println!(
            "{:<12} {:>12.0} {:>10.0} {:>10.0} {:>10.0} {:>12.2} {:>10.4}",
            r.mode,
            r.graphs_per_sec,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.stats.mean_graphs_per_batch,
            r.stats.pack_efficiency
        );
    }
    println!(
        "\nmega-batch speedup (median per-pass goodput ratio at fixed p95): {speedup:.2}x \
         ({} packed windows, p95 {:.0} us vs {:.0} us per-request)",
        packed.stats.packed_batches, packed.p95_us, base.p95_us
    );
    println!(
        "batch plan cache: {} hits, {} misses, {} rebuilds",
        packed.stats.engine.batch_plan_hits,
        packed.stats.engine.batch_plan_misses,
        packed.stats.engine.batch_plan_rebuilds
    );

    if !smoke {
        assert!(
            packed.stats.packed_batches > 0,
            "full run never packed a window"
        );
        assert!(
            packed.p95_us <= base.p95_us,
            "packed p95 {:.0} us exceeds per-request p95 {:.0} us — goodput was \
             bought with a worse tail",
            packed.p95_us,
            base.p95_us
        );
        assert!(
            speedup >= 5.0,
            "mega-batch goodput {speedup:.2}x is below the 5x floor"
        );
    }

    let mode_json = |r: &RunResult| {
        format!(
            "    {{\"mode\": \"{}\", \"graphs_per_sec\": {:.1}, \"p50_us\": {:.1}, \
             \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"mean_graphs_per_batch\": {:.2}, \
             \"packed_batches\": {}, \"pack_efficiency\": {:.6}}}",
            r.mode,
            r.graphs_per_sec,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.stats.mean_graphs_per_batch,
            r.stats.packed_batches,
            r.stats.pack_efficiency
        )
    };
    let json = format!(
        "{{\n  \"baseline\": \"per-request serving, same engine and graph population\",\n  \
         \"measurement\": \"median per-pass goodput ratio, modes interleaved pass-by-pass\",\n  \
         \"speedup\": {:.3},\n  \"smoke\": {},\n  \"graphs\": {},\n  \"passes\": {},\n  \
         \"in_features\": {},\n  \"burst\": {},\n  \"modes\": [\n{},\n{}\n  ]\n}}\n",
        speedup,
        smoke,
        shape.graphs,
        shape.passes,
        IN_FEATURES,
        BURST,
        mode_json(&base),
        mode_json(&packed)
    );
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("wrote BENCH_batch.json");
}
