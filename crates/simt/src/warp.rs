//! Warp-level work descriptors produced by kernel lowering.

use std::collections::HashMap;

/// The work one warp performs during the parallel phase.
///
/// Counts are in *lockstep steps*: when several logical threads are packed
/// into one warp (dimension < lanes), the warp advances at the pace of its
/// longest thread (SIMT divergence), so `steps` is the maximum — not the
/// sum — of the packed threads' non-zero counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpWork {
    /// Lockstep non-zero processing steps (one FMA + one `XW`-row fetch
    /// each).
    pub steps: u64,
    /// Scattered `XW`-row fetches issued (≈ sum of packed threads' nnz —
    /// every lane group issues its own loads even while divergent).
    pub mem_ops: u64,
    /// Regular (non-atomic) output-row flushes.
    pub regular_flushes: u64,
    /// Atomic output-row flushes, by target row.
    pub atomic_rows: Vec<usize>,
    /// Carry flushes deferred to the serial fix-up phase.
    pub carry_flushes: u64,
    /// Logical threads packed into this warp (≥ 1). Sub-warp divergence
    /// overhead grows with packing (§III-C3 / §V at dimension 2).
    pub packed: u32,
}

impl WarpWork {
    /// Whether this warp does any work at all.
    pub fn is_empty(&self) -> bool {
        self.steps == 0
            && self.regular_flushes == 0
            && self.atomic_rows.is_empty()
            && self.carry_flushes == 0
    }
}

/// A lowered kernel: the complete set of warps plus global contention
/// metadata, ready for the [`engine`](crate::engine) to time.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// Per-warp work, in launch order.
    pub warps: Vec<WarpWork>,
    /// Dense dimension of the SpMM.
    pub dim: usize,
    /// Distinct `XW` rows that may be touched (the matrix column count) —
    /// sizes the scattered-access working set for the cache model.
    pub xw_rows: usize,
    /// Output matrix rows (sizes the write-back traffic).
    pub out_rows: usize,
    /// Total carry flushes across all warps (length of the serial phase).
    pub total_carries: u64,
}

impl KernelRun {
    /// Number of non-empty warps.
    pub fn active_warps(&self) -> usize {
        self.warps.iter().filter(|w| !w.is_empty()).count()
    }

    /// Atomic-update counts per output row (contention profile).
    pub fn atomic_row_counts(&self) -> HashMap<usize, u64> {
        let mut counts = HashMap::new();
        for w in &self.warps {
            for &row in &w.atomic_rows {
                *counts.entry(row).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Total atomic flushes across all warps.
    pub fn total_atomics(&self) -> u64 {
        self.warps.iter().map(|w| w.atomic_rows.len() as u64).sum()
    }

    /// Total lockstep steps (a proxy for issue work).
    pub fn total_steps(&self) -> u64 {
        self.warps.iter().map(|w| w.steps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_warp_detection() {
        assert!(WarpWork::default().is_empty());
        let w = WarpWork {
            steps: 1,
            ..WarpWork::default()
        };
        assert!(!w.is_empty());
    }

    #[test]
    fn atomic_row_counts_aggregate() {
        let run = KernelRun {
            warps: vec![
                WarpWork {
                    steps: 2,
                    mem_ops: 2,
                    atomic_rows: vec![0, 3],
                    ..WarpWork::default()
                },
                WarpWork {
                    steps: 1,
                    mem_ops: 1,
                    atomic_rows: vec![0],
                    ..WarpWork::default()
                },
            ],
            dim: 16,
            xw_rows: 8,
            out_rows: 8,
            total_carries: 0,
        };
        let counts = run.atomic_row_counts();
        assert_eq!(counts[&0], 2);
        assert_eq!(counts[&3], 1);
        assert_eq!(run.total_atomics(), 3);
        assert_eq!(run.total_steps(), 3);
        assert_eq!(run.active_warps(), 2);
    }
}
