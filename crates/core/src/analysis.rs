//! Load-balance analysis of kernel plans.
//!
//! The merge path's defining property (§III-A) is a *tight bound* on
//! per-thread work: no thread owns more than `items_per_thread` merge
//! items, regardless of row-length skew — neither "arbitrarily-long rows"
//! nor "an arbitrarily-large number of zero-length rows" can overload a
//! thread. [`LoadBalance`] quantifies that for any [`KernelPlan`], making
//! the contrast with row-splitting measurable.

use crate::plan::KernelPlan;

/// Distribution statistics of per-logical-thread work in a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadBalance {
    /// Logical threads with at least one non-empty segment.
    pub active_threads: usize,
    /// Total non-zeros across the plan.
    pub total_nnz: usize,
    /// Largest per-thread non-zero count.
    pub max_nnz: usize,
    /// Mean per-thread non-zero count (over active threads).
    pub mean_nnz: f64,
    /// Imbalance factor `max / mean` (1.0 = perfectly balanced); the
    /// quantity that determines parallel completion time under a
    /// work-conserving scheduler.
    pub imbalance: f64,
    /// Coefficient of variation of per-thread non-zeros.
    pub cv: f64,
}

impl LoadBalance {
    /// Computes the distribution for a plan.
    pub fn of(plan: &KernelPlan) -> Self {
        let loads: Vec<usize> = plan
            .threads
            .iter()
            .map(|t| t.nnz())
            .filter(|&n| n > 0)
            .collect();
        let active_threads = loads.len();
        let total_nnz: usize = loads.iter().sum();
        let max_nnz = loads.iter().copied().max().unwrap_or(0);
        let mean = if active_threads == 0 {
            0.0
        } else {
            total_nnz as f64 / active_threads as f64
        };
        let var = if active_threads == 0 {
            0.0
        } else {
            loads
                .iter()
                .map(|&l| {
                    let d = l as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / active_threads as f64
        };
        Self {
            active_threads,
            total_nnz,
            max_nnz,
            mean_nnz: mean,
            imbalance: if mean > 0.0 {
                max_nnz as f64 / mean
            } else {
                1.0
            },
            cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        }
    }

    /// Parallel speedup upper bound implied by the imbalance alone
    /// (`threads / imbalance`): the best any scheduler can do when the
    /// largest thread is on the critical path.
    pub fn speedup_bound(&self) -> f64 {
        if self.max_nnz == 0 {
            0.0
        } else {
            self.total_nnz as f64 / self.max_nnz as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::test_support::random_matrix;
    use crate::{MergePathSpmm, RowSplitSpmm, SpmmKernel};
    use mpspmm_sparse::CsrMatrix;

    #[test]
    fn balanced_plan_has_unit_imbalance() {
        let triplets: Vec<(usize, usize, f32)> = (0..32).map(|i| (i / 4, i % 4, 1.0)).collect();
        let a = CsrMatrix::from_triplets(8, 4, &triplets).unwrap();
        // 8 rows of 4 nnz, 8 row-split threads → perfectly balanced.
        let plan = RowSplitSpmm::with_threads(8).plan(&a, 16);
        let lb = LoadBalance::of(&plan);
        assert_eq!(lb.active_threads, 8);
        assert_eq!(lb.max_nnz, 4);
        assert!((lb.imbalance - 1.0).abs() < 1e-12);
        assert!(lb.cv < 1e-12);
        assert!((lb.speedup_bound() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn merge_path_bounds_imbalance_on_evil_rows() {
        // One row holds a third of the non-zeros: row-splitting is badly
        // imbalanced, merge-path stays within its item budget.
        let a = random_matrix(100, 100, 900, 3);
        let rs = LoadBalance::of(&RowSplitSpmm::with_threads(20).plan(&a, 16));
        let mp = LoadBalance::of(&MergePathSpmm::with_threads(20).plan(&a, 16));
        assert!(
            mp.imbalance < rs.imbalance / 2.0,
            "merge-path {:.2} must be far below row-split {:.2}",
            mp.imbalance,
            rs.imbalance
        );
        assert!(
            mp.imbalance < 1.5,
            "merge-path imbalance {:.2}",
            mp.imbalance
        );
        assert_eq!(mp.total_nnz, a.nnz());
        assert_eq!(rs.total_nnz, a.nnz());
    }

    #[test]
    fn merge_path_per_thread_nnz_never_exceeds_budget() {
        let a = random_matrix(200, 200, 2_000, 5);
        for threads in [4usize, 16, 64] {
            let kernel = MergePathSpmm::with_threads(threads);
            let schedule = kernel.schedule(&a, 16);
            let lb = LoadBalance::of(&kernel.plan(&a, 16));
            assert!(
                lb.max_nnz <= schedule.items_per_thread(),
                "{threads} threads: max nnz {} > budget {}",
                lb.max_nnz,
                schedule.items_per_thread()
            );
        }
    }

    #[test]
    fn empty_plan_is_degenerate() {
        let a = CsrMatrix::<f32>::zeros(5, 5);
        let lb = LoadBalance::of(&MergePathSpmm::with_threads(4).plan(&a, 16));
        assert_eq!(lb.active_threads, 0);
        assert_eq!(lb.speedup_bound(), 0.0);
    }
}
