//! Integration tests for the offline/online scheduling modes (§III-D)
//! and schedule serialization.

use merge_path_spmm::core::executor::{execute_parallel, execute_sequential};
use merge_path_spmm::core::{plan_from_schedule, MergePathSpmm, Schedule, SpmmKernel};
use merge_path_spmm::gcn::ops::random_features;
use merge_path_spmm::graphs::{DatasetSpec, GraphClass};

fn graph() -> merge_path_spmm::sparse::CsrMatrix<f32> {
    DatasetSpec::custom("oo", GraphClass::PowerLaw, 700, 3_000, 150).synthesize(3)
}

#[test]
fn offline_schedule_reuse_is_bit_identical() {
    let a = graph();
    let b = random_features(a.cols(), 16, 1.0, 2);
    let kernel = MergePathSpmm::with_threads(37);
    let (online, _) = kernel.spmm_sequential(&a, &b).expect("online run");
    let schedule = kernel.schedule(&a, 16);
    for _ in 0..3 {
        let plan = plan_from_schedule(&schedule, &a);
        let (offline, _) = execute_sequential(&plan, &a, &b).expect("offline run");
        assert_eq!(online, offline, "offline reuse must be bit-identical");
    }
}

#[test]
fn parallel_execution_stays_within_tolerance_of_sequential() {
    let a = graph();
    let b = random_features(a.cols(), 8, 1.0, 9);
    let kernel = MergePathSpmm::with_threads(64);
    let plan = kernel.plan(&a, 8);
    let (seq, seq_stats) = execute_sequential(&plan, &a, &b).expect("sequential");
    for workers in [1usize, 2, 4, 8] {
        let (par, par_stats) = execute_parallel(&plan, &a, &b, workers).expect("parallel");
        assert!(par.approx_eq(&seq, 1e-3).expect("same shape"));
        assert_eq!(
            par_stats, seq_stats,
            "stats are execution-order independent"
        );
    }
}

#[test]
fn schedule_text_round_trip_preserves_plans() {
    let a = graph();
    let schedule = Schedule::build(&a, 53);
    let encoded = codec::encode(&schedule);
    let decoded = codec::decode(&encoded);
    assert_eq!(schedule, decoded);
    assert_eq!(
        plan_from_schedule(&schedule, &a),
        plan_from_schedule(&decoded, &a)
    );
}

#[test]
fn stale_schedule_is_rejected() {
    let a = graph();
    let other = DatasetSpec::custom("oo2", GraphClass::PowerLaw, 700, 3_100, 150).synthesize(4);
    let schedule = Schedule::build(&a, 16);
    assert!(schedule.matches(&a));
    assert!(!schedule.matches(&other), "nnz changed: schedule is stale");
}

mod codec {
    //! Minimal text codec for [`Schedule`] — the offline setting (§III-D)
    //! persists a schedule between runs, so the round trip must preserve
    //! every plan-relevant field. The format is a flat line of
    //! whitespace-separated unsigned integers:
    //! `rows nnz items_per_thread num_threads (start.row start.nnz end.row end.nnz)*`.

    use merge_path_spmm::core::{MergeCoord, Schedule, ThreadAssignment};

    pub fn encode(s: &Schedule) -> String {
        let mut out = format!(
            "{} {} {} {}",
            s.rows(),
            s.nnz(),
            s.items_per_thread(),
            s.num_threads()
        );
        for a in s.assignments() {
            out.push_str(&format!(
                " {} {} {} {}",
                a.start.row, a.start.nnz, a.end.row, a.end.nnz
            ));
        }
        out
    }

    pub fn decode(text: &str) -> Schedule {
        let mut it = text
            .split_ascii_whitespace()
            .map(|t| t.parse::<usize>().expect("integer field"));
        let mut next = || it.next().expect("truncated schedule encoding");
        let (rows, nnz, items_per_thread, threads) = (next(), next(), next(), next());
        let assignments: Vec<ThreadAssignment> = (0..threads)
            .map(|_| ThreadAssignment {
                start: MergeCoord {
                    row: next(),
                    nnz: next(),
                },
                end: MergeCoord {
                    row: next(),
                    nnz: next(),
                },
            })
            .collect();
        assert!(it.next().is_none(), "trailing fields in schedule encoding");
        Schedule::from_parts(rows, nnz, items_per_thread, assignments)
    }
}
