//! The merge-path decomposition (Algorithm 1 of the paper).
//!
//! Merge-path [Merrill & Garland, PPoPP'16] views the CSR traversal of a
//! sparse matrix as merging two sorted lists:
//!
//! * list **A** — the row *end* offsets `RP[1..=n]` (consuming an element
//!   means "finish a row"), and
//! * list **B** — the natural numbers `0..nnz` (consuming an element means
//!   "process one non-zero").
//!
//! The merged sequence has `rows + nnz` items (the *merge items* of
//! Algorithm 1), and splitting it into equal consecutive chunks bounds the
//! work — rows scanned **plus** non-zeros multiplied — assigned to each
//! thread, regardless of how skewed the row lengths are. The chunk
//! boundaries are found independently per thread with a two-dimensional
//! binary search along a diagonal of the logical merge grid
//! ([`merge_path_search`]).
//!
//! [`Schedule`] packages the per-thread boundaries plus the
//! partial/complete-row markers (`start_nz` / `end_nz` in §III-B of the
//! paper) that MergePath-SpMM uses to decide which output updates need
//! atomic operations.

use mpspmm_sparse::CsrMatrix;

/// A coordinate in the logical 2-D merge grid.
///
/// `row` indexes list A (row end offsets), `nnz` indexes list B (non-zero
/// indices); the coordinate lies on diagonal `row + nnz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MergeCoord {
    /// Row index (0-based).
    pub row: usize,
    /// Global non-zero index (0-based position in the CSR value array).
    pub nnz: usize,
}

impl MergeCoord {
    /// The diagonal this coordinate lies on (`cost` in Algorithm 1).
    pub fn diagonal(&self) -> usize {
        self.row + self.nnz
    }
}

/// Finds the merge-path coordinate where `diagonal` crosses the path.
///
/// Returns the unique `(row, nnz)` with `row + nnz == diagonal` such that
/// all non-zeros before `nnz` belong to rows before or at `row`, i.e. the
/// point reached after consuming exactly `diagonal` merge items. This is
/// the constrained binary search of Algorithm 1 (lines 6–7).
///
/// `row_end_offsets` must be `RP[1..=n]` (the row pointer array without its
/// leading zero) and `nnz` the total non-zero count.
///
/// # Panics
///
/// Panics if `diagonal > row_end_offsets.len() + nnz`.
pub fn merge_path_search(diagonal: usize, row_end_offsets: &[usize], nnz: usize) -> MergeCoord {
    let rows = row_end_offsets.len();
    assert!(
        diagonal <= rows + nnz,
        "diagonal {diagonal} beyond merge path of length {}",
        rows + nnz
    );
    // Search the smallest row index x in [lo, hi] such that the merge path
    // has NOT yet consumed row-end x when diagonal - x non-zeros are done:
    // consume row-end x only once RP[x + 1] <= (non-zeros consumed).
    let mut lo = diagonal.saturating_sub(nnz);
    let mut hi = diagonal.min(rows);
    while lo < hi {
        let mid = (lo + hi) / 2;
        // Row-end `mid` is consumed before non-zero `diagonal - mid - 1`
        // iff RP[mid + 1] <= diagonal - mid - 1, i.e. RP[mid + 1] < diagonal - mid.
        if row_end_offsets[mid] < diagonal - mid {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    MergeCoord {
        row: lo,
        nnz: diagonal - lo,
    }
}

/// The work assignment of one logical thread, as produced by the
/// merge-path decomposition.
///
/// The thread processes merge items from `start` (inclusive) to `end`
/// (exclusive): non-zeros `start.nnz..end.nnz` spread over rows
/// `start.row..=end.row`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadAssignment {
    /// First merge coordinate owned by this thread.
    pub start: MergeCoord,
    /// One-past-last merge coordinate owned by this thread.
    pub end: MergeCoord,
}

impl ThreadAssignment {
    /// Whether the thread's first row is a *partial* row: some of its
    /// non-zeros were assigned to a preceding thread, so output updates for
    /// it must be atomic. (`start_nz ≠ 0` in the paper's encoding.)
    pub fn start_is_partial(&self, row_ptr: &[usize]) -> bool {
        self.start.nnz > row_ptr[self.start.row]
    }

    /// Whether the thread's last row is a *partial* row: the thread
    /// consumes some of its non-zeros without consuming the row terminator,
    /// so output updates for it must be atomic. (`end_nz ≠ 0` in the
    /// paper's encoding.)
    ///
    /// Note the paper's test is conservative: a thread whose boundary lands
    /// exactly after the last non-zero of `end.row` but before the row
    /// terminator still marks the row partial even though the following
    /// thread will contribute nothing to it.
    pub fn end_is_partial(&self, row_ptr: &[usize]) -> bool {
        self.end.row < row_ptr.len() - 1 && self.end.nnz > row_ptr[self.end.row]
    }

    /// Number of merge items (rows + non-zeros) owned by this thread.
    pub fn merge_items(&self) -> usize {
        self.end.diagonal() - self.start.diagonal()
    }

    /// Number of non-zeros owned by this thread.
    pub fn nnz(&self) -> usize {
        self.end.nnz - self.start.nnz
    }

    /// Whether this thread owns no work at all.
    pub fn is_empty(&self) -> bool {
        self.merge_items() == 0
    }

    /// Number of rows this thread actually gathers non-zeros from (partial
    /// boundary rows included, rows it only consumes the terminator of
    /// excluded). Exact, not the `end.row - start.row + 1` span estimate:
    /// a boundary landing on a row head contributes nothing to that row.
    pub fn rows_touched(&self, row_ptr: &[usize]) -> usize {
        let lo = self.start.nnz;
        let hi = self.end.nnz;
        if lo == hi {
            return 0;
        }
        let last_row = self.end.row.min(row_ptr.len().saturating_sub(2));
        (self.start.row..=last_row)
            .filter(|&r| row_ptr[r].max(lo) < row_ptr[r + 1].min(hi))
            .count()
    }
}

/// A complete merge-path schedule: the per-thread partition of a matrix.
///
/// Building a schedule is the (cheap, parallelizable) preprocessing the
/// paper calls *scheduling*; §III-D distinguishes the **offline** setting —
/// build once, reuse across inferences — from the **online** setting —
/// rebuild per inference (overhead quantified in Figure 8).
///
/// # Example
///
/// ```
/// use mpspmm_core::Schedule;
/// use mpspmm_sparse::CsrMatrix;
///
/// let a = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0f32), (3, 2, 1.0)])?;
/// let schedule = Schedule::build(&a, 2);
/// assert_eq!(schedule.num_threads(), 2);
/// assert_eq!(schedule.total_merge_items(), 6); // 4 rows + 2 nnz
/// # Ok::<(), mpspmm_sparse::SparseFormatError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    rows: usize,
    nnz: usize,
    items_per_thread: usize,
    assignments: Vec<ThreadAssignment>,
}

impl Schedule {
    /// Builds a schedule distributing the matrix over `num_threads` logical
    /// threads (Algorithm 1: `items_per_thrd = ceil(merge_items / threads)`).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn build<T>(matrix: &CsrMatrix<T>, num_threads: usize) -> Self {
        assert!(num_threads > 0, "need at least one thread");
        let rows = matrix.rows();
        let nnz = matrix.nnz();
        let merge_items = rows + nnz;
        let items_per_thread = merge_items.div_ceil(num_threads).max(1);
        Self::from_cost_and_threads(matrix, items_per_thread, num_threads)
    }

    /// Builds a schedule targeting `cost` merge items per thread (the
    /// tunable *merge-path cost* parameter of §III-C), spawning
    /// `ceil(merge_items / cost)` threads but at least `min_threads`
    /// (clamped to one item per thread).
    pub fn with_cost<T>(matrix: &CsrMatrix<T>, cost: usize, min_threads: usize) -> Self {
        assert!(cost > 0, "merge-path cost must be positive");
        let merge_items = matrix.merge_items();
        let mut threads = merge_items.div_ceil(cost).max(1);
        if threads < min_threads {
            // §III-C: when the computed threads are below the threshold,
            // decrease the cost so a minimum number of threads is spawned.
            threads = min_threads.min(merge_items).max(1);
        }
        Self::build(matrix, threads)
    }

    /// Builds the same schedule as [`build`](Self::build), computing the
    /// per-thread boundary searches on `workers` OS threads.
    ///
    /// Every boundary is an independent 2-D binary search, so the paper
    /// computes the schedule *on the GPU itself* before the kernel
    /// launches (§V-C); this is the CPU analogue. The result is
    /// bit-identical to the sequential build.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0` or `workers == 0`.
    pub fn build_parallel<T: Sync>(
        matrix: &CsrMatrix<T>,
        num_threads: usize,
        workers: usize,
    ) -> Self {
        assert!(num_threads > 0, "need at least one thread");
        assert!(workers > 0, "need at least one worker");
        let rows = matrix.rows();
        let nnz = matrix.nnz();
        let merge_items = rows + nnz;
        let items_per_thread = merge_items.div_ceil(num_threads).max(1);
        let row_end_offsets = &matrix.row_ptr()[1..];
        // Boundary b sits at diagonal min(b * items_per_thread, total):
        // there are num_threads + 1 of them, computed independently.
        let mut boundaries = vec![MergeCoord { row: 0, nnz: 0 }; num_threads + 1];
        let chunk = (num_threads + 1).div_ceil(workers);
        std::thread::scope(|scope| {
            for (w, slot) in boundaries.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (i, out) in slot.iter_mut().enumerate() {
                        let b = w * chunk + i;
                        let diag = (b * items_per_thread).min(merge_items);
                        *out = merge_path_search(diag, row_end_offsets, nnz);
                    }
                });
            }
        });
        let assignments = boundaries
            .windows(2)
            .map(|w| ThreadAssignment {
                start: w[0],
                end: w[1],
            })
            .collect();
        Self {
            rows,
            nnz,
            items_per_thread,
            assignments,
        }
    }

    fn from_cost_and_threads<T>(
        matrix: &CsrMatrix<T>,
        items_per_thread: usize,
        num_threads: usize,
    ) -> Self {
        let rows = matrix.rows();
        let nnz = matrix.nnz();
        let merge_items = rows + nnz;
        let row_end_offsets = &matrix.row_ptr()[1..];
        let mut assignments = Vec::with_capacity(num_threads);
        let mut start = merge_path_search(0, row_end_offsets, nnz);
        for t in 0..num_threads {
            let end_diag = ((t + 1) * items_per_thread).min(merge_items);
            let end = merge_path_search(end_diag, row_end_offsets, nnz);
            assignments.push(ThreadAssignment { start, end });
            start = end;
        }
        Self {
            rows,
            nnz,
            items_per_thread,
            assignments,
        }
    }

    /// Number of logical threads in the schedule.
    pub fn num_threads(&self) -> usize {
        self.assignments.len()
    }

    /// The per-thread merge-item budget (`items_per_thrd` in Algorithm 1).
    pub fn items_per_thread(&self) -> usize {
        self.items_per_thread
    }

    /// Total merge-path length (`rows + nnz`).
    pub fn total_merge_items(&self) -> usize {
        self.rows + self.nnz
    }

    /// Number of matrix rows this schedule was built for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of matrix non-zeros this schedule was built for.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Per-thread assignments in thread order.
    pub fn assignments(&self) -> &[ThreadAssignment] {
        &self.assignments
    }

    /// Fraction of work-carrying threads whose average segment length
    /// (non-zeros per touched row) is at or below `gather_max` — i.e. the
    /// share of logical threads the engine's degree-adaptive dispatcher
    /// will route to the gather microkernel rather than the streaming
    /// panel kernel. On the paper's power-law graphs this is high even
    /// though most *non-zeros* sit in the few evil rows — the asymmetry
    /// that motivates dispatching per segment instead of per plan.
    pub fn gather_bound_fraction(&self, row_ptr: &[usize], gather_max: usize) -> f64 {
        let mut bound = 0usize;
        let mut active = 0usize;
        for a in &self.assignments {
            let nnz = a.nnz();
            if nnz == 0 {
                continue;
            }
            active += 1;
            let rows = a.rows_touched(row_ptr).max(1);
            if nnz.div_ceil(rows) <= gather_max {
                bound += 1;
            }
        }
        if active == 0 {
            0.0
        } else {
            bound as f64 / active as f64
        }
    }

    /// Whether this schedule matches the shape of `matrix` (same row and
    /// non-zero counts). A schedule may only be reused (offline setting)
    /// while the adjacency matrix is stationary.
    pub fn matches<T>(&self, matrix: &CsrMatrix<T>) -> bool {
        self.rows == matrix.rows() && self.nnz == matrix.nnz()
    }

    /// Reassembles a schedule from externally stored parts (the offline
    /// setting persists schedules between runs; this is the decode side).
    ///
    /// The parts must describe a schedule previously taken apart via the
    /// accessors ([`rows`](Self::rows), [`nnz`](Self::nnz),
    /// [`items_per_thread`](Self::items_per_thread),
    /// [`assignments`](Self::assignments)); basic shape invariants are
    /// checked here, full validity is re-checked when the schedule is
    /// lowered against a concrete matrix.
    ///
    /// # Panics
    ///
    /// Panics if `assignments` is empty, does not start at diagonal 0, is
    /// not contiguous, or does not end at `rows + nnz`.
    pub fn from_parts(
        rows: usize,
        nnz: usize,
        items_per_thread: usize,
        assignments: Vec<ThreadAssignment>,
    ) -> Self {
        assert!(
            !assignments.is_empty(),
            "schedule needs at least one thread"
        );
        assert_eq!(
            assignments[0].start.diagonal(),
            0,
            "first thread must start at diagonal 0"
        );
        for w in assignments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "assignments must be contiguous");
        }
        assert_eq!(
            assignments.last().unwrap().end.diagonal(),
            rows + nnz,
            "last thread must end at the final merge item"
        );
        Self {
            rows,
            nnz,
            items_per_thread,
            assignments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_sparse::CsrMatrix;

    /// The representative example of Figure 3: 10 rows, 16 non-zeros,
    /// one long first row of 8 non-zeros.
    pub(crate) fn figure3_matrix() -> CsrMatrix<f32> {
        // Row lengths chosen to match the figure's narrative: row 0 has 8
        // non-zeros (RP[1] = 8), and the remaining 8 non-zeros spread over
        // rows 1..10.
        let lengths = [8usize, 1, 2, 1, 0, 1, 0, 0, 1, 2];
        let mut triplets = Vec::new();
        for (r, &len) in lengths.iter().enumerate() {
            for c in 0..len {
                triplets.push((r, c, 1.0f32));
            }
        }
        CsrMatrix::from_triplets(10, 10, &triplets).unwrap()
    }

    /// Reference implementation: consume `d` merge items one at a time.
    fn oracle(d: usize, row_ptr: &[usize], nnz: usize) -> MergeCoord {
        let rows = row_ptr.len() - 1;
        let (mut i, mut j) = (0usize, 0usize);
        for _ in 0..d {
            if i < rows && (j >= nnz || row_ptr[i + 1] <= j) {
                i += 1; // consume row terminator
            } else {
                j += 1; // consume a non-zero
            }
        }
        MergeCoord { row: i, nnz: j }
    }

    #[test]
    fn search_matches_oracle_on_figure3() {
        let m = figure3_matrix();
        let nnz = m.nnz();
        for d in 0..=m.merge_items() {
            let got = merge_path_search(d, &m.row_ptr()[1..], nnz);
            let want = oracle(d, m.row_ptr(), nnz);
            assert_eq!(got, want, "diagonal {d}");
        }
    }

    #[test]
    fn figure3_thread2_assignment() {
        // Four threads over 26 merge items → 7 items per thread, matching
        // the paper's walkthrough of Figure 3 (start costs 0/7/14/21).
        //
        // Note: the paper's prose quotes thread 2's start coordinate as
        // (1, 6) and its end as (3, 11), yet assigns it "non-zero indices 7
        // to 11" — coordinates and non-zero ranges there are off by one
        // with respect to each other. We follow the self-consistent
        // Merrill–Garland convention (verified against the item-by-item
        // oracle): after 7 consumed merge items the path sits at (0, 7) —
        // row 0 holds 8 non-zeros, so thread 2 starts inside it (a partial
        // start row), exactly the situation §III-B describes.
        let m = figure3_matrix();
        let schedule = Schedule::build(&m, 4);
        assert_eq!(schedule.items_per_thread(), 7);
        let t2 = schedule.assignments()[1];
        assert_eq!(t2.start, MergeCoord { row: 0, nnz: 7 });
        // End cost 14 lands at (3, 11), as in the paper.
        assert_eq!(t2.end, MergeCoord { row: 3, nnz: 11 });
        assert_eq!(t2.merge_items(), 7);
        assert_eq!(t2.nnz(), 4);
        assert!(t2.start_is_partial(m.row_ptr()));
        // End row 3's boundary lands exactly at its head (nnz 11 = RP[3]),
        // so the end row is complete for this thread.
        assert!(!t2.end_is_partial(m.row_ptr()));
    }

    #[test]
    fn schedule_tiles_the_merge_path() {
        let m = figure3_matrix();
        for threads in 1..=12 {
            let s = Schedule::build(&m, threads);
            assert_eq!(s.num_threads(), threads);
            assert_eq!(s.assignments()[0].start, MergeCoord { row: 0, nnz: 0 });
            let last = s.assignments().last().unwrap();
            assert_eq!(last.end.diagonal(), m.merge_items());
            for w in s.assignments().windows(2) {
                assert_eq!(w[0].end, w[1].start, "threads must tile contiguously");
            }
        }
    }

    #[test]
    fn per_thread_items_are_bounded() {
        let m = figure3_matrix();
        for threads in 1..=12 {
            let s = Schedule::build(&m, threads);
            for a in s.assignments() {
                assert!(
                    a.merge_items() <= s.items_per_thread(),
                    "{threads} threads: {a:?} exceeds budget {}",
                    s.items_per_thread()
                );
            }
        }
    }

    #[test]
    fn with_cost_controls_thread_count() {
        let m = figure3_matrix(); // 26 merge items
        let s = Schedule::with_cost(&m, 7, 1);
        assert_eq!(s.num_threads(), 4);
        // Minimum-thread floor kicks in for small graphs (§III-C):
        let s = Schedule::with_cost(&m, 20, 8);
        assert_eq!(s.num_threads(), 8);
        // but never exceeds one item per thread.
        let s = Schedule::with_cost(&m, 20, 1000);
        assert_eq!(s.num_threads(), 26);
    }

    #[test]
    fn empty_rows_do_not_break_partition() {
        let m = CsrMatrix::<f32>::zeros(7, 7);
        let s = Schedule::build(&m, 3);
        let total: usize = s.assignments().iter().map(|a| a.merge_items()).sum();
        assert_eq!(total, 7);
        for a in s.assignments() {
            assert_eq!(a.nnz(), 0);
        }
    }

    #[test]
    fn partial_markers_on_single_long_row() {
        // One row with 12 non-zeros split over 4 threads: every interior
        // thread sees a partial single row.
        let triplets: Vec<(usize, usize, f32)> = (0..12).map(|c| (0, c, 1.0)).collect();
        let m = CsrMatrix::from_triplets(1, 12, &triplets).unwrap();
        let s = Schedule::build(&m, 4);
        let rp = m.row_ptr();
        let a1 = s.assignments()[1];
        assert!(a1.start_is_partial(rp));
        assert!(a1.end_is_partial(rp));
        let a0 = s.assignments()[0];
        assert!(!a0.start_is_partial(rp), "thread 0 starts at the row head");
        assert!(a0.end_is_partial(rp));
    }

    #[test]
    fn rows_touched_is_exact_at_boundaries() {
        let m = figure3_matrix();
        let rp = m.row_ptr();
        let s = Schedule::build(&m, 4);
        // Thread 2 ends exactly on row 3's head (nnz 11 = RP[3]): it
        // gathers from rows 0, 1, 2 only, even though end.row is 3.
        let t2 = s.assignments()[1];
        assert_eq!(t2.end, MergeCoord { row: 3, nnz: 11 });
        assert_eq!(t2.rows_touched(rp), 3);
        // Across any schedule, per-thread touched rows sum to at least the
        // number of non-empty rows (partial rows are counted per thread).
        let nonempty = rp.windows(2).filter(|w| w[1] > w[0]).count();
        for threads in 1..=8 {
            let s = Schedule::build(&m, threads);
            let total: usize = s.assignments().iter().map(|a| a.rows_touched(rp)).sum();
            assert!(total >= nonempty, "{threads} threads: {total} < {nonempty}");
            for a in s.assignments() {
                if a.nnz() == 0 {
                    assert_eq!(a.rows_touched(rp), 0);
                }
            }
        }
    }

    #[test]
    fn gather_bound_fraction_tracks_degree_regime() {
        // All-short rows: every thread is gather-bound at threshold 4.
        let short =
            CsrMatrix::from_triplets(8, 8, &(0..8).map(|r| (r, r, 1.0f32)).collect::<Vec<_>>())
                .unwrap();
        let s = Schedule::build(&short, 4);
        assert_eq!(s.gather_bound_fraction(short.row_ptr(), 4), 1.0);
        // One dense evil row split across threads: nobody is gather-bound.
        let triplets: Vec<(usize, usize, f32)> = (0..32).map(|c| (0, c, 1.0)).collect();
        let evil = CsrMatrix::from_triplets(1, 32, &triplets).unwrap();
        let s = Schedule::build(&evil, 4);
        assert_eq!(s.gather_bound_fraction(evil.row_ptr(), 4), 0.0);
        // Empty matrix: no active threads, fraction is defined as 0.
        let empty = CsrMatrix::<f32>::zeros(4, 4);
        let s = Schedule::build(&empty, 2);
        assert_eq!(s.gather_bound_fraction(empty.row_ptr(), 4), 0.0);
    }

    #[test]
    fn schedule_matches_checks_shape() {
        let m = figure3_matrix();
        let s = Schedule::build(&m, 4);
        assert!(s.matches(&m));
        let other = CsrMatrix::<f32>::zeros(10, 10);
        assert!(!s.matches(&other));
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let m = figure3_matrix();
        for threads in [1usize, 3, 4, 7, 26] {
            let seq = Schedule::build(&m, threads);
            for workers in [1usize, 2, 5] {
                let par = Schedule::build_parallel(&m, threads, workers);
                assert_eq!(seq, par, "{threads} threads / {workers} workers");
            }
        }
    }

    #[test]
    #[should_panic(expected = "beyond merge path")]
    fn search_rejects_out_of_range_diagonal() {
        let m = figure3_matrix();
        merge_path_search(m.merge_items() + 1, &m.row_ptr()[1..], m.nnz());
    }
}
