//! Trace-driven multicore simulation of SpMM kernel plans.
//!
//! Each logical thread of a [`KernelPlan`] is pinned to a core (threads
//! are dealt round-robin when the plan has more threads than cores — the
//! evaluation uses one thread per core). Cores are advanced with a
//! conservative discrete-event loop at *segment* granularity: the core
//! with the earliest clock executes its next segment, issuing its memory
//! accesses through a private L1, the shared distributed L2 with a
//! limited-4 MESI directory, the 2-D mesh (X-Y routing, link contention
//! only), and the memory controllers.
//!
//! The model captures the §V-D mechanisms:
//!
//! * **atomic ping-pong** — an atomic update needs the line in M state,
//!   invalidating all sharers; conflicting atomics to the same output row
//!   serialize on the line's release time (GNNAdvisor's evil-row
//!   scaling collapse);
//! * **limited-4 directory** — popular `XW` rows read by more than four
//!   cores evict earlier sharers, re-exposing misses;
//! * **mesh growth** — network round trips lengthen as the core count
//!   (mesh side) grows, which is why memory stalls scale worse than
//!   compute (Figure 9's breakdown).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use mpspmm_core::{Flush, KernelPlan, Segment};
use mpspmm_sparse::CsrMatrix;

use crate::cache::SetAssocCache;
use crate::config::{McConfig, LINE_BYTES};

/// Simulation result for one kernel on one machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct McReport {
    /// Parallel completion time in cycles (the slowest core's clock, plus
    /// any serial carry phase).
    pub cycles: u64,
    /// Compute cycles of the critical (slowest) core.
    pub critical_compute: u64,
    /// Memory-stall cycles of the critical core.
    pub critical_memory: u64,
    /// Mean per-core compute cycles.
    pub avg_compute: f64,
    /// Mean per-core memory-stall cycles.
    pub avg_memory: f64,
    /// L1 data hit rate across all cores.
    pub l1_hit_rate: f64,
    /// Total sharer evictions forced by the limited-4 directory.
    pub directory_evictions: u64,
    /// Total cycles cores spent waiting on contended atomic lines.
    pub atomic_wait_cycles: u64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Aggregate network round-trip cycles across all cores.
    pub net_cycles: u64,
    /// Aggregate DRAM-latency cycles across all cores.
    pub dram_cycles: u64,
    /// Aggregate memory-controller queueing cycles across all cores.
    pub queue_cycles: u64,
    /// Number of cores that executed work.
    pub active_cores: usize,
}

impl McReport {
    /// Fraction of the critical core's time spent in memory stalls.
    pub fn memory_fraction(&self) -> f64 {
        let total = self.critical_compute + self.critical_memory;
        if total == 0 {
            0.0
        } else {
            self.critical_memory as f64 / total as f64
        }
    }
}

/// Directory entry for one cache line.
#[derive(Debug, Default)]
struct DirEntry {
    /// Cores holding the line in shared state (bounded by the directory
    /// limit).
    sharers: Vec<u16>,
    /// Core holding the line in modified state, if any.
    owner: Option<u16>,
    /// Cycle at which the last exclusive (atomic) holder releases the
    /// line; later atomics to the same line queue behind it.
    release: u64,
}

/// Logical address spaces, separated so the line numbers never collide.
#[derive(Clone, Copy)]
struct AddressMap {
    a_base: u64,
    xw_base: u64,
    out_base: u64,
    xw_row_bytes: u64,
}

impl AddressMap {
    fn new(a: &CsrMatrix<f32>, dim: usize) -> Self {
        let a_bytes = (a.nnz() * 8 + (a.rows() + 1) * 8) as u64;
        let xw_row_bytes = (dim * 4) as u64;
        let xw_bytes = a.cols() as u64 * xw_row_bytes;
        Self {
            a_base: 0,
            xw_base: a_bytes.next_multiple_of(LINE_BYTES as u64),
            out_base: (a_bytes + xw_bytes).next_multiple_of(LINE_BYTES as u64) * 2,
            xw_row_bytes,
        }
    }

    fn a_line(&self, nz: usize) -> u64 {
        (self.a_base + nz as u64 * 8) / LINE_BYTES as u64
    }

    fn xw_lines(&self, col: usize) -> std::ops::Range<u64> {
        let start = self.xw_base + col as u64 * self.xw_row_bytes;
        let first = start / LINE_BYTES as u64;
        let last = (start + self.xw_row_bytes - 1) / LINE_BYTES as u64;
        first..last + 1
    }

    fn out_lines(&self, row: usize) -> std::ops::Range<u64> {
        let start = self.out_base + row as u64 * self.xw_row_bytes;
        let first = start / LINE_BYTES as u64;
        let last = (start + self.xw_row_bytes - 1) / LINE_BYTES as u64;
        first..last + 1
    }
}

struct CoreState {
    clock: u64,
    compute: u64,
    memory: u64,
    l1: SetAssocCache,
    segments: Vec<Segment>,
    next_segment: usize,
    l1_hits: u64,
    l1_accesses: u64,
}

/// Shared-fabric state.
struct Fabric {
    l2: SetAssocCache,
    directory: HashMap<u64, DirEntry>,
    flit_hops: f64,
    dram_bytes: u64,
    net_cycles: u64,
    dram_cycles: u64,
    queue_cycles: u64,
    dir_evictions: u64,
    atomic_waits: u64,
}

/// Simulates `plan` computing `A × XW` (dense width `dim`) on `cfg`.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Panics
///
/// Panics if the plan references rows/non-zeros outside `a` (validate the
/// plan first in tests).
pub fn simulate(plan: &KernelPlan, a: &CsrMatrix<f32>, dim: usize, cfg: &McConfig) -> McReport {
    let addr = AddressMap::new(a, dim);
    let cols = a.col_indices();
    let side = cfg.mesh_side();
    let links = (4 * side * side) as f64; // 2 directions × 2 axes per node

    // Assign logical threads to cores in contiguous chunks.
    let mut cores: Vec<CoreState> = (0..cfg.cores)
        .map(|_| CoreState {
            clock: 0,
            compute: 0,
            memory: 0,
            l1: SetAssocCache::new(cfg.l1_bytes, cfg.l1_ways, LINE_BYTES),
            segments: Vec::new(),
            next_segment: 0,
            l1_hits: 0,
            l1_accesses: 0,
        })
        .collect();
    // Logical threads are dealt to cores round-robin, matching the
    // fine-grain dynamic scheduling of nnz-splitting kernels (for plans
    // with exactly one thread per core — the evaluation's MergePath
    // configuration — this is the identity assignment). Interleaving is
    // what exposes GNNAdvisor's sharing misses: consecutive neighbor
    // groups of the same row land on different cores and ping-pong the
    // output line.
    let mut carries: Vec<Segment> = Vec::new();
    for (t, tp) in plan.threads.iter().enumerate() {
        let core = t % cfg.cores;
        for seg in &tp.segments {
            if seg.is_empty() {
                continue;
            }
            if seg.flush == Flush::Carry {
                carries.push(*seg);
            }
            cores[core].segments.push(*seg);
        }
    }

    let mut fabric = Fabric {
        l2: SetAssocCache::new(cfg.l2_total_bytes(), cfg.l2_ways, LINE_BYTES),
        directory: HashMap::new(),
        flit_hops: 0.0,
        dram_bytes: 0,
        net_cycles: 0,
        dram_cycles: 0,
        queue_cycles: 0,
        dir_evictions: 0,
        atomic_waits: 0,
    };

    // Conservative event loop: always advance the earliest core.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = cores
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.segments.is_empty())
        .map(|(i, _)| Reverse((0u64, i)))
        .collect();
    let active_cores = heap.len();

    while let Some(Reverse((clock, c))) = heap.pop() {
        let seg = {
            let core = &cores[c];
            if core.next_segment >= core.segments.len() {
                continue;
            }
            core.segments[core.next_segment]
        };
        cores[c].next_segment += 1;
        debug_assert_eq!(clock, cores[c].clock);
        execute_segment(
            c,
            &seg,
            cols,
            &addr,
            cfg,
            &mut cores,
            &mut fabric,
            side,
            links,
        );
        if cores[c].next_segment < cores[c].segments.len() {
            heap.push(Reverse((cores[c].clock, c)));
        }
    }

    // Serial carry phase (merge-path serial-fixup baseline only): one core
    // walks the carries after the barrier.
    let barrier = cores.iter().map(|c| c.clock).max().unwrap_or(0);
    let mut completion = barrier;
    if !carries.is_empty() {
        let per_carry =
            cfg.l2_latency + 2 * cfg.avg_network_latency() + cfg.simd_cycles_per_nnz(dim);
        completion += carries.len() as u64 * per_carry;
    }

    let critical = cores
        .iter()
        .max_by_key(|c| c.compute + c.memory)
        .expect("at least one core exists");
    let l1_total: u64 = cores.iter().map(|c| c.l1_accesses).sum();
    let l1_hits: u64 = cores.iter().map(|c| c.l1_hits).sum();
    McReport {
        cycles: completion,
        critical_compute: critical.compute,
        critical_memory: critical.memory,
        avg_compute: cores.iter().map(|c| c.compute as f64).sum::<f64>() / cfg.cores as f64,
        avg_memory: cores.iter().map(|c| c.memory as f64).sum::<f64>() / cfg.cores as f64,
        l1_hit_rate: if l1_total == 0 {
            0.0
        } else {
            l1_hits as f64 / l1_total as f64
        },
        directory_evictions: fabric.dir_evictions,
        atomic_wait_cycles: fabric.atomic_waits,
        dram_bytes: fabric.dram_bytes,
        net_cycles: fabric.net_cycles,
        dram_cycles: fabric.dram_cycles,
        queue_cycles: fabric.queue_cycles,
        active_cores,
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_segment(
    c: usize,
    seg: &Segment,
    cols: &[usize],
    addr: &AddressMap,
    cfg: &McConfig,
    cores: &mut [CoreState],
    fabric: &mut Fabric,
    side: usize,
    links: f64,
) {
    let simd = cfg.simd_cycles_per_nnz(addr.xw_row_bytes as usize / 4);
    for (nz, &col) in cols.iter().enumerate().take(seg.nz_end).skip(seg.nz_start) {
        // A-stream access (values + indices, sequential).
        let mem = read_line(c, addr.a_line(nz), cfg, cores, fabric, side, links);
        cores[c].memory += mem;
        cores[c].clock += mem;
        // Scattered XW row read.
        for line in addr.xw_lines(col) {
            let mem = read_line(c, line, cfg, cores, fabric, side, links);
            cores[c].memory += mem;
            cores[c].clock += mem;
        }
        // Multiply-accumulate into the thread-local accumulator.
        let compute = simd + cfg.scalar_cycles_per_nnz;
        cores[c].compute += compute;
        cores[c].clock += compute;
    }
    // Output flush.
    match seg.flush {
        Flush::Regular | Flush::Atomic => {
            let atomic = seg.flush == Flush::Atomic;
            for line in addr.out_lines(seg.row) {
                let mem = write_line(c, line, cfg, cores, fabric, side, links, atomic);
                cores[c].memory += mem;
                cores[c].clock += mem;
            }
        }
        // Carries flush in the post-barrier serial phase.
        Flush::Carry => {}
    }
}

fn manhattan(a: usize, b: usize, side: usize) -> u64 {
    let (ax, ay) = (a % side, a / side);
    let (bx, by) = (b % side, b / side);
    (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
}

/// Current mesh-contention multiplier from running link utilization.
///
/// The denominator includes a warm-up constant so the very first burst of
/// accesses (all cores at clock ≈ 0) does not divide cumulative flits by
/// a near-zero elapsed time.
fn contention(fabric: &Fabric, clock: u64, links: f64) -> f64 {
    let rho = (fabric.flit_hops / (links * (clock + 2_000) as f64)).min(0.9);
    1.0 / (1.0 - rho)
}

/// Round-trip network cycles between `c` and a line's home tile.
fn network_round_trip(
    c: usize,
    line: u64,
    cfg: &McConfig,
    fabric: &mut Fabric,
    side: usize,
    links: f64,
    clock: u64,
) -> u64 {
    let home = (line % (side * side) as u64) as usize;
    let hops = manhattan(c, home, side);
    // Request + response, roughly 2 flits each (address + one line).
    fabric.flit_hops += 4.0 * hops as f64;
    let raw = 2 * hops * cfg.hop_latency;
    (raw as f64 * contention(fabric, clock, links)).round() as u64
}

#[allow(clippy::too_many_arguments)]
fn read_line(
    c: usize,
    line: u64,
    cfg: &McConfig,
    cores: &mut [CoreState],
    fabric: &mut Fabric,
    side: usize,
    links: f64,
) -> u64 {
    cores[c].l1_accesses += 1;
    if cores[c].l1.probe(line) {
        cores[c].l1_hits += 1;
        return cfg.l1_latency;
    }
    let clock = cores[c].clock;
    let net = network_round_trip(c, line, cfg, fabric, side, links, clock);
    fabric.net_cycles += net;
    let mut latency = net + cfg.l2_latency;
    if !fabric.l2.probe(line) {
        // DRAM fill: latency plus utilization-based controller queueing
        // (on the running DRAM traffic rate). A time-ordered queue per
        // controller would leak fast cores' clocks into laggards through
        // the shared structure, so — like the mesh — the controllers are
        // modeled analytically. Fewer controllers serve the same aggregate
        // bandwidth through wider ports (§V-D), so only utilization
        // matters.
        let service = LINE_BYTES as f64 / cfg.dram_bytes_per_cycle * cfg.memory_controllers as f64;
        let rho =
            (fabric.dram_bytes as f64 / clock.max(1) as f64 / cfg.dram_bytes_per_cycle).min(0.95);
        let queue_wait = (service * rho / (1.0 - rho)).round() as u64;
        fabric.dram_bytes += LINE_BYTES as u64;
        fabric.queue_cycles += queue_wait;
        fabric.dram_cycles += cfg.dram_latency;
        latency += queue_wait + cfg.dram_latency;
        if let Some(evicted) = fabric.l2.insert(line) {
            fabric.directory.remove(&evicted);
        }
    }
    // Directory: register as sharer under the limited-4 policy.
    let limit = cfg.directory_limit;
    let entry = fabric.directory.entry(line).or_default();
    if entry.owner.is_some() && entry.owner != Some(c as u16) {
        // Downgrade the modified owner (write-back + transition).
        entry.owner = None;
        latency += cfg.l2_latency;
    }
    let mut evicted_sharer = None;
    if !entry.sharers.contains(&(c as u16)) {
        if entry.sharers.len() >= limit {
            // Limited-4 overflow: evict the oldest sharer, invalidating
            // its private copy — the victim's next access to this line
            // will miss again (the §V-D sharing-miss mechanism).
            let victim = entry.sharers.remove(0);
            fabric.dir_evictions += 1;
            evicted_sharer = Some(victim as usize);
        }
        entry.sharers.push(c as u16);
    }
    if let Some(victim) = evicted_sharer {
        cores[victim].l1.invalidate(line);
    }
    cores[c].l1.insert(line);
    latency
}

#[allow(clippy::too_many_arguments)]
fn write_line(
    c: usize,
    line: u64,
    cfg: &McConfig,
    cores: &mut [CoreState],
    fabric: &mut Fabric,
    side: usize,
    links: f64,
    atomic: bool,
) -> u64 {
    cores[c].l1_accesses += 1;
    let entry = fabric.directory.entry(line).or_default();
    let already_owner = entry.owner == Some(c as u16) && entry.sharers.is_empty();
    if already_owner && cores[c].l1.probe(line) {
        cores[c].l1_hits += 1;
        return cfg.l1_latency + if atomic { cfg.atomic_overhead } else { 0 };
    }
    // Acquire exclusive ownership: wait for the current holder to release
    // (atomic serialization), invalidate sharers, transfer the line.
    let mut start = cores[c].clock;
    if atomic && entry.release > start {
        let wait = entry.release - start;
        fabric.atomic_waits += wait;
        start = entry.release;
    }
    let sharers: Vec<u16> = std::mem::take(&mut entry.sharers);
    let previous_owner = entry.owner.replace(c as u16);
    let sharer_cost = sharers.len() as u64 * cfg.hop_latency;
    // Invalidate every sharer's (and the previous owner's) private copy.
    for s in sharers {
        if s as usize != c {
            cores[s as usize].l1.invalidate(line);
        }
    }
    if let Some(prev) = previous_owner {
        if prev as usize != c {
            cores[prev as usize].l1.invalidate(line);
        }
    }
    let net = network_round_trip(c, line, cfg, fabric, side, links, start);
    let latency = (start - cores[c].clock)
        + net
        + cfg.l2_latency
        + sharer_cost
        + if atomic { cfg.atomic_overhead } else { 0 };
    if atomic {
        let entry = fabric.directory.entry(line).or_default();
        entry.release = start + net + cfg.l2_latency + cfg.atomic_overhead;
    }
    fabric.l2.insert(line);
    cores[c].l1.insert(line);
    latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_core::{MergePathSpmm, NnzSplitSpmm, SpmmKernel};
    use mpspmm_graphs::{DatasetSpec, GraphClass};

    fn graph(nodes: usize, nnz: usize, max_deg: usize) -> CsrMatrix<f32> {
        DatasetSpec::custom("t", GraphClass::PowerLaw, nodes, nnz, max_deg).synthesize(5)
    }

    #[test]
    fn deterministic() {
        let a = graph(500, 2_000, 100);
        let cfg = McConfig::with_cores(64);
        let plan = MergePathSpmm::with_threads(64).plan(&a, 16);
        let r1 = simulate(&plan, &a, 16, &cfg);
        let r2 = simulate(&plan, &a, 16, &cfg);
        assert_eq!(r1, r2);
        assert!(r1.cycles > 0);
    }

    #[test]
    fn more_cores_speed_up_balanced_kernels() {
        let a = graph(4_000, 16_000, 200);
        let small = simulate(
            &MergePathSpmm::with_threads(64).plan(&a, 16),
            &a,
            16,
            &McConfig::with_cores(64),
        );
        let big = simulate(
            &MergePathSpmm::with_threads(512).plan(&a, 16),
            &a,
            16,
            &McConfig::with_cores(512),
        );
        assert!(
            big.cycles < small.cycles,
            "512 cores ({}) should beat 64 cores ({})",
            big.cycles,
            small.cycles
        );
    }

    #[test]
    fn atomic_contention_appears_for_gnnadvisor_on_evil_rows() {
        // One evil row: GNNAdvisor's many NGs hammer the same output line.
        let a = graph(2_000, 10_000, 1_500);
        let cfg = McConfig::with_cores(256);
        let gnn = simulate(&NnzSplitSpmm::new().plan(&a, 16), &a, 16, &cfg);
        let mp = simulate(&MergePathSpmm::with_threads(256).plan(&a, 16), &a, 16, &cfg);
        assert!(
            gnn.atomic_wait_cycles > mp.atomic_wait_cycles,
            "GNNAdvisor waits {} vs MergePath {}",
            gnn.atomic_wait_cycles,
            mp.atomic_wait_cycles
        );
    }

    #[test]
    fn limited_directory_evicts_sharers_of_hub_rows() {
        // Power-law columns: hub XW rows are read by many cores.
        let a = graph(2_000, 12_000, 300);
        let cfg = McConfig::with_cores(256);
        let report = simulate(&MergePathSpmm::with_threads(256).plan(&a, 16), &a, 16, &cfg);
        assert!(
            report.directory_evictions > 0,
            "hub rows must overflow the limited-4 directory"
        );
    }

    #[test]
    fn report_breakdown_is_consistent() {
        let a = graph(1_000, 5_000, 100);
        let cfg = McConfig::with_cores(64);
        let r = simulate(&MergePathSpmm::with_threads(64).plan(&a, 16), &a, 16, &cfg);
        assert!(r.critical_compute > 0);
        assert!(r.critical_memory > 0);
        assert!((0.0..=1.0).contains(&r.memory_fraction()));
        assert!((0.0..=1.0).contains(&r.l1_hit_rate));
        assert!(r.l1_hit_rate > 0.1, "A-stream should produce L1 hits");
        assert!(r.cycles >= r.critical_compute);
        assert_eq!(r.active_cores, 64);
    }

    #[test]
    fn empty_plan_finishes_immediately() {
        let a = CsrMatrix::<f32>::zeros(8, 8);
        let cfg = McConfig::with_cores(64);
        let plan = MergePathSpmm::with_threads(4).plan(&a, 16);
        let r = simulate(&plan, &a, 16, &cfg);
        assert_eq!(r.cycles, 0);
    }
}
