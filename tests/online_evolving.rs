//! The online setting end-to-end: an evolving graph invalidates per-graph
//! structures; MergePath-SpMM reschedules cheaply and keeps producing
//! correct results (§III-D).

use merge_path_spmm::core::{
    MergePathSpmm, NeighborPartitionIndex, NnzSplitSpmm, SerialSpmm, SpmmKernel,
};
use merge_path_spmm::gcn::ops::random_features;
use merge_path_spmm::gcn::ops::xavier_init;
use merge_path_spmm::gcn::{Activation, GcnModel, GinLayer, SageMeanLayer};
use merge_path_spmm::graphs::{
    gcn_normalize, mean_normalize, sum_with_self_loops, DatasetSpec, GraphClass, GraphStream,
};

fn spec() -> DatasetSpec {
    DatasetSpec::custom("live", GraphClass::PowerLaw, 400, 1_600, 60)
}

#[test]
fn evolving_graph_invalidates_and_rebuilds() {
    let mut stream = GraphStream::new(&spec(), 11);
    let kernel = MergePathSpmm::with_threads(32);
    let x = random_features(400, 16, 0.5, 1);

    let mut schedule = kernel.schedule(stream.snapshot(), 16);
    let mut ng_index = NeighborPartitionIndex::build(stream.snapshot(), 4);

    for step in 0..4 {
        let a = stream.step(25, 10).clone();
        // Both per-graph structures are stale now.
        assert!(!schedule.matches(&a), "step {step}: schedule must be stale");
        assert!(!ng_index.matches(&a), "step {step}: NG index must be stale");

        // Online rebuild + correct execution on the new snapshot.
        schedule = kernel.schedule(&a, 16);
        ng_index = NeighborPartitionIndex::build(&a, 4);
        assert!(schedule.matches(&a));
        assert!(ng_index.matches(&a));

        let (want, _) = SerialSpmm.spmm_sequential(&a, &x).expect("serial");
        let (got, _) = kernel.spmm_sequential(&a, &x).expect("mergepath");
        assert!(got.approx_eq(&want, 1e-3).expect("same shape"));
        let plan = ng_index.to_plan();
        plan.validate(&a).expect("rebuilt NG plan is valid");
    }
    assert_eq!(stream.generation(), 4);
}

#[test]
fn gnn_zoo_runs_on_each_snapshot() {
    // GCN, GIN, and GraphSAGE-mean all aggregate through the same SpMM
    // kernel as the graph evolves.
    let mut stream = GraphStream::new(&spec(), 13);
    let kernel = MergePathSpmm::with_threads(24);
    let gcn_model = GcnModel::two_layer(12, 16, 4, 2);
    let gin = GinLayer::new(
        xavier_init(12, 16, 3),
        xavier_init(16, 4, 4),
        Activation::Relu,
    );
    let sage = SageMeanLayer::new(
        xavier_init(12, 4, 5),
        xavier_init(12, 4, 6),
        Activation::Relu,
    );
    let x = random_features(400, 12, 0.5, 7);

    for _ in 0..3 {
        let a = stream.step(20, 20).clone();
        let gcn_out = gcn_model
            .forward(&gcn_normalize(&a), &x, &kernel)
            .expect("gcn forward");
        let gin_out = gin
            .forward(&sum_with_self_loops(&a, 0.1), &x, &kernel)
            .expect("gin forward");
        let sage_out = sage
            .forward(&mean_normalize(&a), &x, &kernel)
            .expect("sage forward");
        assert_eq!(gcn_out.cols(), 4);
        assert_eq!(gin_out.cols(), 4);
        assert_eq!(sage_out.cols(), 4);
        // All finite.
        for m in [&gcn_out, &gin_out, &sage_out] {
            assert!(m.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn gnnadvisor_also_stays_correct_under_churn() {
    let mut stream = GraphStream::new(&spec(), 17);
    let x = random_features(400, 8, 0.5, 9);
    for _ in 0..3 {
        let a = stream.step(15, 15).clone();
        let (want, _) = SerialSpmm.spmm_sequential(&a, &x).expect("serial");
        let (got, stats) = NnzSplitSpmm::new()
            .spmm_with_stats(&a, &x)
            .expect("gnnadvisor");
        assert!(got.approx_eq(&want, 1e-3).expect("same shape"));
        assert_eq!(stats.atomic_nnz, a.nnz(), "GNNAdvisor is all-atomic");
    }
}
