//! Power-law (Type I) graph generator.
//!
//! Produces adjacency matrices whose out-degree sequence follows a truncated
//! discrete power law calibrated to the target average degree, with one
//! pinned *evil row* of exactly the spec's maximum degree — reproducing the
//! load-imbalance profile (Figure 1 of the paper) that motivates
//! MergePath-SpMM.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use mpspmm_sparse::CsrMatrix;

use crate::DatasetSpec;

/// Exponent of the implicit in-degree (column popularity) distribution:
/// a sampled target is `floor(nodes * u^GAMMA)`, concentrating references on
/// low-index hub columns with a tail exponent of `1 + 1/GAMMA`.
const GAMMA: f64 = 1.5;

pub(crate) fn generate_powerlaw(spec: &DatasetSpec, seed: u64) -> CsrMatrix<f32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let degrees = degree_sequence(spec, &mut rng);
    debug_assert_eq!(degrees.iter().sum::<usize>(), spec.nnz);
    realize(spec, &degrees, &mut rng)
}

/// Samples a degree sequence of length `nodes` summing exactly to `nnz`,
/// bounded by `max_degree` (attained by exactly one pinned row), following
/// `P(d) ∝ (d + 1)^-alpha` with `alpha` calibrated to the average degree.
fn degree_sequence(spec: &DatasetSpec, rng: &mut SmallRng) -> Vec<usize> {
    let alpha = calibrate_alpha(spec.avg_degree(), spec.max_degree);
    let cdf = cumulative_weights(alpha, spec.max_degree);
    let total_weight = *cdf.last().expect("non-empty support");

    let mut degrees: Vec<usize> = (0..spec.nodes)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total_weight;
            cdf.partition_point(|&w| w < u)
        })
        .collect();

    // Pin the evil row so the realized maximum degree is exact.
    let hub = rng.gen_range(0..spec.nodes);
    degrees[hub] = spec.max_degree;
    let cap = spec.max_degree.min(spec.nodes - 1);
    for (i, d) in degrees.iter_mut().enumerate() {
        if i != hub && *d >= spec.max_degree {
            // Keep the pinned row the unique maximum when possible so
            // `max_degree` is attained but not a crowd.
            *d = spec.max_degree.saturating_sub(1).min(cap);
        }
    }

    fix_sum(&mut degrees, spec.nnz, cap, hub, rng);
    degrees
}

/// Adjusts `degrees` so the total equals `target`, never touching the
/// pinned `hub` row and never exceeding `cap`.
pub(crate) fn fix_sum(
    degrees: &mut [usize],
    target: usize,
    cap: usize,
    hub: usize,
    rng: &mut SmallRng,
) {
    let n = degrees.len();
    let mut sum: usize = degrees.iter().sum();
    // Random-probe fix-up converges quickly when slack is plentiful; fall
    // back to a deterministic sweep when it is not.
    let mut attempts = 0usize;
    let max_attempts = 20 * n + 1000;
    while sum != target && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(0..n);
        if i == hub {
            continue;
        }
        if sum < target && degrees[i] < cap {
            degrees[i] += 1;
            sum += 1;
        } else if sum > target && degrees[i] > 0 {
            degrees[i] -= 1;
            sum -= 1;
        }
    }
    if sum != target {
        for (i, d) in degrees.iter_mut().enumerate() {
            if i == hub || sum == target {
                continue;
            }
            while sum < target && *d < cap {
                *d += 1;
                sum += 1;
            }
            while sum > target && *d > 0 {
                *d -= 1;
                sum -= 1;
            }
        }
    }
    assert_eq!(
        sum, target,
        "degree sequence cannot reach the target nnz (infeasible spec)"
    );
}

/// Binary-searches the power-law exponent so the truncated distribution's
/// mean matches `avg` (the mean is strictly decreasing in `alpha`).
fn calibrate_alpha(avg: f64, max_degree: usize) -> f64 {
    let (mut lo, mut hi) = (0.05f64, 10.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if truncated_mean(mid, max_degree) > avg {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn truncated_mean(alpha: f64, max_degree: usize) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for d in 0..=max_degree {
        let w = ((d + 1) as f64).powf(-alpha);
        num += d as f64 * w;
        den += w;
    }
    num / den
}

/// Cumulative weights of `P(d) ∝ (d + 1)^-alpha` over `0..=max_degree`.
fn cumulative_weights(alpha: f64, max_degree: usize) -> Vec<f64> {
    let mut acc = 0.0;
    (0..=max_degree)
        .map(|d| {
            acc += ((d + 1) as f64).powf(-alpha);
            acc
        })
        .collect()
}

/// Materializes the edge targets for a fixed degree sequence.
fn realize(spec: &DatasetSpec, degrees: &[usize], rng: &mut SmallRng) -> CsrMatrix<f32> {
    let n = spec.nodes;
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    for &d in degrees {
        row_ptr.push(row_ptr.last().unwrap() + d);
    }
    let nnz = *row_ptr.last().unwrap();
    let mut col_indices = Vec::with_capacity(nnz);
    let mut seen = HashSet::new();

    for (row, &d) in degrees.iter().enumerate() {
        seen.clear();
        let mut picked: Vec<usize> = Vec::with_capacity(d);
        let mut rejections = 0usize;
        let rejection_budget = 16 * d + 64;
        while picked.len() < d && rejections < rejection_budget {
            let target = sample_target(n, rng);
            if target != row && seen.insert(target) {
                picked.push(target);
            } else {
                rejections += 1;
            }
        }
        if picked.len() < d {
            // Deterministic fallback: sweep columns from a random start to
            // fill the remaining slots (only triggers for rows whose degree
            // approaches the node count).
            let start = rng.gen_range(0..n);
            let mut c = start;
            while picked.len() < d {
                if c != row && seen.insert(c) {
                    picked.push(c);
                }
                c = (c + 1) % n;
                assert!(
                    c != start || picked.len() == d,
                    "row degree exceeds available distinct targets"
                );
            }
        }
        picked.sort_unstable();
        col_indices.extend_from_slice(&picked);
    }

    let values = vec![1.0f32; nnz];
    CsrMatrix::new(n, n, row_ptr, col_indices, values)
        .expect("generator maintains CSR invariants by construction")
}

/// Samples a target column with hub-concentrated (power-law in-degree)
/// popularity.
fn sample_target(n: usize, rng: &mut SmallRng) -> usize {
    let u: f64 = rng.gen::<f64>();
    let j = (u.powf(GAMMA) * n as f64) as usize;
    j.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphClass;
    use mpspmm_sparse::stats::DegreeStats;

    fn spec(nodes: usize, nnz: usize, max_degree: usize) -> DatasetSpec {
        DatasetSpec::custom("t", GraphClass::PowerLaw, nodes, nnz, max_degree)
    }

    #[test]
    fn matches_spec_exactly() {
        let s = spec(1_000, 3_900, 170);
        let a = s.synthesize(7);
        let st = DegreeStats::compute(&a);
        assert_eq!(st.rows, 1_000);
        assert_eq!(st.nnz, 3_900);
        assert_eq!(st.max, 170, "pinned evil row must attain max degree");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = spec(300, 1_200, 60);
        assert_eq!(s.synthesize(1), s.synthesize(1));
        assert_ne!(s.synthesize(1), s.synthesize(2));
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let s = spec(200, 900, 50);
        let a = s.synthesize(3);
        for r in 0..a.rows() {
            let row = a.row(r);
            for w in row.cols.windows(2) {
                assert!(w[0] < w[1], "row {r} has unsorted/duplicate columns");
            }
            assert!(!row.cols.contains(&r), "row {r} has a self loop");
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let s = spec(2_000, 8_000, 300);
        let a = s.synthesize(11);
        let st = DegreeStats::compute(&a);
        // Power-law: heavy skew — Gini well above a uniform graph's ~0.
        assert!(st.gini > 0.3, "gini {} too even for a power law", st.gini);
        assert!(st.evil_row_ratio() > 10.0);
    }

    #[test]
    fn low_average_degree_yields_empty_rows() {
        // email-Euall-like: avg 1.6 with a large max.
        let s = spec(5_000, 8_000, 400);
        let a = s.synthesize(5);
        let st = DegreeStats::compute(&a);
        assert_eq!(st.nnz, 8_000);
        assert!(st.empty_rows > 0, "expected zero-length rows at avg 1.6");
    }

    #[test]
    fn calibrated_alpha_hits_mean() {
        let alpha = calibrate_alpha(3.9, 168);
        let mean = truncated_mean(alpha, 168);
        assert!((mean - 3.9).abs() < 0.05, "mean {mean} != 3.9");
    }

    #[test]
    fn fix_sum_reaches_target_under_pressure() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut degrees = vec![0usize; 16];
        degrees[3] = 5; // hub
        fix_sum(&mut degrees, 5 + 15 * 4, 4, 3, &mut rng);
        assert_eq!(degrees.iter().sum::<usize>(), 65);
        assert!(degrees.iter().enumerate().all(|(i, &d)| i == 3 || d <= 4));
    }

    #[test]
    fn hub_columns_are_popular() {
        let s = spec(1_000, 6_000, 100);
        let a = s.synthesize(9);
        let t = a.transpose();
        let in_low: usize = (0..100).map(|c| t.row_nnz(c)).sum();
        let in_high: usize = (900..1_000).map(|c| t.row_nnz(c)).sum();
        // With GAMMA = 1.5 the first decile of columns receives ~21.5% of
        // all references and the last decile ~6.8% — about a 3x skew.
        assert!(
            in_low > 2 * in_high.max(1),
            "low-index columns should be hubs: {in_low} vs {in_high}"
        );
    }
}
