//! Sharded-execution oracle: bit-identity of the multi-shard
//! scatter/gather path against the sequential reference, swept across
//! shard counts × worker counts (tier-1 runs this leg at
//! `MPSPMM_WORKERS={1,2,8}` × `MPSPMM_SHARDS={1,2,4}`).
//!
//! The contract under test (DESIGN.md §2.15): `ShardedEngine::spmm` is
//! **bit-identical** to `execute_sequential` on the whole matrix at
//! every shard × worker combination, because shard plans are row-aligned
//! (`BatchMergeSpmm`), the halo remap is monotone, and scatter bands are
//! disjoint. `MPSPMM_SHARDS`, when set, pins the shard sweep to a single
//! count so the tier-1 matrix exercises each cell in its own process
//! (worker resolution is cached per process).

use mpspmm_core::executor::execute_sequential;
use mpspmm_core::{BatchMergeSpmm, Epilogue, ExecEngine, ShardedEngine, SpmmKernel};
use mpspmm_graphs::{DatasetSpec, GraphClass};
use mpspmm_sparse::{CsrMatrix, DenseMatrix, ShardedCsr};

/// Shard counts to sweep: `MPSPMM_SHARDS` pins one, otherwise a spread
/// including a non-power-of-two.
fn shard_counts() -> Vec<usize> {
    match std::env::var("MPSPMM_SHARDS") {
        Ok(s) => vec![s.trim().parse().expect("MPSPMM_SHARDS must be a count")],
        Err(_) => vec![1, 2, 4, 7],
    }
}

/// Total workers the sharded engine divides among shards — the same
/// `MPSPMM_WORKERS`-resolved count the unsharded engine would use.
fn total_workers() -> usize {
    mpspmm_core::default_workers()
}

fn power_law(nodes: usize, nnz: usize, seed: u64) -> CsrMatrix<f32> {
    DatasetSpec::custom("shard-pl", GraphClass::PowerLaw, nodes, nnz, nodes / 3).synthesize(seed)
}

fn dense(rows: usize, dim: usize, salt: usize) -> DenseMatrix<f32> {
    DenseMatrix::from_fn(rows, dim, |r, c| {
        ((r * 37 + c * 11 + salt) % 17) as f32 * 0.375 - 3.0
    })
}

fn sequential_oracle(a: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
    let plan = BatchMergeSpmm::new().plan(a, b.cols());
    execute_sequential(&plan, a, b).unwrap().0
}

#[test]
fn sharded_spmm_bit_identical_to_sequential_at_every_combination() {
    let a = power_law(600, 5400, 17);
    let workers = total_workers();
    for dim in [1usize, 8, 32] {
        let b = dense(600, dim, dim);
        let want = sequential_oracle(&a, &b);
        for shards in shard_counts() {
            let se = ShardedEngine::new(&a, shards, workers);
            let got = se.spmm(&b).unwrap();
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "shards={shards} workers={workers} dim={dim}"
            );
        }
    }
}

#[test]
fn one_shard_bit_matches_unsharded_private_engine() {
    let a = power_law(300, 2400, 5);
    let b = dense(300, 16, 3);
    let engine = ExecEngine::with_worker_count(total_workers());
    let kernel = BatchMergeSpmm::new();
    let prep = engine.plan_cached(&kernel, &a, 16, 0);
    let (want, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
    let se = ShardedEngine::new(&a, 1, total_workers());
    let got = se.spmm(&b).unwrap();
    assert_eq!(got.as_slice(), want.as_slice());
}

#[test]
fn fused_epilogue_identical_across_shard_counts() {
    let a = power_law(240, 1900, 9);
    let dim = 10;
    let b = dense(240, dim, 1);
    let epi = Epilogue::BiasRelu((0..dim).map(|j| j as f32 * 0.5 - 2.0).collect());
    let baseline = ShardedEngine::new(&a, 1, total_workers())
        .spmm_fused(&b, &epi)
        .unwrap();
    for shards in shard_counts() {
        let got = ShardedEngine::new(&a, shards, total_workers())
            .spmm_fused(&b, &epi)
            .unwrap();
        assert_eq!(got.as_slice(), baseline.as_slice(), "shards={shards}");
    }
}

#[test]
fn all_boundary_graph_every_column_is_a_halo() {
    // Every row touches the full column range's extremes, so every
    // shard's halo spans (nearly) all columns — the worst-case gather
    // amplification. Correctness must be unaffected.
    let n = 64;
    let mut trips = Vec::new();
    for r in 0..n {
        trips.push((r, 0, 1.0 + r as f32 * 0.125));
        trips.push((r, n - 1, 2.0 - r as f32 * 0.0625));
        let mid = (r * 29) % n;
        if mid != 0 && mid != n - 1 {
            trips.push((r, mid, 0.75));
        }
    }
    let a = CsrMatrix::from_triplets(n, n, &trips).unwrap();
    let b = dense(n, 6, 7);
    let want = sequential_oracle(&a, &b);
    for shards in shard_counts() {
        let sharded = ShardedCsr::partition(&a, shards);
        if shards > 1 {
            assert!(
                sharded.halo_amplification() > 1.0,
                "extreme columns force cross-shard halos"
            );
        }
        let se = ShardedEngine::from_sharded(sharded, total_workers());
        assert_eq!(se.spmm(&b).unwrap().as_slice(), want.as_slice());
    }
}

#[test]
fn empty_shards_and_shard_count_above_row_count() {
    // 6 rows, half of them empty; shard counts beyond the row count
    // produce empty trailing shards that must execute as no-ops.
    let a = CsrMatrix::from_triplets(
        6,
        6,
        &[(0, 3, 1.5), (2, 0, -2.0), (2, 5, 0.25), (5, 2, 4.0)],
    )
    .unwrap();
    let b = dense(6, 4, 2);
    let want = sequential_oracle(&a, &b);
    for shards in [1usize, 2, 4, 6, 9, 13] {
        let se = ShardedEngine::new(&a, shards, total_workers());
        assert_eq!(se.shard_count(), shards);
        assert_eq!(se.spmm(&b).unwrap().as_slice(), want.as_slice());
    }
}

#[test]
fn partitioner_covers_balances_and_round_trips() {
    for (nodes, nnz, seed) in [(150usize, 900usize, 1u64), (400, 4000, 2), (64, 200, 3)] {
        let a = power_law(nodes, nnz, seed);
        let max_row_nnz = (0..a.rows())
            .map(|r| a.row_ptr()[r + 1] - a.row_ptr()[r])
            .max()
            .unwrap_or(0);
        for shards in [1usize, 2, 3, 5, 8] {
            let sharded = ShardedCsr::partition(&a, shards);
            // Bands are contiguous, disjoint, and cover all rows.
            let mut next = 0;
            for s in sharded.shards() {
                assert_eq!(s.row_start, next);
                next += s.matrix.rows();
            }
            assert_eq!(next, a.rows());
            // Round trip: shards reassemble to the original exactly.
            assert_eq!(sharded.reassemble().unwrap(), a);
            // Balance: row-aligned boundaries can miss the ideal merge
            // diagonal by at most one row's items.
            let ideal = (a.rows() + a.nnz()) as f64 / shards as f64;
            for (i, s) in sharded.shards().iter().enumerate() {
                let items = (s.matrix.rows() + s.nnz()) as f64;
                assert!(
                    items <= ideal + (max_row_nnz + 1) as f64 + 1.0,
                    "{nodes}n/{nnz}nnz shards={shards}: shard {i} holds {items} \
                     items vs ideal {ideal} beyond one-row granularity"
                );
            }
        }
    }
}

#[test]
fn sharded_gemm_matches_single_engine_across_shard_counts() {
    let a = power_law(200, 1500, 4);
    let h = dense(200, 24, 5);
    let w = DenseMatrix::from_fn(24, 9, |r, c| ((r * 13 + c * 5) % 7) as f32 * 0.25 - 0.75);
    let want = ExecEngine::with_worker_count(1).gemm(&h, &w).unwrap();
    for shards in shard_counts() {
        let se = ShardedEngine::new(&a, shards, total_workers());
        let got = se.gemm(&h, &w).unwrap();
        assert_eq!(got.as_slice(), want.as_slice(), "shards={shards}");
    }
}
