//! Graph convolutional network substrate for the MergePath-SpMM
//! reproduction.
//!
//! A GCN layer computes `σ(Â · X · W)` (§II of the paper). This crate
//! provides the *combination* phase (dense `X × W` GEMM, activations,
//! weight init) and composes it with the *aggregation* phase — the
//! `Â × (XW)` SpMM performed by any [`mpspmm_core::SpmmKernel`] — into
//! layers and models. It also implements the online/offline inference
//! scenario of Figure 8.
//!
//! # Example
//!
//! ```
//! use mpspmm_core::MergePathSpmm;
//! use mpspmm_gcn::{ops, GcnModel};
//! use mpspmm_graphs::{gcn_normalize, DatasetSpec, GraphClass};
//!
//! let spec = DatasetSpec::custom("demo", GraphClass::PowerLaw, 200, 800, 40);
//! let a = gcn_normalize(&spec.synthesize(1));
//! let model = GcnModel::two_layer(32, 16, 4, 7);
//! let x = ops::random_features(200, 32, 0.4, 2);
//! let logits = model.forward(&a, &x, &MergePathSpmm::new())?;
//! assert_eq!(logits.rows(), 200);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layers;
mod model;
pub mod ops;

pub use layers::{GinLayer, SageMeanLayer};
pub use model::{online_inference, GcnLayer, GcnModel, InferenceTiming, TwoHopPath};
pub use ops::Activation;
