//! Offline drop-in subset of the `proptest` crate API used by this
//! workspace.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements exactly the surface the workspace's property tests consume:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, integer and
//! float range strategies, tuple strategies, [`strategy::Just`],
//! `prop_oneof!`, [`collection::vec`] / [`collection::btree_set`],
//! [`arbitrary::any`], [`test_runner::ProptestConfig`], and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with its case number and seed so it can be replayed deterministically),
//! and generation is driven by a SplitMix64 stream seeded from the test
//! name, so runs are fully reproducible.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Random-value source handed to strategies. Wraps the shim
    /// [`SmallRng`] so strategies stay object-safe-free and simple.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        pub fn gen_usize(&mut self, lo: usize, hi_inclusive: usize) -> usize {
            self.0.gen_range(lo..=hi_inclusive)
        }
    }

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `generate`
    /// returns the final value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.gen_usize(0, self.options.len() - 1);
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
        (A / 0, B / 1, C / 2, D / 3, E / 4)
    }

    /// Strategy for "any value of `T`" — see [`crate::arbitrary::any`].
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    macro_rules! any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use std::marker::PhantomData;

    /// `any::<T>()` — uniform over the whole domain of `T`.
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size bound accepted by the collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            rng.gen_usize(self.lo, self.hi_inclusive)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty collection size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)` — a vector with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // The element domain may be smaller than `target` (callers
            // clamp, but duplicates still slow convergence): cap the
            // attempts and accept a smaller set once the budget is spent,
            // mirroring proptest's rejection behaviour without the global
            // rejection bookkeeping.
            let mut attempts = 0usize;
            let budget = target * 16 + 64;
            while out.len() < target && attempts < budget {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `btree_set(element, size)` — a set of distinct elements.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use crate::strategy::TestRng;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration. Only `cases` is consumed by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's name so every
    /// run (and every machine) explores the same cases.
    pub fn rng_for_test(name: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ ((case as u64) << 32 | 0x5bd1_e995),
        ))
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each argument is drawn from its strategy for
/// `cases` iterations; failures panic with the case index (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::rng_for_test(stringify!($name), __case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // Name the case in panic messages so failures are
                // replayable (the RNG is a pure function of name + case).
                let __guard = $crate::__CaseGuard {
                    test: stringify!($name),
                    case: __case,
                };
                { $body }
                std::mem::forget(__guard);
            }
        }
        $crate::__proptest_inner! { @cfg($cfg) $($rest)* }
    };
}

/// Prints the failing case on unwind so a failure is identifiable even
/// though the shim does not shrink.
#[doc(hidden)]
pub struct __CaseGuard {
    pub test: &'static str,
    pub case: u32,
}

impl Drop for __CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: test `{}` failed at case {} (deterministic; rerun reproduces it)",
                self.test, self.case
            );
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skip this case when the assumption fails. Inside the shim's per-case
/// loop this is a plain `continue`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($option),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::{btree_set, vec};
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn tuples_and_flat_map(
            (r, c) in (1usize..8, 1usize..8).prop_flat_map(|(r, c)| (Just(r), Just(c))),
            pick in prop_oneof![Just(2usize), Just(8)],
        ) {
            prop_assert!((1..8).contains(&r));
            prop_assert!((1..8).contains(&c));
            prop_assert!(pick == 2 || pick == 8);
        }

        #[test]
        fn collections_respect_sizes(
            v in vec(0u64..256, 1..20),
            s in btree_set(0u64..16, 1..=10),
        ) {
            prop_assert!((1..20).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() <= 10);
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 256));
        }

        #[test]
        fn any_u64_and_map(seed in any::<u64>(), doubled in (1u32..5).prop_map(|x| x * 2)) {
            let _ = seed;
            prop_assert!(doubled % 2 == 0 && doubled <= 8);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = (1usize..100, 0.0f64..1.0);
        let a: Vec<_> = (0..10)
            .map(|c| s.generate(&mut crate::test_runner::rng_for_test("det", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| s.generate(&mut crate::test_runner::rng_for_test("det", c)))
            .collect();
        assert_eq!(a, b);
    }
}
