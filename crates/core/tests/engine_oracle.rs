//! Property tests pinning the fast-path engine to the sequential oracle:
//! for every parallel kernel, worker count, and dense dimension, the
//! engine's output must stay within tolerance of
//! [`mpspmm_core::executor::execute_sequential`] and its realized
//! [`WriteStats`] must match both the oracle's and the plan's static
//! accounting exactly.

use mpspmm_core::executor::execute_sequential;
use mpspmm_core::{
    DataPath, Epilogue, ExecEngine, MergePathSerialFixup, MergePathSpmm, NnzSplitSpmm,
    PreparedPlan, RowSplitSpmm, SchedPolicy, SpmmKernel,
};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random square CSR matrix with a deliberately heavy first row (to
/// force partial/atomic segments) plus a random dense operand.
fn random_inputs(
    rows: usize,
    nnz: usize,
    dim: usize,
    seed: u64,
) -> (CsrMatrix<f32>, DenseMatrix<f32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coords = std::collections::BTreeSet::new();
    for c in 0..(nnz / 3).min(rows) {
        coords.insert((0usize, c));
    }
    while coords.len() < nnz.min(rows * rows) {
        coords.insert((rng.gen_range(0..rows), rng.gen_range(0..rows)));
    }
    let triplets: Vec<(usize, usize, f32)> = coords
        .into_iter()
        .map(|(r, c)| (r, c, rng.gen_range(-2.0..2.0)))
        .collect();
    let a = CsrMatrix::from_triplets(rows, rows, &triplets).unwrap();
    let mut feat_rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let b = DenseMatrix::from_fn(rows, dim, |_, _| feat_rng.gen_range(-1.0..1.0));
    (a, b)
}

/// The four parallel kernels, with small fixed decompositions so plans
/// contain a mix of regular, atomic, and carry segments.
fn kernels() -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(MergePathSpmm::with_threads(7)),
        Box::new(MergePathSerialFixup::with_threads(6)),
        Box::new(NnzSplitSpmm::with_ng_size(3)),
        Box::new(RowSplitSpmm::with_threads(5)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_matches_sequential_oracle(
        rows in 2usize..48,
        fill in 1usize..6,
        seed in any::<u64>(),
    ) {
        let nnz = (rows * fill).min(rows * rows);
        for kernel in kernels() {
            for &dim in &[1usize, 3, 8, 33] {
                let (a, b) = random_inputs(rows, nnz, dim, seed);
                let plan = kernel.plan(&a, dim);
                plan.validate(&a).unwrap();
                let (want, want_stats) = execute_sequential(&plan, &a, &b).unwrap();
                // Realized stats are a property of the plan alone.
                prop_assert_eq!(want_stats, plan.write_stats());
                let scale = want.frobenius_norm().max(1.0);
                for &workers in &[1usize, 2, 7, 64] {
                    let engine = ExecEngine::new(workers);
                    let (got, got_stats) = engine.execute(&plan, &a, &b).unwrap();
                    prop_assert!(
                        got.max_abs_diff(&want).unwrap() <= 1e-4 * scale,
                        "kernel={} workers={} dim={}",
                        kernel.name(),
                        workers,
                        dim
                    );
                    prop_assert_eq!(got_stats, want_stats);
                }
            }
        }
    }

    #[test]
    fn cached_path_matches_uncached_engine(
        rows in 2usize..40,
        seed in any::<u64>(),
    ) {
        let nnz = (rows * 4).min(rows * rows);
        let (a, b) = random_inputs(rows, nnz, 16, seed);
        let kernel = MergePathSpmm::with_threads(9);
        // One worker: execution is deterministic, so cached and uncached
        // runs must agree bit-for-bit (multi-worker atomic ordering is
        // covered with a tolerance by the oracle test above).
        let engine = ExecEngine::new(1);
        let plan = kernel.plan(&a, 16);
        let (want, want_stats) = engine.execute(&plan, &a, &b).unwrap();
        // Twice through the cache: miss then hit must agree bit-for-bit
        // with each other and with the uncached path.
        let (miss, s1) = engine.spmm_cached(&kernel, &a, &b, 0).unwrap();
        let (hit, s2) = engine.spmm_cached(&kernel, &a, &b, 0).unwrap();
        prop_assert_eq!(miss.max_abs_diff(&want).unwrap(), 0.0);
        prop_assert_eq!(hit.max_abs_diff(&want).unwrap(), 0.0);
        prop_assert_eq!(s1, want_stats);
        prop_assert_eq!(s2, want_stats);
        prop_assert!(engine.stats().plan_cache_hits >= 1);
    }

    /// The vectorized data path (gather + streaming panel kernels, packed
    /// or plain indices) must be bit-identical to the scalar oracle for
    /// every kernel at a random dimension in the full 1..=67 lane-tail
    /// matrix (exhaustive dims are covered by the deterministic test
    /// below; this adds random sparsity patterns on top).
    #[test]
    fn vector_path_bit_matches_oracle_at_random_dims(
        rows in 2usize..48,
        fill in 1usize..6,
        dim in 1usize..=67,
        seed in any::<u64>(),
    ) {
        let nnz = (rows * fill).min(rows * rows);
        let (a, b) = random_inputs(rows, nnz, dim, seed);
        for kernel in kernels() {
            let plan = kernel.plan(&a, dim);
            let (want, _) = execute_sequential(&plan, &a, &b).unwrap();
            for path in [DataPath::Scalar, DataPath::Tiled, DataPath::Vector] {
                let engine = ExecEngine::with_data_path(1, path);
                let (got, _) = engine.execute(&plan, &a, &b).unwrap();
                prop_assert_eq!(
                    got.max_abs_diff(&want).unwrap(),
                    0.0,
                    "kernel={} path={:?} dim={}",
                    kernel.name(),
                    path,
                    dim
                );
                let prep = PreparedPlan::for_matrix(plan.clone(), &a);
                let (packed, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
                prop_assert_eq!(
                    packed.max_abs_diff(&want).unwrap(),
                    0.0,
                    "packed kernel={} path={:?} dim={}",
                    kernel.name(),
                    path,
                    dim
                );
            }
        }
    }

    /// The wide-dimension data path: at dims 128–512 both the pinned
    /// `ColumnStriped` policy and `Auto` (which stripes at these dims)
    /// must stay **bit-identical** to the sequential oracle at every
    /// worker count — each stripe replays the full (thread, segment)
    /// walk over its own column window, so per-column addition order is
    /// the oracle's. FastMath stays off (the exact default), and the
    /// fused epilogue forms must equal oracle-then-apply exactly too.
    #[test]
    fn column_striped_wide_dims_bit_match_oracle(
        rows in 2usize..32,
        fill in 1usize..4,
        seed in any::<u64>(),
    ) {
        let nnz = (rows * fill).min(rows * rows);
        for &dim in &[128usize, 256, 512] {
            let (a, b) = random_inputs(rows, nnz, dim, seed);
            let plan = MergePathSpmm::with_threads(7).plan(&a, dim);
            let (want, _) = execute_sequential(&plan, &a, &b).unwrap();
            let prep = PreparedPlan::for_matrix(plan, &a);
            let bias: Vec<f32> = (0..dim).map(|j| (j % 13) as f32 * 0.25 - 1.0).collect();
            let mut biased = want.clone();
            for row in biased.as_mut_slice().chunks_mut(dim) {
                Epilogue::BiasRelu(bias.clone()).apply_row(row);
            }
            for &workers in &[2usize, 4, 8] {
                for policy in [SchedPolicy::ColumnStriped, SchedPolicy::Auto] {
                    let engine =
                        ExecEngine::with_sched_policy(workers, DataPath::Auto, policy)
                            .with_fast_math(false);
                    prop_assert!(
                        engine.selects_striping(&prep, dim),
                        "policy={:?} dim={} stripes", policy, dim
                    );
                    let (got, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
                    prop_assert_eq!(
                        got.max_abs_diff(&want).unwrap(),
                        0.0,
                        "policy={:?} workers={} dim={}", policy, workers, dim
                    );
                    let (fused, _) = engine
                        .execute_prepared_fused(&prep, &a, &b, &Epilogue::BiasRelu(bias.clone()))
                        .unwrap();
                    prop_assert_eq!(
                        fused.max_abs_diff(&biased).unwrap(),
                        0.0,
                        "fused policy={:?} workers={} dim={}", policy, workers, dim
                    );
                }
            }
        }
    }
}

/// Exhaustive sweep of every dense dimension 1..=67 (covering the scalar
/// tail of every lane width: 4, 8, 16 and their combinations) on a matrix
/// that mixes an evil long row, single-nnz rows, and empty rows — the
/// degree spectrum the adaptive dispatcher splits on.
#[test]
fn all_paths_bit_match_oracle_for_dims_1_to_67() {
    let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
    // Evil row 0: 20 non-zeros (streaming kernel territory).
    for c in 0..20 {
        triplets.push((0, c, 0.25 * c as f32 - 2.0));
    }
    // Single-nnz rows (gather territory); rows 21, 24, 27 stay empty.
    for r in (1..30).filter(|r| r % 3 != 0) {
        triplets.push((r, (r * 7) % 30, 1.0 - 0.1 * r as f32));
    }
    let a = CsrMatrix::from_triplets(30, 30, &triplets).unwrap();
    let kernel = MergePathSpmm::with_threads(11);
    for dim in 1..=67usize {
        let b = DenseMatrix::from_fn(30, dim, |r, c| ((r * 13 + c * 5) % 23) as f32 * 0.125 - 1.0);
        let plan = kernel.plan(&a, dim);
        let (want, _) = execute_sequential(&plan, &a, &b).unwrap();
        for path in [DataPath::Scalar, DataPath::Tiled, DataPath::Vector] {
            let engine = ExecEngine::with_data_path(1, path);
            let prep = PreparedPlan::for_matrix(plan.clone(), &a);
            let (got, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
            assert_eq!(
                got.max_abs_diff(&want).unwrap(),
                0.0,
                "path={path:?} dim={dim}"
            );
        }
    }
}
