//! Figure 9 — performance scaling on the 1000-core multicore (Table I).
//!
//! Simulates MergePath-SpMM and GNNAdvisor on the Graphite-like multicore
//! model at 64–1024 cores (one kernel thread per core for MergePath;
//! GNNAdvisor's neighbor groups dealt round-robin), printing each kernel's
//! completion time normalized to its own 64-core run plus the critical
//! core's compute/memory breakdown — the two series of Figure 9.
//!
//! Default mode scales com-Amazon and Twitter-partial down 1/8 to keep
//! runtimes in seconds; pass `--full` for published sizes.

use mpspmm_bench::{banner, full_size_requested, SEED};
use mpspmm_core::{MergePathSpmm, NnzSplitSpmm, SpmmKernel};
use mpspmm_graphs::find_dataset;
use mpspmm_multicore::{simulate, McConfig};

const CORE_COUNTS: [usize; 5] = [64, 128, 256, 512, 1024];

fn main() {
    let full = full_size_requested();
    banner(
        "Figure 9",
        "MergePath-SpMM and GNNAdvisor completion times, 64..1024 cores, dim 16",
        full,
    );
    println!("\nTable I machine: {:#?}\n", McConfig::table_i());

    for (name, scale) in [
        ("Cora", 1usize),
        ("Pubmed", 1),
        ("Nell", 1),
        ("com-Amazon", 8),
        ("Twitter-partial", 8),
    ] {
        let spec = find_dataset(name).expect("in Table II");
        let spec = if full || scale == 1 {
            spec.clone()
        } else {
            spec.scaled_down(scale)
        };
        let a = spec.synthesize(SEED);
        // §V-D: with one thread per core the merge-path cost is
        // items/cores; the paper notes only Cora stays under 25 at 1024
        // cores (hence its flattening), all others exceed 100.
        let cost_at_1024 = a.merge_items().div_ceil(1024);
        println!(
            "{name}{} — {} nodes, {} nnz, merge-path cost at 1024 cores = {}",
            if spec.nnz != find_dataset(name).unwrap().nnz {
                " (scaled 1/8)"
            } else {
                ""
            },
            a.rows(),
            a.nnz(),
            cost_at_1024,
        );
        for kernel in ["MergePath-SpMM", "GNNAdvisor"] {
            print!("  {kernel:<16}");
            let mut base = 0.0f64;
            let mut at1024 = None;
            for &cores in &CORE_COUNTS {
                let cfg = McConfig::with_cores(cores);
                let plan = match kernel {
                    "MergePath-SpMM" => MergePathSpmm::with_threads(cores).plan(&a, 16),
                    _ => NnzSplitSpmm::new().plan(&a, 16),
                };
                let r = simulate(&plan, &a, 16, &cfg);
                if cores == CORE_COUNTS[0] {
                    base = r.cycles as f64;
                }
                print!(" {:>5.2}", r.cycles as f64 / base);
                if cores == 1024 {
                    at1024 = Some(r);
                }
            }
            let r = at1024.expect("1024-core run present");
            println!(
                "   | @1024: {} cycles, compute/memory of critical core = {}/{} ({:.0}% memory)",
                r.cycles,
                r.critical_compute,
                r.critical_memory,
                r.memory_fraction() * 100.0
            );
        }
    }

    println!(
        "\ncolumns: completion time at 64/128/256/512/1024 cores, normalized \
         to the kernel's own 64-core run (lower is better).\n\
         Paper shape: GNNAdvisor stops scaling at high core counts on the \
         evil-row graphs (Cora, Nell) — conflicting atomics become sharing \
         misses that serialize; MergePath-SpMM keeps scaling to 1024 cores \
         on all inputs (Cora flattens last, its merge-path cost drops below \
         25); the memory-stall component scales far worse than compute; \
         MergePath-SpMM leads GNNAdvisor at 1024 cores on the imbalanced \
         graphs (paper: ~2x overall)."
    );
}
