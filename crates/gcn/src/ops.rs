//! Dense linear-algebra operations for the GCN combination phase.

use mpspmm_core::parallel_apply_chunks;
use mpspmm_sparse::{DenseMatrix, SparseFormatError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Dense matrix multiplication `A × B` (row-major, ikj loop order) with a
/// per-element `a == 0.0` skip.
///
/// This is the `X × W` step of **layer 0** of a GNN, where `X` is the
/// moderately sparse raw feature matrix and the skip pays for itself
/// (most products are against zero). Hidden layers — whose activations
/// are dense — go through the engine's blocked, register-tiled GEMM
/// ([`mpspmm_core::ExecEngine::gemm`]) instead, which drops the branch
/// entirely; the two agree bit-for-bit on every product the skip doesn't
/// turn into a skipped `+ 0.0` (i.e. everywhere, up to the sign of
/// zeros — see the `gemm_dense_vs_naive` property test).
///
/// # Errors
///
/// Returns [`SparseFormatError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn gemm(
    a: &DenseMatrix<f32>,
    b: &DenseMatrix<f32>,
) -> Result<DenseMatrix<f32>, SparseFormatError> {
    if a.cols() != b.rows() {
        return Err(SparseFormatError::ShapeMismatch {
            left: (a.rows(), a.cols()),
            right: (b.rows(), b.cols()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::<f32>::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (dst, &bv) in orow.iter_mut().zip(brow) {
                *dst += av * bv;
            }
        }
    }
    Ok(out)
}

/// Nonlinear activation functions used between GCN layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Logistic sigmoid, `1 / (1 + e^-x)`.
    Sigmoid,
    /// No activation (final layer before softmax/loss).
    Identity,
}

impl Activation {
    /// Applies the activation element-wise in place.
    ///
    /// This is the **unfused fallback** — the hot layer paths fuse their
    /// activation into the engine's SpMM store stage
    /// ([`mpspmm_core::Epilogue`]) and never re-stream the output. When
    /// it does run (seed-oracle `forward`, sigmoid layers, standalone
    /// use), large matrices are split across the engine's worker pool;
    /// the per-span loops are branch-light and autovectorize.
    pub fn apply(&self, m: &mut DenseMatrix<f32>) {
        match self {
            Activation::Relu => {
                parallel_apply_chunks(m.as_mut_slice(), 1, |_, span| {
                    // Select form, not a branched store: the sign pattern
                    // of post-SpMM activations is close to random, and a
                    // data-dependent branch here mispredicts half the
                    // time. Semantics are unchanged (`-0.0` and NaN pass
                    // through), so fused/unfused bit-identity holds.
                    for v in span {
                        *v = if *v < 0.0 { 0.0 } else { *v };
                    }
                });
            }
            Activation::Sigmoid => {
                parallel_apply_chunks(m.as_mut_slice(), 1, |_, span| {
                    for v in span {
                        *v = 1.0 / (1.0 + (-*v).exp());
                    }
                });
            }
            Activation::Identity => {}
        }
    }
}

/// Row-wise softmax (numerically stabilized), producing per-node class
/// probabilities from the final layer's logits. Rows are independent, so
/// large matrices are processed row-parallel on the engine's worker pool.
///
/// Degenerate rows are handled deterministically:
///
/// * a row containing any `NaN` has no well-defined distribution and
///   becomes all zeros (previously such rows were silently left holding
///   their raw logits, because `fold(NEG_INFINITY, f32::max)` *ignores*
///   `NaN` unless it is the only value — the "max is NaN" guard never
///   actually fired on mixed rows);
/// * a row whose maximum is `+∞` or `-∞` (all-`-∞` rows included) is
///   left untouched, as before — there is no stable finite shift.
pub fn softmax_rows(m: &mut DenseMatrix<f32>) {
    let cols = m.cols();
    if cols == 0 || m.rows() == 0 {
        return;
    }
    parallel_apply_chunks(m.as_mut_slice(), cols, |_, span| {
        for row in span.chunks_mut(cols) {
            if row.iter().any(|v| v.is_nan()) {
                row.fill(0.0);
                continue;
            }
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if !max.is_finite() {
                continue;
            }
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    });
}

/// Glorot/Xavier-style uniform weight initialization, seeded and
/// deterministic: entries drawn from `U(-s, s)` with
/// `s = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_init(fan_in: usize, fan_out: usize, seed: u64) -> DenseMatrix<f32> {
    let s = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut rng = SmallRng::seed_from_u64(seed);
    DenseMatrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-s..s))
}

/// Deterministic synthetic node-feature matrix: moderately sparse
/// (about `density` of entries non-zero), matching the paper's description
/// of `X` as "moderately sparse since the nodes do not have valid values
/// for all possible features".
pub fn random_features(nodes: usize, features: usize, density: f64, seed: u64) -> DenseMatrix<f32> {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFEED);
    DenseMatrix::from_fn(nodes, features, |_, _| {
        if rng.gen::<f64>() < density {
            rng.gen_range(0.0..1.0)
        } else {
            0.0
        }
    })
}

/// The same feature matrix as [`random_features`], stored as CSR.
///
/// The paper's unified-engine accelerators (§II) run the `X × W` phase on
/// the *same* SpMM hardware as `A × XW`, exploiting X's moderate sparsity;
/// this constructor feeds that path (see
/// [`GcnLayer::forward_sparse_input`](crate::GcnLayer::forward_sparse_input)).
pub fn random_sparse_features(
    nodes: usize,
    features: usize,
    density: f64,
    seed: u64,
) -> mpspmm_sparse::CsrMatrix<f32> {
    let dense = random_features(nodes, features, density, seed);
    mpspmm_sparse::CsrMatrix::from_dense(&dense)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_matches_hand_computation() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_rejects_shape_mismatch() {
        let a = DenseMatrix::<f32>::zeros(2, 3);
        let b = DenseMatrix::<f32>::zeros(2, 3);
        assert!(gemm(&a, &b).is_err());
    }

    #[test]
    fn gemm_identity() {
        let i = DenseMatrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let b = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let c = gemm(&i, &b).unwrap();
        assert_eq!(c, b);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = DenseMatrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]).unwrap();
        Activation::Relu.apply(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        let mut m = DenseMatrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]).unwrap();
        Activation::Sigmoid.apply(&mut m);
        let v = m.as_slice();
        assert!(v[0] < 0.01 && (v[1] - 0.5).abs() < 1e-6 && v[2] > 0.99);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        softmax_rows(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(m.row(r).iter().all(|&v| v > 0.0));
        }
        // Largest logit keeps the largest probability.
        assert!(m.get(0, 2) > m.get(0, 1));
    }

    #[test]
    fn softmax_nan_row_becomes_deterministic_zeros() {
        // Regression: `fold(NEG_INFINITY, f32::max)` ignores NaN on mixed
        // rows, so the old "max not finite" guard never fired and the row
        // kept its raw logits (including the NaN). Now any NaN-bearing
        // row collapses to all zeros, and clean rows are unaffected.
        let mut m = DenseMatrix::from_vec(
            3,
            3,
            vec![1.0, f32::NAN, 2.0, 1.0, 2.0, 3.0, f32::NAN, -1.0, 0.5],
        )
        .unwrap();
        softmax_rows(&mut m);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 0.0, 0.0]);
        let s: f32 = m.row(1).iter().sum();
        assert!((s - 1.0).abs() < 1e-6, "clean row still normalized");
        assert!(m.row(1).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_infinite_rows_and_empty_are_untouched() {
        let mut m = DenseMatrix::from_vec(2, 2, vec![f32::INFINITY, 1.0, 1.0, 2.0]).unwrap();
        softmax_rows(&mut m);
        assert_eq!(m.row(0), &[f32::INFINITY, 1.0], "inf row left as-is");
        let mut empty = DenseMatrix::<f32>::zeros(0, 4);
        softmax_rows(&mut empty);
        let mut zero_wide = DenseMatrix::<f32>::zeros(4, 0);
        softmax_rows(&mut zero_wide);
    }

    #[test]
    fn activation_apply_parallel_matches_scalar_reference() {
        // Big enough to cross the pool's inline threshold.
        let n = mpspmm_core::PAR_APPLY_MIN_LEN + 13;
        let vals: Vec<f32> = (0..n).map(|i| ((i % 23) as f32) - 11.0).collect();
        for act in [Activation::Relu, Activation::Sigmoid] {
            let mut m = DenseMatrix::from_vec(1, n, vals.clone()).unwrap();
            act.apply(&mut m);
            for (i, (&got, &x)) in m.as_slice().iter().zip(&vals).enumerate() {
                let want = match act {
                    Activation::Relu => {
                        if x < 0.0 {
                            0.0
                        } else {
                            x
                        }
                    }
                    Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                    Activation::Identity => x,
                };
                assert_eq!(got, want, "{act:?} element {i}");
            }
        }
    }

    #[test]
    fn xavier_init_is_seeded_and_bounded() {
        let w1 = xavier_init(64, 16, 7);
        let w2 = xavier_init(64, 16, 7);
        assert_eq!(w1, w2);
        let s = (6.0f32 / 80.0).sqrt();
        assert!(w1.as_slice().iter().all(|v| v.abs() <= s));
        assert!(w1.as_slice().iter().any(|v| v.abs() > 1e-4));
    }

    #[test]
    fn random_features_match_density() {
        let x = random_features(200, 50, 0.3, 5);
        let nnz = x.as_slice().iter().filter(|&&v| v != 0.0).count();
        let frac = nnz as f64 / (200.0 * 50.0);
        assert!((frac - 0.3).abs() < 0.05, "density {frac}");
    }
}
