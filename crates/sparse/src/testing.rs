//! Test-support assertions for sparse results.
//!
//! The dense oracle suites compare outputs element-by-element; a sparse
//! output (SpGEMM) can diverge *structurally* (an entry present on one
//! side only), *positionally* (same nnz, different columns), or
//! *numerically* (same pattern, different bits). A bare `assert_eq!` on
//! two [`CsrMatrix`] values reports none of that usefully — on mismatch
//! it dumps both full matrices. [`assert_csr_eq`] instead diffs the two
//! through their [`CooMatrix`] triplet views and panics with the first
//! divergent rows and entries, so a property-test shrink reads as "row
//! 17: expected col 4 = 0.25, got col 5 = 0.25" instead of two pages of
//! arrays.

use crate::{CooMatrix, CsrMatrix};

/// How many divergent entries/rows a failure message lists before
/// eliding the rest.
const MAX_DIFFS: usize = 8;

/// Asserts that two f32 CSR matrices are **bit-identical**: same shape,
/// same per-row structure, and per-entry values equal as bit patterns
/// (so `-0.0 != 0.0` and `NaN == NaN` at the same payload — exactly the
/// determinism contract the SpGEMM engine makes against its sequential
/// oracle).
///
/// # Panics
///
/// Panics with a structured diff on any mismatch: shape, total nnz, the
/// first rows whose lengths disagree, and the first few differing
/// `(row, col, value)` triplets from the [`CooMatrix`] views of both
/// sides.
pub fn assert_csr_eq(actual: &CsrMatrix<f32>, expected: &CsrMatrix<f32>) {
    assert_eq!(
        (actual.rows(), actual.cols()),
        (expected.rows(), expected.cols()),
        "CSR shape mismatch (actual vs expected)"
    );
    if actual.nnz() != expected.nnz() || actual.row_ptr() != expected.row_ptr() {
        let mut rows = Vec::new();
        for r in 0..actual.rows() {
            if actual.row_nnz(r) != expected.row_nnz(r) {
                rows.push(format!(
                    "row {r}: nnz {} (expected {})",
                    actual.row_nnz(r),
                    expected.row_nnz(r)
                ));
                if rows.len() >= MAX_DIFFS {
                    rows.push("…".to_string());
                    break;
                }
            }
        }
        panic!(
            "CSR structure mismatch: total nnz {} (expected {})\n{}",
            actual.nnz(),
            expected.nnz(),
            rows.join("\n")
        );
    }
    let a = CooMatrix::from(actual);
    let e = CooMatrix::from(expected);
    let mut diffs = Vec::new();
    for (&(ar, ac, av), &(er, ec, ev)) in a.triplets().iter().zip(e.triplets()) {
        // Row pointers already matched, so positions pair up row by row;
        // values compare as bits (the determinism contract).
        if (ar, ac) != (er, ec) || av.to_bits() != ev.to_bits() {
            diffs.push(format!(
                "({ar}, {ac}) = {av:?} [{:#010x}], expected ({er}, {ec}) = {ev:?} [{:#010x}]",
                av.to_bits(),
                ev.to_bits()
            ));
            if diffs.len() >= MAX_DIFFS {
                diffs.push("…".to_string());
                break;
            }
        }
    }
    assert!(
        diffs.is_empty(),
        "CSR entry mismatch ({} shown):\n{}",
        diffs.len().min(MAX_DIFFS),
        diffs.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<(usize, f32)>]) -> CsrMatrix<f32> {
        CsrMatrix::from_sorted_rows(4, rows).unwrap()
    }

    #[test]
    fn equal_matrices_pass() {
        let a = m(&[vec![(0, 1.0), (2, -2.0)], vec![], vec![(3, 0.5)]]);
        assert_csr_eq(&a, &a.clone());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_names_shapes() {
        assert_csr_eq(&CsrMatrix::zeros(2, 4), &CsrMatrix::zeros(3, 4));
    }

    #[test]
    #[should_panic(expected = "row 1: nnz 0 (expected 1)")]
    fn structure_mismatch_names_rows() {
        let a = m(&[vec![(0, 1.0)], vec![]]);
        let e = m(&[vec![(0, 1.0)], vec![(1, 2.0)]]);
        assert_csr_eq(&a, &e);
    }

    #[test]
    #[should_panic(expected = "entry mismatch")]
    fn value_mismatch_names_entries() {
        let a = m(&[vec![(0, 1.0), (1, 2.0)]]);
        let e = m(&[vec![(0, 1.0), (1, 2.5)]]);
        assert_csr_eq(&a, &e);
    }

    #[test]
    #[should_panic(expected = "entry mismatch")]
    fn negative_zero_differs_from_zero() {
        let a = m(&[vec![(0, -0.0)]]);
        let e = m(&[vec![(0, 0.0)]]);
        assert_csr_eq(&a, &e);
    }
}
