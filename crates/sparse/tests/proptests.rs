//! Property-based tests for the sparse matrix substrate.

use mpspmm_sparse::{CooMatrix, CsrMatrix, DenseMatrix};
use proptest::collection::btree_set;
use proptest::prelude::*;

/// Strategy producing an arbitrary valid CSR matrix (as unique triplets).
fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix<f32>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(rows, cols)| {
        btree_set((0..rows, 0..cols), 0..=max_nnz.min(rows * cols)).prop_map(move |coords| {
            let triplets: Vec<(usize, usize, f32)> = coords
                .into_iter()
                .enumerate()
                .map(|(k, (r, c))| (r, c, (k % 7) as f32 + 1.0))
                .collect();
            CsrMatrix::from_triplets(rows, cols, &triplets).expect("unique coords are valid")
        })
    })
}

proptest! {
    #[test]
    fn csr_invariants_hold(m in arb_csr(24, 96)) {
        let rp = m.row_ptr();
        prop_assert_eq!(rp.len(), m.rows() + 1);
        prop_assert_eq!(rp[0], 0);
        prop_assert_eq!(rp[m.rows()], m.nnz());
        for w in rp.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for r in 0..m.rows() {
            let row = m.row(r);
            for w in row.cols.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn dense_round_trip_preserves_matrix(m in arb_csr(16, 64)) {
        let back = CsrMatrix::from_dense(&m.to_dense());
        prop_assert_eq!(m, back);
    }

    #[test]
    fn transpose_is_involution(m in arb_csr(16, 64)) {
        prop_assert_eq!(m.clone(), m.transpose().transpose());
    }

    #[test]
    fn transpose_matches_dense_transpose(m in arb_csr(12, 40)) {
        let t = m.transpose();
        let d = m.to_dense();
        let td = t.to_dense();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                prop_assert_eq!(d.get(r, c), td.get(c, r));
            }
        }
    }

    #[test]
    fn coo_to_csr_preserves_entries(m in arb_csr(12, 40)) {
        let mut coo = CooMatrix::new(m.rows(), m.cols());
        for r in 0..m.rows() {
            let row = m.row(r);
            for (&c, &v) in row.cols.iter().zip(row.vals) {
                coo.push(r, c, v).unwrap();
            }
        }
        let back = CsrMatrix::from(coo);
        prop_assert_eq!(m, back);
    }

    #[test]
    fn row_lengths_sum_to_nnz(m in arb_csr(24, 96)) {
        let total: usize = m.row_lengths().iter().sum();
        prop_assert_eq!(total, m.nnz());
    }

    #[test]
    fn degree_stats_are_consistent(m in arb_csr(24, 96)) {
        let s = mpspmm_sparse::stats::DegreeStats::compute(&m);
        prop_assert_eq!(s.rows, m.rows());
        prop_assert_eq!(s.nnz, m.nnz());
        prop_assert!(s.min <= s.max);
        prop_assert!((0.0..=1.0).contains(&s.gini));
        prop_assert!(s.p99 <= s.max);
        let lengths = m.row_lengths();
        prop_assert_eq!(s.max, lengths.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing(m in arb_csr(24, 96)) {
        let ccdf = mpspmm_sparse::stats::degree_ccdf(&m);
        for w in ccdf.windows(2) {
            prop_assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        if let Some(first) = ccdf.first() {
            prop_assert!((first.1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_from_fn_get_agree(rows in 1usize..16, cols in 1usize..16) {
        let m = DenseMatrix::from_fn(rows, cols, |r, c| (r * 31 + c) as f32);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(m.get(r, c), (r * 31 + c) as f32);
            }
        }
    }
}
