//! Scheduler benchmark — static span partition vs work stealing.
//!
//! The container this harness usually runs in has a single hardware
//! core, so multi-worker *wall* times cannot demonstrate load-balance
//! wins directly. Instead the harness does what the paper does for its
//! GPU kernels: it computes **model makespans** from the merge-item work
//! model (items = rows touched + non-zeros, the cost both the planner
//! and [`mpspmm_core::chunk_threads`] balance on), then scales items to
//! nanoseconds with a measured serial calibration so the numbers are in
//! real units:
//!
//! * **static** makespan — exact: the maximum item cost over the
//!   engine's contiguous per-worker thread spans;
//! * **stealing** makespan — a deterministic greedy simulation of the
//!   chunk deques: each worker drains its own dealt block front-first
//!   and steals from the back of the next non-empty victim, exactly the
//!   engine's probe order.
//!
//! Real executions still run at every configuration (they validate the
//! policies and produce the steal/chunk counters and per-worker load
//! shares in the report); their wall times are reported honestly but
//! are serialized by the single core.
//!
//! Writes `BENCH_steal.json`. Pass `--smoke` for a seconds-fast run on
//! scaled-down graphs (the tier-1 gate).

use std::collections::VecDeque;

use mpspmm_bench::{banner, time_ns, SEED};
use mpspmm_core::{
    default_workers, DataPath, ExecEngine, KernelPlan, MergePathSpmm, PreparedPlan, RowSplitSpmm,
    SchedPolicy, SpmmKernel, STEAL_CHUNKS_PER_WORKER,
};
use mpspmm_graphs::{DatasetSpec, GraphClass};
use mpspmm_sparse::reorder::{degree_sort_permutation, permute_rows};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};

const DIM: usize = 16;

/// Per-logical-thread merge-item cost: rows touched plus non-zeros.
fn thread_items(plan: &KernelPlan) -> Vec<u64> {
    plan.threads
        .iter()
        .map(|t| {
            t.segments
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| 1 + (s.nz_end - s.nz_start) as u64)
                .sum()
        })
        .collect()
}

/// Exact static-partition makespan in items: the worst contiguous
/// `threads.div_ceil(workers)`-sized span.
fn static_makespan(items: &[u64], workers: usize) -> u64 {
    let per = items.len().div_ceil(workers.max(1)).max(1);
    items.chunks(per).map(|c| c.iter().sum()).max().unwrap_or(0)
}

/// Deterministic greedy simulation of the stealing scheduler over the
/// engine's own chunk descriptors: contiguous blocks are dealt to each
/// worker, the globally earliest-finishing worker takes its next own
/// chunk (front) or steals from the back of the first non-empty victim
/// in `(w+1)%W` probe order. Returns the simulated makespan in items.
fn stealing_makespan(prep: &PreparedPlan, items: &[u64], workers: usize) -> u64 {
    let chunks = prep.chunk_descriptors(workers * STEAL_CHUNKS_PER_WORKER);
    let cost: Vec<u64> = chunks
        .iter()
        .map(|c| {
            items[c.thread_start as usize..c.thread_end as usize]
                .iter()
                .sum()
        })
        .collect();
    let per = chunks.len().div_ceil(workers.max(1)).max(1);
    let mut deques: Vec<VecDeque<usize>> = (0..workers)
        .map(|w| ((w * per).min(cost.len())..((w + 1) * per).min(cost.len())).collect())
        .collect();
    let mut clock = vec![0u64; workers];
    while deques.iter().any(|d| !d.is_empty()) {
        let w = (0..workers).min_by_key(|&w| clock[w]).unwrap();
        let next = deques[w]
            .pop_front()
            .or_else(|| (1..workers).find_map(|i| deques[(w + i) % workers].pop_back()));
        match next {
            Some(c) => clock[w] += cost[c],
            // This worker is starved but others still hold work they are
            // already executing; advance it past the next finisher.
            None => {
                let t = (0..workers)
                    .filter(|&v| v != w)
                    .map(|v| clock[v])
                    .min()
                    .unwrap_or(clock[w]);
                clock[w] = clock[w].max(t);
                if deques.iter().all(|d| d.is_empty()) {
                    break;
                }
            }
        }
    }
    clock.into_iter().max().unwrap_or(0)
}

struct GraphCase {
    label: &'static str,
    a: CsrMatrix<f32>,
    kernel: Box<dyn SpmmKernel>,
    kernel_label: &'static str,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "BENCH steal",
        "static span partition vs work stealing (model makespans + real counters)",
        !smoke,
    );

    let (nodes, nnz, max_deg, threads) = if smoke {
        (2_000, 20_000, 400, 512)
    } else {
        (20_000, 200_000, 4_000, 2_048)
    };
    // Generous min-of-N sampling: several configurations (Auto vs pinned
    // Static on a balanced graph) execute the *same* code path, so any
    // measured difference is pure scheduler-noise the minimum must crush.
    let (warm, iters) = if smoke { (2, 11) } else { (3, 17) };

    // Skewed case: a power-law graph, degree-sorted so the hub rows
    // cluster at the front — the worst case for a contiguous row-split
    // span, the natural case for stealing. Uniform case: a structured
    // graph under the merge-path planner, whose spans are already
    // nnz-balanced — `Auto` must keep it on the static path.
    let pl = DatasetSpec::custom("steal-powerlaw", GraphClass::PowerLaw, nodes, nnz, max_deg)
        .synthesize(SEED);
    let pl_sorted = permute_rows(&pl, &degree_sort_permutation(&pl));
    let uniform = DatasetSpec::custom(
        "steal-uniform",
        GraphClass::Structured,
        nodes,
        nnz,
        2 * nnz / nodes + 2,
    )
    .synthesize(SEED ^ 1);

    let cases = [
        GraphCase {
            label: "powerlaw-sorted",
            a: pl_sorted.clone(),
            kernel: Box::new(RowSplitSpmm::with_threads(threads)),
            kernel_label: "RowSplit",
        },
        GraphCase {
            label: "powerlaw-sorted",
            a: pl_sorted,
            kernel: Box::new(MergePathSpmm::with_threads(threads)),
            kernel_label: "MergePath",
        },
        GraphCase {
            label: "uniform",
            a: uniform,
            kernel: Box::new(MergePathSpmm::with_threads(threads)),
            kernel_label: "MergePath",
        },
    ];

    let mut workers_list = vec![default_workers(), 4, 8];
    workers_list.sort_unstable();
    workers_list.dedup();

    println!(
        "\n{:<16} {:<10} {:>3} {:>6} {:>13} {:>13} {:>8} {:>7} {:>8}",
        "graph", "kernel", "W", "auto", "static ns", "steal ns", "speedup", "steals", "chunks"
    );

    let mut records = Vec::new();
    let mut skewed_speedup_4w = 0.0f64;
    let mut uniform_regression_pct = 0.0f64;
    let mut uniform_auto_policy = "unknown".to_string();

    for case in &cases {
        let a = &case.a;
        let b = DenseMatrix::from_fn(a.cols(), DIM, |r, c| {
            ((r * 31 + c * 7) % 17) as f32 * 0.125 - 1.0
        });
        let plan = case.kernel.plan(a, DIM);
        let items = thread_items(&plan);
        let total_items: u64 = items.iter().sum();
        let prep = PreparedPlan::for_matrix(plan, a);

        // Serial calibration: measured ns per merge item on this graph.
        let serial = ExecEngine::with_sched_policy(1, DataPath::Vector, SchedPolicy::Static);
        let serial_ns = time_ns(warm, iters, || {
            let _ = serial.execute_prepared(&prep, a, &b).unwrap();
        });
        let ns_per_item = serial_ns / total_items as f64;

        for &w in &workers_list {
            let static_items = static_makespan(&items, w);
            let steal_items = stealing_makespan(&prep, &items, w);
            let static_ns = static_items as f64 * ns_per_item;
            let steal_ns = steal_items as f64 * ns_per_item;
            let speedup = static_ns / steal_ns.max(1.0);

            let eng_static =
                ExecEngine::with_sched_policy(w, DataPath::Vector, SchedPolicy::Static);
            let eng_steal =
                ExecEngine::with_sched_policy(w, DataPath::Vector, SchedPolicy::Stealing);
            let eng_auto = ExecEngine::with_sched_policy(w, DataPath::Vector, SchedPolicy::Auto);
            let wall_static = time_ns(warm, iters, || {
                let _ = eng_static.execute_prepared(&prep, a, &b).unwrap();
            });
            let wall_steal = time_ns(warm, iters, || {
                let _ = eng_steal.execute_prepared(&prep, a, &b).unwrap();
            });
            let wall_auto = time_ns(warm, iters, || {
                let _ = eng_auto.execute_prepared(&prep, a, &b).unwrap();
            });
            let auto_steals = eng_auto.selects_stealing(&prep);
            let stats = eng_steal.stats();
            let loads = eng_steal.worker_loads();
            let total_load: u64 = loads.iter().sum::<u64>().max(1);
            let shares: Vec<String> = loads
                .iter()
                .map(|&l| format!("{:.3}", l as f64 / total_load as f64))
                .collect();

            println!(
                "{:<16} {:<10} {:>3} {:>6} {:>13.0} {:>13.0} {:>7.2}x {:>7} {:>8}",
                case.label,
                case.kernel_label,
                w,
                if auto_steals { "steal" } else { "static" },
                static_ns,
                steal_ns,
                speedup,
                stats.steals,
                stats.chunks_executed
            );

            if case.label == "powerlaw-sorted" && case.kernel_label == "RowSplit" && w == 4 {
                skewed_speedup_4w = speedup;
            }
            if case.label == "uniform" && w == 4 {
                uniform_auto_policy = if auto_steals { "stealing" } else { "static" }.to_string();
                // When Auto lands on Static it dispatches the *same*
                // function as the pinned-Static engine, so the regression
                // is structurally zero; if it ever mis-selects stealing
                // the model makespans price the mistake. (Wall times for
                // both engines are in the record, but on this 1-core
                // container their difference is scheduler noise.)
                uniform_regression_pct = if auto_steals {
                    (steal_ns - static_ns) / static_ns * 100.0
                } else {
                    0.0
                };
            }

            records.push(format!(
                concat!(
                    "    {{\"graph\": \"{}\", \"kernel\": \"{}\", \"workers\": {}, ",
                    "\"auto_policy\": \"{}\", \"static_makespan_ns\": {:.0}, ",
                    "\"stealing_makespan_ns\": {:.0}, \"model_speedup\": {:.3}, ",
                    "\"wall_static_ns\": {:.0}, \"wall_stealing_ns\": {:.0}, ",
                    "\"wall_auto_ns\": {:.0}, \"steals\": {}, \"steal_fails\": {}, ",
                    "\"chunks\": {}, \"worker_load_shares\": [{}]}}"
                ),
                case.label,
                case.kernel_label,
                w,
                if auto_steals { "stealing" } else { "static" },
                static_ns,
                steal_ns,
                speedup,
                wall_static,
                wall_steal,
                wall_auto,
                stats.steals,
                stats.steal_fails,
                stats.chunks_executed,
                shares.join(", ")
            ));
        }
    }

    println!(
        "\nskewed model speedup at 4 workers (RowSplit): {skewed_speedup_4w:.2}x \
         | uniform Auto policy: {uniform_auto_policy} \
         (regression {uniform_regression_pct:+.1}%)"
    );

    let json = format!(
        concat!(
            "{{\n  \"baseline\": \"static contiguous-span schedule, same engine\",\n",
            "  \"speedup\": {:.3},\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"acceptance\": {{\n",
            "    \"skewed_speedup_at_4_workers\": {:.3},\n",
            "    \"uniform_auto_policy\": \"{}\",\n",
            "    \"uniform_auto_regression_pct\": {:.3}\n",
            "  }}\n}}\n"
        ),
        skewed_speedup_4w,
        records.join(",\n"),
        skewed_speedup_4w,
        uniform_auto_policy,
        uniform_regression_pct
    );
    std::fs::write("BENCH_steal.json", &json).expect("write BENCH_steal.json");
    println!("wrote BENCH_steal.json");
}
