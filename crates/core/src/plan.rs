//! Kernel work plans: the common currency between the SpMM strategies, the
//! CPU executors, and the machine-model simulators.
//!
//! Every parallelization strategy (§II: row-splitting, nnz-splitting /
//! GNNAdvisor, merge-path with serial fix-up, and the proposed
//! MergePath-SpMM) reduces to an assignment of *segments* — contiguous
//! non-zero ranges within a single row plus a [`Flush`] policy for the
//! output-row update — to logical threads. [`KernelPlan`] captures that
//! assignment. The CPU executors run plans directly
//! ([`crate::executor`]); the GPU and multicore simulators lower plans to
//! machine traces.

use mpspmm_sparse::CsrMatrix;

use crate::merge_path::merge_path_search;
use crate::stats::WriteStats;

/// How a segment's accumulated partial result reaches the output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flush {
    /// Plain (non-atomic) write by the row's exclusive owner
    /// (MergePath-SpMM complete rows, Algorithm 2 line 15).
    Regular,
    /// Atomic accumulation — the row may be updated concurrently by other
    /// threads (MergePath-SpMM partial rows, Algorithm 2 lines 5/9/13;
    /// *every* update in GNNAdvisor).
    Atomic,
    /// The thread only computes a local running total ("carry"); the
    /// dimension-wide addition into the output row happens in a **serial
    /// phase** after all threads finish — the merge-path SpMV fix-up
    /// generalized to SpMM (the Figure 2 "merge-path" baseline). The
    /// column-striped executor instead replays carries *per stripe*,
    /// inside the parallel phase: each stripe owns its column window, so
    /// the replay needs no cross-worker ordering at all.
    Carry,
}

/// A contiguous range of non-zeros within one row, processed by one
/// logical thread, flushed to the output with one update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Output row this segment accumulates into.
    pub row: usize,
    /// First non-zero (global CSR position, inclusive).
    pub nz_start: usize,
    /// One-past-last non-zero (global CSR position, exclusive).
    pub nz_end: usize,
    /// Output-update policy.
    pub flush: Flush,
}

impl Segment {
    /// Number of non-zeros in this segment.
    pub fn len(&self) -> usize {
        self.nz_end - self.nz_start
    }

    /// Whether the segment covers no non-zeros.
    pub fn is_empty(&self) -> bool {
        self.nz_start == self.nz_end
    }
}

/// The segments assigned to one logical thread, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadPlan {
    /// Segments executed sequentially by this thread.
    pub segments: Vec<Segment>,
}

impl ThreadPlan {
    /// Total non-zeros this thread processes.
    pub fn nnz(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    /// Number of carry segments (serial-phase flushes this thread feeds).
    pub fn carries(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.flush == Flush::Carry && !s.is_empty())
            .count()
    }
}

/// A complete kernel decomposition into per-logical-thread parallel work.
///
/// Threads whose plans contain [`Flush::Carry`] segments feed a serial
/// post-barrier phase: one dimension-wide vector addition per non-empty
/// carry segment, executed in thread order by a single thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelPlan {
    /// Per-logical-thread parallel work.
    pub threads: Vec<ThreadPlan>,
}

/// Plan validation failure: the decomposition is not a correct, race-free
/// cover of the matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// Some non-zero is covered by zero or several segments.
    BadCoverage {
        /// Global non-zero index with wrong multiplicity.
        nz: usize,
        /// Number of segments covering it.
        count: usize,
    },
    /// A segment references non-zeros outside its stated row.
    RowRangeMismatch {
        /// Offending segment.
        segment: Segment,
    },
    /// A row is written non-atomically by one thread while other parallel
    /// updates to it exist — a data race.
    UnsafeSharing {
        /// The row with conflicting updates.
        row: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadCoverage { nz, count } => {
                write!(
                    f,
                    "non-zero {nz} is covered by {count} segments instead of 1"
                )
            }
            PlanError::RowRangeMismatch { segment } => write!(
                f,
                "segment {segment:?} references non-zeros outside row {}",
                segment.row
            ),
            PlanError::UnsafeSharing { row } => write!(
                f,
                "row {row} mixes non-atomic parallel writes with other updates (data race)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl KernelPlan {
    /// All non-empty segments of the plan with their owning logical thread
    /// index, in execution order.
    pub fn iter_segments(&self) -> impl Iterator<Item = (usize, &Segment)> {
        self.threads
            .iter()
            .enumerate()
            .flat_map(|(t, p)| p.segments.iter().map(move |s| (t, s)))
            .filter(|(_, s)| !s.is_empty())
    }

    /// Number of logical threads (including empty ones).
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total non-zeros the plan's threads cover — one of the raw
    /// features the auto-tuner's [`GraphFingerprint`](crate::tuner::GraphFingerprint)
    /// quantizes.
    pub fn nnz_total(&self) -> usize {
        self.threads.iter().map(ThreadPlan::nnz).sum()
    }

    /// Total serial-phase flushes (non-empty carry segments).
    pub fn serial_flushes(&self) -> usize {
        self.threads.iter().map(ThreadPlan::carries).sum()
    }

    /// Splits the plan's non-empty segments at the degree-adaptive
    /// dispatch threshold of the engine's vectorized data path:
    /// `(gather_bound, stream_bound)` — segments with at most
    /// `gather_max` non-zeros run the gather microkernel, the rest run
    /// the streaming panel kernel. Like [`write_stats`](Self::write_stats)
    /// this is a property of the plan alone, so the engine computes it
    /// once at preparation time rather than per segment in the hot loop.
    pub fn dispatch_profile(&self, gather_max: usize) -> (usize, usize) {
        let mut gather = 0;
        let mut stream = 0;
        for (_, seg) in self.iter_segments() {
            if seg.len() <= gather_max {
                gather += 1;
            } else {
                stream += 1;
            }
        }
        (gather, stream)
    }

    /// Aggregate write statistics implied by the plan (what the kernel
    /// *will* do; the executors recompute the same numbers while running).
    pub fn write_stats(&self) -> WriteStats {
        let mut stats = WriteStats::default();
        for (_, seg) in self.iter_segments() {
            match seg.flush {
                Flush::Atomic => {
                    stats.atomic_row_updates += 1;
                    stats.atomic_nnz += seg.len();
                }
                Flush::Regular => {
                    stats.regular_row_writes += 1;
                    stats.regular_nnz += seg.len();
                }
                Flush::Carry => {
                    stats.serial_row_updates += 1;
                    stats.serial_nnz += seg.len();
                }
            }
        }
        stats
    }

    /// Checks that the plan is a correct and race-free decomposition of
    /// `matrix`:
    ///
    /// 1. every stored non-zero is covered by exactly one segment;
    /// 2. every segment's non-zero range lies inside its stated row;
    /// 3. any row with a [`Flush::Regular`] write receives no other
    ///    *parallel* update (atomic or regular) — carry flushes are
    ///    ordered after the barrier and therefore safe.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule.
    pub fn validate<T>(&self, matrix: &CsrMatrix<T>) -> Result<(), PlanError> {
        let row_ptr = matrix.row_ptr();
        let mut coverage = vec![0u32; matrix.nnz()];
        // Per row: (parallel updates, regular writes).
        let mut row_updates = vec![(0u32, 0u32); matrix.rows()];
        for (_, seg) in self.iter_segments() {
            if seg.nz_start < row_ptr[seg.row] || seg.nz_end > row_ptr[seg.row + 1] {
                return Err(PlanError::RowRangeMismatch { segment: *seg });
            }
            for slot in &mut coverage[seg.nz_start..seg.nz_end] {
                *slot += 1;
            }
            let entry = &mut row_updates[seg.row];
            match seg.flush {
                Flush::Regular => {
                    entry.0 += 1;
                    entry.1 += 1;
                }
                Flush::Atomic => entry.0 += 1,
                Flush::Carry => {}
            }
        }
        if let Some((nz, &count)) = coverage.iter().enumerate().find(|&(_, &c)| c != 1) {
            return Err(PlanError::BadCoverage {
                nz,
                count: count as usize,
            });
        }
        for (row, &(parallel, regular)) in row_updates.iter().enumerate() {
            if regular > 0 && parallel > 1 {
                return Err(PlanError::UnsafeSharing { row });
            }
        }
        Ok(())
    }
}

/// A unit of stealable work: a contiguous block of *logical threads* of a
/// [`KernelPlan`], plus the non-zeros it covers.
///
/// The work-stealing engine ([`crate::ExecEngine`] with
/// [`crate::SchedPolicy::Stealing`]) does not schedule logical threads
/// individually — a plan routinely has thousands — nor whole static worker
/// spans, which is exactly the coarse assignment stealing is meant to fix.
/// Instead the plan is pre-split into ~4–8× more chunks than workers, each
/// nnz-balanced by running the *same* merge-path search that balances the
/// plan itself, one level up: list A becomes the per-thread cumulative nnz
/// end offsets ("finish a logical thread"), list B the non-zeros. Chunk
/// boundaries therefore always land on logical-thread boundaries, so every
/// chunk inherits the plan's flush annotations unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkDesc {
    /// First logical thread of the chunk (inclusive).
    pub thread_start: u32,
    /// One-past-last logical thread of the chunk (exclusive).
    pub thread_end: u32,
    /// Non-zeros covered by the chunk's logical threads.
    pub nnz: usize,
}

impl ChunkDesc {
    /// Number of logical threads in the chunk.
    pub fn threads(&self) -> usize {
        (self.thread_end - self.thread_start) as usize
    }
}

/// Splits `thread_nnz_ends` (per-logical-thread cumulative nnz end
/// offsets, i.e. `ends[t]` = total non-zeros owned by threads `0..=t`)
/// into at most `target` contiguous, nnz-balanced [`ChunkDesc`]s.
///
/// This is the merge-path decomposition applied to the plan itself (see
/// [`ChunkDesc`]): balance is on merge items `threads + nnz`, so a run of
/// empty logical threads still costs something and cannot pile into one
/// chunk. Chunks never split a logical thread; a single thread heavier
/// than the budget becomes its own over-budget chunk. Empty chunk ranges
/// are dropped, so fewer than `target` chunks may be returned. Returns an
/// empty vector when there are no logical threads.
pub fn chunk_threads(thread_nnz_ends: &[usize], target: usize) -> Vec<ChunkDesc> {
    let threads = thread_nnz_ends.len();
    if threads == 0 {
        return Vec::new();
    }
    let total_nnz = *thread_nnz_ends.last().unwrap();
    let target = target.clamp(1, threads);
    let items = threads + total_nnz;
    let per_chunk = items.div_ceil(target).max(1);
    let mut chunks = Vec::with_capacity(target);
    let mut start = 0usize;
    let mut lo_nnz = 0usize;
    for k in 1..=target {
        let diag = (k * per_chunk).min(items);
        // `row` = number of logical threads fully consumed at `diag`.
        let end = merge_path_search(diag, thread_nnz_ends, total_nnz)
            .row
            .clamp(start, threads);
        if end > start {
            let hi_nnz = thread_nnz_ends[end - 1];
            chunks.push(ChunkDesc {
                thread_start: start as u32,
                thread_end: end as u32,
                nnz: hi_nnz - lo_nnz,
            });
            start = end;
            lo_nnz = hi_nnz;
        }
        if start == threads {
            break;
        }
    }
    if start < threads {
        chunks.push(ChunkDesc {
            thread_start: start as u32,
            thread_end: threads as u32,
            nnz: total_nnz - lo_nnz,
        });
    }
    chunks
}

/// Non-zero skew of the **static** per-worker partition the engine would
/// use for this plan: max span nnz over ideal (mean) span nnz, where the
/// spans are the `ceil(threads / workers)`-sized contiguous logical-thread
/// blocks of the static scheduler.
///
/// This is the imbalance the work-stealing scheduler can recover, and the
/// signal [`crate::SchedPolicy::Auto`] thresholds on: merge-path plans are
/// nnz-balanced per *logical thread*, so their static spans stay near 1.0
/// and keep the bit-identical static fast path, while row-split plans on
/// power-law graphs can concentrate hub rows into one span and push the
/// skew far above it. Returns 1.0 (no skew) for degenerate inputs (≤ 1
/// worker, no threads, no non-zeros).
pub fn static_span_skew(thread_nnz_ends: &[usize], workers: usize) -> f64 {
    let threads = thread_nnz_ends.len();
    let total = thread_nnz_ends.last().copied().unwrap_or(0);
    if workers <= 1 || threads == 0 || total == 0 {
        return 1.0;
    }
    let workers = workers.min(threads);
    let per = threads.div_ceil(workers);
    let mut max_nnz = 0usize;
    let mut lo = 0usize;
    let mut start = 0usize;
    while start < threads {
        let end = (start + per).min(threads);
        let hi = thread_nnz_ends[end - 1];
        max_nnz = max_nnz.max(hi - lo);
        lo = hi;
        start = end;
    }
    max_nnz as f64 / (total as f64 / workers as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_sparse::CsrMatrix;

    fn two_row_matrix() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 1.0), (1, 1, 1.0)]).unwrap()
    }

    fn seg(row: usize, nz_start: usize, nz_end: usize, flush: Flush) -> Segment {
        Segment {
            row,
            nz_start,
            nz_end,
            flush,
        }
    }

    fn plan(threads: Vec<Vec<Segment>>) -> KernelPlan {
        KernelPlan {
            threads: threads
                .into_iter()
                .map(|segments| ThreadPlan { segments })
                .collect(),
        }
    }

    #[test]
    fn valid_plan_passes() {
        let m = two_row_matrix();
        let p = plan(vec![
            vec![seg(0, 0, 2, Flush::Regular)],
            vec![seg(1, 2, 3, Flush::Regular)],
        ]);
        p.validate(&m).unwrap();
        let stats = p.write_stats();
        assert_eq!(stats.regular_row_writes, 2);
        assert_eq!(stats.regular_nnz, 3);
        assert_eq!(stats.atomic_row_updates, 0);
        assert_eq!(p.serial_flushes(), 0);
    }

    #[test]
    fn detects_uncovered_nnz() {
        let m = two_row_matrix();
        let p = plan(vec![vec![seg(0, 0, 2, Flush::Regular)]]);
        assert_eq!(
            p.validate(&m).unwrap_err(),
            PlanError::BadCoverage { nz: 2, count: 0 }
        );
    }

    #[test]
    fn detects_double_coverage() {
        let m = two_row_matrix();
        let p = plan(vec![vec![
            seg(0, 0, 2, Flush::Atomic),
            seg(0, 1, 2, Flush::Atomic),
            seg(1, 2, 3, Flush::Regular),
        ]]);
        assert_eq!(
            p.validate(&m).unwrap_err(),
            PlanError::BadCoverage { nz: 1, count: 2 }
        );
    }

    #[test]
    fn detects_row_range_mismatch() {
        let m = two_row_matrix();
        let p = plan(vec![vec![seg(1, 0, 3, Flush::Regular)]]);
        assert!(matches!(
            p.validate(&m).unwrap_err(),
            PlanError::RowRangeMismatch { .. }
        ));
    }

    #[test]
    fn detects_unsafe_sharing() {
        let m = two_row_matrix();
        let p = plan(vec![
            vec![seg(0, 0, 1, Flush::Regular)],
            vec![seg(0, 1, 2, Flush::Atomic), seg(1, 2, 3, Flush::Regular)],
        ]);
        assert_eq!(
            p.validate(&m).unwrap_err(),
            PlanError::UnsafeSharing { row: 0 }
        );
    }

    #[test]
    fn shared_rows_with_all_atomic_updates_are_fine() {
        let m = two_row_matrix();
        let p = plan(vec![
            vec![seg(0, 0, 1, Flush::Atomic)],
            vec![seg(0, 1, 2, Flush::Atomic), seg(1, 2, 3, Flush::Regular)],
        ]);
        p.validate(&m).unwrap();
        let stats = p.write_stats();
        assert_eq!(stats.atomic_row_updates, 2);
        assert_eq!(stats.atomic_nnz, 2);
    }

    #[test]
    fn dispatch_profile_splits_at_threshold() {
        let p = plan(vec![
            vec![seg(0, 0, 2, Flush::Regular), seg(1, 2, 2, Flush::Atomic)],
            vec![seg(1, 2, 3, Flush::Regular)],
        ]);
        // Empty segments are ignored; lengths are 2 and 1.
        assert_eq!(p.dispatch_profile(0), (0, 2));
        assert_eq!(p.dispatch_profile(1), (1, 1));
        assert_eq!(p.dispatch_profile(2), (2, 0));
    }

    #[test]
    fn carry_segments_count_as_serial() {
        let m = two_row_matrix();
        let p = plan(vec![
            vec![seg(0, 0, 1, Flush::Carry)],
            vec![seg(0, 1, 2, Flush::Carry), seg(1, 2, 3, Flush::Regular)],
        ]);
        p.validate(&m).unwrap();
        let stats = p.write_stats();
        assert_eq!(stats.serial_row_updates, 2);
        assert_eq!(stats.serial_nnz, 2);
        assert_eq!(p.serial_flushes(), 2);
    }

    #[test]
    fn carry_alongside_regular_write_is_safe() {
        // A regular parallel write plus a post-barrier carry flush do not
        // race (the carry is ordered after the barrier).
        let m = two_row_matrix();
        let p = plan(vec![
            vec![seg(0, 0, 1, Flush::Regular)],
            vec![seg(0, 1, 2, Flush::Carry), seg(1, 2, 3, Flush::Regular)],
        ]);
        p.validate(&m).unwrap();
    }

    #[test]
    fn chunk_threads_tiles_and_balances() {
        // 8 logical threads, one heavy (thread 2 owns 40 nnz of 54).
        let nnz = [2usize, 3, 40, 1, 0, 5, 2, 1];
        let ends: Vec<usize> = nnz
            .iter()
            .scan(0usize, |acc, &n| {
                *acc += n;
                Some(*acc)
            })
            .collect();
        for target in 1..=8 {
            let chunks = chunk_threads(&ends, target);
            assert!(!chunks.is_empty() && chunks.len() <= target);
            // Chunks tile the logical threads contiguously.
            assert_eq!(chunks[0].thread_start, 0);
            assert_eq!(chunks.last().unwrap().thread_end as usize, nnz.len());
            for w in chunks.windows(2) {
                assert_eq!(w[0].thread_end, w[1].thread_start);
            }
            // Reported nnz matches the covered threads, summing to total.
            let total: usize = chunks.iter().map(|c| c.nnz).sum();
            assert_eq!(total, 54);
            for c in &chunks {
                let want: usize = nnz[c.thread_start as usize..c.thread_end as usize]
                    .iter()
                    .sum();
                assert_eq!(c.nnz, want);
            }
        }
        // The heavy thread is isolated once the budget is small enough.
        let chunks = chunk_threads(&ends, 8);
        assert!(chunks.iter().any(|c| c.threads() == 1 && c.nnz == 40));
    }

    #[test]
    fn chunk_threads_handles_degenerate_inputs() {
        assert!(chunk_threads(&[], 4).is_empty());
        // All-empty threads still form chunks (merge items = threads).
        let chunks = chunk_threads(&[0, 0, 0, 0], 2);
        assert_eq!(chunks.last().unwrap().thread_end, 4);
        assert_eq!(chunks.iter().map(|c| c.nnz).sum::<usize>(), 0);
        // target larger than threads clamps to one thread per chunk.
        let chunks = chunk_threads(&[1, 2], 16);
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    fn static_span_skew_flags_clustered_heavy_spans() {
        // Balanced: every thread owns the same nnz → skew 1.0.
        let ends: Vec<usize> = (1..=8).map(|t| t * 4).collect();
        assert!((static_span_skew(&ends, 4) - 1.0).abs() < 1e-12);
        // All the work in the first span of 2 threads → skew = workers.
        let ends = [16usize, 32, 32, 32, 32, 32, 32, 32];
        assert!((static_span_skew(&ends, 4) - 4.0).abs() < 1e-12);
        // Degenerate cases report no skew.
        assert_eq!(static_span_skew(&[], 4), 1.0);
        assert_eq!(static_span_skew(&[0, 0], 4), 1.0);
        assert_eq!(static_span_skew(&ends, 1), 1.0);
    }

    #[test]
    fn empty_segments_are_ignored() {
        let m = two_row_matrix();
        let p = plan(vec![
            vec![seg(0, 0, 2, Flush::Regular), seg(1, 2, 2, Flush::Atomic)],
            vec![seg(1, 2, 3, Flush::Regular)],
        ]);
        p.validate(&m).unwrap();
        assert_eq!(p.write_stats().atomic_row_updates, 0);
    }
}
