//! Property-based tests for the SIMT lowering and timing engine.

use mpspmm_core::{
    Flush, KernelPlan, MergePathSpmm, NnzSplitSpmm, Segment, SpmmKernel, ThreadPlan,
};
use mpspmm_simt::{engine, lower_with_policy, GpuConfig, GpuKernel, LoweringPolicy};
use mpspmm_sparse::CsrMatrix;
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary plan: a list of per-thread nnz counts over one long row.
fn arb_plan(max_threads: usize, max_len: usize) -> impl Strategy<Value = (KernelPlan, usize)> {
    vec((1..=max_len, 0..3u8), 1..=max_threads).prop_map(|threads| {
        let mut nz = 0usize;
        let mut plans = Vec::new();
        for (len, flush) in threads {
            let flush = match flush {
                0 => Flush::Regular,
                1 => Flush::Atomic,
                _ => Flush::Carry,
            };
            plans.push(ThreadPlan {
                segments: vec![Segment {
                    row: 0,
                    nz_start: nz,
                    nz_end: nz + len,
                    flush,
                }],
            });
            nz += len;
        }
        (KernelPlan { threads: plans }, nz)
    })
}

proptest! {
    #[test]
    fn lowering_conserves_memory_operations(
        (plan, total_nnz) in arb_plan(40, 20),
        dim in prop_oneof![Just(2usize), Just(8), Just(16), Just(32), Just(64), Just(128)],
    ) {
        let lanes = 32;
        for policy in [
            LoweringPolicy::merge_path(),
            LoweringPolicy::gnnadvisor(),
            LoweringPolicy::gnnadvisor_opt(),
        ] {
            let run = lower_with_policy(&plan, dim, lanes, policy, 100);
            let slices = dim.div_ceil(lanes) as u64;
            let mem_ops: u64 = run.warps.iter().map(|w| w.mem_ops).sum();
            // Every non-zero's fetch appears exactly once per dimension
            // slice, however the threads are packed.
            prop_assert_eq!(mem_ops, total_nnz as u64 * slices);
            // Atomic flushes are conserved too.
            let atomics: u64 = run.warps.iter().map(|w| w.atomic_rows.len() as u64).sum();
            let expected: u64 = plan
                .threads
                .iter()
                .flat_map(|t| &t.segments)
                .filter(|s| s.flush == Flush::Atomic)
                .count() as u64
                * slices;
            prop_assert_eq!(atomics, expected);
        }
    }

    #[test]
    fn packing_never_increases_total_steps(
        (plan, _) in arb_plan(40, 20),
        dim in prop_oneof![Just(2usize), Just(4), Just(8), Just(16)],
    ) {
        let packed = lower_with_policy(&plan, dim, 32, LoweringPolicy::merge_path(), 100);
        let unpacked = lower_with_policy(&plan, dim, 32, LoweringPolicy::gnnadvisor(), 100);
        prop_assert!(packed.total_steps() <= unpacked.total_steps());
        prop_assert!(packed.warps.len() <= unpacked.warps.len());
    }

    #[test]
    fn engine_is_deterministic_and_monotone_in_launch(
        (plan, _) in arb_plan(30, 16),
    ) {
        let run = lower_with_policy(&plan, 16, 32, LoweringPolicy::merge_path(), 100);
        let cfg = GpuConfig::rtx6000();
        let r1 = engine::simulate(&run, &cfg);
        let r2 = engine::simulate(&run, &cfg);
        prop_assert_eq!(&r1, &r2);
        let mut slow = cfg.clone();
        slow.launch_overhead += 1_000.0;
        let r3 = engine::simulate(&run, &slow);
        prop_assert!(r3.cycles > r1.cycles);
        prop_assert!(r1.cycles >= r1.parallel_cycles + r1.launch_cycles);
    }

    #[test]
    fn kernels_price_positive_times_on_arbitrary_graphs(
        n in 4usize..40,
        density in 1usize..5,
        dim in prop_oneof![Just(2usize), Just(16), Just(64)],
    ) {
        let triplets: Vec<(usize, usize, f32)> = (0..n * density)
            .map(|k| (((k * 7) % n, (k * 13) % n), 1.0f32))
            .collect::<std::collections::BTreeMap<(usize, usize), f32>>()
            .into_iter()
            .map(|((r, c), v)| (r, c, v))
            .collect();
        prop_assume!(!triplets.is_empty());
        let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let cfg = GpuConfig::rtx6000();
        for k in [
            GpuKernel::MergePath { cost: Some(5) },
            GpuKernel::GnnAdvisor { opt: true, ng_size: Some(2) },
            GpuKernel::RowSplit,
            GpuKernel::SerialFixup { threads: Some(8) },
        ] {
            let report = k.simulate(&a, dim, &cfg);
            prop_assert!(report.micros.is_finite() && report.micros > 0.0);
        }
    }

    #[test]
    fn serial_phase_only_for_carry_kernels(n in 8usize..60, threads in 2usize..16) {
        let triplets: Vec<(usize, usize, f32)> =
            (0..3 * n).map(|k| ((k % n, (k * 3 + 1) % n), 1.0f32))
                .collect::<std::collections::BTreeMap<(usize, usize), f32>>()
                .into_iter()
                .map(|((r, c), v)| (r, c, v))
                .collect();
        let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let cfg = GpuConfig::rtx6000();
        let mp_plan = MergePathSpmm::with_threads(threads).plan(&a, 16);
        let mp_run = lower_with_policy(&mp_plan, 16, 32, LoweringPolicy::merge_path(), n);
        prop_assert_eq!(engine::simulate(&mp_run, &cfg).serial_cycles, 0.0);
        let gnn_plan = NnzSplitSpmm::with_ng_size(2).plan(&a, 16);
        let gnn_run = lower_with_policy(&gnn_plan, 16, 32, LoweringPolicy::gnnadvisor(), n);
        prop_assert_eq!(engine::simulate(&gnn_run, &cfg).serial_cycles, 0.0);
    }
}
