//! Quickstart: compute a load-balanced SpMM with MergePath-SpMM.
//!
//! Builds a small power-law graph, multiplies its adjacency matrix by a
//! dense feature product with every available kernel, checks they agree,
//! and prints the write statistics that distinguish the strategies.
//!
//! Run with: `cargo run --release --example quickstart`

use merge_path_spmm::core::{
    MergePathSerialFixup, MergePathSpmm, NnzSplitSpmm, RowSplitSpmm, SerialSpmm, SpmmKernel,
};
use merge_path_spmm::gcn::ops::random_features;
use merge_path_spmm::graphs::{DatasetSpec, GraphClass};
use merge_path_spmm::sparse::stats::DegreeStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic power-law graph: 5,000 nodes, 25,000 edges, one evil row
    // of 800 non-zeros.
    let spec = DatasetSpec::custom("quickstart", GraphClass::PowerLaw, 5_000, 25_000, 800);
    let a = spec.synthesize(42);
    let stats = DegreeStats::compute(&a);
    println!(
        "graph: {} nodes, {} non-zeros, avg degree {:.1}, max degree {} (evil-row ratio {:.0})",
        stats.rows,
        stats.nnz,
        stats.avg,
        stats.max,
        stats.evil_row_ratio()
    );

    // The dense operand XW: 16 hidden dimensions (the paper's default).
    let xw = random_features(a.cols(), 16, 1.0, 7);

    // The reference answer.
    let (reference, _) = SerialSpmm.spmm_sequential(&a, &xw)?;

    let kernels: Vec<Box<dyn SpmmKernel>> = vec![
        Box::new(RowSplitSpmm::with_threads(1024)),
        Box::new(NnzSplitSpmm::new()),
        Box::new(MergePathSerialFixup::new()),
        Box::new(MergePathSpmm::new()),
    ];
    println!(
        "\n{:<28} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "kernel", "threads", "atomic upd", "regular upd", "serial upd", "max |err|"
    );
    for kernel in &kernels {
        let plan = kernel.plan(&a, xw.cols());
        plan.validate(&a)?;
        let (out, stats) = kernel.spmm_with_stats(&a, &xw)?;
        println!(
            "{:<28} {:>9} {:>12} {:>12} {:>12} {:>10.2e}",
            kernel.name(),
            plan.num_threads(),
            stats.atomic_row_updates,
            stats.regular_row_writes,
            stats.serial_row_updates,
            out.max_abs_diff(&reference)?,
        );
    }

    println!(
        "\nAll kernels compute the same product; they differ in how the work \
         is balanced and how many output updates need synchronization — \
         MergePath-SpMM bounds work per thread AND confines atomics to \
         partial rows."
    );
    Ok(())
}
