//! Fused-pipeline oracle: for every layer type, data path, scheduling
//! policy, and worker count, the fused cached forward pass must agree
//! with an unfused composition of the same engine primitives — **bit-**
//! identically wherever the engine run is deterministic (one worker, or
//! the stealing scheduler's serial-replay guarantee at any count), and
//! to tolerance on the one nondeterministic configuration (static
//! multi-worker, whose shared-row CAS ordering may reassociate sums).
//!
//! Every fused output is additionally checked against the seed
//! `forward` path (naive GEMM + plain kernel SpMM + separate epilogue
//! passes) to numerical tolerance, pinning the whole pipeline — not just
//! the fusion delta — to the original semantics.

use mpspmm_core::{default_workers, DataPath, ExecEngine, MergePathSpmm, SchedPolicy};
use mpspmm_gcn::ops::{gemm, random_features, xavier_init, Activation};
use mpspmm_gcn::{GcnLayer, GinLayer, SageMeanLayer};
use mpspmm_graphs::{gcn_normalize, mean_normalize, sum_with_self_loops, DatasetSpec, GraphClass};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};

const NODES: usize = 120;
const IN_DIM: usize = 12;

fn graph() -> CsrMatrix<f32> {
    DatasetSpec::custom("fused", GraphClass::PowerLaw, NODES, 600, 40).synthesize(9)
}

/// A run is bit-deterministic when it either has no cross-worker write
/// ordering at all (one worker), replays every order-sensitive flush
/// serially (the stealing scheduler, at any worker count), or
/// partitions output *columns* so every worker replays the full plan
/// walk over a disjoint window (the column-striped scheduler, at any
/// worker count).
fn deterministic(policy: SchedPolicy, workers: usize) -> bool {
    workers == 1 || policy == SchedPolicy::Stealing || policy == SchedPolicy::ColumnStriped
}

fn worker_counts() -> Vec<usize> {
    let mut ws = vec![1, 2, 8, default_workers()];
    ws.sort_unstable();
    ws.dedup();
    ws
}

fn engine_matrix() -> Vec<(DataPath, SchedPolicy, usize)> {
    let mut m = Vec::new();
    for path in [
        DataPath::Scalar,
        DataPath::Tiled,
        DataPath::Vector,
        DataPath::Auto,
    ] {
        for policy in [
            SchedPolicy::Static,
            SchedPolicy::Stealing,
            SchedPolicy::ColumnStriped,
        ] {
            for &w in &worker_counts() {
                m.push((path, policy, w));
            }
        }
    }
    m
}

fn assert_matches(
    got: &DenseMatrix<f32>,
    want: &DenseMatrix<f32>,
    exact: bool,
    label: &str,
    path: DataPath,
    policy: SchedPolicy,
    workers: usize,
) {
    if exact {
        assert_eq!(
            got.max_abs_diff(want).unwrap(),
            0.0,
            "{label} fused != unfused oracle (path={path:?} policy={policy:?} workers={workers})"
        );
    } else {
        assert!(
            got.approx_eq(want, 1e-5).unwrap(),
            "{label} fused out of tolerance (path={path:?} policy={policy:?} workers={workers})"
        );
    }
}

/// One GCN configuration under test, holding its own copies of the
/// weight/bias so the unfused oracle can recompose the layer from
/// engine primitives.
struct GcnCase {
    label: &'static str,
    layer: GcnLayer,
    weight: DenseMatrix<f32>,
    bias: Option<Vec<f32>>,
    activation: Activation,
}

fn gcn_cases() -> Vec<GcnCase> {
    let w = xavier_init(IN_DIM, 16, 21);
    let bias: Vec<f32> = (0..16).map(|j| (j as f32) * 0.125 - 1.0).collect();
    vec![
        GcnCase {
            label: "gcn-bias-relu",
            layer: GcnLayer::with_bias(w.clone(), bias.clone(), Activation::Relu),
            weight: w.clone(),
            bias: Some(bias.clone()),
            activation: Activation::Relu,
        },
        GcnCase {
            label: "gcn-identity",
            layer: GcnLayer::new(w.clone(), Activation::Identity),
            weight: w.clone(),
            bias: None,
            activation: Activation::Identity,
        },
        GcnCase {
            label: "gcn-bias-sigmoid-unfused-fallback",
            layer: GcnLayer::with_bias(w.clone(), bias.clone(), Activation::Sigmoid),
            weight: w,
            bias: Some(bias),
            activation: Activation::Sigmoid,
        },
    ]
}

#[test]
fn fused_layer_matches_unfused_oracle() {
    let a = gcn_normalize(&graph());
    let x = random_features(NODES, IN_DIM, 0.4, 33);
    let kernel = MergePathSpmm::with_threads(13);

    // --- GCN: the fused epilogue path proper. ---
    for case in gcn_cases() {
        for &(path, policy, workers) in &engine_matrix() {
            let engine = ExecEngine::with_sched_policy(workers, path, policy);
            let fused = case
                .layer
                .forward_cached(&a, &x, &kernel, &engine, 0)
                .unwrap();
            // Unfused composition on the same engine: engine GEMM, plain
            // cached SpMM, then bias and activation as separate passes.
            let hw = engine.gemm(&x, &case.weight).unwrap();
            let (mut want, _) = engine.spmm_cached(&kernel, &a, &hw, 0).unwrap();
            if let Some(bias) = &case.bias {
                for r in 0..want.rows() {
                    for (v, &b) in want.row_mut(r).iter_mut().zip(bias) {
                        *v += b;
                    }
                }
            }
            case.activation.apply(&mut want);
            assert_matches(
                &fused,
                &want,
                deterministic(policy, workers),
                case.label,
                path,
                policy,
                workers,
            );
            // Seed-path sanity: the whole fused layer stays within
            // numerical tolerance of the original naive pipeline.
            let seed = case.layer.forward(&a, &x, &kernel).unwrap();
            assert!(
                fused.approx_eq(&seed, 1e-4).unwrap(),
                "{} diverged from seed forward (path={path:?} policy={policy:?} workers={workers})",
                case.label,
            );
        }
    }

    // --- GIN: engine-GEMM MLP vs naive-GEMM MLP over the same cached
    // aggregation. ---
    let sum_op = sum_with_self_loops(&graph(), 0.3);
    let gin = GinLayer::new(
        xavier_init(IN_DIM, 20, 40),
        xavier_init(20, 6, 41),
        Activation::Relu,
    );
    for &(path, policy, workers) in &engine_matrix() {
        let engine = ExecEngine::with_sched_policy(workers, path, policy);
        let fused = gin
            .forward_cached(&sum_op, &x, &kernel, &engine, 0)
            .unwrap();
        let (agg, _) = engine.spmm_cached(&kernel, &sum_op, &x, 0).unwrap();
        let mut hidden = gemm(&agg, &xavier_init(IN_DIM, 20, 40)).unwrap();
        Activation::Relu.apply(&mut hidden);
        let mut want = gemm(&hidden, &xavier_init(20, 6, 41)).unwrap();
        Activation::Relu.apply(&mut want);
        assert_matches(
            &fused,
            &want,
            deterministic(policy, workers),
            "gin",
            path,
            policy,
            workers,
        );
        let seed = gin.forward(&sum_op, &x, &kernel).unwrap();
        assert!(fused.approx_eq(&seed, 1e-4).unwrap(), "gin seed sanity");
    }

    // --- SAGE: both dense products on the engine GEMM. ---
    let mean_op = mean_normalize(&graph());
    let w_self = xavier_init(IN_DIM, 7, 50);
    let w_neigh = xavier_init(IN_DIM, 7, 51);
    let sage = SageMeanLayer::new(w_self.clone(), w_neigh.clone(), Activation::Relu);
    for &(path, policy, workers) in &engine_matrix() {
        let engine = ExecEngine::with_sched_policy(workers, path, policy);
        let fused = sage
            .forward_cached(&mean_op, &x, &kernel, &engine, 0)
            .unwrap();
        let hwn = gemm(&x, &w_neigh).unwrap();
        let (neigh, _) = engine.spmm_cached(&kernel, &mean_op, &hwn, 0).unwrap();
        let mut want = gemm(&x, &w_self).unwrap();
        for (dst, &src) in want.as_mut_slice().iter_mut().zip(neigh.as_slice()) {
            *dst += src;
        }
        Activation::Relu.apply(&mut want);
        assert_matches(
            &fused,
            &want,
            deterministic(policy, workers),
            "sage",
            path,
            policy,
            workers,
        );
        let seed = sage.forward(&mean_op, &x, &kernel).unwrap();
        assert!(fused.approx_eq(&seed, 1e-4).unwrap(), "sage seed sanity");
    }
}

/// The wide-feature-dim data path end to end: a GCN layer with a
/// 256-wide hidden dimension must route its aggregation SpMM through
/// column stripes (pinned or via `Auto`'s dim threshold) and remain
/// **bit-identical** to the unfused engine composition — FastMath stays
/// off, so striping may not perturb a single bit.
#[test]
fn wide_hidden_dim_gcn_stripes_and_stays_exact() {
    const OUT_DIM: usize = 256;
    let a = gcn_normalize(&graph());
    let x = random_features(NODES, IN_DIM, 0.4, 34);
    let kernel = MergePathSpmm::with_threads(13);
    let w = xavier_init(IN_DIM, OUT_DIM, 80);
    let bias: Vec<f32> = (0..OUT_DIM)
        .map(|j| (j % 11) as f32 * 0.125 - 0.5)
        .collect();
    let layer = GcnLayer::with_bias(w.clone(), bias.clone(), Activation::Relu);
    for policy in [SchedPolicy::ColumnStriped, SchedPolicy::Auto] {
        for &workers in &[2usize, 4, 8] {
            let engine = ExecEngine::with_sched_policy(workers, DataPath::Auto, policy);
            let fused = layer.forward_cached(&a, &x, &kernel, &engine, 0).unwrap();
            assert!(
                engine.stats().stripes_executed > 0,
                "dim {OUT_DIM} routes through stripes (policy={policy:?} workers={workers})"
            );
            let hw = engine.gemm(&x, &w).unwrap();
            let (mut want, _) = engine.spmm_cached(&kernel, &a, &hw, 0).unwrap();
            for r in 0..want.rows() {
                for (v, &b) in want.row_mut(r).iter_mut().zip(&bias) {
                    *v += b;
                }
            }
            Activation::Relu.apply(&mut want);
            assert_eq!(
                fused.max_abs_diff(&want).unwrap(),
                0.0,
                "wide-dim fused != unfused oracle (policy={policy:?} workers={workers})"
            );
        }
    }
}

/// The fused batched path must match per-request fused forwards: the
/// batch merely regroups columns, and the tiled combined-width bias must
/// land on each block exactly as the per-block bias would.
#[test]
fn fused_batched_forward_matches_per_request() {
    let a = gcn_normalize(&graph());
    let model = mpspmm_gcn::GcnModel::new(vec![
        GcnLayer::with_bias(
            xavier_init(IN_DIM, 10, 60),
            (0..10).map(|j| j as f32 * 0.25 - 1.0).collect(),
            Activation::Relu,
        ),
        GcnLayer::with_bias(
            xavier_init(10, 4, 61),
            vec![0.5, -0.5, 1.0, 0.0],
            Activation::Identity,
        ),
    ]);
    let kernel = MergePathSpmm::new();
    for workers in [1usize, 4] {
        let engine = ExecEngine::with_sched_policy(workers, DataPath::Auto, SchedPolicy::Stealing);
        let prep = engine.plan_cached(&kernel, &a, model.max_features(), 0);
        let blocks: Vec<DenseMatrix<f32>> = (0..3)
            .map(|i| random_features(NODES, IN_DIM, 0.4, 70 + i))
            .collect();
        let refs: Vec<&DenseMatrix<f32>> = blocks.iter().collect();
        let batched = model
            .forward_batched_prepared(&a, &prep, &refs, &engine)
            .unwrap();
        for (x, out) in blocks.iter().zip(&batched) {
            let solo = model
                .forward_batched_prepared(&a, &prep, &[x], &engine)
                .unwrap();
            assert_eq!(
                out.max_abs_diff(&solo[0]).unwrap(),
                0.0,
                "batched fused (stealing, workers={workers}) must be exact vs solo"
            );
            let plain = model.forward(&a, x, &kernel).unwrap();
            assert!(out.approx_eq(&plain, 1e-4).unwrap(), "seed sanity");
        }
    }
}

#[test]
fn forward_sharded_agrees_bitwise_across_shard_counts() {
    // The sharded forward's invariant (DESIGN.md §2.15): every shard
    // count produces the same bits, because both halves of each layer —
    // the banded GEMM and the row-aligned shard SpMM — are
    // plan-independent per row. S=1 is the oracle for S>1.
    let a = gcn_normalize(&graph());
    let model = mpspmm_gcn::GcnModel::two_layer(IN_DIM, 16, 4, 23);
    let x = random_features(NODES, IN_DIM, 0.4, 31);
    let baseline = model
        .forward_sharded(&mpspmm_core::ShardedEngine::new(&a, 1, 1), &x)
        .unwrap();
    for shards in [2usize, 3, 5] {
        for total_workers in [1usize, 4, 8] {
            let se = mpspmm_core::ShardedEngine::new(&a, shards, total_workers);
            let got = model.forward_sharded(&se, &x).unwrap();
            assert_eq!(
                got.as_slice(),
                baseline.as_slice(),
                "shards={shards} workers={total_workers}"
            );
        }
    }
}
