//! Auto-tuner benchmark: measured arm selection vs every hand-pinned
//! configuration, plus the cost of finding out.
//!
//! The engine's `SchedPolicy::Auto` / `DataPath::Auto` routing was a set
//! of static thresholds calibrated on one machine. The online tuner
//! replaces the guess with a measurement: each cached plan explores its
//! pruned arm space (scheduler × data path × panel shape) on live
//! executions via successive halving, converges on the fastest arm, and
//! files the verdict in a persistent calibration table so the *next*
//! process skips exploration entirely.
//!
//! Per (graph, dim) row this harness measures:
//!
//! * **pinned arms** — every non-FastMath arm of the plan's space, run
//!   on an engine hard-pinned to that scheduler/data-path pair. The best
//!   of these is what an expert could have configured by hand; it is the
//!   `baseline` of the headline ratio.
//! * **tuned (cold)** — a fresh engine with a file-backed [`AutoTuner`]:
//!   the first `FIRST_N` executions including all exploration, timed as
//!   one block. The exploration *overhead* is the tuner's measured
//!   excess (time spent above the incumbent-best arm) as a fraction of
//!   that block — asserted `< 5%`.
//! * **tuned (steady)** — best-of-N once converged; asserted within
//!   noise (25%) of the best pinned arm on every row.
//!
//! After the sweep, a second engine + [`AutoTuner`] pair is built from
//! the same calibration file — a simulated process restart — and the
//! harness asserts through `EngineStats` that **zero** explorations
//! happen: every plan warm-starts converged.
//!
//! Writes `BENCH_autotune.json` (top-level `baseline`/`speedup`, where
//! `speedup` is the geomean of best-pinned over tuned-steady — ≥ 1.0
//! means the tuner found arms at least as good as hand-pinning). Pass
//! `--smoke` for a seconds-fast run on scaled-down graphs. The
//! calibration file lives under a fresh temp directory (or
//! `MPSPMM_CALIB_PATH` if set) and is removed first, so every run
//! starts cold.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use mpspmm_bench::{geomean, time_ns, SEED};
use mpspmm_core::{ArmConfig, AutoTuner, DataPath, ExecEngine, MergePathSpmm, SchedPolicy};
use mpspmm_gcn::ops::random_features;
use mpspmm_graphs::{gcn_normalize, DatasetSpec, GraphClass};
use mpspmm_sparse::CsrMatrix;

const WORKERS: usize = 4;
/// Executions in the cold-start block the exploration overhead is
/// amortized over — the "first N" of the acceptance criterion. The
/// explorer needs ~4× the arm count, so this dominates it comfortably
/// while still being a realistic warmup for a long-lived plan.
const FIRST_N: usize = 200;
/// Steady-state-vs-pinned noise allowance per row.
const NOISE: f64 = 1.25;

fn pinned_label(sched: SchedPolicy, path: DataPath) -> String {
    format!("{sched:?}/{path:?}").to_lowercase()
}

fn measure_pinned(
    kernel: &MergePathSpmm,
    a: &CsrMatrix<f32>,
    x: &mpspmm_sparse::DenseMatrix<f32>,
    dim: usize,
    arm: &ArmConfig,
    warm: usize,
    iters: usize,
) -> f64 {
    let eng = ExecEngine::with_sched_policy(WORKERS, arm.path, arm.sched);
    let prep = eng.plan_cached(kernel, a, dim, 1);
    time_ns(warm, iters, || {
        let (out, _) = eng.execute_prepared(&prep, a, x).unwrap();
        eng.recycle(out);
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dims: &[usize] = if smoke {
        &[16, 128]
    } else {
        &[16, 64, 256, 512]
    };
    let (nodes, nnz, max_deg, warm, iters) = if smoke {
        (1_600usize, 4_800usize, 80usize, 1usize, 3usize)
    } else {
        (20_000, 60_000, 600, 2, 5)
    };
    println!("==================================================================");
    println!("BENCH autotune: measured arm selection vs hand-pinned configs");
    println!(
        "SpMM through the tuned engine, dims {dims:?}, {WORKERS} workers, seed {SEED}{}",
        if smoke { " (--smoke)" } else { "" }
    );
    println!("==================================================================");

    let calib = match std::env::var_os("MPSPMM_CALIB_PATH") {
        Some(p) => PathBuf::from(p),
        None => std::env::temp_dir()
            .join(format!("mpspmm-bench-autotune-{}", std::process::id()))
            .join("calib.v1"),
    };
    // Cold start, always: a stale table would skip the exploration this
    // harness is here to measure.
    let _ = std::fs::remove_file(&calib);

    let kernel = MergePathSpmm::new();
    let graphs = [
        (
            "powerlaw",
            gcn_normalize(
                &DatasetSpec::custom(
                    "autotune-powerlaw",
                    GraphClass::PowerLaw,
                    nodes,
                    nnz,
                    max_deg,
                )
                .synthesize(SEED),
            ),
        ),
        (
            "uniform",
            gcn_normalize(
                &DatasetSpec::custom("autotune-uniform", GraphClass::Structured, nodes, nnz, 16)
                    .synthesize(SEED),
            ),
        ),
    ];

    println!(
        "\n{:<9} {:>4} {:>5} {:>8} {:>22} {:>13} {:>13} {:>9} {:>9}",
        "Graph", "dim", "arms", "explored", "best pinned", "pinned ns", "tuned ns", "ratio", "ovhd"
    );
    let mut records = Vec::new();
    let mut ratios = Vec::new();
    let mut max_overhead = 0.0f64;
    for (gname, a) in &graphs {
        for &dim in dims {
            let x = random_features(a.rows(), dim, 0.9, 33 + dim as u64);

            // The arm space, read off an untuned reference engine (it is
            // a pure function of the plan's fingerprint).
            let auto = ExecEngine::with_sched_policy(WORKERS, DataPath::Auto, SchedPolicy::Auto);
            let reference = auto.plan_cached(&kernel, a, dim, 1);
            let arms = auto.tuner_arm_space(&reference, dim);

            // Every distinct (scheduler, path) pin an expert could have
            // chosen by hand. Half-panel arms have no engine-level pin —
            // they exist only inside the tuner — so the tuner is allowed
            // to beat this set, never to lose to it.
            let mut pinned: Vec<(String, f64)> = Vec::new();
            for arm in arms.iter().filter(|m| !m.fast_math && !m.half_panel) {
                let label = pinned_label(arm.sched, arm.path);
                if pinned.iter().any(|(l, _)| *l == label) {
                    continue;
                }
                let ns = measure_pinned(&kernel, a, &x, dim, arm, warm, iters);
                pinned.push((label, ns));
            }
            let (best_label, best_ns) = pinned
                .iter()
                .min_by(|l, r| l.1.total_cmp(&r.1))
                .cloned()
                .expect("arm space is never empty");

            // Cold tuned engine: FIRST_N live executions, exploration
            // included, as one timed block.
            let tuner = Arc::new(AutoTuner::with_path(&calib));
            let tuned = ExecEngine::with_sched_policy(WORKERS, DataPath::Auto, SchedPolicy::Auto)
                .with_autotuner(Arc::clone(&tuner));
            let prep = tuned.plan_cached(&kernel, a, dim, 1);
            let block = Instant::now();
            let mut executed = 0usize;
            while executed < FIRST_N
                || !prep
                    .tune_state()
                    .expect("tuned engine attaches a slot")
                    .is_converged()
            {
                let (out, _) = tuned.execute_prepared(&prep, a, &x).unwrap();
                tuned.recycle(out);
                executed += 1;
                assert!(executed <= 8 * FIRST_N, "tuner failed to converge");
            }
            let block_ns = block.elapsed().as_nanos() as f64;
            let ts = tuned.stats().tuner;
            let overhead = ts.excess_ns as f64 / block_ns.max(1.0);
            assert!(
                overhead < 0.05,
                "{gname} dim {dim}: exploration overhead {overhead:.4} over the first \
                 {executed} executions breaches the 5% bound"
            );
            max_overhead = max_overhead.max(overhead);

            // Steady state: the converged arm, untimed by the tuner.
            let tuned_ns = time_ns(warm, iters, || {
                let (out, _) = tuned.execute_prepared(&prep, a, &x).unwrap();
                tuned.recycle(out);
            });
            let ratio = best_ns / tuned_ns;
            assert!(
                tuned_ns <= best_ns * NOISE,
                "{gname} dim {dim}: tuned steady state ({tuned_ns:.0} ns) lost to the best \
                 hand-pinned config {best_label} ({best_ns:.0} ns) beyond noise"
            );
            ratios.push(ratio);

            println!(
                "{gname:<9} {dim:>4} {:>5} {:>8} {best_label:>22} {best_ns:>13.0} \
                 {tuned_ns:>13.0} {ratio:>8.2}x {:>8.2}%",
                arms.len(),
                ts.explorations,
                overhead * 100.0
            );
            let pins: Vec<String> = pinned
                .iter()
                .map(|(l, ns)| format!("{{\"pin\": \"{l}\", \"ns\": {ns:.0}}}"))
                .collect();
            records.push(format!(
                "    {{\"graph\": \"{gname}\", \"dim\": {dim}, \"workers\": {WORKERS}, \
                 \"arms\": {}, \"explorations\": {}, \"first_n\": {executed}, \
                 \"overhead_fraction\": {overhead:.5}, \"best_pinned\": \"{best_label}\", \
                 \"best_pinned_ns\": {best_ns:.0}, \"tuned_ns\": {tuned_ns:.0}, \
                 \"tuned_vs_best_pinned\": {ratio:.3}, \"pins\": [{}]}}",
                arms.len(),
                ts.explorations,
                pins.join(", ")
            ));
        }
    }

    // Simulated restart: same calibration file, fresh everything else.
    // Every plan must come back converged without a single measured run.
    let restarted_tuner = Arc::new(AutoTuner::with_path(&calib));
    let restarted = ExecEngine::with_sched_policy(WORKERS, DataPath::Auto, SchedPolicy::Auto)
        .with_autotuner(restarted_tuner);
    for (epoch, (gname, a)) in graphs.iter().enumerate() {
        for &dim in dims {
            let x = random_features(a.rows(), dim, 0.9, 33 + dim as u64);
            let prep = restarted.plan_cached(&kernel, a, dim, epoch as u64);
            assert!(
                prep.tune_state().expect("slot").is_converged(),
                "{gname} dim {dim}: warm restart must start converged"
            );
            let (out, _) = restarted.execute_prepared(&prep, a, &x).unwrap();
            restarted.recycle(out);
        }
    }
    let restart_stats = restarted.stats().tuner;
    assert_eq!(
        restart_stats.explorations, 0,
        "warm restart performed measured explorations"
    );
    assert_eq!(restart_stats.warm_plans as usize, graphs.len() * dims.len());

    let headline = geomean(&ratios);
    println!("\ntuned Auto vs best hand-pinned config (geomean over all rows): {headline:.2}x");
    println!(
        "max exploration overhead over the first {FIRST_N}+ executions: {:.2}% (bound: 5%)",
        max_overhead * 100.0
    );
    println!(
        "warm restart: {} plans re-admitted converged, 0 explorations",
        restart_stats.warm_plans
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"baseline\": \"best hand-pinned (scheduler, data path) configuration per row, \
             picked with hindsight from timed runs of every non-FastMath arm of the plan's \
             space — what an expert could have configured statically\",\n",
            "  \"speedup\": {:.3},\n",
            "  \"smoke\": {},\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"acceptance\": {{\n",
            "    \"tuned_vs_best_pinned_geomean\": {:.3},\n",
            "    \"max_exploration_overhead_fraction\": {:.5},\n",
            "    \"overhead_bound\": 0.05,\n",
            "    \"warm_restart_explorations\": {},\n",
            "    \"warm_restart_plans\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        headline,
        smoke,
        records.join(",\n"),
        headline,
        max_overhead,
        restart_stats.explorations,
        restart_stats.warm_plans
    );
    std::fs::write("BENCH_autotune.json", &json).expect("write BENCH_autotune.json");
    println!("wrote BENCH_autotune.json");
}
