//! The batching scheduler: a dispatcher thread that coalesces queued
//! requests into dense-column batches.
//!
//! # Policy
//!
//! A batch is keyed by `(graph name, graph version, workload)` — only
//! requests that can share one engine run coalesce. The dispatcher takes
//! the oldest queued request, then *lingers* up to
//! [`ServeConfig::max_linger`](crate::ServeConfig::max_linger) sweeping
//! in every matching request until the batch holds
//! [`ServeConfig::max_batch_cols`](crate::ServeConfig::max_batch_cols)
//! dense columns. Non-matching requests stay queued in arrival order.
//!
//! # Backpressure degradation
//!
//! When the queue is deeper than
//! [`ServeConfig::pressure_threshold`](crate::ServeConfig::pressure_threshold),
//! the batch closes immediately (no linger — latency is already being
//! paid in the queue) and its column budget halves, trading peak
//! coalescing for smaller transient buffers and faster turn-around while
//! overloaded. Such batches are counted as `degraded_batches`.
//!
//! # Deadlines
//!
//! Deadlines are checked when the batch is about to execute: expired
//! requests are shed with
//! [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded)
//! rather than computed uselessly late, and they release their tenant's
//! queue slot like any other completion.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpspmm_core::{BatchMergeSpmm, BatchShapeClass, ExecEngine};
use mpspmm_sparse::{BlockDiagCsr, CsrMatrix, DenseMatrix};

use crate::error::ServeError;
use crate::registry::ServedGraph;
use crate::stats::{StatsCollector, TenantState};
use crate::{ServeConfig, Workload};

/// One chunk of burst replies: `(index into the submitted vector,
/// result)` pairs. Grouped delivery matters on the serving box: a
/// packed window answers hundreds of requests back-to-back, and one
/// message per reply means one receiver wake-up per reply — a context
/// switch storm when client and dispatcher share cores. One grouped
/// send per window keeps it to one wake-up.
pub(crate) type BurstReplies = Vec<(usize, Result<DenseMatrix<f32>, ServeError>)>;

/// Where one request's reply goes: its own channel
/// ([`Server::submit`](crate::Server::submit)) or a slot on a burst's
/// shared channel ([`Server::submit_many`](crate::Server::submit_many)
/// — one channel per burst instead of one per request). The burst
/// sender is `Arc`-wrapped so the dispatcher can group same-burst
/// replies by channel identity.
pub(crate) enum ReplySink {
    Single(std::sync::mpsc::Sender<Result<DenseMatrix<f32>, ServeError>>),
    Tagged {
        tx: Arc<std::sync::mpsc::Sender<BurstReplies>>,
        index: usize,
    },
}

impl ReplySink {
    /// Delivers one reply on its own; a disconnected receiver is the
    /// client's business, not the dispatcher's. Batch paths should
    /// group Tagged replies instead (see [`reply_all`]).
    pub(crate) fn send(&self, result: Result<DenseMatrix<f32>, ServeError>) {
        match self {
            ReplySink::Single(tx) => {
                let _ = tx.send(result);
            }
            ReplySink::Tagged { tx, index } => {
                let _ = tx.send(vec![(*index, result)]);
            }
        }
    }
}

/// One admitted request parked in the queue.
pub(crate) struct Pending {
    pub graph: Arc<ServedGraph>,
    pub tenant: Arc<TenantState>,
    pub workload: Workload,
    pub features: Arc<DenseMatrix<f32>>,
    pub submitted: Instant,
    pub deadline: Option<Instant>,
    pub reply: ReplySink,
}

impl Pending {
    fn batch_key(&self) -> (usize, u64, Workload) {
        // The Arc pointer identifies the graph *version* (hot swap
        // allocates a new ServedGraph), so one batch never mixes
        // versions; name+version would be equivalent but costlier.
        (
            Arc::as_ptr(&self.graph) as usize,
            self.graph.version(),
            self.workload,
        )
    }

    /// Graph-packing compatibility key: unlike [`batch_key`]
    /// (Self::batch_key), *different* graphs may share a packed window —
    /// what must agree is the workload, the feature width (vertical
    /// stacking), and, for GCN, the model (one mega-batched forward runs
    /// one weight set; models are compared by `Arc` pointer).
    fn pack_key(&self) -> (Workload, usize, usize) {
        let model_ptr = match self.workload {
            Workload::Spmm => 0,
            Workload::Gcn => self.graph.model().map_or(0, |m| Arc::as_ptr(m) as usize),
        };
        (self.workload, self.features.cols(), model_ptr)
    }
}

/// State shared between the submit path and the dispatcher thread.
pub(crate) struct Shared {
    pub config: ServeConfig,
    pub engine: Arc<ExecEngine>,
    pub queue: Mutex<VecDeque<Pending>>,
    pub ready: Condvar,
    pub shutdown: std::sync::atomic::AtomicBool,
    pub stats: StatsCollector,
    pub packs: Mutex<PackCache>,
}

/// Memoized pack windows the dispatcher may see again. Steady serving
/// of a registered population repeats window compositions exactly
/// (aligned client bursts, cyclic scans), and rebuilding the
/// block-diagonal matrix is a per-window `O(nnz)` copy — the single
/// largest non-compute cost of a packed window.
pub(crate) const PACK_CACHE_SLOTS: usize = 16;

/// One memoized pack. The constituent `Arc`s are held by the entry, so
/// their allocations cannot be freed and reused while cached — which
/// makes the `Arc::ptr_eq` composition comparison sound (no ABA). A
/// hot-swapped graph allocates a new `Arc`, misses here, and rebuilds
/// the pack with the new values while the structure-keyed *plan* cache
/// still hits.
struct PackEntry {
    constituents: Vec<Arc<CsrMatrix<f32>>>,
    pack: Arc<BlockDiagCsr>,
    last_used: u64,
}

/// LRU over [`PackEntry`] — see [`PACK_CACHE_SLOTS`].
#[derive(Default)]
pub(crate) struct PackCache {
    entries: Vec<PackEntry>,
    clock: u64,
}

/// Fetches (or builds and caches) the pack for exactly this sequence of
/// constituent graphs, compared by `Arc` identity.
fn cached_pack(
    shared: &Shared,
    constituents: &[Arc<CsrMatrix<f32>>],
) -> Result<Arc<BlockDiagCsr>, mpspmm_sparse::SparseFormatError> {
    let mut cache = shared.packs.lock().unwrap();
    cache.clock += 1;
    let now = cache.clock;
    if let Some(e) = cache.entries.iter_mut().find(|e| {
        e.constituents.len() == constituents.len()
            && e.constituents
                .iter()
                .zip(constituents)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }) {
        e.last_used = now;
        return Ok(Arc::clone(&e.pack));
    }
    drop(cache);
    // Build outside the lock — submit threads never touch this cache,
    // but the lock also guards nothing worth holding for an O(nnz) copy.
    let pack = Arc::new(BlockDiagCsr::build(constituents)?);
    let mut cache = shared.packs.lock().unwrap();
    while cache.entries.len() >= PACK_CACHE_SLOTS {
        let oldest = cache
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
            .expect("non-empty by loop condition");
        cache.entries.swap_remove(oldest);
    }
    cache.entries.push(PackEntry {
        constituents: constituents.to_vec(),
        pack: Arc::clone(&pack),
        last_used: now,
    });
    Ok(pack)
}

/// Dispatcher body: drains the queue into batches until shutdown is
/// flagged *and* the queue is empty (already-admitted requests are
/// always answered).
pub(crate) fn dispatcher_loop(shared: &Shared) {
    loop {
        let first = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(p) = queue.pop_front() {
                    break p;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.ready.wait(queue).unwrap();
            }
        };
        if shared.config.pack_graphs {
            let (batch, degraded) = collect_packed(shared, first);
            execute_packed(shared, batch, degraded);
        } else {
            let (batch, degraded) = collect_batch(shared, first);
            execute_batch(shared, batch, degraded);
        }
    }
}

/// Grows a batch around `first` per the policy above. Returns the batch
/// (arrival order preserved) and whether the degraded policy applied.
fn collect_batch(shared: &Shared, first: Pending) -> (Vec<Pending>, bool) {
    let key = first.batch_key();
    let mut cols = first.features.cols();
    let mut batch = vec![first];
    let mut queue = shared.queue.lock().unwrap();
    let degraded = queue.len() > shared.config.pressure_threshold;
    let (max_cols, linger) = if degraded {
        ((shared.config.max_batch_cols / 2).max(1), Duration::ZERO)
    } else {
        (shared.config.max_batch_cols, shared.config.max_linger)
    };
    let close_at = Instant::now() + linger;
    loop {
        // Sweep every currently queued request that matches the key.
        let mut i = 0;
        while i < queue.len() && cols < max_cols {
            if queue[i].batch_key() == key {
                let p = queue.remove(i).expect("index checked in bounds");
                cols += p.features.cols();
                batch.push(p);
            } else {
                i += 1;
            }
        }
        if cols >= max_cols || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let now = Instant::now();
        if now >= close_at {
            break;
        }
        // Woken by an arrival (sweep it in next iteration) or by the
        // linger timeout (one final sweep, then the time check exits).
        let (q, _timeout) = shared.ready.wait_timeout(queue, close_at - now).unwrap();
        queue = q;
    }
    drop(queue);
    (batch, degraded)
}

/// Grows a **packed** window around `first`: any request whose
/// [`pack_key`](Pending::pack_key) matches may join — different graphs
/// included — until the window holds
/// [`ServeConfig::max_batch_graphs`](crate::ServeConfig::max_batch_graphs)
/// constituents or
/// [`ServeConfig::max_batch_nnz`](crate::ServeConfig::max_batch_nnz)
/// combined non-zeros. Degradation halves the graph budget and drops the
/// linger, mirroring the column-batch policy.
fn collect_packed(shared: &Shared, first: Pending) -> (Vec<Pending>, bool) {
    let key = first.pack_key();
    let mut nnz = first.graph.adjacency().nnz();
    let mut batch = vec![first];
    let mut queue = shared.queue.lock().unwrap();
    let degraded = queue.len() > shared.config.pressure_threshold;
    let (max_graphs, linger) = if degraded {
        ((shared.config.max_batch_graphs / 2).max(1), Duration::ZERO)
    } else {
        (shared.config.max_batch_graphs, shared.config.max_linger)
    };
    let max_nnz = shared.config.max_batch_nnz;
    let close_at = Instant::now() + linger;
    loop {
        let mut i = 0;
        while i < queue.len() && batch.len() < max_graphs && nnz < max_nnz {
            if queue[i].pack_key() == key {
                let p = queue.remove(i).expect("index checked in bounds");
                nnz += p.graph.adjacency().nnz();
                batch.push(p);
            } else {
                i += 1;
            }
        }
        if batch.len() >= max_graphs || nnz >= max_nnz || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let now = Instant::now();
        if now >= close_at {
            break;
        }
        let (q, _timeout) = shared.ready.wait_timeout(queue, close_at - now).unwrap();
        queue = q;
    }
    drop(queue);
    (batch, degraded)
}

/// Answers expired members with `DeadlineExceeded` and returns the
/// survivors. Shedding is per request, whatever batching mode collected
/// the window.
fn shed_expired(shared: &Shared, batch: Vec<Pending>) -> Vec<Pending> {
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for p in batch {
        if p.deadline.is_some_and(|d| now > d) {
            shared
                .stats
                .rejected_deadline
                .fetch_add(1, Ordering::Relaxed);
            p.tenant.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            p.tenant.in_flight.fetch_sub(1, Ordering::Relaxed);
            p.reply.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(p);
        }
    }
    live
}

/// Delivers one per-request result (or the shared failure) to every
/// survivor's reply channel, updating completion counters either way.
fn reply_all(
    shared: &Shared,
    live: Vec<Pending>,
    result: Result<Vec<DenseMatrix<f32>>, mpspmm_sparse::SparseFormatError>,
) {
    // Same-burst Tagged replies are grouped into one send per channel
    // per window — one receiver wake-up instead of one per request.
    let mut bursts: Vec<(Arc<std::sync::mpsc::Sender<BurstReplies>>, BurstReplies)> = Vec::new();
    let mut deliver = |p: Pending, result: Result<DenseMatrix<f32>, ServeError>| match p.reply {
        ReplySink::Single(tx) => {
            let _ = tx.send(result);
        }
        ReplySink::Tagged { tx, index } => {
            match bursts.iter_mut().find(|(t, _)| Arc::ptr_eq(t, &tx)) {
                Some((_, replies)) => replies.push((index, result)),
                None => bursts.push((tx, vec![(index, result)])),
            }
        }
    };
    match result {
        Ok(outs) => {
            debug_assert_eq!(outs.len(), live.len());
            // One completion instant and one latency-ring lock for the
            // whole window — per-reply clock reads and lock round-trips
            // are measurable at packed window sizes.
            let now = Instant::now();
            let mut latencies = Vec::with_capacity(live.len());
            for (p, out) in live.into_iter().zip(outs) {
                latencies.push(now.saturating_duration_since(p.submitted));
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                p.tenant.completed.fetch_add(1, Ordering::Relaxed);
                p.tenant.in_flight.fetch_sub(1, Ordering::Relaxed);
                deliver(p, Ok(out));
            }
            shared.stats.record_latencies(latencies);
        }
        Err(e) => {
            // Shapes were validated at admission, so this is a bug — but
            // a serving loop must answer, not unwind.
            for p in live {
                shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
                p.tenant.in_flight.fetch_sub(1, Ordering::Relaxed);
                deliver(p, Err(ServeError::Internal(e.to_string())));
            }
        }
    }
    for (tx, replies) in bursts {
        let _ = tx.send(replies);
    }
}

/// Sheds expired members, runs the survivors as one engine run, and
/// answers every reply channel.
fn execute_batch(shared: &Shared, batch: Vec<Pending>, degraded: bool) {
    let live = shed_expired(shared, batch);
    run_column_batch(shared, live, degraded);
}

/// The classic same-graph column batch: one engine run over the
/// concatenated feature columns of `live` (all sharing one graph
/// version).
fn run_column_batch(shared: &Shared, live: Vec<Pending>, degraded: bool) {
    let Some(head) = live.first() else { return };
    let graph = Arc::clone(&head.graph);
    let workload = head.workload;
    let blocks: Vec<&DenseMatrix<f32>> = live.iter().map(|p| p.features.as_ref()).collect();
    let cols: usize = blocks.iter().map(|b| b.cols()).sum();
    // Sharded graphs bypass the shared serving engine entirely: each
    // request fans out across the graph's private shard engines
    // (gather-halo → per-shard SpMM → scatter row bands) and the shared
    // engine's pool never sees the work. Requests run one at a time —
    // the scatter/gather fan-out *is* the batch-level parallelism here,
    // and per-shard queue depths (ServeStats::sharded_graphs) show it.
    let result = if let Some(sharded) = graph.sharding() {
        let run = || -> Result<Vec<DenseMatrix<f32>>, mpspmm_sparse::SparseFormatError> {
            blocks
                .iter()
                .map(|b| match workload {
                    Workload::Spmm => sharded.spmm(b),
                    Workload::Gcn => {
                        let model = graph
                            .model()
                            .expect("Gcn workload admitted only for graphs with a model");
                        model.forward_sharded(sharded, b)
                    }
                })
                .collect()
        };
        let result = run();
        shared.stats.record_sharded(live.len());
        result
    } else {
        match workload {
            Workload::Spmm => {
                shared
                    .engine
                    .execute_prepared_batch(graph.prep(), graph.adjacency(), &blocks)
            }
            Workload::Gcn => {
                let model = graph
                    .model()
                    .expect("Gcn workload admitted only for graphs with a model");
                model.forward_batched_prepared(
                    graph.adjacency(),
                    graph.prep(),
                    &blocks,
                    &shared.engine,
                )
            }
        }
    };
    drop(blocks);
    shared.stats.record_batch(live.len(), cols, degraded);
    reply_all(shared, live, result);
}

/// Sheds, then runs a packed window as **one** block-diagonal execution:
/// constituent adjacencies concatenate on the diagonal, feature blocks
/// stack vertically, one prepared-plan run (or one mega-batched GCN
/// forward) computes everything, and each request's result is scattered
/// back out of its private row band.
///
/// A window that shrinks to a single survivor skips the packing and runs
/// the classic path against the graph's own warmed plan — zero-copy, and
/// exactly what a non-packing server would have done.
fn execute_packed(shared: &Shared, batch: Vec<Pending>, degraded: bool) {
    let live = shed_expired(shared, batch);
    if live.len() <= 1 {
        return run_column_batch(shared, live, degraded);
    }
    let workload = live[0].workload;
    let cols = live[0].features.cols();
    let result = (|| {
        let constituents: Vec<Arc<CsrMatrix<f32>>> = live
            .iter()
            .map(|p| Arc::clone(p.graph.adjacency()))
            .collect();
        let pack = cached_pack(shared, &constituents)?;
        let class = BatchShapeClass::from_graphs(live.iter().map(|p| {
            let a = p.graph.adjacency();
            (a.rows(), a.nnz(), p.graph.structure_hash())
        }));
        let feats: Vec<&DenseMatrix<f32>> = live.iter().map(|p| p.features.as_ref()).collect();
        let mut stacked = shared.engine.lease_zeroed(pack.cols(), cols);
        pack.stack_features_into(&feats, &mut stacked)?;
        let plan_dim = match workload {
            Workload::Spmm => cols.max(1),
            Workload::Gcn => live[0]
                .graph
                .model()
                .map_or(cols.max(1), |m| m.max_features()),
        };
        let prep = shared.engine.plan_batch_cached(
            &BatchMergeSpmm::new(),
            pack.matrix(),
            plan_dim,
            &class,
        );
        let out = match workload {
            Workload::Spmm => {
                shared
                    .engine
                    .execute_prepared(&prep, pack.matrix(), &stacked)?
                    .0
            }
            Workload::Gcn => {
                let model = live[0]
                    .graph
                    .model()
                    .expect("Gcn workload admitted only for graphs with a model");
                model.forward_mega_batched(pack.matrix(), &prep, &stacked, &shared.engine)?
            }
        };
        shared.engine.recycle(stacked);
        shared
            .stats
            .record_packed(live.len(), pack.nnz(), shared.config.max_batch_nnz);
        // Scatter: each request's rows are a private contiguous band of
        // the packed output (bands are disjoint by construction), copied
        // into a fresh per-request matrix — no sharing, no races.
        let outs = (0..live.len())
            .map(|i| pack.scatter_block(&out, i))
            .collect();
        shared.engine.recycle(out);
        Ok(outs)
    })();
    shared
        .stats
        .record_batch(live.len(), cols * live.len(), degraded);
    reply_all(shared, live, result);
}
