//! Multi-shard scale-out: one graph, S private engines, scatter/gather.
//!
//! A single [`ExecEngine`] caps out at one worker pool and one arena.
//! [`ShardedEngine`] runs one *large* graph across S engines by
//! partitioning the adjacency into contiguous, merge-item-balanced row
//! bands ([`mpspmm_sparse::ShardedCsr`]) and giving every band its own
//! engine — private [`crate::arena`] `BufferArena`, private plan cache,
//! private worker pool sized to `total_workers / S`
//! ([`ExecEngine::with_worker_count`]), and staggered pin bases so
//! `MPSPMM_PIN=1` lays shard `s`'s workers on cores
//! `[s·w, (s+1)·w)`. Shards share **nothing** mutable: no pool queue,
//! no arena lock, no plan-cache lock.
//!
//! # Execution model
//!
//! `spmm(B)` is gather → execute → scatter, one driver thread per
//! non-empty shard:
//!
//! 1. **Gather**: copy the shard's halo rows of `B` (the dense-operand
//!    rows its column indices touch) into a compact local operand,
//!    leased from the shard engine's arena.
//! 2. **Execute**: run the shard's sub-matrix × local operand on the
//!    shard's engine through its plan cache.
//! 3. **Scatter**: copy the result into the shard's row band of the
//!    output — bands are disjoint (`split_at_mut`), so no atomics and
//!    no cross-shard reduction, the same ownership argument as the
//!    column-stripe path one level up.
//!
//! # Bit-identity
//!
//! Sharded output is **bit-identical** to the unsharded engine and to
//! [`execute_sequential`](crate::spmm::execute_sequential) at every
//! shard × worker combination, by composition of three facts:
//!
//! * Shard plans come from [`BatchMergeSpmm`], whose merge-path
//!   boundaries are snapped to row edges: every non-empty row is exactly
//!   one `Regular` segment, so per-row accumulation order never depends
//!   on the plan's thread count or the engine's scheduling policy.
//! * The halo remap is strictly monotone, so a row's non-zeros keep
//!   their storage order and pair with byte-identical operand rows —
//!   the shard-local fold of row `r` is the *same float sequence* as
//!   the full-matrix fold of row `r`.
//! * Scatter is `memcpy` into disjoint bands.
//!
//! `shard_oracle` (tier-1) sweeps this claim over shard counts ×
//! `MPSPMM_WORKERS`; see DESIGN.md §2.15.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use mpspmm_sparse::{CsrMatrix, DenseMatrix, ShardedCsr, SparseFormatError};

use crate::engine::ExecEngine;
use crate::epilogue::Epilogue;
use crate::spmm::BatchMergeSpmm;

/// Snapshot of one shard's routing counters, surfaced through the
/// serving layer's `ServeStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardQueueStats {
    /// Shard index (row-band order).
    pub shard: usize,
    /// Rows this shard owns.
    pub rows: usize,
    /// Non-zeros this shard owns.
    pub nnz: usize,
    /// Halo size: dense-operand rows this shard gathers per execution.
    pub halo: usize,
    /// Executions currently in flight on this shard's engine.
    pub depth: usize,
    /// High-water mark of [`depth`](Self::depth).
    pub peak_depth: usize,
    /// Total executions completed by this shard.
    pub executed: u64,
}

/// Per-shard in-flight/served counters (see [`ShardQueueStats`]).
#[derive(Debug, Default)]
struct ShardCounters {
    depth: AtomicUsize,
    peak: AtomicUsize,
    executed: AtomicU64,
}

impl ShardCounters {
    fn enter(&self) {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(d, Ordering::Relaxed);
    }

    fn exit(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
        self.executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// S private engines over one row-sharded graph; see the module docs
/// for the execution model and bit-identity argument.
#[derive(Debug)]
pub struct ShardedEngine {
    sharded: ShardedCsr,
    engines: Vec<ExecEngine>,
    kernel: BatchMergeSpmm,
    workers_per_shard: usize,
    counters: Vec<ShardCounters>,
}

impl ShardedEngine {
    /// Partitions `a` into `shards` row bands and builds one private
    /// engine per band. `total_workers` is divided evenly
    /// (`max(1, total_workers / shards)` each), matching the
    /// equal-total-resources comparison the scale-out bench makes; pin
    /// bases are staggered so opt-in pinning (`MPSPMM_PIN=1`) gives
    /// each shard a disjoint core range.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(a: &CsrMatrix<f32>, shards: usize, total_workers: usize) -> Self {
        let sharded = ShardedCsr::partition(a, shards);
        Self::from_sharded(sharded, total_workers)
    }

    /// [`new`](Self::new) over an already partitioned matrix.
    pub fn from_sharded(sharded: ShardedCsr, total_workers: usize) -> Self {
        let shards = sharded.shard_count();
        let workers_per_shard = (total_workers / shards).max(1);
        let engines = (0..shards)
            .map(|s| {
                ExecEngine::with_worker_count(workers_per_shard)
                    .with_pin_base(s * workers_per_shard)
            })
            .collect();
        let counters = (0..shards).map(|_| ShardCounters::default()).collect();
        ShardedEngine {
            sharded,
            engines,
            kernel: BatchMergeSpmm::new(),
            workers_per_shard,
            counters,
        }
    }

    /// Row count of the sharded graph.
    pub fn rows(&self) -> usize {
        self.sharded.rows()
    }

    /// Column count of the sharded graph (the dense operand's required
    /// row count).
    pub fn cols(&self) -> usize {
        self.sharded.cols()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.sharded.shard_count()
    }

    /// Workers assigned to each shard's private engine.
    pub fn workers_per_shard(&self) -> usize {
        self.workers_per_shard
    }

    /// The underlying partition (shard boundaries, halo maps).
    pub fn sharding(&self) -> &ShardedCsr {
        &self.sharded
    }

    /// The shard engines, in row-band order.
    pub fn engines(&self) -> &[ExecEngine] {
        &self.engines
    }

    /// Warms every shard's plan cache at the given dense widths so the
    /// first execution pays no planning.
    pub fn warm_plans(&self, dims: &[usize]) {
        for (shard, engine) in self.sharded.shards().iter().zip(&self.engines) {
            for &dim in dims {
                engine.plan_cached(&self.kernel, &shard.matrix, dim, 0);
            }
        }
    }

    /// Per-shard routing counters plus static shape facts.
    pub fn shard_stats(&self) -> Vec<ShardQueueStats> {
        self.sharded
            .shards()
            .iter()
            .zip(&self.counters)
            .enumerate()
            .map(|(i, (shard, c))| ShardQueueStats {
                shard: i,
                rows: shard.matrix.rows(),
                nnz: shard.nnz(),
                halo: shard.halo_cols.len(),
                depth: c.depth.load(Ordering::Relaxed),
                peak_depth: c.peak.load(Ordering::Relaxed),
                executed: c.executed.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Sharded SpMM `A · B`: gather halos, execute each row band on its
    /// private engine, scatter the bands. Bit-identical to the
    /// unsharded engine (module docs).
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when
    /// `b.rows() != self.cols()`.
    pub fn spmm(&self, b: &DenseMatrix<f32>) -> Result<DenseMatrix<f32>, SparseFormatError> {
        self.spmm_fused(b, &Epilogue::None)
    }

    /// [`spmm`](Self::spmm) with a fused [`Epilogue`] applied by each
    /// shard engine at its store stage. Epilogues are per-element /
    /// per-column transforms, so fusing them inside a row band is
    /// identical to fusing them over the whole matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when
    /// `b.rows() != self.cols()` or a bias epilogue's length differs
    /// from `b.cols()`.
    pub fn spmm_fused(
        &self,
        b: &DenseMatrix<f32>,
        epi: &Epilogue,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        if b.rows() != self.cols() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (self.rows(), self.cols()),
                right: (b.rows(), b.cols()),
            });
        }
        let dim = b.cols();
        epi.validate(dim)?;
        let mut out = DenseMatrix::zeros(self.rows(), dim);
        {
            let bands = band_slices(out.as_mut_slice(), self.sharded.shards(), dim);
            std::thread::scope(|scope| {
                for (((shard, engine), counters), band) in self
                    .sharded
                    .shards()
                    .iter()
                    .zip(&self.engines)
                    .zip(&self.counters)
                    .zip(bands)
                {
                    if shard.matrix.rows() == 0 {
                        continue;
                    }
                    let kernel = &self.kernel;
                    scope.spawn(move || {
                        counters.enter();
                        let local_b = gather_into_engine(engine, shard, b, dim);
                        let prep = engine.plan_cached(kernel, &shard.matrix, dim, 0);
                        let (res, _) = engine
                            .execute_prepared_fused(&prep, &shard.matrix, &local_b, epi)
                            .expect("shard shapes validated at partition time");
                        band.copy_from_slice(res.as_slice());
                        engine.recycle(res);
                        engine.recycle(local_b);
                        counters.exit();
                    });
                }
            });
        }
        Ok(out)
    }

    /// Sharded dense GEMM `A · B`: the same row bands, each computed by
    /// its shard's engine on a private copy of the band. The engine
    /// GEMM is bit-equal to naive ascending-`k` ikj per row under any
    /// worker split, so the sharded product equals the unsharded one
    /// bitwise — this is the feature-transform half of
    /// `GcnModel::forward_sharded`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when
    /// `a.cols() != b.rows()`.
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() != self.rows()` — the operand must be the
    /// node-feature matrix of the sharded graph.
    pub fn gemm(
        &self,
        a: &DenseMatrix<f32>,
        b: &DenseMatrix<f32>,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        assert_eq!(a.rows(), self.rows(), "operand rows must match the graph");
        if a.cols() != b.rows() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (b.rows(), b.cols()),
            });
        }
        let (k, n) = (a.cols(), b.cols());
        let mut out = DenseMatrix::zeros(self.rows(), n);
        {
            let bands = band_slices(out.as_mut_slice(), self.sharded.shards(), n);
            std::thread::scope(|scope| {
                for ((shard, engine), band) in
                    self.sharded.shards().iter().zip(&self.engines).zip(bands)
                {
                    let rows = shard.matrix.rows();
                    if rows == 0 {
                        continue;
                    }
                    scope.spawn(move || {
                        let mut local_a = engine.lease_zeroed(rows, k);
                        local_a
                            .as_mut_slice()
                            .copy_from_slice(&a.as_slice()[shard.row_start * k..][..rows * k]);
                        let res = engine
                            .gemm(&local_a, b)
                            .expect("shapes checked before banding");
                        band.copy_from_slice(res.as_slice());
                        engine.recycle(res);
                        engine.recycle(local_a);
                    });
                }
            });
        }
        Ok(out)
    }
}

/// Splits a flat `rows × dim` output into per-shard row-band slices.
/// Bands are contiguous and disjoint by the partition invariant, so
/// plain `split_at_mut` hands each shard exclusive ownership.
fn band_slices<'a>(
    mut flat: &'a mut [f32],
    shards: &[mpspmm_sparse::CsrShard],
    dim: usize,
) -> Vec<&'a mut [f32]> {
    let mut out = Vec::with_capacity(shards.len());
    for shard in shards {
        let (band, rest) = flat.split_at_mut(shard.matrix.rows() * dim);
        out.push(band);
        flat = rest;
    }
    out
}

/// Gathers `shard`'s halo rows of `b` into a compact operand leased
/// from `engine`'s arena (hot pages, no fresh allocation per cycle).
fn gather_into_engine(
    engine: &ExecEngine,
    shard: &mpspmm_sparse::CsrShard,
    b: &DenseMatrix<f32>,
    dim: usize,
) -> DenseMatrix<f32> {
    let mut local = engine.lease_zeroed(shard.halo_cols.len(), dim);
    let dst = local.as_mut_slice();
    let src = b.as_slice();
    for (j, &g) in shard.halo_cols.iter().enumerate() {
        dst[j * dim..][..dim].copy_from_slice(&src[g * dim..][..dim]);
    }
    local
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_sequential;
    use crate::spmm::test_support::random_matrix as random_csr_nnz;
    use crate::spmm::SpmmKernel;

    fn random_csr(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix<f32> {
        let nnz = ((rows * cols) as f64 * density) as usize;
        random_csr_nnz(rows, cols, nnz.max(1), seed)
    }

    fn oracle(a: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let kernel = BatchMergeSpmm::new();
        let plan = kernel.plan(a, b.cols());
        execute_sequential(&plan, a, b).unwrap().0
    }

    #[test]
    fn sharded_spmm_bit_matches_sequential() {
        let a = random_csr(64, 64, 0.08, 7);
        let b = DenseMatrix::from_fn(64, 8, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let want = oracle(&a, &b);
        for shards in [1, 2, 3, 5] {
            let se = ShardedEngine::new(&a, shards, 4);
            let got = se.spmm(&b).unwrap();
            assert_eq!(got.as_slice(), want.as_slice(), "shards={shards}");
        }
    }

    #[test]
    fn sharded_fused_epilogue_matches_unsharded_engine() {
        let a = random_csr(48, 48, 0.1, 11);
        let b = DenseMatrix::from_fn(48, 6, |r, c| (r as f32 - 20.0) * 0.5 + c as f32);
        let epi = Epilogue::BiasRelu(vec![0.25, -0.5, 0.0, 1.0, -1.0, 2.0]);
        let engine = ExecEngine::with_worker_count(2);
        let kernel = BatchMergeSpmm::new();
        let prep = engine.plan_cached(&kernel, &a, 6, 0);
        let (want, _) = engine.execute_prepared_fused(&prep, &a, &b, &epi).unwrap();
        let se = ShardedEngine::new(&a, 3, 4);
        let got = se.spmm_fused(&b, &epi).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn sharded_gemm_bit_matches_single_engine() {
        let a = random_csr(40, 40, 0.1, 3);
        let h = DenseMatrix::from_fn(40, 12, |r, c| (r * 7 + c) as f32 * 0.125 - 2.0);
        let w = DenseMatrix::from_fn(12, 5, |r, c| (r as f32 - c as f32) * 0.25);
        let single = ExecEngine::with_worker_count(1);
        let want = single.gemm(&h, &w).unwrap();
        let se = ShardedEngine::new(&a, 4, 4);
        let got = se.gemm(&h, &w).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn shard_stats_count_executions() {
        let a = random_csr(32, 32, 0.1, 5);
        let b = DenseMatrix::from_fn(32, 4, |r, c| (r + c) as f32);
        let se = ShardedEngine::new(&a, 2, 2);
        se.spmm(&b).unwrap();
        se.spmm(&b).unwrap();
        let stats = se.shard_stats();
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.depth, 0, "nothing in flight after return");
            if s.rows > 0 {
                assert_eq!(s.executed, 2);
                assert!(s.peak_depth >= 1);
            }
        }
    }

    #[test]
    fn more_shards_than_rows_still_correct() {
        let a = random_csr(5, 5, 0.4, 1);
        let b = DenseMatrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let want = oracle(&a, &b);
        let se = ShardedEngine::new(&a, 9, 4);
        assert_eq!(se.shard_count(), 9);
        assert_eq!(se.spmm(&b).unwrap().as_slice(), want.as_slice());
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = random_csr(8, 8, 0.3, 2);
        let se = ShardedEngine::new(&a, 2, 2);
        let bad = DenseMatrix::zeros(7, 4);
        assert!(se.spmm(&bad).is_err());
    }
}
