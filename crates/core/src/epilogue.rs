//! Fused dense epilogue applied at the SpMM store stage.
//!
//! A GNN layer follows its aggregation SpMM with a cheap element-wise
//! pass — bias add, ReLU, or both. Run separately, that pass re-streams
//! the whole `rows × dim` output through the cache right after the engine
//! wrote it. The engine instead accepts an [`Epilogue`] and applies it
//! **as each output row is finalized**, while the row is still
//! register/L1-hot:
//!
//! * rows the plan proves are finalized in the parallel phase (`Direct`
//!   rows that receive no post-join carry) get their epilogue at the
//!   store, on the worker that produced them;
//! * every other row — shared rows, carry-receiving rows, and untouched
//!   rows (which a bias still changes!) — gets its epilogue in the serial
//!   replay pass **after** all accumulation for the row is complete.
//!
//! Either way the epilogue runs exactly once per row, after the row's
//! final SpMM value exists — so a fused run is element-for-element the
//! `spmm → epilogue` composition of the unfused pipeline (see DESIGN.md
//! §2.10 for the full argument).

use mpspmm_sparse::SparseFormatError;

/// An element-wise per-row transform fused into the engine's store stage.
///
/// `Relu` matches the GCN `Activation::Relu` semantics exactly
/// (`if v < 0.0 { v = 0.0 }`, which preserves `-0.0`); the bias variants
/// add `bias[j]` to output column `j` *before* any clamp, the standard
/// `relu(x + b)` layer form.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Epilogue {
    /// No transform — the engine's classic output. This is the hot-path
    /// default: a noop epilogue adds zero work to any store.
    #[default]
    None,
    /// `v = max(0, v)` per element (implemented as the GCN activation's
    /// exact comparison so fused and unfused outputs are bit-identical).
    Relu,
    /// `v += bias[j]` per element of column `j`.
    Bias(Vec<f32>),
    /// `v = relu(v + bias[j])` — the fused form of a biased ReLU layer.
    BiasRelu(Vec<f32>),
}

impl Epilogue {
    /// Whether this epilogue changes nothing (the engine skips all fused
    /// bookkeeping for noop epilogues).
    pub fn is_noop(&self) -> bool {
        matches!(self, Epilogue::None)
    }

    /// The bias vector, if this variant carries one.
    pub fn bias(&self) -> Option<&[f32]> {
        match self {
            Epilogue::Bias(b) | Epilogue::BiasRelu(b) => Some(b),
            _ => None,
        }
    }

    /// Checks this epilogue against the dense output width it will be
    /// applied at.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when a bias vector's
    /// length differs from `dim`.
    pub fn validate(&self, dim: usize) -> Result<(), SparseFormatError> {
        match self.bias() {
            Some(b) if b.len() != dim => Err(SparseFormatError::ShapeMismatch {
                left: (1, b.len()),
                right: (1, dim),
            }),
            _ => Ok(()),
        }
    }

    /// Applies the epilogue to one finalized output row in place.
    /// `dst.len()` must equal the validated `dim`.
    #[inline]
    pub fn apply_row(&self, dst: &mut [f32]) {
        self.apply_cols(dst, 0);
    }

    /// Applies the epilogue to the column window `[col0, col0 + dst.len())`
    /// of one finalized output row: `dst` is the window's slice and the
    /// bias (when present) is read starting at `col0`. This is the
    /// column-striped executor's store-stage form — each stripe finalizes
    /// only its own columns, so it must also epilogue only those columns.
    /// `col0 + dst.len()` must not exceed the validated `dim`.
    #[inline]
    pub fn apply_cols(&self, dst: &mut [f32], col0: usize) {
        match self {
            Epilogue::None => {}
            Epilogue::Relu => {
                // Select form — post-SpMM signs are near-random, and a
                // branched store mispredicts half the time. `-0.0` and
                // NaN pass through exactly as before.
                for v in dst {
                    *v = if *v < 0.0 { 0.0 } else { *v };
                }
            }
            Epilogue::Bias(bias) => {
                for (v, &b) in dst.iter_mut().zip(&bias[col0..]) {
                    *v += b;
                }
            }
            Epilogue::BiasRelu(bias) => {
                for (v, &b) in dst.iter_mut().zip(&bias[col0..]) {
                    let x = *v + b;
                    *v = if x < 0.0 { 0.0 } else { x };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_detection_and_default() {
        assert!(Epilogue::None.is_noop());
        assert!(Epilogue::default().is_noop());
        assert!(!Epilogue::Relu.is_noop());
        assert!(!Epilogue::Bias(vec![0.0]).is_noop());
    }

    #[test]
    fn relu_matches_activation_semantics() {
        let mut row = [-1.0f32, -0.0, 0.0, 2.5];
        Epilogue::Relu.apply_row(&mut row);
        assert_eq!(row, [0.0, -0.0, 0.0, 2.5]);
        // -0.0 is preserved, exactly like Activation::Relu's `< 0.0` test.
        assert!(row[1].is_sign_negative());
    }

    #[test]
    fn bias_and_bias_relu_compose() {
        let bias = vec![1.0f32, -2.0, 0.5];
        let mut a = [0.0f32, 1.0, -1.0];
        Epilogue::Bias(bias.clone()).apply_row(&mut a);
        assert_eq!(a, [1.0, -1.0, -0.5]);
        let mut b = [0.0f32, 1.0, -1.0];
        Epilogue::BiasRelu(bias).apply_row(&mut b);
        assert_eq!(b, [1.0, 0.0, 0.0]);
    }

    #[test]
    fn windowed_apply_matches_full_row() {
        // Applying per column window (any partition) must equal one
        // full-row apply — the striped executor's correctness condition.
        let bias = vec![1.0f32, -2.0, 0.5, 3.0, -0.25];
        for epi in [
            Epilogue::None,
            Epilogue::Relu,
            Epilogue::Bias(bias.clone()),
            Epilogue::BiasRelu(bias.clone()),
        ] {
            let row = [-1.5f32, 1.0, -0.75, -3.0, 0.5];
            let mut full = row;
            epi.apply_row(&mut full);
            for split in 0..=row.len() {
                let mut windows = row;
                let (lo, hi) = windows.split_at_mut(split);
                epi.apply_cols(lo, 0);
                epi.apply_cols(hi, split);
                assert_eq!(windows, full, "split at {split}");
            }
        }
    }

    #[test]
    fn validate_checks_bias_width_only() {
        assert!(Epilogue::None.validate(7).is_ok());
        assert!(Epilogue::Relu.validate(0).is_ok());
        assert!(Epilogue::Bias(vec![0.0; 4]).validate(4).is_ok());
        assert!(Epilogue::Bias(vec![0.0; 4]).validate(5).is_err());
        assert!(Epilogue::BiasRelu(vec![0.0; 2]).validate(3).is_err());
    }
}
