#!/usr/bin/env bash
# Tier-1 gate: release build, test suite, and the engine benchmark artifact.
#
# Usage: scripts/tier1.sh
# Emits BENCH_engine.json in the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test --workspace -q
cargo run --release -p mpspmm-bench --bin bench_engine
