//! Property-based tests for the GCN substrate.

use mpspmm_core::{MergePathSpmm, SerialSpmm};
use mpspmm_gcn::ops::{gemm, random_features, softmax_rows, xavier_init, Activation};
use mpspmm_gcn::{GcnModel, GinLayer, SageMeanLayer};
use mpspmm_graphs::{gcn_normalize, mean_normalize, sum_with_self_loops, DatasetSpec, GraphClass};
use mpspmm_sparse::DenseMatrix;
use proptest::prelude::*;

fn arb_dense(max_dim: usize) -> impl Strategy<Value = DenseMatrix<f32>> {
    (1..=max_dim, 1..=max_dim, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut v = seed;
        DenseMatrix::from_fn(r, c, |_, _| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((v >> 33) as i32 % 7) as f32 * 0.25
        })
    })
}

proptest! {
    #[test]
    fn gemm_is_linear_in_the_left_operand(
        a in arb_dense(8),
        seed in any::<u64>(),
    ) {
        let b = {
            let mut v = seed | 1;
            DenseMatrix::from_fn(a.cols(), 5, |_, _| {
                v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((v >> 40) as i32 % 5) as f32
            })
        };
        // (2A)B == 2(AB)
        let scaled_a = DenseMatrix::from_fn(a.rows(), a.cols(), |r, c| 2.0 * a.get(r, c));
        let lhs = gemm(&scaled_a, &b).unwrap();
        let rhs = gemm(&a, &b).unwrap();
        for r in 0..lhs.rows() {
            for c in 0..lhs.cols() {
                prop_assert!((lhs.get(r, c) - 2.0 * rhs.get(r, c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_matches_identity_and_zero(a in arb_dense(8)) {
        let id = DenseMatrix::from_fn(a.cols(), a.cols(), |r, c| f32::from(r == c));
        prop_assert_eq!(gemm(&a, &id).unwrap(), a.clone());
        let z = DenseMatrix::<f32>::zeros(a.cols(), 3);
        let out = gemm(&a, &z).unwrap();
        prop_assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn activations_preserve_shape_and_bounds(a in arb_dense(10)) {
        let mut relu = a.clone();
        Activation::Relu.apply(&mut relu);
        prop_assert!(relu.as_slice().iter().all(|&v| v >= 0.0));
        let mut sig = a.clone();
        Activation::Sigmoid.apply(&mut sig);
        prop_assert!(sig.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let mut id = a.clone();
        Activation::Identity.apply(&mut id);
        prop_assert_eq!(id, a);
    }

    #[test]
    fn softmax_rows_are_distributions(a in arb_dense(10)) {
        let mut m = a;
        softmax_rows(&mut m);
        for r in 0..m.rows() {
            let s: f32 = m.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            prop_assert!(m.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn gnn_layers_agree_across_kernels(
        seed in any::<u64>(),
        nodes in 30usize..120,
    ) {
        let nnz = (nodes * 3).min(nodes * (nodes - 1) / 2);
        let max_deg = (nodes / 3).max(2);
        let spec = DatasetSpec::custom("p", GraphClass::PowerLaw, nodes, nnz, max_deg);
        let a = spec.synthesize(seed);
        let x = random_features(nodes, 8, 0.5, seed ^ 1);
        let serial = SerialSpmm;
        let parallel = MergePathSpmm::with_threads(9);

        let gcn = GcnModel::two_layer(8, 8, 3, seed ^ 2);
        let a_hat = gcn_normalize(&a);
        let s = gcn.forward(&a_hat, &x, &serial).unwrap();
        let p = gcn.forward(&a_hat, &x, &parallel).unwrap();
        prop_assert!(p.approx_eq(&s, 1e-3).unwrap());

        let gin = GinLayer::new(
            xavier_init(8, 8, seed ^ 3),
            xavier_init(8, 3, seed ^ 4),
            Activation::Relu,
        );
        let op = sum_with_self_loops(&a, 0.2);
        let s = gin.forward(&op, &x, &serial).unwrap();
        let p = gin.forward(&op, &x, &parallel).unwrap();
        prop_assert!(p.approx_eq(&s, 1e-2).unwrap());

        let sage = SageMeanLayer::new(
            xavier_init(8, 3, seed ^ 5),
            xavier_init(8, 3, seed ^ 6),
            Activation::Sigmoid,
        );
        let op = mean_normalize(&a);
        let s = sage.forward(&op, &x, &serial).unwrap();
        let p = sage.forward(&op, &x, &parallel).unwrap();
        prop_assert!(p.approx_eq(&s, 1e-3).unwrap());
    }
}
