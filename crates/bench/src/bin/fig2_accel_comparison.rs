//! Figure 2 — hardware accelerator vs GPU software implementations.
//!
//! Kernel completion times for the GCN `A × XW` SpMM on four
//! representative power-law graphs: the AWB-GCN accelerator (published /
//! modeled), and the GPU kernels row-splitting, GNNAdvisor, and merge-path
//! with serial fix-up, all on the simulated RTX 6000 (see DESIGN.md §1).
//! Nell uses a hidden dimension of 64, the others 16, as in the paper.

use mpspmm_bench::{banner, full_size_requested, load};
use mpspmm_graphs::find_dataset;
use mpspmm_simt::{awbgcn, GpuConfig, GpuKernel};
use mpspmm_sparse::stats::DegreeStats;

fn main() {
    let full = full_size_requested();
    banner(
        "Figure 2",
        "AWB-GCN vs row-splitting vs GNNAdvisor vs merge-path (kernel µs)",
        full,
    );

    let cfg = GpuConfig::rtx6000();
    let awb_cfg = awbgcn::AwbGcnConfig::paper();
    println!(
        "\n{:<10} {:>4} {:>12} {:>12} {:>12} {:>14}",
        "graph", "dim", "AWB-GCN", "row-split", "GNNAdvisor", "merge-path"
    );
    for (name, dim) in [("Cora", 16), ("Citeseer", 16), ("Pubmed", 16), ("Nell", 64)] {
        let spec = find_dataset(name).expect("dataset in Table II");
        let (_, a) = load(spec, full);
        let stats = DegreeStats::compute(&a);
        let awb = awbgcn::awbgcn_micros(name, &stats, dim, &awb_cfg);
        let rs = GpuKernel::RowSplit.simulate(&a, dim, &cfg).micros;
        let gnn = GpuKernel::GnnAdvisor {
            opt: false,
            ng_size: None,
        }
        .simulate(&a, dim, &cfg)
        .micros;
        let mps = GpuKernel::SerialFixup { threads: None }
            .simulate(&a, dim, &cfg)
            .micros;
        println!("{name:<10} {dim:>4} {awb:>12.2} {rs:>12.2} {gnn:>12.2} {mps:>14.2}");
    }

    println!(
        "\nPaper shape: AWB-GCN fastest on the small Cora/Citeseer graphs \
         (GNNAdvisor ~2x slower there); GNNAdvisor wins on Pubmed and wins \
         big (~6x over AWB-GCN) on Nell; merge-path's serial phase makes it \
         the worst GPU kernel on small graphs, yet it still beats AWB-GCN \
         on Nell; row-splitting collapses on Nell's evil rows."
    );
}
