//! Wide-feature-dim benchmark: the pre-existing data path vs this
//! revision's wide-dim path, measured on a full GCN layer pipeline
//! (`Y = A · (X · W)`) at dense dimensions 16–512.
//!
//! At GNN hidden widths the dense GEMM `X · W` dominates a layer —
//! `O(rows · dim²)` flops against the SpMM's `O(nnz · dim)` — so the
//! wide-dim work in this revision concentrates there: a register-tiled
//! microkernel whose per-`k` slices are hoisted out of the hot loop, a
//! `k`-blocked sweep that keeps the `B` slab quarter-L2-resident, and
//! the opt-in FastMath mode that contracts each multiply-add to an FMA.
//! On the sparse side, `SchedPolicy::Auto` routes wide dims through the
//! column-striped executor (clamped to the machine's hardware
//! parallelism), which drops the pooled path's strip folding and serial
//! carry replay.
//!
//! Three configurations are timed per (graph, dim), stage by stage:
//!
//! * **baseline** — the pre-revision data path: the previous unblocked
//!   register-tiled GEMM kernel (reproduced verbatim below from the
//!   parent revision, with the same `#[target_feature]` dispatch, and
//!   guarded bitwise-equal against the engine) plus
//!   `SchedPolicy::Static` SpMM — the schedule wide dims used before
//!   column striping existed.
//! * **wide exact** — `ExecEngine::gemm` (`k`-blocked, reworked
//!   microkernel) plus `SchedPolicy::Auto` SpMM, FastMath off. This
//!   path is held **bit-identical** to the baseline GEMM and to the
//!   sequential SpMM oracle at every dim in the matrix.
//! * **wide fastmath** — the same with the documented FastMath opt-in
//!   (`with_fast_math(true)` / `MPSPMM_FASTMATH`). Results are
//!   tolerance-checked, not bit-checked: FMA contraction is exactly the
//!   bit-equality carve-out DESIGN.md §2.11 documents.
//!
//! The headline `speedup` is the geomean, over both graphs at dims
//! {128, 256, 512}, of baseline layer time over the wide-path FastMath
//! layer time; `speedup_exact` is the same ratio with FastMath off (the
//! default path). Flatness is tracked on the SpMM stage as
//! ns/(nnz·col) at dim 512 vs dim 16.
//!
//! Writes `BENCH_widedim.json`. Pass `--smoke` for a seconds-fast run
//! on scaled-down graphs.

use mpspmm_bench::{geomean, SEED};
use mpspmm_core::executor::execute_sequential;
use mpspmm_core::{
    panel_cols, CacheModel, DataPath, ExecEngine, MergePathSpmm, PreparedPlan, SchedPolicy,
    SpmmKernel, GEMM_BAND_ROWS, STRIPE_MIN_DIM,
};
use mpspmm_gcn::ops::random_features;
use mpspmm_graphs::{gcn_normalize, DatasetSpec, GraphClass};
use mpspmm_sparse::DenseMatrix;

const DIMS: [usize; 6] = [16, 32, 64, 128, 256, 512];
const WORKERS: usize = 4;
/// The acceptance dims: the geomean layer speedup is taken over these.
const WIDE_DIMS: [usize; 3] = [128, 256, 512];

/// The parent revision's GEMM kernel, reproduced for the baseline
/// measurement: register tile of 4 rows, unblocked full-`k` sweep with
/// zero-seeded accumulators, 16/8/4-lane cascade, per-`k` row addressing
/// through `DenseMatrix::row` inside the hot loop. Summation order per
/// output element is ascending `k` — identical to the engine's blocked
/// sweep — so `old_gemm` is *bitwise equal* to `ExecEngine::gemm` with
/// FastMath off, which the bench asserts before timing anything.
mod old_kernel {
    use super::{panel_cols, CacheModel, DenseMatrix, GEMM_BAND_ROWS};

    const MR: usize = 4;

    pub fn old_gemm(a: &DenseMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let (m, n) = (a.rows(), b.cols());
        let mut out = vec![0.0f32; m * n];
        let lanes = if is_x86_feature_detected!("avx512f") {
            16
        } else {
            8
        };
        let panel = panel_cols(n, lanes, &CacheModel::default());
        for (bi, band) in out.chunks_mut(GEMM_BAND_ROWS * n.max(1)).enumerate() {
            old_gemm_band(a, b, bi * GEMM_BAND_ROWS, panel, lanes == 16, band);
        }
        DenseMatrix::from_vec(m, n, out).expect("shape")
    }

    fn old_gemm_band(
        a: &DenseMatrix<f32>,
        b: &DenseMatrix<f32>,
        row_start: usize,
        panel: usize,
        w16: bool,
        dst: &mut [f32],
    ) {
        let n = b.cols();
        if n == 0 || dst.is_empty() {
            return;
        }
        let mut r = 0usize;
        let mut quads = dst.chunks_exact_mut(MR * n);
        for quad in quads.by_ref() {
            let arows: [&[f32]; MR] = std::array::from_fn(|i| a.row(row_start + r + i));
            let mut rows = quad.chunks_exact_mut(n);
            let mut crows: [&mut [f32]; MR] =
                std::array::from_fn(|_| rows.next().expect("quad holds MR rows"));
            old_rows(arows, b, n, panel, w16, &mut crows);
            r += MR;
        }
        for crow in quads.into_remainder().chunks_exact_mut(n) {
            old_rows([a.row(row_start + r)], b, n, panel, w16, &mut [crow]);
            r += 1;
        }
    }

    /// Same `#[target_feature]` dispatch the old engine used, so the
    /// baseline is compiled with the codegen it actually had.
    fn old_rows<const MR2: usize>(
        arows: [&[f32]; MR2],
        b: &DenseMatrix<f32>,
        n: usize,
        panel: usize,
        w16: bool,
        crows: &mut [&mut [f32]; MR2],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                // SAFETY: gated on the runtime avx512f proof above.
                return unsafe { old_rows_avx512(arows, b, n, panel, w16, crows) };
            }
            if is_x86_feature_detected!("avx2") {
                // SAFETY: gated on the runtime avx2 proof above.
                return unsafe { old_rows_avx2(arows, b, n, panel, w16, crows) };
            }
        }
        old_rows_body(arows, b, n, panel, w16, crows);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn old_rows_avx512<const MR2: usize>(
        arows: [&[f32]; MR2],
        b: &DenseMatrix<f32>,
        n: usize,
        panel: usize,
        w16: bool,
        crows: &mut [&mut [f32]; MR2],
    ) {
        old_rows_body(arows, b, n, panel, w16, crows);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn old_rows_avx2<const MR2: usize>(
        arows: [&[f32]; MR2],
        b: &DenseMatrix<f32>,
        n: usize,
        panel: usize,
        w16: bool,
        crows: &mut [&mut [f32]; MR2],
    ) {
        old_rows_body(arows, b, n, panel, w16, crows);
    }

    #[inline(always)]
    fn old_rows_body<const MR2: usize>(
        arows: [&[f32]; MR2],
        b: &DenseMatrix<f32>,
        n: usize,
        panel: usize,
        w16: bool,
        crows: &mut [&mut [f32]; MR2],
    ) {
        let panel = panel.max(1);
        let mut p0 = 0;
        while p0 < n {
            let p1 = (p0 + panel).min(n);
            let mut d = p0;
            if w16 {
                while d + 16 <= p1 {
                    old_micro::<MR2, 16>(arows, b, d, crows);
                    d += 16;
                }
            }
            while d + 8 <= p1 {
                old_micro::<MR2, 8>(arows, b, d, crows);
                d += 8;
            }
            if d + 4 <= p1 {
                old_micro::<MR2, 4>(arows, b, d, crows);
                d += 4;
            }
            for d in d..p1 {
                for (arow, crow) in arows.iter().zip(crows.iter_mut()) {
                    let mut s = 0.0f32;
                    for (p, &av) in arow.iter().enumerate() {
                        s += av * b.row(p)[d];
                    }
                    crow[d] = s;
                }
            }
            p0 = p1;
        }
    }

    #[inline(always)]
    fn old_micro<const MR2: usize, const W: usize>(
        arows: [&[f32]; MR2],
        b: &DenseMatrix<f32>,
        d: usize,
        crows: &mut [&mut [f32]; MR2],
    ) {
        let mut acc = [[0.0f32; W]; MR2];
        let k = arows[0].len();
        for p in 0..k {
            let row = b.row(p);
            let blk: &[f32; W] = row[d..d + W].try_into().expect("block inside dense row");
            for (accr, arow) in acc.iter_mut().zip(&arows) {
                let av = arow[p];
                for (s, &bv) in accr.iter_mut().zip(blk) {
                    *s += av * bv;
                }
            }
        }
        for (accr, crow) in acc.iter().zip(crows.iter_mut()) {
            crow[d..d + W].copy_from_slice(accr);
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nodes, nnz, max_deg, warm, iters) = if smoke {
        (1_600usize, 4_800usize, 80usize, 1usize, 2usize)
    } else {
        (20_000, 60_000, 600, 1, 3)
    };
    println!("==================================================================");
    println!("BENCH widedim: pre-revision data path vs wide-dim layer pipeline");
    println!(
        "GCN layer (GEMM + SpMM), dims {{16..512}}, {WORKERS} workers, seed {SEED}{}",
        if smoke { " (--smoke)" } else { "" }
    );
    println!("==================================================================");

    let kernel = MergePathSpmm::new();
    let graphs = [
        (
            "powerlaw",
            gcn_normalize(
                &DatasetSpec::custom(
                    "widedim-powerlaw",
                    GraphClass::PowerLaw,
                    nodes,
                    nnz,
                    max_deg,
                )
                .synthesize(SEED),
            ),
        ),
        (
            "uniform",
            gcn_normalize(
                &DatasetSpec::custom("widedim-uniform", GraphClass::Structured, nodes, nnz, 16)
                    .synthesize(SEED),
            ),
        ),
    ];

    println!(
        "\n{:<9} {:>4} {:>13} {:>13} {:>13} {:>8} {:>8} {:>8} {:>12}",
        "Graph", "dim", "base ns", "exact ns", "fm ns", "exact", "fm", "striped", "spmm ns/nc"
    );
    let mut records = Vec::new();
    let (mut fm_speedups, mut exact_speedups) = (Vec::new(), Vec::new());
    // SpMM-stage per-column cost at dim 16 and 512 on the power-law
    // graph, for the flatness acceptance check (wide path, exact).
    let (mut pl_spmm_16, mut pl_spmm_512) = (0.0f64, 0.0f64);
    let fm_available = mpspmm_core::fastmath_supported();
    for (gname, a) in &graphs {
        let nnzf = a.nnz() as f64;
        let plan = kernel.plan(a, DIMS[DIMS.len() - 1]);
        let prep = PreparedPlan::for_matrix(plan.clone(), a);
        for dim in DIMS {
            let x = random_features(a.rows(), dim, 0.9, 33 + dim as u64);
            let w = random_features(dim, dim, 1.0, 99 + dim as u64);

            // Engines. The baseline SpMM runs the static pooled
            // schedule (what wide dims got before column striping); its
            // GEMM is the in-bench old kernel, so the unblocked knob on
            // the engine is exercised by the guard below, not timed.
            let base_spmm =
                ExecEngine::with_sched_policy(WORKERS, DataPath::Auto, SchedPolicy::Static);
            let wide = ExecEngine::with_sched_policy(WORKERS, DataPath::Auto, SchedPolicy::Auto);
            let wide_fm = ExecEngine::with_sched_policy(WORKERS, DataPath::Auto, SchedPolicy::Auto)
                .with_fast_math(true);

            // --- Correctness guards, before any timing. ---
            // 1. The reproduced pre-revision kernel, the engine's
            //    unblocked ablation mode, and the k-blocked default all
            //    agree bit-for-bit (ascending-k summation per element).
            let xw_old = old_kernel::old_gemm(&x, &w);
            let unblocked =
                ExecEngine::with_sched_policy(WORKERS, DataPath::Auto, SchedPolicy::Static)
                    .with_k_blocking(false);
            let xw_unblocked = unblocked.gemm(&x, &w).unwrap();
            let xw = wide.gemm(&x, &w).unwrap();
            assert_eq!(
                xw_old.max_abs_diff(&xw).unwrap(),
                0.0,
                "baseline kernel reproduction must be bitwise equal ({gname}, dim {dim})"
            );
            assert_eq!(
                xw_unblocked.max_abs_diff(&xw).unwrap(),
                0.0,
                "k-blocking must not change one bit ({gname}, dim {dim})"
            );
            unblocked.recycle(xw_unblocked);
            // 2. The wide SpMM path (striped at dim >= 128) is bitwise
            //    equal to the sequential oracle on the same GEMM output.
            let striped = wide.selects_striping(&prep, dim);
            assert_eq!(
                striped,
                dim >= STRIPE_MIN_DIM,
                "balanced plan stripes exactly from STRIPE_MIN_DIM up"
            );
            let (want, _) = execute_sequential(&plan, a, &xw).unwrap();
            let (got, _) = wide.execute_prepared(&prep, a, &xw).unwrap();
            if striped {
                // The wide path's contract is strict: every stripe
                // replays the sequential addition order, so equality is
                // bitwise at every striped dim.
                assert_eq!(
                    got.max_abs_diff(&want).unwrap(),
                    0.0,
                    "wide SpMM path must be bit-identical to sequential ({gname}, dim {dim})"
                );
                assert!(wide.stats().stripes_executed > 0);
            } else {
                // Narrow dims keep the pooled schedule and its
                // (pre-existing) tolerance contract.
                assert!(got.approx_eq(&want, 1e-4).unwrap(), "{gname} dim {dim}");
            }
            // 3. FastMath differs by rounding only.
            if fm_available {
                let xw_fm = wide_fm.gemm(&x, &w).unwrap();
                let (got_fm, _) = wide_fm.execute_prepared(&prep, a, &xw_fm).unwrap();
                assert!(
                    got_fm.approx_eq(&got, 1e-3).unwrap(),
                    "fastmath layer within tolerance ({gname}, dim {dim})"
                );
                wide_fm.recycle(xw_fm);
                wide_fm.recycle(got_fm);
            }
            wide.recycle(got);
            wide.recycle(want);

            // --- Stage timings, interleaved. ---
            // The three configurations are measured round-robin within
            // each round (baseline, exact, fastmath back to back) and
            // the per-stage minimum is kept across rounds. Sequential
            // per-mode blocks would let slow thermal drift on a
            // sustained AVX-512 workload bias whichever mode runs last;
            // interleaving gives every mode the same clock conditions in
            // every round.
            let mut stage_ns = [f64::INFINITY; 6];
            for round in 0..(warm + iters) {
                let timed = round >= warm;
                let mut lap = |slot: usize, f: &mut dyn FnMut()| {
                    let t0 = std::time::Instant::now();
                    f();
                    let dt = t0.elapsed().as_nanos() as f64;
                    if timed && dt < stage_ns[slot] {
                        stage_ns[slot] = dt;
                    }
                };
                lap(0, &mut || {
                    std::hint::black_box(old_kernel::old_gemm(&x, &w));
                });
                lap(1, &mut || {
                    let out = wide.gemm(&x, &w).unwrap();
                    wide.recycle(out);
                });
                if fm_available {
                    lap(2, &mut || {
                        let out = wide_fm.gemm(&x, &w).unwrap();
                        wide_fm.recycle(out);
                    });
                }
                lap(3, &mut || {
                    let (out, _) = base_spmm.execute_prepared(&prep, a, &xw).unwrap();
                    base_spmm.recycle(out);
                });
                lap(4, &mut || {
                    let (out, _) = wide.execute_prepared(&prep, a, &xw).unwrap();
                    wide.recycle(out);
                });
                if fm_available {
                    lap(5, &mut || {
                        let (out, _) = wide_fm.execute_prepared(&prep, a, &xw).unwrap();
                        wide_fm.recycle(out);
                    });
                }
            }
            let [base_gemm_ns, wide_gemm_ns, mut fm_gemm_ns, base_spmm_ns, wide_spmm_ns, mut fm_spmm_ns] =
                stage_ns;
            if !fm_available {
                fm_gemm_ns = wide_gemm_ns;
                fm_spmm_ns = wide_spmm_ns;
            }
            wide.recycle(xw);

            let base_ns = base_gemm_ns + base_spmm_ns;
            let exact_ns = wide_gemm_ns + wide_spmm_ns;
            let fm_ns = fm_gemm_ns + fm_spmm_ns;
            let exact_speedup = base_ns / exact_ns;
            let fm_speedup = base_ns / fm_ns;
            let spmm_per_col = wide_spmm_ns / (nnzf * dim as f64);
            if *gname == "powerlaw" {
                if dim == 16 {
                    pl_spmm_16 = spmm_per_col;
                }
                if dim == 512 {
                    pl_spmm_512 = spmm_per_col;
                }
            }
            if WIDE_DIMS.contains(&dim) {
                exact_speedups.push(exact_speedup);
                fm_speedups.push(fm_speedup);
            }
            println!(
                "{gname:<9} {dim:>4} {base_ns:>13.0} {exact_ns:>13.0} {fm_ns:>13.0} \
                 {exact_speedup:>7.2}x {fm_speedup:>7.2}x {striped:>8} {spmm_per_col:>12.4}"
            );
            records.push(format!(
                "    {{\"graph\": \"{gname}\", \"dim\": {dim}, \"workers\": {WORKERS}, \
                 \"baseline_gemm_ns\": {base_gemm_ns:.0}, \"baseline_spmm_ns\": {base_spmm_ns:.0}, \
                 \"wide_gemm_ns\": {wide_gemm_ns:.0}, \"wide_spmm_ns\": {wide_spmm_ns:.0}, \
                 \"fastmath_gemm_ns\": {fm_gemm_ns:.0}, \"fastmath_spmm_ns\": {fm_spmm_ns:.0}, \
                 \"speedup_exact\": {exact_speedup:.3}, \"speedup_fastmath\": {fm_speedup:.3}, \
                 \"striped\": {striped}, \"spmm_ns_per_nnz_col\": {spmm_per_col:.4}}}"
            ));
        }
    }
    let headline = geomean(&fm_speedups);
    let headline_exact = geomean(&exact_speedups);
    let flatness = pl_spmm_512 / pl_spmm_16.max(f64::MIN_POSITIVE);
    println!(
        "\nwide-dim layer speedup @ {WORKERS} workers (geomean, both graphs, dims {{128, 256, \
         512}}):"
    );
    println!("  fastmath (headline): {headline:.2}x    exact (default path): {headline_exact:.2}x");
    println!(
        "SpMM-stage flatness, powerlaw: dim-512 ns/(nnz.col) is {flatness:.2}x dim-16's \
         (target: within 2x)"
    );
    if !fm_available {
        println!("note: fastmath unavailable on this CPU; fm numbers fell back to exact");
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"baseline\": \"pre-revision data path: the previous unblocked register-tiled \
             GEMM kernel (reproduced in-bench, guarded bitwise-equal to the engine) + static \
             pooled SpMM, same graphs, plan, and worker count\",\n",
            "  \"speedup\": {:.3},\n",
            "  \"speedup_mode\": \"fastmath opt-in (documented carve-out; exact default below)\",\n",
            "  \"speedup_exact\": {:.3},\n",
            "  \"smoke\": {},\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"acceptance\": {{\n",
            "    \"widedim_geomean_speedup_at_4_workers\": {:.3},\n",
            "    \"widedim_geomean_speedup_exact\": {:.3},\n",
            "    \"dim512_vs_dim16_spmm_ns_per_nnz_col_ratio\": {:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        headline,
        headline_exact,
        smoke,
        records.join(",\n"),
        headline,
        headline_exact,
        flatness
    );
    std::fs::write("BENCH_widedim.json", &json).expect("write BENCH_widedim.json");
    println!("wrote BENCH_widedim.json");
}
