//! Row/column reordering of sparse matrices.
//!
//! MergePath-SpMM pointedly requires "no preprocessing, reordering, or
//! extension of the sparse input matrix" (§I). The classic alternative for
//! taming evil rows *is* reordering — e.g. sorting rows by degree so
//! contiguous row chunks have comparable work. This module provides those
//! permutations so the repository can quantify what reordering buys a
//! row-splitting kernel and what it costs (the `ablation_reordering`
//! harness).

use crate::{CsrMatrix, SparseFormatError};

/// A permutation of `n` indices: `perm[new_index] = old_index`.
///
/// Constructed validated so applying it cannot fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl Permutation {
    /// Validates and wraps a permutation vector (`perm[new] = old`).
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::RowOutOfBounds`] if any entry is out of
    /// range or duplicated.
    pub fn new(forward: Vec<usize>) -> Result<Self, SparseFormatError> {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (new, &old) in forward.iter().enumerate() {
            if old >= n {
                return Err(SparseFormatError::RowOutOfBounds {
                    position: new,
                    row: old,
                    rows: n,
                });
            }
            if inverse[old] != usize::MAX {
                return Err(SparseFormatError::RowOutOfBounds {
                    position: new,
                    row: old,
                    rows: n,
                });
            }
            inverse[old] = new;
        }
        Ok(Self { forward, inverse })
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// `perm[new] = old` mapping.
    pub fn forward(&self) -> &[usize] {
        &self.forward
    }

    /// `inverse[old] = new` mapping.
    pub fn inverse(&self) -> &[usize] {
        &self.inverse
    }
}

/// Builds the permutation that sorts rows by descending length (degree),
/// ties broken by row index — the standard "sort rows by work" reordering.
pub fn degree_sort_permutation<T>(a: &CsrMatrix<T>) -> Permutation {
    let mut order: Vec<usize> = (0..a.rows()).collect();
    order.sort_by_key(|&r| (std::cmp::Reverse(a.row_nnz(r)), r));
    Permutation::new(order).expect("a sort of 0..n is a permutation")
}

/// Applies a row permutation: row `new` of the result is row
/// `perm.forward()[new]` of the input. Column indices are unchanged.
///
/// # Panics
///
/// Panics if `perm.len() != a.rows()`.
pub fn permute_rows<T: Copy>(a: &CsrMatrix<T>, perm: &Permutation) -> CsrMatrix<T> {
    assert_eq!(perm.len(), a.rows(), "permutation length must match rows");
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    let mut col_indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    row_ptr.push(0usize);
    for &old in perm.forward() {
        let row = a.row(old);
        col_indices.extend_from_slice(row.cols);
        values.extend_from_slice(row.vals);
        row_ptr.push(col_indices.len());
    }
    CsrMatrix::new(a.rows(), a.cols(), row_ptr, col_indices, values)
        .expect("row permutation preserves CSR invariants")
}

/// Applies a symmetric permutation to a square matrix: both rows and
/// columns are relabelled (`result[i, j] = a[perm[i], perm[j]]`), which is
/// the graph-isomorphic node relabelling — the product `P·A·Pᵀ`.
///
/// # Panics
///
/// Panics if `a` is not square or `perm.len() != a.rows()`.
pub fn permute_symmetric<T: Copy>(a: &CsrMatrix<T>, perm: &Permutation) -> CsrMatrix<T> {
    assert_eq!(
        a.rows(),
        a.cols(),
        "symmetric permutation needs a square matrix"
    );
    assert_eq!(perm.len(), a.rows(), "permutation length must match rows");
    let inverse = perm.inverse();
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    let mut col_indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    row_ptr.push(0usize);
    let mut scratch: Vec<(usize, T)> = Vec::new();
    for &old in perm.forward() {
        let row = a.row(old);
        scratch.clear();
        scratch.extend(
            row.cols
                .iter()
                .map(|&c| inverse[c])
                .zip(row.vals.iter().copied()),
        );
        scratch.sort_unstable_by_key(|&(c, _)| c);
        for &(c, v) in &scratch {
            col_indices.push(c);
            values.push(v);
        }
        row_ptr.push(col_indices.len());
    }
    CsrMatrix::new(a.rows(), a.cols(), row_ptr, col_indices, values)
        .expect("symmetric permutation preserves CSR invariants")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        // Row lengths 1, 3, 0, 2.
        CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 2, 1.0),
                (1, 0, 2.0),
                (1, 1, 3.0),
                (1, 3, 4.0),
                (3, 0, 5.0),
                (3, 2, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn permutation_validation() {
        assert!(Permutation::new(vec![2, 0, 1]).is_ok());
        assert!(Permutation::new(vec![0, 0, 1]).is_err(), "duplicate");
        assert!(Permutation::new(vec![0, 3]).is_err(), "out of range");
        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        assert_eq!(p.inverse(), &[1, 2, 0]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn degree_sort_orders_rows_descending() {
        let a = sample();
        let p = degree_sort_permutation(&a);
        assert_eq!(p.forward(), &[1, 3, 0, 2]);
        let sorted = permute_rows(&a, &p);
        let lens: Vec<usize> = (0..4).map(|r| sorted.row_nnz(r)).collect();
        assert_eq!(lens, vec![3, 2, 1, 0]);
        // Values move with their rows.
        assert_eq!(sorted.row(0).vals, &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn row_permutation_preserves_dense_content() {
        let a = sample();
        let p = degree_sort_permutation(&a);
        let permuted = permute_rows(&a, &p);
        let (d, dp) = (a.to_dense(), permuted.to_dense());
        for new in 0..4 {
            let old = p.forward()[new];
            for c in 0..4 {
                assert_eq!(dp.get(new, c), d.get(old, c));
            }
        }
    }

    #[test]
    fn symmetric_permutation_is_isomorphic() {
        let a = sample();
        let p = degree_sort_permutation(&a);
        let permuted = permute_symmetric(&a, &p);
        assert_eq!(permuted.nnz(), a.nnz());
        let (d, dp) = (a.to_dense(), permuted.to_dense());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(dp.get(i, j), d.get(p.forward()[i], p.forward()[j]));
            }
        }
        // Applying the identity permutation is a no-op.
        let id = Permutation::new((0..4).collect()).unwrap();
        assert_eq!(permute_symmetric(&a, &id), a);
    }

    #[test]
    #[should_panic(expected = "permutation length must match rows")]
    fn wrong_length_panics() {
        let a = sample();
        let p = Permutation::new(vec![0, 1]).unwrap();
        let _ = permute_rows(&a, &p);
    }
}
