//! The online setting on an evolving graph (§III-D).
//!
//! A graph under continuous edge churn invalidates every per-graph
//! structure: GNNAdvisor must rebuild its neighbor-partition index and
//! MergePath-SpMM its schedule before each inference. This example runs a
//! stream of snapshots, rebuilds both, and reports the rebuild cost next
//! to the inference cost.
//!
//! Run with: `cargo run --release --example evolving_graph`

use std::time::Instant;

use merge_path_spmm::core::{MergePathSpmm, NeighborPartitionIndex, SpmmKernel};
use merge_path_spmm::gcn::ops::random_features;
use merge_path_spmm::graphs::{DatasetSpec, GraphClass, GraphStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::custom("live", GraphClass::PowerLaw, 20_000, 100_000, 1_500);
    let mut stream = GraphStream::new(&spec, 7);
    let kernel = MergePathSpmm::new();
    let x = random_features(20_000, 16, 1.0, 3);

    println!(
        "evolving graph: {} nodes, starting at {} edges; 5 inferences with churn in between\n",
        20_000,
        stream.snapshot().nnz()
    );
    println!(
        "{:>4} {:>9} {:>14} {:>14} {:>12}",
        "step", "edges", "NG rebuild ms", "MP resched ms", "spmm ms"
    );
    for step in 0..5 {
        let a = stream.snapshot().clone();

        let t0 = Instant::now();
        let index = NeighborPartitionIndex::build(&a, 5);
        let ng_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let schedule = kernel.schedule(&a, 16);
        let mp_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let (out, _) = kernel.spmm_with_stats(&a, &x)?;
        let spmm_ms = t2.elapsed().as_secs_f64() * 1e3;

        println!(
            "{step:>4} {:>9} {ng_ms:>14.3} {mp_ms:>14.3} {spmm_ms:>12.2}",
            a.nnz()
        );
        assert_eq!(out.rows(), a.rows());
        assert!(schedule.matches(&a) && index.matches(&a));

        // Churn before the next inference: both structures are now stale.
        stream.step(800, 500);
        assert!(!schedule.matches(stream.snapshot()));
        assert!(!index.matches(stream.snapshot()));
    }
    println!(
        "\nEvery churn batch invalidates both structures; the merge-path \
         reschedule stays a small fraction of the inference itself (the \
         paper's Figure 8 measures ~2% on its GPU)."
    );
    Ok(())
}
