//! Criterion benchmark of merge-path schedule construction — the
//! "scheduling overhead" of the online setting (Figure 8), measured on
//! this CPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpspmm_core::Schedule;
use mpspmm_graphs::{DatasetSpec, GraphClass};

fn bench_schedule(c: &mut Criterion) {
    let spec = DatasetSpec::custom("pl", GraphClass::PowerLaw, 50_000, 250_000, 2_000);
    let a = spec.synthesize(7);
    let mut group = c.benchmark_group("schedule/build");
    group.throughput(Throughput::Elements(a.merge_items() as u64));
    for threads in [64usize, 1024, 16_384] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bch, &threads| {
                bch.iter(|| Schedule::build(&a, threads));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedule
}
criterion_main!(benches);
