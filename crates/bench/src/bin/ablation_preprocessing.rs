//! Ablation — preprocessing cost and metadata footprint.
//!
//! The paper stresses that MergePath-SpMM "requires no preprocessing,
//! reordering, or extension of the sparse input matrix", whereas
//! GNNAdvisor preprocesses the graph into neighbor partitions (a CSR
//! extension) whose build time the paper's kernel timings exclude
//! (§IV-A). This ablation measures, on this CPU:
//!
//! * GNNAdvisor's neighbor-partition index — build time + resident bytes,
//! * MergePath-SpMM's schedule — build time (sequential and parallel) +
//!   resident bytes,
//!
//! and relates both to one *measured* engine invocation (prepared plan,
//! current SIMD data path) so the "online" cost of each approach is
//! visible against the kernel time it fronts.

use std::time::Instant;

use mpspmm_bench::{banner, full_size_requested, load, time_ns, SEED};
use mpspmm_core::{
    default_cost_for_dim, default_workers, plan_from_schedule, thread_count, ExecEngine,
    NeighborPartitionIndex, NnzSplitSpmm, PreparedPlan, Schedule, MIN_THREADS,
};
use mpspmm_graphs::find_dataset;
use mpspmm_sparse::DenseMatrix;

const SAMPLE: [&str; 5] = ["Cora", "Pubmed", "email-Euall", "Nell", "com-Amazon"];

fn main() {
    let full = full_size_requested();
    banner(
        "Ablation: preprocessing",
        "GNNAdvisor neighbor-partition index vs MergePath schedule (build cost, footprint)",
        full,
    );
    println!("sample: {SAMPLE:?}, seed {SEED}, dim 16\n");

    let dim = 16;
    let cost = default_cost_for_dim(dim);
    let engine = ExecEngine::new(default_workers());
    println!(
        "{:<12} {:>11} {:>11} | {:>11} {:>11} {:>12} | {:>11}",
        "Graph", "NG build", "NG bytes", "MP build", "MP par(4)", "MP bytes", "kernel µs"
    );
    for name in SAMPLE {
        let (_, a) = load(find_dataset(name).expect("in Table II"), full);

        let t0 = Instant::now();
        let index = NeighborPartitionIndex::build(&a, NnzSplitSpmm::new().ng_size_for(&a));
        let ng_build = t0.elapsed();

        let threads = thread_count(a.merge_items(), cost, MIN_THREADS);
        let t1 = Instant::now();
        let schedule = Schedule::build(&a, threads);
        let mp_build = t1.elapsed();
        let t2 = Instant::now();
        let par = Schedule::build_parallel(&a, threads, 4);
        let mp_par = t2.elapsed();
        assert_eq!(schedule, par, "parallel build must be bit-identical");

        // Schedule footprint: two merge coordinates per thread.
        let mp_bytes = schedule.num_threads() * 4 * std::mem::size_of::<usize>();

        // One measured kernel invocation on the engine the schedule
        // fronts: prepared plan, packed indices, current SIMD path.
        let plan = plan_from_schedule(&schedule, &a);
        let prep = PreparedPlan::for_matrix(plan, &a);
        let b = DenseMatrix::from_fn(a.cols(), dim, |r, c| {
            ((r * 31 + c * 7) % 17) as f32 * 0.125 - 1.0
        });
        let kernel_us = time_ns(2, 7, || {
            let _ = engine.execute_prepared(&prep, &a, &b).unwrap();
        }) / 1e3;
        println!(
            "{name:<12} {:>9.2}ms {:>10}B | {:>9.2}ms {:>9.2}ms {:>11}B | {:>11.2}",
            ng_build.as_secs_f64() * 1e3,
            index.memory_bytes(),
            mp_build.as_secs_f64() * 1e3,
            mp_par.as_secs_f64() * 1e3,
            mp_bytes,
            kernel_us,
        );
    }
    println!(
        "\nReading: both structures are cheap to build, but they scale \
         differently — the NG index grows with the non-zero count (it is a \
         per-group CSR extension and must be rebuilt whenever the graph \
         changes), while the merge-path schedule grows only with the thread \
         count and reuses the unmodified CSR arrays. The paper's \
         preprocessing-free claim is about *kernel-input* format: \
         MergePath-SpMM consumes RP/CP as-is. The kernel column is a real \
         engine run, so build cost can be read directly against the \
         invocation it amortizes over."
    );
}
