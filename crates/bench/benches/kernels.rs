//! Criterion microbenchmarks of the real CPU SpMM kernels.
//!
//! These measure this machine's actual execution of each strategy (not
//! the machine models): plan construction + parallel execution of
//! `A × XW` at dimension 16 on a mid-sized power-law graph and a
//! structured graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpspmm_core::{
    MergePathSerialFixup, MergePathSpmm, NnzSplitSpmm, RowSplitSpmm, SerialSpmm, SpmmKernel,
};
use mpspmm_gcn::ops::random_features;
use mpspmm_graphs::{DatasetSpec, GraphClass};

fn bench_kernels(c: &mut Criterion) {
    let inputs = [
        (
            "powerlaw-50k",
            DatasetSpec::custom("pl", GraphClass::PowerLaw, 10_000, 50_000, 1_000),
        ),
        (
            "structured-50k",
            DatasetSpec::custom("st", GraphClass::Structured, 20_000, 50_000, 8),
        ),
    ];
    for (label, spec) in inputs {
        let a = spec.synthesize(7);
        let b = random_features(a.cols(), 16, 1.0, 3);
        let kernels: Vec<(&str, Box<dyn SpmmKernel>)> = vec![
            ("serial", Box::new(SerialSpmm)),
            ("row-split", Box::new(RowSplitSpmm::with_threads(1024))),
            ("gnnadvisor", Box::new(NnzSplitSpmm::new())),
            ("mergepath", Box::new(MergePathSpmm::new())),
            (
                "mergepath-serialfixup",
                Box::new(MergePathSerialFixup::new()),
            ),
        ];
        let mut group = c.benchmark_group(format!("spmm/{label}"));
        group.throughput(Throughput::Elements(a.nnz() as u64));
        for (name, kernel) in &kernels {
            group.bench_with_input(BenchmarkId::from_parameter(name), &a, |bch, a| {
                bch.iter(|| kernel.spmm(a, &b).expect("shapes match"));
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(benches);
