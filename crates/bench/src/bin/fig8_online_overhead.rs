//! Figure 8 — scheduling overhead of online execution.
//!
//! In the online setting (§III-D), the MergePath-SpMM schedule is
//! recomputed before each inference; in a 2-layer GCN the kernel is then
//! invoked twice. This harness prints, per graph, the scheduling overhead
//! as a percentage of the total (schedule + 2 kernel invocations) on the
//! GPU model, plus the *measured* CPU scheduling time of this
//! implementation for reference.
//!
//! The paper observes the scheduling cost is "generally constant time
//! across different graphs" (~2% geometric mean, up to 10% on the smallest
//! graph, under 1% on com-Amazon): on the GPU it is a small fixed-depth
//! kernel of parallel binary searches. We model it as a constant-cost
//! kernel of [`SCHEDULE_KERNEL_CYCLES`] cycles.

use std::time::Instant;

use mpspmm_bench::{banner, full_size_requested, geomean, load};
use mpspmm_core::{default_cost_for_dim, thread_count, Schedule, MIN_THREADS};
use mpspmm_graphs::table_ii;
use mpspmm_simt::{GpuConfig, GpuKernel};

/// Cycles of the schedule-construction kernel on the GPU model: a
/// fixed-depth wave of per-thread binary searches (two per thread, ~log n
/// L2-resident probes each) whose latency is dominated by launch +
/// pipeline depth rather than the input size.
const SCHEDULE_KERNEL_CYCLES: f64 = 2_500.0;

fn main() {
    let full = full_size_requested();
    banner(
        "Figure 8",
        "online scheduling overhead in a 2-layer GCN (dim 16)",
        full,
    );

    let cfg = GpuConfig::rtx6000();
    let dim = 16;
    let cost = default_cost_for_dim(dim);
    let sched_micros = cfg.cycles_to_micros(SCHEDULE_KERNEL_CYCLES);
    println!("modeled schedule kernel: {SCHEDULE_KERNEL_CYCLES} cycles = {sched_micros:.2} µs\n");
    println!(
        "{:<16} {:>9} {:>13} {:>13} {:>10} {:>15}",
        "Graph", "threads", "2x kernel µs", "schedule µs", "overhead", "CPU sched (ms)"
    );

    let mut overheads = Vec::new();
    let mut rows = Vec::new();
    for spec in table_ii() {
        let (used, a) = load(spec, full);
        let kernel_micros = GpuKernel::MergePath { cost: Some(cost) }
            .simulate(&a, dim, &cfg)
            .micros
            * 2.0;
        let overhead = sched_micros / (sched_micros + kernel_micros);
        // Reference: actual wall-clock schedule construction on this CPU.
        let threads = thread_count(a.merge_items(), cost, MIN_THREADS);
        let t0 = Instant::now();
        let schedule = Schedule::build(&a, threads);
        let cpu_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(schedule.num_threads(), threads);
        overheads.push(overhead);
        rows.push((used.name, threads, kernel_micros, overhead, cpu_ms));
        println!(
            "{:<16} {:>9} {:>13.2} {:>13.2} {:>9.1}% {:>15.3}",
            used.name,
            threads,
            kernel_micros,
            sched_micros,
            overhead * 100.0,
            cpu_ms
        );
    }

    let geo = geomean(&overheads) * 100.0;
    let max = rows
        .iter()
        .max_by(|a, b| a.3.partial_cmp(&b.3).expect("finite"))
        .expect("non-empty");
    println!("\ngeometric-mean scheduling overhead: {geo:.1}%  (paper: ~2%)");
    println!(
        "largest overhead: {} at {:.1}%  (paper: Cora at 10%)",
        max.0,
        max.3 * 100.0
    );
    println!(
        "com-Amazon overhead: {:.2}%  (paper: under 1%)",
        rows.iter()
            .find(|r| r.0 == "com-Amazon")
            .expect("in Table II")
            .3
            * 100.0
    );
}
