//! CPU executors for [`KernelPlan`]s.
//!
//! Two executors share identical per-segment arithmetic:
//!
//! * [`execute_sequential`] replays every thread plan in order on the
//!   calling thread — fully deterministic, used as the correctness oracle
//!   and by the machine-model simulators.
//! * [`execute_parallel`] runs thread plans on a pool of worker OS threads
//!   (`std::thread::scope`), with atomic f32 accumulation implemented
//!   as compare-and-swap loops over `AtomicU32` bit patterns — the CPU
//!   equivalent of the GPU's `atomicAdd(float*)` used by the paper's
//!   kernels.
//!
//! Segment flush semantics (see [`Flush`]):
//!
//! * `Regular` — plain store by the exclusive owner;
//! * `Atomic` — per-element CAS accumulation;
//! * `Carry` — the thread keeps its partial result local; after **all**
//!   threads join, a single serial phase adds the carries into the output
//!   in thread order (the merge-path serial fix-up).
//!
//! Both executors return the output matrix together with the realized
//! [`WriteStats`].

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

use mpspmm_sparse::{CsrMatrix, DenseMatrix, SparseFormatError};

use crate::plan::{Flush, KernelPlan, Segment};
use crate::stats::WriteStats;

/// Checks the SpMM operand shapes: `A`'s columns must match `B`'s rows.
pub(crate) fn check_shapes(
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
) -> Result<(), SparseFormatError> {
    if a.cols() != b.rows() {
        return Err(SparseFormatError::ShapeMismatch {
            left: (a.rows(), a.cols()),
            right: (b.rows(), b.cols()),
        });
    }
    Ok(())
}

/// Accumulates one segment into `acc` (length = `b.cols()`), zeroing first.
#[inline]
fn accumulate_segment(seg: &Segment, a: &CsrMatrix<f32>, b: &DenseMatrix<f32>, acc: &mut [f32]) {
    acc.fill(0.0);
    let cols = a.col_indices();
    let vals = a.values();
    for k in seg.nz_start..seg.nz_end {
        let v = vals[k];
        let brow = b.row(cols[k]);
        for (dst, &src) in acc.iter_mut().zip(brow) {
            *dst += v * src;
        }
    }
}

/// Executes a plan on the calling thread, deterministically.
///
/// Thread plans run in thread order; carry flushes run afterwards, also in
/// thread order. The result is bit-identical across runs.
///
/// # Errors
///
/// Returns [`SparseFormatError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn execute_sequential(
    plan: &KernelPlan,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
) -> Result<(DenseMatrix<f32>, WriteStats), SparseFormatError> {
    check_shapes(a, b)?;
    let dim = b.cols();
    let mut out = DenseMatrix::<f32>::zeros(a.rows(), dim);
    let mut stats = WriteStats::default();
    let mut acc = vec![0.0f32; dim];
    let mut carries: Vec<(usize, Vec<f32>)> = Vec::new();
    for tp in &plan.threads {
        for seg in &tp.segments {
            if seg.is_empty() {
                continue;
            }
            accumulate_segment(seg, a, b, &mut acc);
            match seg.flush {
                Flush::Regular => {
                    out.row_mut(seg.row).copy_from_slice(&acc);
                    stats.regular_row_writes += 1;
                    stats.regular_nnz += seg.len();
                }
                Flush::Atomic => {
                    for (dst, &src) in out.row_mut(seg.row).iter_mut().zip(&acc) {
                        *dst += src;
                    }
                    stats.atomic_row_updates += 1;
                    stats.atomic_nnz += seg.len();
                }
                Flush::Carry => {
                    carries.push((seg.row, acc.clone()));
                    stats.serial_row_updates += 1;
                    stats.serial_nnz += seg.len();
                }
            }
        }
    }
    for (row, carry) in carries {
        for (dst, src) in out.row_mut(row).iter_mut().zip(carry) {
            *dst += src;
        }
    }
    Ok((out, stats))
}

/// Adds `v` to the f32 stored in `cell` with a compare-and-swap loop.
#[inline]
pub(crate) fn atomic_add_f32(cell: &AtomicU32, v: f32) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(current) + v).to_bits();
        match cell.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Executes a plan on `workers` OS threads.
///
/// Logical thread plans are claimed dynamically from a shared queue, so
/// any number of logical threads runs correctly on any number of workers.
/// The carry (serial fix-up) phase, if any, runs after all workers join,
/// in logical-thread order.
///
/// Floating-point note: rows updated atomically by several logical threads
/// accumulate in a non-deterministic order, so results may differ from
/// [`execute_sequential`] by rounding (compare with a tolerance).
///
/// # Errors
///
/// Returns [`SparseFormatError::ShapeMismatch`] if `a.cols() != b.rows()`.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn execute_parallel(
    plan: &KernelPlan,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
    workers: usize,
) -> Result<(DenseMatrix<f32>, WriteStats), SparseFormatError> {
    assert!(workers > 0, "need at least one worker");
    check_shapes(a, b)?;
    let dim = b.cols();
    let cells: Vec<AtomicU32> = (0..a.rows() * dim).map(|_| AtomicU32::new(0)).collect();
    let next = AtomicUsize::new(0);
    let stats = Mutex::new(WriteStats::default());
    // Carries collected as (logical thread, segment order, row, partial).
    let all_carries = Mutex::new(Vec::<(usize, usize, usize, Vec<f32>)>::new());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(plan.threads.len()).max(1) {
            scope.spawn(|| {
                let mut acc = vec![0.0f32; dim];
                let mut local = WriteStats::default();
                let mut local_carries = Vec::new();
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= plan.threads.len() {
                        break;
                    }
                    for (s, seg) in plan.threads[t].segments.iter().enumerate() {
                        if seg.is_empty() {
                            continue;
                        }
                        if acc.len() != dim {
                            acc.resize(dim, 0.0);
                        }
                        accumulate_segment(seg, a, b, &mut acc);
                        let base = seg.row * dim;
                        match seg.flush {
                            Flush::Regular => {
                                for (i, &v) in acc.iter().enumerate() {
                                    // Exclusive owner: plain store suffices
                                    // (plan invariant).
                                    cells[base + i].store(v.to_bits(), Ordering::Relaxed);
                                }
                                local.regular_row_writes += 1;
                                local.regular_nnz += seg.len();
                            }
                            Flush::Atomic => {
                                for (i, &v) in acc.iter().enumerate() {
                                    atomic_add_f32(&cells[base + i], v);
                                }
                                local.atomic_row_updates += 1;
                                local.atomic_nnz += seg.len();
                            }
                            Flush::Carry => {
                                // Hand over the accumulator instead of
                                // cloning it; a fresh one is allocated
                                // lazily only when another segment follows.
                                local_carries.push((t, s, seg.row, std::mem::take(&mut acc)));
                                local.serial_row_updates += 1;
                                local.serial_nnz += seg.len();
                            }
                        }
                    }
                }
                *stats.lock().unwrap() += local;
                if !local_carries.is_empty() {
                    all_carries.lock().unwrap().append(&mut local_carries);
                }
            });
        }
    });

    // Serial fix-up phase in deterministic (thread, segment) order.
    let mut carries = all_carries.into_inner().unwrap();
    carries.sort_unstable_by_key(|&(t, s, _, _)| (t, s));
    for (_, _, row, carry) in carries {
        let base = row * dim;
        for (i, v) in carry.into_iter().enumerate() {
            atomic_add_f32(&cells[base + i], v);
        }
    }

    let data: Vec<f32> = cells
        .into_iter()
        .map(|c| f32::from_bits(c.into_inner()))
        .collect();
    let out = DenseMatrix::from_vec(a.rows(), dim, data)
        .expect("output buffer has exactly rows*dim elements");
    Ok((out, stats.into_inner().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ThreadPlan;

    fn seg(row: usize, nz_start: usize, nz_end: usize, flush: Flush) -> Segment {
        Segment {
            row,
            nz_start,
            nz_end,
            flush,
        }
    }

    fn plan(threads: Vec<Vec<Segment>>) -> KernelPlan {
        KernelPlan {
            threads: threads
                .into_iter()
                .map(|segments| ThreadPlan { segments })
                .collect(),
        }
    }

    fn small() -> (CsrMatrix<f32>, DenseMatrix<f32>) {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
            ],
        )
        .unwrap();
        let b = DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        (a, b)
    }

    fn whole_matrix_plan(a: &CsrMatrix<f32>) -> KernelPlan {
        let rp = a.row_ptr();
        plan(vec![(0..a.rows())
            .map(|r| seg(r, rp[r], rp[r + 1], Flush::Regular))
            .collect()])
    }

    fn dense_reference(a: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let mut out = DenseMatrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            let row = a.row(r);
            for (&c, &v) in row.cols.iter().zip(row.vals) {
                for d in 0..b.cols() {
                    out.set(r, d, out.get(r, d) + v * b.get(c, d));
                }
            }
        }
        out
    }

    #[test]
    fn sequential_matches_dense_reference() {
        let (a, b) = small();
        let p = whole_matrix_plan(&a);
        let (out, stats) = execute_sequential(&p, &a, &b).unwrap();
        assert!(out.approx_eq(&dense_reference(&a, &b), 1e-6).unwrap());
        assert_eq!(stats.regular_nnz, 5);
        assert_eq!(stats.atomic_nnz, 0);
    }

    #[test]
    fn parallel_matches_sequential_with_atomics() {
        let (a, b) = small();
        let p = plan(vec![
            vec![seg(0, 0, 1, Flush::Atomic)],
            vec![seg(0, 1, 2, Flush::Atomic), seg(1, 2, 3, Flush::Regular)],
            vec![seg(2, 3, 5, Flush::Regular)],
        ]);
        p.validate(&a).unwrap();
        let (seq, seq_stats) = execute_sequential(&p, &a, &b).unwrap();
        for workers in [1, 2, 4] {
            let (par, par_stats) = execute_parallel(&p, &a, &b, workers).unwrap();
            assert!(par.approx_eq(&seq, 1e-5).unwrap());
            assert_eq!(par_stats, seq_stats);
        }
        assert_eq!(seq_stats.atomic_row_updates, 2);
        assert_eq!(seq_stats.atomic_nnz, 2);
    }

    #[test]
    fn carry_phase_matches_reference() {
        let (a, b) = small();
        let p = plan(vec![
            vec![seg(0, 0, 1, Flush::Carry)],
            vec![seg(0, 1, 2, Flush::Carry), seg(1, 2, 3, Flush::Regular)],
            vec![seg(2, 3, 5, Flush::Regular)],
        ]);
        p.validate(&a).unwrap();
        let reference = dense_reference(&a, &b);
        let (seq, stats) = execute_sequential(&p, &a, &b).unwrap();
        assert!(seq.approx_eq(&reference, 1e-6).unwrap());
        assert_eq!(stats.serial_row_updates, 2);
        assert_eq!(stats.serial_nnz, 2);
        let (par, par_stats) = execute_parallel(&p, &a, &b, 2).unwrap();
        assert!(par.approx_eq(&reference, 1e-5).unwrap());
        assert_eq!(par_stats, stats);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let (a, _) = small();
        let bad_b = DenseMatrix::<f32>::zeros(5, 2);
        let p = whole_matrix_plan(&a);
        assert!(execute_sequential(&p, &a, &bad_b).is_err());
        assert!(execute_parallel(&p, &a, &bad_b, 2).is_err());
    }

    #[test]
    fn atomic_add_f32_accumulates() {
        let cell = AtomicU32::new(0f32.to_bits());
        atomic_add_f32(&cell, 1.5);
        atomic_add_f32(&cell, 2.25);
        assert_eq!(f32::from_bits(cell.into_inner()), 3.75);
    }

    #[test]
    fn atomic_adds_race_free_across_threads() {
        let cell = AtomicU32::new(0f32.to_bits());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        atomic_add_f32(&cell, 1.0);
                    }
                });
            }
        });
        // 4000 < 2^24, so f32 addition is exact here.
        assert_eq!(f32::from_bits(cell.into_inner()), 4000.0);
    }

    #[test]
    fn more_workers_than_plans_is_fine() {
        let (a, b) = small();
        let p = whole_matrix_plan(&a);
        let (out, _) = execute_parallel(&p, &a, &b, 16).unwrap();
        assert!(out.approx_eq(&dense_reference(&a, &b), 1e-6).unwrap());
    }

    #[test]
    fn zero_dimension_output_is_empty() {
        let (a, _) = small();
        let b = DenseMatrix::<f32>::zeros(3, 0);
        let p = whole_matrix_plan(&a);
        let (out, _) = execute_sequential(&p, &a, &b).unwrap();
        assert_eq!(out.cols(), 0);
        let (out, _) = execute_parallel(&p, &a, &b, 2).unwrap();
        assert_eq!(out.cols(), 0);
    }
}
