//! Serving metrics: global and per-tenant counters, batch-size
//! histogram, and latency percentiles.
//!
//! Counters are lock-free atomics bumped on the hot path; latencies go
//! into a bounded ring (oldest overwritten) so a long-lived server keeps
//! a recent window instead of an unbounded log. Snapshots ([`ServeStats`]
//! / [`TenantStats`]) are plain data, safe to hold across any amount of
//! serving.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mpspmm_core::EngineStats;

/// Number of batch-size histogram buckets: batch request counts
/// `1, 2, 3-4, 5-8, 9-16, …, 65+` (powers of two).
pub const BATCH_HIST_BUCKETS: usize = 8;

/// Latency samples kept for percentile estimation (a ring; oldest
/// samples are overwritten).
pub(crate) const LATENCY_WINDOW: usize = 8192;

/// Histogram bucket index for a batch of `requests` requests.
pub(crate) fn batch_bucket(requests: usize) -> usize {
    debug_assert!(requests >= 1);
    let bits = usize::BITS - (requests.max(1) - 1).leading_zeros();
    (bits as usize).min(BATCH_HIST_BUCKETS - 1)
}

/// Per-tenant live counters, shared between the submit path and the
/// dispatcher (the `in_flight` gauge is the admission-control bound).
#[derive(Debug, Default)]
pub(crate) struct TenantState {
    pub in_flight: AtomicUsize,
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_deadline: AtomicU64,
}

/// Live collectors owned by the server.
#[derive(Debug, Default)]
pub(crate) struct StatsCollector {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_deadline: AtomicU64,
    pub internal_errors: AtomicU64,
    pub batches: AtomicU64,
    pub degraded_batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub batched_cols: AtomicU64,
    pub packed_batches: AtomicU64,
    pub packed_graphs: AtomicU64,
    pub packed_nnz: AtomicU64,
    pub packed_capacity_nnz: AtomicU64,
    pub sharded_batches: AtomicU64,
    pub sharded_requests: AtomicU64,
    batch_hist: [AtomicU64; BATCH_HIST_BUCKETS],
    graphs_hist: [AtomicU64; BATCH_HIST_BUCKETS],
    latencies: Mutex<LatencyRing>,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples_ns: Vec<u64>,
    next: usize,
}

impl StatsCollector {
    /// The shared counter block for `tenant`, created on first sight.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantState> {
        let mut tenants = self.tenants.lock().unwrap();
        match tenants.get(tenant) {
            Some(t) => Arc::clone(t),
            None => {
                let t = Arc::new(TenantState::default());
                tenants.insert(tenant.to_string(), Arc::clone(&t));
                t
            }
        }
    }

    /// Records one executed batch of `requests` requests / `cols` total
    /// dense columns.
    pub fn record_batch(&self, requests: usize, cols: usize, degraded: bool) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(requests as u64, Ordering::Relaxed);
        self.batched_cols.fetch_add(cols as u64, Ordering::Relaxed);
        self.batch_hist[batch_bucket(requests)].fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded_batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one executed **packed** (block-diagonal) window of
    /// `graphs` constituent graphs totalling `nnz` packed non-zeros,
    /// against a window capacity of `capacity_nnz` — the pair behind the
    /// pack-efficiency ratio.
    pub fn record_packed(&self, graphs: usize, nnz: usize, capacity_nnz: usize) {
        self.packed_batches.fetch_add(1, Ordering::Relaxed);
        self.packed_graphs
            .fetch_add(graphs as u64, Ordering::Relaxed);
        self.packed_nnz.fetch_add(nnz as u64, Ordering::Relaxed);
        self.packed_capacity_nnz
            .fetch_add(capacity_nnz as u64, Ordering::Relaxed);
        self.graphs_hist[batch_bucket(graphs)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch routed through a graph's [`ShardedEngine`]
    /// (`mpspmm_core::ShardedEngine`) scatter/gather fan-out instead of
    /// the shared serving engine.
    pub fn record_sharded(&self, requests: usize) {
        self.sharded_batches.fetch_add(1, Ordering::Relaxed);
        self.sharded_requests
            .fetch_add(requests as u64, Ordering::Relaxed);
    }

    /// Records a window's worth of submit→reply latencies under one
    /// ring lock instead of one lock per reply.
    pub fn record_latencies<I: IntoIterator<Item = std::time::Duration>>(&self, latencies: I) {
        let mut ring = self.latencies.lock().unwrap();
        for latency in latencies {
            let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
            if ring.samples_ns.len() < LATENCY_WINDOW {
                ring.samples_ns.push(ns);
            } else {
                let next = ring.next;
                ring.samples_ns[next] = ns;
            }
            ring.next = (ring.next + 1) % LATENCY_WINDOW;
        }
    }

    /// Snapshot of everything, with `queue_depth`, the engine counters,
    /// and the per-graph auto-tuner statuses supplied by the server
    /// (they live outside this collector).
    pub fn snapshot(
        &self,
        queue_depth: usize,
        engine: EngineStats,
        tuned_graphs: Vec<GraphTuneStatus>,
        sharded_graphs: Vec<GraphShardStats>,
    ) -> ServeStats {
        let latency = {
            let ring = self.latencies.lock().unwrap();
            LatencySummary::from_samples(&ring.samples_ns)
        };
        let mut tenants: Vec<TenantStats> = self
            .tenants
            .lock()
            .unwrap()
            .iter()
            .map(|(name, t)| TenantStats {
                tenant: name.clone(),
                in_flight: t.in_flight.load(Ordering::Relaxed),
                submitted: t.submitted.load(Ordering::Relaxed),
                completed: t.completed.load(Ordering::Relaxed),
                rejected_queue_full: t.rejected_queue_full.load(Ordering::Relaxed),
                rejected_deadline: t.rejected_deadline.load(Ordering::Relaxed),
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let mut batch_size_hist = [0u64; BATCH_HIST_BUCKETS];
        for (dst, src) in batch_size_hist.iter_mut().zip(&self.batch_hist) {
            *dst = src.load(Ordering::Relaxed);
        }
        let mut graphs_per_batch_hist = [0u64; BATCH_HIST_BUCKETS];
        for (dst, src) in graphs_per_batch_hist.iter_mut().zip(&self.graphs_hist) {
            *dst = src.load(Ordering::Relaxed);
        }
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_requests = self.batched_requests.load(Ordering::Relaxed);
        let packed_batches = self.packed_batches.load(Ordering::Relaxed);
        let packed_graphs = self.packed_graphs.load(Ordering::Relaxed);
        let packed_nnz = self.packed_nnz.load(Ordering::Relaxed);
        let packed_capacity_nnz = self.packed_capacity_nnz.load(Ordering::Relaxed);
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            batches,
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            batched_cols: self.batched_cols.load(Ordering::Relaxed),
            mean_batch_requests: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            batch_size_hist,
            packed_batches,
            mean_graphs_per_batch: if packed_batches == 0 {
                0.0
            } else {
                packed_graphs as f64 / packed_batches as f64
            },
            graphs_per_batch_hist,
            packed_nnz,
            pack_efficiency: if packed_capacity_nnz == 0 {
                0.0
            } else {
                packed_nnz as f64 / packed_capacity_nnz as f64
            },
            sharded_batches: self.sharded_batches.load(Ordering::Relaxed),
            sharded_requests: self.sharded_requests.load(Ordering::Relaxed),
            queue_depth,
            latency,
            engine,
            tuned_graphs,
            sharded_graphs,
            tenants,
        }
    }
}

/// Scale-out slice of the snapshot: one routed sharded graph's
/// per-shard routing counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphShardStats {
    /// Registered graph name.
    pub graph: String,
    /// Routed version the counters describe.
    pub version: u64,
    /// Workers each shard's private engine runs with.
    pub workers_per_shard: usize,
    /// Per-shard shape facts and queue-depth/served counters, in
    /// row-band order.
    pub shards: Vec<mpspmm_core::ShardQueueStats>,
}

/// Auto-tuner progress of one routed graph, reported only when the
/// serving engine carries an [`AutoTuner`](mpspmm_core::AutoTuner).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphTuneStatus {
    /// Registered graph name.
    pub graph: String,
    /// Routed version the status describes.
    pub version: u64,
    /// Whether the plan's explorer has settled on a measured winner
    /// (warm-started plans are converged from the first request).
    pub converged: bool,
    /// Measured executions spent exploring this plan's arm space
    /// (0 for a warm start).
    pub explorations: u64,
}

/// Latency percentiles over the recent sample window, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples the percentiles were computed over (≤ the window size).
    pub samples: usize,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 95th-percentile latency, µs.
    pub p95_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Worst latency in the window, µs.
    pub max_us: f64,
}

impl LatencySummary {
    /// Percentiles of `samples_ns` (nearest-rank on the sorted window).
    pub(crate) fn from_samples(samples_ns: &[u64]) -> Self {
        if samples_ns.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<u64> = samples_ns.to_vec();
        sorted.sort_unstable();
        let pick = |q: f64| -> f64 {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1] as f64 / 1_000.0
        };
        Self {
            samples: sorted.len(),
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: *sorted.last().unwrap() as f64 / 1_000.0,
        }
    }
}

/// Point-in-time snapshot of a server's global counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests that passed admission control.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests rejected at admission because the tenant's bounded queue
    /// was full (backpressure).
    pub rejected_queue_full: u64,
    /// Requests shed because their deadline passed before execution.
    pub rejected_deadline: u64,
    /// Requests failed by an engine error after admission (bugs).
    pub internal_errors: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches executed under queue pressure with the degraded
    /// (halved-capacity, zero-linger) policy.
    pub degraded_batches: u64,
    /// Total dense columns aggregated across all batches.
    pub batched_cols: u64,
    /// Mean requests coalesced per batch.
    pub mean_batch_requests: f64,
    /// Batch-size histogram over request counts: buckets
    /// `1, 2, 3-4, 5-8, …, 65+`.
    pub batch_size_hist: [u64; BATCH_HIST_BUCKETS],
    /// Block-diagonal packed windows executed (graph-packing mode only;
    /// a subset of `batches`).
    pub packed_batches: u64,
    /// Mean constituent graphs per packed window.
    pub mean_graphs_per_batch: f64,
    /// Graphs-per-packed-window histogram, same bucket scheme as
    /// `batch_size_hist`.
    pub graphs_per_batch_hist: [u64; BATCH_HIST_BUCKETS],
    /// Total non-zeros executed through packed windows.
    pub packed_nnz: u64,
    /// Pack efficiency: packed non-zeros over cumulative window nnz
    /// capacity ([`ServeConfig::max_batch_nnz`](crate::ServeConfig::max_batch_nnz)
    /// per window), in `[0, 1]`. Low values mean windows close on the
    /// graph-count bound or the linger timer, not the nnz budget.
    pub pack_efficiency: f64,
    /// Batches routed through a sharded graph's scatter/gather fan-out
    /// (a subset of `batches`).
    pub sharded_batches: u64,
    /// Requests served through sharded routing.
    pub sharded_requests: u64,
    /// Requests queued but not yet executing at snapshot time.
    pub queue_depth: usize,
    /// Submit→reply latency percentiles over the recent window.
    pub latency: LatencySummary,
    /// Per-graph auto-tuner progress (empty on an untuned engine). The
    /// engine-wide exploration counters — arms measured, exploration
    /// wall time, excess over the incumbent — are in
    /// [`engine.tuner`](mpspmm_core::TunerStats).
    pub tuned_graphs: Vec<GraphTuneStatus>,
    /// Per-shard routing counters of every routed sharded graph, sorted
    /// by name (empty when nothing is registered via
    /// `register_sharded`).
    pub sharded_graphs: Vec<GraphShardStats>,
    /// The engine's counters (plan-cache hits/misses/evictions,
    /// gather/stream dispatch, work-stealing chunks/steals, column
    /// stripes executed, GEMM k-blocks, FastMath runs, buffer-arena
    /// reuse, SpGEMM rows per accumulator class and phase times),
    /// threaded through for one-stop telemetry.
    pub engine: EngineStats,
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
}

/// Per-tenant slice of the snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant identifier as passed in requests.
    pub tenant: String,
    /// Requests currently admitted but unanswered.
    pub in_flight: usize,
    /// Requests that passed admission control.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Admission rejections due to the bounded queue.
    pub rejected_queue_full: u64,
    /// Requests shed at their deadline.
    pub rejected_deadline: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_buckets_are_powers_of_two() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(5), 3);
        assert_eq!(batch_bucket(8), 3);
        assert_eq!(batch_bucket(64), 6);
        assert_eq!(batch_bucket(65), 7);
        assert_eq!(batch_bucket(1 << 20), 7);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        let s = LatencySummary::from_samples(&ns);
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p95_us, 95.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
    }

    #[test]
    fn latency_ring_is_bounded() {
        let c = StatsCollector::default();
        for i in 0..(LATENCY_WINDOW + 10) {
            c.record_latencies(std::iter::once(std::time::Duration::from_nanos(i as u64)));
        }
        let snap = c.snapshot(0, EngineStats::default(), Vec::new(), Vec::new());
        assert_eq!(snap.latency.samples, LATENCY_WINDOW);
    }

    #[test]
    fn snapshot_aggregates_batches_and_tenants() {
        let c = StatsCollector::default();
        let t = c.tenant("a");
        t.submitted.fetch_add(3, Ordering::Relaxed);
        assert!(Arc::ptr_eq(&t, &c.tenant("a")), "tenant state is shared");
        c.record_batch(4, 16, false);
        c.record_batch(2, 8, true);
        let snap = c.snapshot(5, EngineStats::default(), Vec::new(), Vec::new());
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.degraded_batches, 1);
        assert_eq!(snap.batched_cols, 24);
        assert_eq!(snap.mean_batch_requests, 3.0);
        assert_eq!(snap.batch_size_hist[batch_bucket(4)], 1);
        assert_eq!(snap.queue_depth, 5);
        assert_eq!(snap.tenants.len(), 1);
        assert_eq!(snap.tenants[0].submitted, 3);
    }
}
