//! Ablation — limited-4 directory vs full-map directory on the multicore.
//!
//! Table I specifies a limited-4 MESI directory: at most four sharers are
//! tracked exactly, and a fifth reader evicts one. Power-law graphs have
//! hub `XW` rows read by *many* cores, so the limited directory keeps
//! re-invalidating their sharers. This ablation compares completion time
//! and sharer-eviction counts against a full-map directory (no sharer
//! limit) at 256 and 1024 cores.

use mpspmm_bench::{banner, full_size_requested, load, SEED};
use mpspmm_core::{MergePathSpmm, SpmmKernel};
use mpspmm_graphs::find_dataset;
use mpspmm_multicore::{simulate, McConfig};

const SAMPLE: [&str; 3] = ["Pubmed", "Nell", "Yeast"];

fn main() {
    let full = full_size_requested();
    banner(
        "Ablation: directory",
        "limited-4 vs full-map sharer tracking (MergePath-SpMM, dim 16)",
        full,
    );
    println!("sample: {SAMPLE:?}, seed {SEED}\n");

    println!(
        "{:<10} {:>6} {:>16} {:>16} {:>10} {:>16}",
        "Graph", "cores", "limited-4 cyc", "full-map cyc", "slowdown", "evictions (ltd)"
    );
    for name in SAMPLE {
        let (_, a) = load(find_dataset(name).expect("in Table II"), full);
        for cores in [256usize, 1024] {
            let plan = MergePathSpmm::with_threads(cores).plan(&a, 16);
            let limited = McConfig::with_cores(cores);
            let mut full_map = McConfig::with_cores(cores);
            full_map.directory_limit = usize::MAX;
            let r_ltd = simulate(&plan, &a, 16, &limited);
            let r_full = simulate(&plan, &a, 16, &full_map);
            println!(
                "{name:<10} {cores:>6} {:>16} {:>16} {:>9.2}x {:>16}",
                r_ltd.cycles,
                r_full.cycles,
                r_ltd.cycles as f64 / r_full.cycles as f64,
                r_ltd.directory_evictions,
            );
            assert_eq!(
                r_full.directory_evictions, 0,
                "full-map directory never evicts sharers"
            );
        }
    }
    println!(
        "\nReading: hub rows of power-law inputs overflow the limited-4 \
         sharer list constantly (tens of thousands of evictions; structured \
         Yeast has none) — yet completion time is almost unchanged, because \
         each core reads a given XW row only a handful of times, so an \
         evicted sharer rarely loses a future hit. For this kernel's access \
         pattern the limited directory is a sound cost saving; the \
         memory-scaling pain of Figure 9 comes from network distance and \
         atomic ping-pong instead."
    );
}
