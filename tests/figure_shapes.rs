//! Integration tests asserting the qualitative figure shapes the
//! reproduction must preserve (DESIGN.md §3 acceptance criteria).
//!
//! These run the machine models on the real (or lightly scaled) Table II
//! inputs, so they double as regression tests for the calibrated model
//! constants: if a future change flips an ordering the paper reports,
//! these tests fail.

use merge_path_spmm::core::{MergePathSpmm, NnzSplitSpmm, SpmmKernel};
use merge_path_spmm::graphs::find_dataset;
use merge_path_spmm::multicore::{simulate as mc_simulate, McConfig};
use merge_path_spmm::simt::{awbgcn, vendor, GpuConfig, GpuKernel};
use merge_path_spmm::sparse::stats::DegreeStats;
use merge_path_spmm::sparse::CsrMatrix;

const SEED: u64 = 7;

fn graph(name: &str) -> CsrMatrix<f32> {
    find_dataset(name)
        .unwrap_or_else(|| panic!("{name} in Table II"))
        .synthesize(SEED)
}

fn gnn(a: &CsrMatrix<f32>, dim: usize, cfg: &GpuConfig) -> f64 {
    GpuKernel::GnnAdvisor {
        opt: false,
        ng_size: None,
    }
    .simulate(a, dim, cfg)
    .micros
}

fn mp(a: &CsrMatrix<f32>, dim: usize, cfg: &GpuConfig) -> f64 {
    GpuKernel::MergePath { cost: None }
        .simulate(a, dim, cfg)
        .micros
}

#[test]
fn figure2_orderings_hold() {
    let cfg = GpuConfig::rtx6000();
    let awb_cfg = awbgcn::AwbGcnConfig::paper();

    // AWB-GCN is the fastest on the small Cora and Citeseer graphs.
    for name in ["Cora", "Citeseer"] {
        let a = graph(name);
        let stats = DegreeStats::compute(&a);
        let awb = awbgcn::awbgcn_micros(name, &stats, 16, &awb_cfg);
        let g = gnn(&a, 16, &cfg);
        let serial = GpuKernel::SerialFixup { threads: None }
            .simulate(&a, 16, &cfg)
            .micros;
        let rows = GpuKernel::RowSplit.simulate(&a, 16, &cfg).micros;
        assert!(awb < g, "{name}: AWB {awb:.1} must beat GNNAdvisor {g:.1}");
        assert!(awb < serial && awb < rows, "{name}: AWB must be fastest");
        assert!(
            serial > g,
            "{name}: the serial fix-up baseline must lose to GNNAdvisor"
        );
    }

    // Pubmed: GNNAdvisor overtakes AWB-GCN.
    let pubmed = graph("Pubmed");
    let stats = DegreeStats::compute(&pubmed);
    let awb = awbgcn::awbgcn_micros("Pubmed", &stats, 16, &awb_cfg);
    assert!(gnn(&pubmed, 16, &cfg) < awb, "Pubmed: GNNAdvisor must win");

    // Nell (dim 64): GNNAdvisor wins big; merge-path and even row-split
    // rank as the paper says (row-split worst, merge-path beats AWB).
    let nell = graph("Nell");
    let stats = DegreeStats::compute(&nell);
    let awb = awbgcn::awbgcn_micros("Nell", &stats, 64, &awb_cfg);
    let g = gnn(&nell, 64, &cfg);
    let serial = GpuKernel::SerialFixup { threads: None }
        .simulate(&nell, 64, &cfg)
        .micros;
    let rows = GpuKernel::RowSplit.simulate(&nell, 64, &cfg).micros;
    assert!(
        awb / g > 3.0,
        "Nell: GNNAdvisor must win by several x (got {:.1})",
        awb / g
    );
    assert!(serial < awb, "Nell: merge-path must still beat AWB-GCN");
    assert!(rows > awb, "Nell: row-splitting must be the worst");
}

#[test]
fn figure4_relations_hold() {
    let cfg = GpuConfig::rtx6000();
    // MergePath-SpMM beats GNNAdvisor on every mid/large graph; geometric
    // mean advantage is material.
    let mut speedups = Vec::new();
    for name in [
        "Pubmed",
        "Wiki-Vote",
        "email-Enron",
        "email-Euall",
        "Nell",
        "PPI",
    ] {
        let a = graph(name);
        let s = gnn(&a, 16, &cfg)
            / GpuKernel::MergePath { cost: Some(20) }
                .simulate(&a, 16, &cfg)
                .micros;
        assert!(s >= 1.0, "{name}: MergePath must not lose (got {s:.2})");
        speedups.push(s.ln());
    }
    let geomean = (speedups.iter().sum::<f64>() / speedups.len() as f64).exp();
    assert!(
        geomean > 1.4,
        "MergePath geomean speedup {geomean:.2} too small (paper: 1.85)"
    );

    // cuSPARSE loses on small power-law graphs and dominates
    // Twitter-partial.
    let cora = graph("Cora");
    assert!(
        vendor::simulate_vendor(&cora, 16, &cfg).report.micros > gnn(&cora, 16, &cfg),
        "Cora: cuSPARSE must lose to GNNAdvisor"
    );
    let twitter = find_dataset("Twitter-partial")
        .expect("in Table II")
        .scaled_down(4)
        .synthesize(SEED);
    let cu = vendor::simulate_vendor(&twitter, 16, &cfg).report.micros;
    assert!(
        gnn(&twitter, 16, &cfg) / cu > 2.0,
        "Twitter-partial: cuSPARSE must dominate"
    );
}

#[test]
fn figure5_relations_hold() {
    // email-Euall needs a much smaller atomic share than email-Enron;
    // Type II graphs flush mostly with regular writes.
    let kernel = MergePathSpmm::with_cost(20);
    let share = |name: &str| {
        let a = graph(name);
        kernel.plan(&a, 16).write_stats().atomic_nnz_fraction()
    };
    let euall = share("email-Euall");
    let enron = share("email-Enron");
    assert!(
        euall < 0.8 * enron,
        "email-Euall ({euall:.2}) must need far fewer atomics than email-Enron ({enron:.2})"
    );
    for name in ["Yeast", "PROTEINS_full"] {
        let s = share(name);
        assert!(
            s < 0.25,
            "{name}: structured graphs are mostly regular writes (got {s:.2})"
        );
    }
}

#[test]
fn figure7_orderings_hold() {
    let cfg = GpuConfig::rtx6000();
    let a = graph("Pubmed");
    // GNNAdvisor saturates below dim 32 (identical times at 16 and 8);
    // opt and MergePath keep improving and order MP >= opt >= base.
    let g32 = gnn(&a, 32, &cfg);
    let g16 = gnn(&a, 16, &cfg);
    let g8 = gnn(&a, 8, &cfg);
    assert!(
        (g16 - g8).abs() / g16 < 0.05,
        "GNNAdvisor must saturate below 32"
    );
    assert!(g32 > g8 * 0.999, "dimension shrink cannot hurt GNNAdvisor");
    for dim in [16usize, 8, 4] {
        let base = gnn(&a, dim, &cfg);
        let opt = GpuKernel::GnnAdvisor {
            opt: true,
            ng_size: None,
        }
        .simulate(&a, dim, &cfg)
        .micros;
        let mpt = mp(&a, dim, &cfg);
        assert!(opt <= base * 1.001, "dim {dim}: opt must not lose to base");
        assert!(
            mpt <= opt * 1.001,
            "dim {dim}: MergePath must not lose to opt"
        );
    }
}

#[test]
fn figure9_scaling_shapes_hold() {
    // GNNAdvisor stops scaling from 512 to 1024 cores on evil-row graphs;
    // MergePath keeps improving there and wins at 1024 cores.
    let a = graph("Cora");
    let run = |cores: usize, mergepath: bool| {
        let cfg = McConfig::with_cores(cores);
        let plan = if mergepath {
            MergePathSpmm::with_threads(cores).plan(&a, 16)
        } else {
            NnzSplitSpmm::new().plan(&a, 16)
        };
        mc_simulate(&plan, &a, 16, &cfg)
    };
    let gnn512 = run(512, false);
    let gnn1024 = run(1024, false);
    assert!(
        gnn1024.cycles as f64 > 0.9 * gnn512.cycles as f64,
        "Cora: GNNAdvisor must stop scaling past 512 cores ({} -> {})",
        gnn512.cycles,
        gnn1024.cycles
    );
    let mp512 = run(512, true);
    let mp1024 = run(1024, true);
    assert!(
        mp1024.cycles < mp512.cycles,
        "Cora: MergePath must keep scaling to 1024 cores"
    );
    assert!(
        gnn1024.cycles > mp1024.cycles,
        "Cora @1024: MergePath must win ({} vs {})",
        mp1024.cycles,
        gnn1024.cycles
    );
    // Memory stalls dominate compute at high core counts (the Figure 9
    // breakdown shape).
    assert!(mp1024.memory_fraction() > 0.5);

    // §V-D: at 1024 cores only Cora's merge-path cost drops below 25;
    // the other evaluated graphs stay above 100.
    assert!(
        a.merge_items().div_ceil(1024) < 25,
        "Cora cost must be small"
    );
    for name in ["Pubmed", "Nell"] {
        let g = graph(name);
        assert!(
            g.merge_items().div_ceil(1024) > 100,
            "{name}: cost must exceed 100 at 1024 cores"
        );
    }
}
