//! Property-based tests for the multicore simulator.

use mpspmm_core::{MergePathSpmm, NnzSplitSpmm, RowSplitSpmm, SpmmKernel};
use mpspmm_multicore::{simulate, McConfig, SetAssocCache};
use mpspmm_sparse::CsrMatrix;
use proptest::collection::btree_set;
use proptest::prelude::*;

fn arb_graph(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix<f32>> {
    (4..=max_n).prop_flat_map(move |n| {
        btree_set((0..n, 0..n), 1..=max_nnz.min(n * n)).prop_map(move |coords| {
            let triplets: Vec<(usize, usize, f32)> =
                coords.into_iter().map(|(r, c)| (r, c, 1.0)).collect();
            CsrMatrix::from_triplets(n, n, &triplets).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulation_is_deterministic(a in arb_graph(40, 160), cores_pow in 2u32..6) {
        let cores = 1usize << cores_pow;
        let cfg = McConfig::with_cores(cores.max(2));
        for plan in [
            MergePathSpmm::with_threads(cfg.cores).plan(&a, 16),
            NnzSplitSpmm::with_ng_size(3).plan(&a, 16),
            RowSplitSpmm::with_threads(cfg.cores).plan(&a, 16),
        ] {
            let r1 = simulate(&plan, &a, 16, &cfg);
            let r2 = simulate(&plan, &a, 16, &cfg);
            prop_assert_eq!(r1, r2);
        }
    }

    #[test]
    fn report_invariants(a in arb_graph(40, 160)) {
        let cfg = McConfig::with_cores(16);
        let plan = MergePathSpmm::with_threads(16).plan(&a, 16);
        let r = simulate(&plan, &a, 16, &cfg);
        prop_assert!(r.cycles >= r.critical_compute);
        prop_assert!(r.cycles >= r.critical_memory.min(r.cycles));
        prop_assert!((0.0..=1.0).contains(&r.l1_hit_rate));
        prop_assert!((0.0..=1.0).contains(&r.memory_fraction()));
        // The critical core maximizes compute+memory; its memory half must
        // therefore be at least the average memory when memory dominates.
        prop_assert!(r.avg_memory <= (r.critical_compute + r.critical_memory) as f64 + 1e-9);
        prop_assert!(r.dram_bytes.is_multiple_of(64), "traffic is line-granular");
        prop_assert!(r.active_cores <= cfg.cores);
    }

    #[test]
    fn completion_covers_critical_core(a in arb_graph(30, 120), dim in prop_oneof![Just(4usize), Just(16), Just(32)]) {
        let cfg = McConfig::with_cores(8);
        let plan = MergePathSpmm::with_threads(8).plan(&a, dim);
        let r = simulate(&plan, &a, dim, &cfg);
        prop_assert!(
            r.cycles >= r.critical_compute + r.critical_memory,
            "completion {} must cover the critical core {} + {}",
            r.cycles,
            r.critical_compute,
            r.critical_memory
        );
    }

    #[test]
    fn cache_probe_insert_consistency(lines in proptest::collection::vec(0u64..256, 1..200)) {
        let mut cache = SetAssocCache::new(4096, 4, 64);
        let mut inserted = std::collections::HashSet::new();
        for &l in &lines {
            cache.insert(l);
            inserted.insert(l);
            // A line just inserted always probes as present.
            prop_assert!(cache.probe(l));
        }
        // Anything never inserted never probes as present.
        for probe in 256..300u64 {
            prop_assert!(!cache.probe(probe));
        }
        let _ = inserted;
    }

    #[test]
    fn cache_invalidate_removes(lines in btree_set(0u64..64, 1..32)) {
        // 0..64 lines all fit in a 4 KB / 4-way / 64 B cache (64 lines).
        let mut cache = SetAssocCache::new(4096, 4, 64);
        for &l in &lines {
            cache.insert(l);
        }
        for &l in &lines {
            prop_assert!(cache.probe(l), "line {l} fits and must be present");
            prop_assert!(cache.invalidate(l));
            prop_assert!(!cache.probe(l));
        }
    }
}
