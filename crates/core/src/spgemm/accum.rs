//! Per-row SpGEMM accumulators: dense scratch, u32-keyed hash, and
//! sorted multi-way merge.
//!
//! All three (and the sequential oracle) share one accumulation
//! contract, which is what makes every strategy bit-identical to every
//! other:
//!
//! 1. A row's contributions `a[i,k] * b[k,j]` are applied to output
//!    column `j` in **ascending `k`** (A-row iteration) order.
//! 2. The **first** contribution to a column is an assignment, every
//!    later one a `+=`. (Seeding from `0.0` would break bit equality:
//!    `0.0 + (-0.0)` is `+0.0`, not `-0.0`.)
//! 3. Products are plain scalar `a * b` — no FMA, no reassociation.
//!
//! Sorting output columns afterwards (dense touched list, hash slot
//! extraction) moves entries, never re-adds them, so it cannot change
//! a value's bits; the merge path emits columns already sorted.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mpspmm_sparse::CsrMatrix;

use crate::tuning::SPGEMM_MERGE_SCAN_MAX_WAYS;

/// Dense-scratch accumulator: a `b_cols`-long value array plus a
/// touched-column list, reset on flush by re-walking only the touched
/// entries. Values need no reset at all — rule 2 above means a stale
/// slot is overwritten before it is ever read — so the only per-row
/// state is the `seen` bitmap, cleared through the touched list.
#[derive(Debug)]
pub(crate) struct DenseAccumulator {
    /// Per-column partial sums; slots not in `touched` hold garbage.
    vals: Vec<f32>,
    /// Whether a column has received a contribution this row.
    seen: Vec<bool>,
    /// Columns contributed to this row, in first-touch order.
    touched: Vec<u32>,
}

impl DenseAccumulator {
    /// Builds scratch for outputs with `b_cols` columns. `vals` is any
    /// buffer of capacity ≥ `b_cols` (arena checkout); contents are
    /// irrelevant.
    pub(crate) fn new(mut vals: Vec<f32>, b_cols: usize) -> Self {
        vals.clear();
        vals.resize(b_cols, 0.0);
        Self {
            vals,
            seen: vec![false; b_cols],
            touched: Vec::new(),
        }
    }

    /// Applies one contribution to column `col`.
    #[inline]
    pub(crate) fn accumulate(&mut self, col: usize, contrib: f32) {
        if self.seen[col] {
            self.vals[col] += contrib;
        } else {
            self.seen[col] = true;
            self.vals[col] = contrib;
            self.touched.push(col as u32);
        }
    }

    /// Emits the row's entries in ascending column order onto the
    /// output tails and resets the touched state. Returns the entry
    /// count.
    pub(crate) fn flush_into(&mut self, cols_out: &mut Vec<u32>, vals_out: &mut Vec<f32>) -> usize {
        self.touched.sort_unstable();
        let n = self.touched.len();
        for &c in &self.touched {
            cols_out.push(c);
            vals_out.push(self.vals[c as usize]);
            self.seen[c as usize] = false;
        }
        self.touched.clear();
        n
    }

    /// Gives the value buffer back (for arena return).
    pub(crate) fn into_vals(self) -> Vec<f32> {
        self.vals
    }
}

/// Slot states: `u32::MAX` marks an empty hash slot, so column keys
/// must stay strictly below it (guaranteed by the engine's
/// `b.cols() ≤ u32::MAX` fallback guard).
const EMPTY: u32 = u32::MAX;

/// Open-addressing hash accumulator for sparse rows: u32 column keys,
/// Fibonacci-style multiply hash, linear probing, power-of-two
/// capacity sized to keep the load factor ≤ 1/2. Occupied slots are
/// tracked in a side list so reset and extraction touch only them.
#[derive(Debug, Default)]
pub(crate) struct HashAccumulator {
    keys: Vec<u32>,
    vals: Vec<f32>,
    /// Occupied slot indices, in first-touch order.
    slots: Vec<u32>,
}

impl HashAccumulator {
    /// Ensures capacity for a row with at most `ub` distinct columns.
    /// The table only ever grows; a retained larger table is reused
    /// as-is (probe sequences depend only on the current size).
    pub(crate) fn reserve(&mut self, ub: usize) {
        let need = (2 * ub.max(1))
            .next_power_of_two()
            .max(crate::tuning::SPGEMM_HASH_MIN_SLOTS);
        if self.keys.len() < need {
            self.keys.clear();
            self.keys.resize(need, EMPTY);
            self.vals.resize(need, 0.0);
        }
        debug_assert!(self.slots.is_empty(), "previous row was not flushed");
    }

    /// Applies one contribution to column `col` (`col < u32::MAX`).
    #[inline]
    pub(crate) fn accumulate(&mut self, col: u32, contrib: f32) {
        let mask = self.keys.len() - 1;
        let mut i = (col.wrapping_mul(0x9E37_79B9) as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == col {
                self.vals[i] += contrib;
                return;
            }
            if k == EMPTY {
                self.keys[i] = col;
                self.vals[i] = contrib;
                self.slots.push(i as u32);
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Emits the row's entries in ascending column order onto the
    /// output tails and resets the occupied slots. Returns the entry
    /// count. Sorting happens on the slot list keyed by column — the
    /// values themselves are moved, never re-added (bit-safe).
    pub(crate) fn flush_into(&mut self, cols_out: &mut Vec<u32>, vals_out: &mut Vec<f32>) -> usize {
        let keys = &self.keys;
        self.slots.sort_unstable_by_key(|&i| keys[i as usize]);
        let n = self.slots.len();
        for &i in &self.slots {
            cols_out.push(self.keys[i as usize]);
            vals_out.push(self.vals[i as usize]);
            self.keys[i as usize] = EMPTY;
        }
        self.slots.clear();
        n
    }
}

/// One input list of the multi-way merge: a cursor over B's row `k`,
/// scaled by `a[i,k]`.
struct Way<'m> {
    cols: &'m [usize],
    vals: &'m [f32],
    a_val: f32,
    pos: usize,
}

/// Computes one output row as a sorted multi-way merge of the B rows
/// selected by the A row `(a_cols, a_vals)`, emitting entries in
/// ascending column order onto the output tails. Returns the entry
/// count.
///
/// Ties (the same column in several B rows) accumulate in ascending
/// way — i.e. ascending `k` — order, preserving the module's bit
/// contract. Up to [`SPGEMM_MERGE_SCAN_MAX_WAYS`] ways a linear head
/// scan wins; past it (a forced-merge strategy on a hub row) a binary
/// heap of `Reverse((col, way))` pops the same `(col, ascending way)`
/// sequence.
pub(crate) fn merge_row(
    a_cols: &[usize],
    a_vals: &[f32],
    b: &CsrMatrix<f32>,
    cols_out: &mut Vec<u32>,
    vals_out: &mut Vec<f32>,
) -> usize {
    let mut ways: Vec<Way<'_>> = Vec::with_capacity(a_cols.len());
    for (&k, &av) in a_cols.iter().zip(a_vals) {
        let brow = b.row(k);
        if !brow.cols.is_empty() {
            ways.push(Way {
                cols: brow.cols,
                vals: brow.vals,
                a_val: av,
                pos: 0,
            });
        }
    }
    if ways.len() <= SPGEMM_MERGE_SCAN_MAX_WAYS {
        merge_scan(&mut ways, cols_out, vals_out)
    } else {
        merge_heap(&mut ways, cols_out, vals_out)
    }
}

/// Few-way merge: scan every head for the minimum column, then sweep
/// the ways in order accumulating all heads at that column.
fn merge_scan(ways: &mut [Way<'_>], cols_out: &mut Vec<u32>, vals_out: &mut Vec<f32>) -> usize {
    let mut emitted = 0;
    loop {
        let mut min_col = usize::MAX;
        for w in ways.iter() {
            if w.pos < w.cols.len() && w.cols[w.pos] < min_col {
                min_col = w.cols[w.pos];
            }
        }
        if min_col == usize::MAX {
            return emitted;
        }
        let mut acc = 0.0f32;
        let mut first = true;
        for w in ways.iter_mut() {
            if w.pos < w.cols.len() && w.cols[w.pos] == min_col {
                let contrib = w.a_val * w.vals[w.pos];
                if first {
                    acc = contrib;
                    first = false;
                } else {
                    acc += contrib;
                }
                w.pos += 1;
            }
        }
        cols_out.push(min_col as u32);
        vals_out.push(acc);
        emitted += 1;
    }
}

/// Many-way merge: min-heap over `(col, way)` heads. Popping is by
/// `(col, ascending way)`, so tie accumulation order matches the scan
/// path bit for bit.
fn merge_heap(ways: &mut [Way<'_>], cols_out: &mut Vec<u32>, vals_out: &mut Vec<f32>) -> usize {
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = ways
        .iter()
        .enumerate()
        .map(|(w, way)| Reverse((way.cols[0], w)))
        .collect();
    let mut emitted = 0;
    while let Some(Reverse((col, w))) = heap.pop() {
        let way = &mut ways[w];
        let mut acc = way.a_val * way.vals[way.pos];
        way.pos += 1;
        if way.pos < way.cols.len() {
            heap.push(Reverse((way.cols[way.pos], w)));
        }
        while let Some(&Reverse((c, w2))) = heap.peek() {
            if c != col {
                break;
            }
            heap.pop();
            let way = &mut ways[w2];
            acc += way.a_val * way.vals[way.pos];
            way.pos += 1;
            if way.pos < way.cols.len() {
                heap.push(Reverse((way.cols[way.pos], w2)));
            }
        }
        cols_out.push(col as u32);
        vals_out.push(acc);
        emitted += 1;
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_first_touch_assigns_and_sorts() {
        let mut acc = DenseAccumulator::new(vec![7.0; 4], 8);
        acc.accumulate(5, -0.0);
        acc.accumulate(1, 2.0);
        acc.accumulate(5, 0.0);
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        assert_eq!(acc.flush_into(&mut cols, &mut vals), 2);
        assert_eq!(cols, &[1, 5]);
        // -0.0 + 0.0 must stay +0.0 (IEEE), and the first touch must
        // have assigned -0.0, not 0.0 + (-0.0).
        assert_eq!(vals[1].to_bits(), 0.0f32.to_bits());
        // A second row reuses the scratch cleanly.
        acc.accumulate(5, 1.0);
        cols.clear();
        vals.clear();
        assert_eq!(acc.flush_into(&mut cols, &mut vals), 1);
        assert_eq!((cols[0], vals[0]), (5, 1.0));
    }

    #[test]
    fn dense_negative_zero_first_touch_is_preserved() {
        let mut acc = DenseAccumulator::new(Vec::new(), 2);
        acc.accumulate(0, -0.0);
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        acc.flush_into(&mut cols, &mut vals);
        assert_eq!(vals[0].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn hash_matches_dense_on_collisions() {
        let mut hash = HashAccumulator::default();
        hash.reserve(3);
        let mut dense = DenseAccumulator::new(Vec::new(), 64);
        for &(c, v) in &[(17u32, 1.5f32), (33, 2.0), (17, 0.25), (49, -1.0)] {
            hash.accumulate(c, v);
            dense.accumulate(c as usize, v);
        }
        let (mut hc, mut hv) = (Vec::new(), Vec::new());
        let (mut dc, mut dv) = (Vec::new(), Vec::new());
        assert_eq!(hash.flush_into(&mut hc, &mut hv), 3);
        dense.flush_into(&mut dc, &mut dv);
        assert_eq!(hc, dc);
        assert_eq!(
            hv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            dv.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hash_table_reuse_after_flush_is_clean() {
        let mut hash = HashAccumulator::default();
        hash.reserve(2);
        hash.accumulate(3, 1.0);
        let (mut c, mut v) = (Vec::new(), Vec::new());
        hash.flush_into(&mut c, &mut v);
        hash.reserve(2);
        hash.accumulate(3, 5.0);
        c.clear();
        v.clear();
        hash.flush_into(&mut c, &mut v);
        assert_eq!((c[0], v[0]), (3, 5.0), "stale value must not leak");
    }

    #[test]
    fn merge_scan_and_heap_agree_bit_for_bit() {
        // 10 ways forces the heap; slicing to 3 exercises the scan.
        let rows: Vec<Vec<(usize, f32)>> = (0..10)
            .map(|k| (0..5).map(|j| ((j * 3 + k) % 12, 0.1 + k as f32)).collect())
            .map(|mut r: Vec<(usize, f32)>| {
                r.sort_unstable_by_key(|&(c, _)| c);
                r.dedup_by_key(|&mut (c, _)| c);
                r
            })
            .collect();
        let b = CsrMatrix::from_sorted_rows(12, &rows).unwrap();
        let a_cols: Vec<usize> = (0..10).collect();
        let a_vals = vec![1.25f32; 10];
        let (mut c1, mut v1) = (Vec::new(), Vec::new());
        let n1 = merge_row(&a_cols, &a_vals, &b, &mut c1, &mut v1);
        // Same combine through the scan path via a manual call.
        let mut ways: Vec<Way<'_>> = a_cols
            .iter()
            .zip(&a_vals)
            .map(|(&k, &av)| Way {
                cols: b.row(k).cols,
                vals: b.row(k).vals,
                a_val: av,
                pos: 0,
            })
            .collect();
        let (mut c2, mut v2) = (Vec::new(), Vec::new());
        let n2 = merge_scan(&mut ways, &mut c2, &mut v2);
        assert_eq!(n1, n2);
        assert_eq!(c1, c2);
        assert_eq!(
            v1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            v2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(c1.windows(2).all(|w| w[0] < w[1]), "output sorted");
    }

    #[test]
    fn merge_skips_empty_b_rows() {
        let b =
            CsrMatrix::from_sorted_rows(4, &[vec![(1, 2.0f32)], vec![], vec![(0, 3.0)]]).unwrap();
        let (mut c, mut v) = (Vec::new(), Vec::new());
        let n = merge_row(&[0, 1, 2], &[1.0, 1.0, 1.0], &b, &mut c, &mut v);
        assert_eq!(n, 2);
        assert_eq!(c, &[0, 1]);
        assert_eq!(v, &[3.0, 2.0]);
    }
}
