//! Batch-shape classes: plan-cache keys for block-diagonal mega-batches.
//!
//! A serving window packs whatever small graphs arrived, so consecutive
//! packed matrices almost never have *exactly* the same shape — keying
//! the ordinary plan cache on exact `(rows, cols, nnz)` would mint a new
//! entry per window and thrash the LRU with thousands of near-duplicate
//! plans. A [`BatchShapeClass`] splits the key in two:
//!
//! * the **class hash** quantizes the batch's per-graph size histogram
//!   (log₂ nnz buckets with log₂-quantized counts, plus log₂ totals).
//!   Windows with similar composition collapse onto one cache *slot*,
//!   bounding resident batch plans by the number of distinct workload
//!   shapes rather than the number of windows ever seen;
//! * the **fingerprint** hashes the exact constituent sequence —
//!   `(rows, nnz, structure_hash)` per graph — and gates actual reuse.
//!   A slot hit with a fingerprint mismatch re-plans and replaces the
//!   slot *in place*: one rebuild, no new key, no eviction pressure.
//!
//! The structure hash ([`CsrMatrix::structure_hash`]) covers sparsity
//! only, so hot-swapping one constituent's *values* keeps both hashes —
//! and the prepared plan — intact; swapping its structure changes the
//! fingerprint (a rebuild) but normally not the class (same slot).
//!
//! [`CsrMatrix::structure_hash`]: mpspmm_sparse::CsrMatrix::structure_hash

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, word: u64) -> u64 {
    h ^= word;
    h.wrapping_mul(FNV_PRIME)
}

/// Histogram buckets for per-graph nnz: `0, 1, 2-3, 4-7, …, 2^22+`.
const NNZ_BUCKETS: usize = 24;

fn log2_bucket(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        ((usize::BITS - n.leading_zeros()) as usize).min(NNZ_BUCKETS - 1)
    }
}

/// The two-level plan-cache key of one packed batch: a quantized
/// composition class (the cache slot) and an exact structural
/// fingerprint (the reuse gate). See the module docs for the split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchShapeClass {
    class_hash: u64,
    fingerprint: u64,
    graphs: usize,
}

impl BatchShapeClass {
    /// Classifies a batch from per-constituent `(rows, nnz,
    /// structure_hash)` triples, in pack order.
    ///
    /// The order matters for the fingerprint (the packed matrix depends
    /// on it) but not for the class hash (a histogram), so reordering
    /// the same graphs lands on the same slot and rebuilds once.
    pub fn from_graphs(graphs: impl IntoIterator<Item = (usize, usize, u64)>) -> Self {
        let mut hist = [0u64; NNZ_BUCKETS];
        let mut total_rows = 0usize;
        let mut total_nnz = 0usize;
        let mut count = 0usize;
        let mut fingerprint = FNV_OFFSET;
        for (rows, nnz, structure) in graphs {
            hist[log2_bucket(nnz)] += 1;
            total_rows += rows;
            total_nnz += nnz;
            count += 1;
            fingerprint = fnv(fingerprint, rows as u64);
            fingerprint = fnv(fingerprint, nnz as u64);
            fingerprint = fnv(fingerprint, structure);
        }
        let mut class_hash = FNV_OFFSET;
        for c in hist {
            class_hash = fnv(class_hash, log2_bucket(c as usize) as u64);
        }
        class_hash = fnv(class_hash, log2_bucket(count) as u64);
        class_hash = fnv(class_hash, log2_bucket(total_rows) as u64);
        class_hash = fnv(class_hash, log2_bucket(total_nnz) as u64);
        Self {
            class_hash,
            fingerprint,
            graphs: count,
        }
    }

    /// The quantized composition hash — which cache slot this batch
    /// shares with similarly composed windows.
    pub fn class_hash(&self) -> u64 {
        self.class_hash
    }

    /// The exact structural fingerprint — whether a resident plan in the
    /// slot is valid for this batch.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of constituent graphs classified.
    pub fn num_graphs(&self) -> usize {
        self.graphs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_batches_share_class_and_fingerprint() {
        let a = BatchShapeClass::from_graphs([(10, 40, 1), (12, 60, 2)]);
        let b = BatchShapeClass::from_graphs([(10, 40, 1), (12, 60, 2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn similar_composition_shares_slot_but_not_fingerprint() {
        // Same log2 buckets (40 and 44 nnz are both in 2^5..2^6), two
        // graphs each, similar totals — one slot, different plans.
        let a = BatchShapeClass::from_graphs([(10, 40, 1), (12, 60, 2)]);
        let b = BatchShapeClass::from_graphs([(11, 44, 3), (12, 60, 4)]);
        assert_eq!(a.class_hash(), b.class_hash());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn value_only_swap_keeps_fingerprint_structural_swap_changes_it() {
        // The structure hash stands in for the constituent; a value-only
        // swap keeps it, so the class is byte-identical.
        let before = BatchShapeClass::from_graphs([(10, 40, 7), (12, 60, 8)]);
        let value_swap = BatchShapeClass::from_graphs([(10, 40, 7), (12, 60, 8)]);
        let structural_swap = BatchShapeClass::from_graphs([(10, 40, 9), (12, 60, 8)]);
        assert_eq!(before, value_swap);
        assert_eq!(before.class_hash(), structural_swap.class_hash());
        assert_ne!(before.fingerprint(), structural_swap.fingerprint());
    }

    #[test]
    fn different_composition_changes_slot() {
        let small = BatchShapeClass::from_graphs((0..4).map(|i| (10, 50, i)));
        let large = BatchShapeClass::from_graphs((0..4096).map(|i| (10, 5000, i)));
        assert_ne!(small.class_hash(), large.class_hash());
        assert_eq!(small.num_graphs(), 4);
    }

    #[test]
    fn empty_and_zero_nnz_graphs_classify() {
        let c = BatchShapeClass::from_graphs([(0, 0, 1), (5, 0, 2)]);
        assert_eq!(c.num_graphs(), 2);
        let empty = BatchShapeClass::from_graphs(std::iter::empty());
        assert_eq!(empty.num_graphs(), 0);
        assert_ne!(c.fingerprint(), empty.fingerprint());
    }
}
