//! Integration tests for the online adaptive auto-tuner: exploration
//! converges on live executions without ever leaving the correctness
//! envelope, converged verdicts survive LRU eviction through the
//! calibration table, warm restarts skip exploration entirely, and the
//! arm space never contains FastMath unless the engine opted in.

use std::sync::Arc;

use mpspmm_core::executor::execute_sequential;
use mpspmm_core::{
    AutoTuner, DataPath, ExecEngine, MergePathSpmm, NnzSplitSpmm, PreparedPlan, RowSplitSpmm,
    SpmmKernel, TuneState,
};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random square CSR matrix with a heavy first row (mixed segment kinds,
/// nontrivial span skew) plus a dense operand.
fn random_inputs(
    rows: usize,
    nnz: usize,
    dim: usize,
    seed: u64,
) -> (CsrMatrix<f32>, DenseMatrix<f32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coords = std::collections::BTreeSet::new();
    for c in 0..(nnz / 3).min(rows) {
        coords.insert((0usize, c));
    }
    while coords.len() < nnz.min(rows * rows) {
        coords.insert((rng.gen_range(0..rows), rng.gen_range(0..rows)));
    }
    let triplets: Vec<(usize, usize, f32)> = coords
        .into_iter()
        .map(|(r, c)| (r, c, rng.gen_range(-2.0..2.0)))
        .collect();
    let a = CsrMatrix::from_triplets(rows, rows, &triplets).unwrap();
    let mut feat_rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let b = DenseMatrix::from_fn(rows, dim, |_, _| feat_rng.gen_range(-1.0..1.0));
    (a, b)
}

/// Executes `prep` until its tuner slot converges (bounded), returning
/// the number of executions it took.
fn converge(
    engine: &ExecEngine,
    prep: &PreparedPlan,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
) -> u32 {
    for i in 0..200 {
        if prep.tune_state().expect("tuned plan").is_converged() {
            return i;
        }
        let (out, _) = engine.execute_prepared(prep, a, b).unwrap();
        engine.recycle(out);
    }
    panic!("tuner failed to converge within 200 executions");
}

/// Every execution during *and after* exploration stays within the
/// engine's oracle tolerance: arms only select among strategies the
/// oracle suites already pin, so tuning can never change what is
/// computed. Covers the skewed (stealing-arm) and wide-dim
/// (striped-arm) corners of the space across three kernel families.
#[test]
fn tuned_executions_match_oracle_through_exploration_and_convergence() {
    let kernels: Vec<Box<dyn SpmmKernel>> = vec![
        Box::new(MergePathSpmm::with_threads(16)),
        Box::new(RowSplitSpmm::with_threads(16)),
        Box::new(NnzSplitSpmm::with_ng_size(3)),
    ];
    for (k, kernel) in kernels.iter().enumerate() {
        for &dim in &[8usize, 64] {
            let (a, b) = random_inputs(40, 240, dim, 11 + k as u64);
            let tuner = Arc::new(AutoTuner::in_memory());
            let engine = ExecEngine::new(4).with_autotuner(tuner);
            let prep = engine.plan_cached(kernel.as_ref(), &a, dim, k as u64);
            let (want, _) = execute_sequential(prep.plan(), &a, &b).unwrap();
            let scale = want.frobenius_norm().max(1.0);
            for run in 0..60 {
                let (got, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
                let diff = got.max_abs_diff(&want).unwrap();
                assert!(
                    diff <= 1e-4 * scale,
                    "kernel={} dim={dim} run={run} diff={diff}",
                    kernel.name()
                );
                engine.recycle(got);
            }
            let state = prep.tune_state().unwrap();
            assert!(
                state.is_converged(),
                "kernel={} dim={dim} still exploring after 60 runs: {state:?}",
                kernel.name()
            );
        }
    }
}

/// The tuner's engine-level counters tell the whole story: plans get
/// slots, exploration is counted and timed, convergence is recorded,
/// and steady-state runs stop incrementing the exploration counters.
#[test]
fn tuner_stats_report_exploration_and_convergence() {
    // dim 64 >= TUNE_STRIPE_MIN_DIM guarantees a ColumnStriped arm on a
    // 2-worker engine, so the space has >= 2 arms under every build
    // (force-scalar collapses the path axis, which at a narrow dim can
    // otherwise leave a single instantly-converged arm).
    let (a, b) = random_inputs(48, 300, 64, 3);
    let tuner = Arc::new(AutoTuner::in_memory());
    let engine = ExecEngine::new(2).with_autotuner(Arc::clone(&tuner));
    let kernel = MergePathSpmm::with_threads(12);
    let prep = engine.plan_cached(&kernel, &a, 64, 0);
    assert_eq!(engine.stats().tuner.tuned_plans, 1);
    assert_eq!(engine.stats().tuner.warm_plans, 0);
    converge(&engine, &prep, &a, &b);
    let stats = engine.stats().tuner;
    assert!(stats.explorations > 0, "exploration must be counted");
    assert!(stats.exploration_ns > 0, "exploration must be timed");
    assert_eq!(stats.converged_plans, 1);
    // The verdict was filed in the calibration table.
    assert_eq!(tuner.len(), 1);
    // Steady state: the exploration counters freeze.
    let frozen = stats.explorations;
    for _ in 0..5 {
        let (out, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
        engine.recycle(out);
    }
    assert_eq!(engine.stats().tuner.explorations, frozen);
}

/// Satellite: LRU eviction must not drop measured state — the converged
/// verdict is recycled through the calibration table, so evicting and
/// re-admitting the plan keeps the tuned arm with zero re-exploration.
#[test]
fn evict_then_readmit_keeps_tuned_arm() {
    let (a, b) = random_inputs(40, 260, 16, 9);
    let tuner = Arc::new(AutoTuner::in_memory());
    // Capacity 1: the second distinct plan evicts the first.
    let engine =
        ExecEngine::with_plan_capacity(2, DataPath::Auto, 1).with_autotuner(Arc::clone(&tuner));
    let kernel = MergePathSpmm::with_threads(12);
    let prep = engine.plan_cached(&kernel, &a, 16, 0);
    converge(&engine, &prep, &a, &b);
    let won = match prep.tune_state().unwrap() {
        TuneState::Converged { arm, .. } => arm,
        s => panic!("expected convergence, got {s:?}"),
    };
    // Evict via a different (dim) plan, then readmit the original.
    let _other = engine.plan_cached(&kernel, &a, 8, 0);
    assert!(engine.stats().plan_cache_evictions >= 1);
    let readmitted = engine.plan_cached(&kernel, &a, 16, 0);
    match readmitted.tune_state().unwrap() {
        TuneState::Converged { arm, explorations } => {
            assert_eq!(arm, won, "tuned arm must survive eviction");
            assert_eq!(explorations, 0, "re-admission must not re-explore");
        }
        s => panic!("re-admitted plan must be warm, got {s:?}"),
    }
    assert!(engine.stats().tuner.warm_plans >= 1);
    // And the warm plan really runs without exploration.
    let before = engine.stats().tuner.explorations;
    let (out, _) = engine.execute_prepared(&readmitted, &a, &b).unwrap();
    engine.recycle(out);
    assert_eq!(engine.stats().tuner.explorations, before);
}

/// A second process (fresh engine, fresh `AutoTuner`) loading the
/// persisted calibration table starts converged: zero explorations,
/// asserted through `EngineStats` — the warm-restart acceptance
/// criterion.
#[test]
fn warm_restart_from_persisted_table_performs_zero_exploration() {
    let dir = std::env::temp_dir().join(format!("mpspmm-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("calib.v1");
    let (a, b) = random_inputs(40, 260, 32, 21);
    let kernel = MergePathSpmm::with_threads(12);
    {
        let cold = ExecEngine::new(2).with_autotuner(Arc::new(AutoTuner::with_path(&path)));
        let prep = cold.plan_cached(&kernel, &a, 32, 0);
        converge(&cold, &prep, &a, &b);
        assert!(cold.stats().tuner.explorations > 0);
    }
    // "Restart": everything rebuilt from scratch except the file.
    let warm = ExecEngine::new(2).with_autotuner(Arc::new(AutoTuner::with_path(&path)));
    let prep = warm.plan_cached(&kernel, &a, 32, 0);
    assert!(
        prep.tune_state().unwrap().is_converged(),
        "persisted verdict must warm-start the plan"
    );
    for _ in 0..8 {
        let (out, _) = warm.execute_prepared(&prep, &a, &b).unwrap();
        warm.recycle(out);
    }
    let stats = warm.stats().tuner;
    assert_eq!(stats.explorations, 0, "warm restart must not explore");
    assert_eq!(stats.warm_plans, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression (DESIGN.md §2.11): the arm space of an engine
/// that did not opt into FastMath contains no FastMath arm, on any
/// shape; opting in via `with_fast_math` adds it on the vector family
/// only.
#[test]
fn engine_arm_space_excludes_fastmath_unless_opted_in() {
    let (a, _) = random_inputs(64, 500, 8, 5);
    let kernel = MergePathSpmm::with_threads(16);
    for &dim in &[1usize, 8, 32, 64, 128, 256] {
        let prep = PreparedPlan::for_matrix(SpmmKernel::plan(&kernel, &a, dim), &a);
        for workers in [1usize, 2, 8] {
            let engine = ExecEngine::new(workers);
            let arms = engine.tuner_arm_space(&prep, dim);
            assert!(!arms.is_empty());
            assert!(
                arms.iter().all(|arm| !arm.fast_math),
                "dim={dim} workers={workers}: FastMath arm in a default space: {arms:?}"
            );
        }
    }
    // Explicit opt-in: the vector-family arms (and only those) contract.
    let engine = ExecEngine::new(4).with_fast_math(true);
    let prep = PreparedPlan::for_matrix(SpmmKernel::plan(&kernel, &a, 64), &a);
    let arms = engine.tuner_arm_space(&prep, 64);
    if !cfg!(feature = "force-scalar") {
        assert!(
            arms.iter()
                .any(|arm| arm.fast_math && arm.path == DataPath::Vector),
            "opted-in engine must explore FastMath: {arms:?}"
        );
    }
    assert!(
        arms.iter()
            .all(|arm| !(arm.fast_math && matches!(arm.path, DataPath::Scalar | DataPath::Tiled))),
        "FastMath never attaches to exact-only paths: {arms:?}"
    );
}

/// A calibration verdict the current engine is not allowed to replay —
/// here a FastMath arm landing in a table read by an exact engine — is
/// rejected at warm-start validation and the plan re-explores instead
/// of silently running the forbidden arm.
#[test]
fn poisoned_warm_verdict_falls_back_to_exploring() {
    let (a, _) = random_inputs(40, 260, 64, 33);
    let kernel = MergePathSpmm::with_threads(12);
    let tuner = Arc::new(AutoTuner::in_memory());
    let exact = ExecEngine::new(2).with_autotuner(Arc::clone(&tuner));
    // Forge a FastMath verdict under the exact engine's fingerprint.
    let probe = PreparedPlan::for_matrix(SpmmKernel::plan(&kernel, &a, 64), &a);
    let fp = exact.tuner_fingerprint(&probe, 64);
    let fm_engine = ExecEngine::new(2).with_fast_math(true);
    let poisoned = fm_engine
        .tuner_arm_space(&probe, 64)
        .into_iter()
        .find(|arm| arm.fast_math);
    let Some(poisoned) = poisoned else {
        // force-scalar builds have no FastMath arms at all — nothing to
        // poison with, and nothing to defend against.
        return;
    };
    tuner.record(fp, poisoned);
    let prep = exact.plan_cached(&kernel, &a, 64, 0);
    match prep.tune_state().unwrap() {
        TuneState::Exploring { .. } => {}
        s => panic!("poisoned verdict must not warm-start: {s:?}"),
    }
    assert_eq!(exact.stats().tuner.warm_plans, 0);
}

/// Engines without a tuner attached (the default) are byte-for-byte the
/// old engine: no slots, no counters, heuristics untouched.
#[test]
fn untuned_engine_reports_zero_tuner_activity() {
    if std::env::var_os("MPSPMM_TUNE").is_some_and(|v| v != "0") {
        // MPSPMM_TUNE attaches a tuner to every engine — there is no
        // untuned engine to observe in that configuration.
        return;
    }
    let (a, b) = random_inputs(32, 180, 16, 2);
    let engine = ExecEngine::new(2);
    let kernel = MergePathSpmm::with_threads(8);
    let prep = engine.plan_cached(&kernel, &a, 16, 0);
    assert!(prep.tune_state().is_none());
    let (out, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
    engine.recycle(out);
    assert_eq!(engine.stats().tuner, Default::default());
}
