//! Nnz-splitting baseline: the GNNAdvisor decomposition (§II).
//!
//! GNNAdvisor partitions each node's neighbor list into fixed-size
//! *neighbor groups* (NGs) of `ng_size` non-zeros; every NG becomes an
//! independent unit of work (mapped to a GPU warp). Because several NGs of
//! the same row execute concurrently and no NG knows how many siblings its
//! row has, **every** output update must be atomic — the "indiscriminate
//! use of atomic operations" the paper sets out to fix.
//!
//! The paper's default NG size is the graph's average degree.

use mpspmm_sparse::CsrMatrix;

use crate::plan::{Flush, KernelPlan, Segment, ThreadPlan};

use super::SpmmKernel;

/// GNNAdvisor-style nnz-splitting SpMM: fixed-size neighbor groups, all
/// output updates atomic.
///
/// # Example
///
/// ```
/// use mpspmm_core::{NnzSplitSpmm, SpmmKernel};
/// use mpspmm_sparse::{CsrMatrix, DenseMatrix};
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0f32), (0, 1, 1.0)])?;
/// let b = DenseMatrix::from_fn(2, 2, |r, c| (r + c) as f32);
/// let c = NnzSplitSpmm::with_ng_size(1).spmm(&a, &b)?;
/// assert_eq!(c.get(0, 1), 3.0); // B[0,1] + B[1,1]
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NnzSplitSpmm {
    ng_size: Option<usize>,
}

impl NnzSplitSpmm {
    /// Default GNNAdvisor configuration: NG size = the graph's average
    /// degree (computed per input matrix, at least 1).
    pub fn new() -> Self {
        Self { ng_size: None }
    }

    /// Fixed neighbor-group size.
    ///
    /// # Panics
    ///
    /// Panics if `ng_size == 0`.
    pub fn with_ng_size(ng_size: usize) -> Self {
        assert!(ng_size > 0, "neighbor-group size must be positive");
        Self {
            ng_size: Some(ng_size),
        }
    }

    /// The NG size used for a given matrix.
    pub fn ng_size_for(&self, a: &CsrMatrix<f32>) -> usize {
        match self.ng_size {
            Some(s) => s,
            None => {
                // Average degree, rounded to nearest, at least 1.
                let rows = a.rows().max(1);
                ((a.nnz() + rows / 2) / rows).max(1)
            }
        }
    }
}

impl Default for NnzSplitSpmm {
    fn default() -> Self {
        Self::new()
    }
}

impl SpmmKernel for NnzSplitSpmm {
    fn name(&self) -> &'static str {
        "GNNAdvisor"
    }

    fn plan(&self, a: &CsrMatrix<f32>, _dim: usize) -> KernelPlan {
        NeighborPartitionIndex::build(a, self.ng_size_for(a)).to_plan()
    }

    fn config_fingerprint(&self) -> u64 {
        // `None` plans from the per-matrix average degree; the cache key's
        // (rows, nnz) component pins that down, so 0 vs 1+size suffices.
        match self.ng_size {
            None => 0,
            Some(s) => super::mix_config(&[1, s as u64]),
        }
    }
}

/// GNNAdvisor's preprocessed neighbor-partition metadata — the
/// "extension to the compressed sparse row format" the paper contrasts
/// with MergePath-SpMM's preprocessing-free operation (§I).
///
/// Each entry fixes one neighbor group's `(row, nz_start, nz_end)`. The
/// index must be rebuilt whenever the adjacency matrix changes and
/// occupies memory proportional to the number of groups —
/// [`memory_bytes`](Self::memory_bytes) quantifies that overhead (the
/// `ablation_preprocessing` harness compares it against the merge-path
/// schedule's footprint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborPartitionIndex {
    ng_size: usize,
    rows: usize,
    nnz: usize,
    partitions: Vec<Segment>,
}

impl NeighborPartitionIndex {
    /// Builds the partition index for `a` with groups of `ng_size`
    /// non-zeros (the preprocessing GNNAdvisor performs before any kernel
    /// runs; its cost is excluded from the paper's kernel timings).
    ///
    /// # Panics
    ///
    /// Panics if `ng_size == 0`.
    pub fn build(a: &CsrMatrix<f32>, ng_size: usize) -> Self {
        assert!(ng_size > 0, "neighbor-group size must be positive");
        let rp = a.row_ptr();
        let mut partitions = Vec::with_capacity(a.nnz() / ng_size + a.rows() / 2);
        for row in 0..a.rows() {
            let (start, end) = (rp[row], rp[row + 1]);
            let mut lo = start;
            while lo < end {
                let hi = (lo + ng_size).min(end);
                partitions.push(Segment {
                    row,
                    nz_start: lo,
                    nz_end: hi,
                    flush: Flush::Atomic,
                });
                lo = hi;
            }
        }
        Self {
            ng_size,
            rows: a.rows(),
            nnz: a.nnz(),
            partitions,
        }
    }

    /// Configured neighbor-group size.
    pub fn ng_size(&self) -> usize {
        self.ng_size
    }

    /// Number of neighbor groups (the GPU warp count).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Approximate memory footprint of the index: three words per group
    /// (row id, start, end), the paper's CSR extension.
    pub fn memory_bytes(&self) -> usize {
        self.partitions.len() * 3 * std::mem::size_of::<usize>()
    }

    /// Whether the index still matches the matrix shape (it is stale the
    /// moment the graph evolves — the online-setting cost GNNAdvisor pays
    /// that merge-path does not, §III-D).
    pub fn matches(&self, a: &CsrMatrix<f32>) -> bool {
        self.rows == a.rows() && self.nnz == a.nnz()
    }

    /// Lowers the prebuilt index to a kernel plan (one logical thread per
    /// neighbor group, every update atomic).
    pub fn to_plan(&self) -> KernelPlan {
        KernelPlan {
            threads: self
                .partitions
                .iter()
                .map(|&seg| ThreadPlan {
                    segments: vec![seg],
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{
        check_kernel, check_vector_path_bit_identical, random_matrix,
    };
    use super::*;

    #[test]
    fn matches_oracle() {
        for seed in 0..3 {
            let a = random_matrix(50, 50, 300, seed);
            for ng in [1, 2, 5, 100] {
                check_kernel(&NnzSplitSpmm::with_ng_size(ng), &a, 8);
            }
            check_kernel(&NnzSplitSpmm::new(), &a, 16);
        }
    }

    #[test]
    fn vector_path_is_bit_identical() {
        let a = random_matrix(50, 50, 300, 32);
        for dim in [1, 5, 16, 33] {
            // ng 2 keeps every segment in the gather regime; ng 100 forces
            // the streaming kernel on the evil row.
            check_vector_path_bit_identical(&NnzSplitSpmm::with_ng_size(2), &a, dim);
            check_vector_path_bit_identical(&NnzSplitSpmm::with_ng_size(100), &a, dim);
        }
    }

    #[test]
    fn every_update_is_atomic() {
        let a = random_matrix(64, 64, 400, 1);
        let plan = NnzSplitSpmm::new().plan(&a, 16);
        let stats = plan.write_stats();
        assert_eq!(stats.regular_row_writes, 0);
        assert_eq!(stats.atomic_nnz, a.nnz());
    }

    #[test]
    fn groups_never_cross_rows() {
        let a = random_matrix(40, 40, 250, 2);
        let rp = a.row_ptr();
        let plan = NnzSplitSpmm::with_ng_size(3).plan(&a, 16);
        plan.validate(&a).unwrap();
        for (_, seg) in plan.iter_segments() {
            assert!(seg.nz_start >= rp[seg.row] && seg.nz_end <= rp[seg.row + 1]);
            assert!(seg.len() <= 3);
        }
    }

    #[test]
    fn group_count_matches_ceil_division() {
        // Row lengths 5, 3, 0, 1 with NG size 2 → 3 + 2 + 0 + 1 groups.
        let mut triplets = Vec::new();
        for c in 0..5 {
            triplets.push((0usize, c, 1.0f32));
        }
        for c in 0..3 {
            triplets.push((1, c, 1.0));
        }
        triplets.push((3, 0, 1.0));
        let a = CsrMatrix::from_triplets(4, 5, &triplets).unwrap();
        let plan = NnzSplitSpmm::with_ng_size(2).plan(&a, 16);
        assert_eq!(plan.num_threads(), 6);
    }

    #[test]
    fn default_ng_size_is_average_degree() {
        let a = random_matrix(100, 100, 510, 5);
        // avg = 5.1 → rounds to 5.
        assert_eq!(NnzSplitSpmm::new().ng_size_for(&a), 5);
        assert_eq!(NnzSplitSpmm::with_ng_size(7).ng_size_for(&a), 7);
    }

    #[test]
    fn partition_index_matches_direct_plan() {
        let a = random_matrix(50, 50, 300, 4);
        let kernel = NnzSplitSpmm::with_ng_size(4);
        let index = NeighborPartitionIndex::build(&a, 4);
        assert_eq!(index.to_plan(), kernel.plan(&a, 16));
        assert_eq!(index.num_partitions(), kernel.plan(&a, 16).num_threads());
        assert!(index.matches(&a));
        assert_eq!(index.ng_size(), 4);
        assert_eq!(index.memory_bytes(), index.num_partitions() * 24);
    }

    #[test]
    fn partition_index_goes_stale_when_graph_changes() {
        let a = random_matrix(50, 50, 300, 4);
        let grown = random_matrix(50, 50, 310, 4);
        let index = NeighborPartitionIndex::build(&a, 4);
        assert!(!index.matches(&grown));
    }

    #[test]
    fn evil_rows_are_finely_sharded() {
        let mut triplets: Vec<(usize, usize, f32)> = (0..64).map(|c| (0, c, 1.0)).collect();
        triplets.push((1, 0, 1.0));
        let a = CsrMatrix::from_triplets(2, 64, &triplets).unwrap();
        let plan = NnzSplitSpmm::with_ng_size(4).plan(&a, 16);
        let row0_groups = plan.iter_segments().filter(|(_, s)| s.row == 0).count();
        assert_eq!(row0_groups, 16);
    }
}
