//! Engine-executed dense GEMM: the feature-transform half of a GNN layer.
//!
//! A GCN layer is `spmm(A, X · W)` — the aggregation SpMM is the engine's
//! home turf, but the dense `X · W` half previously ran on a naive
//! triple loop outside the engine. This module puts it on the same
//! machinery: the output comes from the engine's [`crate::arena`], the
//! kernel is the register-tiled, cache-panelled band kernel in
//! [`crate::datapath`] (same runtime wide-lane dispatch as the SpMM
//! path), and rows are distributed across the same worker pool under the
//! engine's [`SchedPolicy`]:
//!
//! * `Static` — one contiguous band span per worker, carved with
//!   `split_at_mut`;
//! * `Stealing` / `Auto` — bands self-schedule off a shared atomic
//!   counter, so a worker that drew cheap bands simply takes more. (GEMM
//!   bands are uniform-cost, so `Auto` needs no skew inspection here —
//!   self-scheduling is the strictly-safer default.)
//!
//! Distribution is safe code throughout (the only `unsafe` on this path
//! is the runtime-gated `#[target_feature]` dispatch in
//! `datapath::wide`): disjoint `&mut` band slices are moved into worker
//! closures, either directly (static spans) or through take-once
//! `Mutex<Option<..>>` slots (self-scheduled).
//!
//! `k` is never blocked, so each output element accumulates in the naive
//! loop's order and results are bit-equal to [`naive ikj`] GEMM up to the
//! sign of zeros — the property the GCN fused-vs-unfused oracle tests
//! lean on.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mpspmm_sparse::{DenseMatrix, SparseFormatError};

use crate::datapath::gemm_band;
use crate::engine::{ExecEngine, SchedPolicy};
use crate::pool::{ScopedJob, WorkerPool};
use crate::tuning::GEMM_BAND_ROWS;

/// A take-once slot holding one output band's starting row and `&mut`
/// slice, claimed by exactly one self-scheduled worker.
type BandSlot<'a> = Mutex<Option<(usize, &'a mut [f32])>>;

impl ExecEngine {
    /// Dense row-major GEMM `A · B` on the engine: arena-backed output,
    /// register-tiled band kernel, rows parallelized across the worker
    /// pool under the engine's scheduling policy. Updates the
    /// [`crate::EngineStats::gemm_panels`] and
    /// [`crate::EngineStats::gemm_ns`] counters.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when
    /// `a.cols() != b.rows()`.
    pub fn gemm(
        &self,
        a: &DenseMatrix<f32>,
        b: &DenseMatrix<f32>,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        if a.cols() != b.rows() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (b.rows(), b.cols()),
            });
        }
        let start = Instant::now();
        let (m, n) = (a.rows(), b.cols());
        let mut out = self.arena.take_zeroed(m * n);
        let rp = self.data_path.resolve(n);
        let band_count = m.div_ceil(GEMM_BAND_ROWS.max(1));
        let eff = self.workers.min(band_count).max(1);
        let mut panels = 0u64;
        if eff <= 1 {
            for (bi, band) in out.chunks_mut(GEMM_BAND_ROWS * n.max(1)).enumerate() {
                panels += gemm_band(a, b, bi * GEMM_BAND_ROWS, &rp, band);
            }
        } else if self.sched_policy == SchedPolicy::Static {
            // One contiguous run of bands per worker: band ownership is
            // expressed directly in the borrow checker by splitting the
            // output into disjoint `&mut` spans.
            let per_worker = band_count.div_ceil(eff);
            let total_panels = AtomicU64::new(0);
            let mut rest: &mut [f32] = &mut out;
            let mut row0 = 0usize;
            let mut jobs: Vec<ScopedJob<'_>> = Vec::with_capacity(eff);
            for _ in 0..eff {
                let span_rows = (per_worker * GEMM_BAND_ROWS).min(rest.len() / n.max(1));
                if span_rows == 0 {
                    break;
                }
                let (span, tail) = std::mem::take(&mut rest).split_at_mut(span_rows * n);
                rest = tail;
                let start_row = row0;
                row0 += span_rows;
                let total_panels = &total_panels;
                jobs.push(Box::new(move || {
                    let mut local = 0u64;
                    for (bi, band) in span.chunks_mut(GEMM_BAND_ROWS * n.max(1)).enumerate() {
                        local += gemm_band(a, b, start_row + bi * GEMM_BAND_ROWS, &rp, band);
                    }
                    total_panels.fetch_add(local, Ordering::Relaxed);
                }));
            }
            WorkerPool::global().scope_run(jobs);
            panels = total_panels.into_inner();
        } else {
            // Self-scheduled bands: each band's `&mut` slice sits in a
            // take-once slot; workers claim slot indices off a shared
            // counter, so each band is executed exactly once and the
            // borrows never alias.
            let slots: Vec<BandSlot<'_>> = out
                .chunks_mut(GEMM_BAND_ROWS * n.max(1))
                .enumerate()
                .map(|(bi, band)| Mutex::new(Some((bi * GEMM_BAND_ROWS, band))))
                .collect();
            let next = AtomicUsize::new(0);
            let total_panels = AtomicU64::new(0);
            let jobs: Vec<ScopedJob<'_>> = (0..eff)
                .map(|_| {
                    let slots = &slots;
                    let next = &next;
                    let total_panels = &total_panels;
                    Box::new(move || {
                        let mut local = 0u64;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= slots.len() {
                                break;
                            }
                            let (row_start, band) = slots[i]
                                .lock()
                                .unwrap()
                                .take()
                                .expect("band slot claimed exactly once");
                            local += gemm_band(a, b, row_start, &rp, band);
                        }
                        total_panels.fetch_add(local, Ordering::Relaxed);
                    }) as ScopedJob<'_>
                })
                .collect();
            WorkerPool::global().scope_run(jobs);
            panels = total_panels.into_inner();
        }
        self.gemm_panels.fetch_add(panels, Ordering::Relaxed);
        self.gemm_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        DenseMatrix::from_vec(m, n, out)
    }
}

#[cfg(test)]
mod tests {
    use crate::datapath::DataPath;
    use crate::engine::{ExecEngine, SchedPolicy};
    use mpspmm_sparse::DenseMatrix;

    /// The PR-1 naive loop (minus its zero-skip): the bit-level oracle.
    fn naive_gemm(a: &DenseMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = a.row(i);
            let dst = &mut out[i * n..][..n];
            for (p, &av) in arow.iter().enumerate() {
                for (c, &bv) in dst.iter_mut().zip(b.row(p)) {
                    *c += av * bv;
                }
            }
            let _ = k;
        }
        DenseMatrix::from_vec(m, n, out).expect("oracle dims agree")
    }

    fn filled(rows: usize, cols: usize, salt: usize) -> DenseMatrix<f32> {
        DenseMatrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 7 + salt) % 17) as f32 * 0.125 - 1.0
        })
    }

    #[test]
    fn engine_gemm_matches_naive_bitwise_across_paths_and_policies() {
        for &path in &[DataPath::Scalar, DataPath::Vector, DataPath::Auto] {
            for &policy in &[
                SchedPolicy::Static,
                SchedPolicy::Stealing,
                SchedPolicy::Auto,
            ] {
                for &workers in &[1usize, 4] {
                    let engine = ExecEngine::with_sched_policy(workers, path, policy);
                    for &(m, k, n) in &[(1, 1, 1), (5, 3, 7), (37, 19, 23), (70, 16, 33)] {
                        let a = filled(m, k, 1);
                        let b = filled(k, n, 2);
                        let got = engine.gemm(&a, &b).expect("shapes agree");
                        let want = naive_gemm(&a, &b);
                        assert_eq!(
                            got.as_slice(),
                            want.as_slice(),
                            "m={m} k={k} n={n} path={path:?} policy={policy:?} workers={workers}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engine_gemm_handles_degenerate_shapes() {
        let engine = ExecEngine::with_data_path(2, DataPath::Auto);
        // k = 0: output is all zeros, not an error.
        let a = DenseMatrix::from_vec(3, 0, vec![]).unwrap();
        let b = DenseMatrix::from_vec(0, 4, vec![]).unwrap();
        let out = engine.gemm(&a, &b).expect("k=0 is a valid product");
        assert_eq!(out.rows(), 3);
        assert_eq!(out.cols(), 4);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        // Empty m and n.
        let e = DenseMatrix::from_vec(0, 5, vec![]).unwrap();
        let f = filled(5, 0, 0);
        assert_eq!(engine.gemm(&e, &filled(5, 3, 1)).unwrap().rows(), 0);
        assert_eq!(engine.gemm(&filled(2, 5, 1), &f).unwrap().cols(), 0);
    }

    #[test]
    fn engine_gemm_rejects_shape_mismatch_and_counts_panels() {
        let engine = ExecEngine::with_data_path(1, DataPath::Auto);
        let a = filled(4, 3, 0);
        let b = filled(5, 2, 0);
        assert!(engine.gemm(&a, &b).is_err());
        let ok = engine.gemm(&a, &filled(3, 8, 1)).expect("shapes agree");
        assert_eq!(ok.rows(), 4);
        let stats = engine.stats();
        assert!(stats.gemm_panels > 0, "panel counter advanced");
        assert!(stats.gemm_ns > 0, "gemm time recorded");
        engine.clear_cache();
        assert_eq!(engine.stats().gemm_panels, 0, "counters reset");
    }
}
