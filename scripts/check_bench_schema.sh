#!/usr/bin/env bash
# Validates every BENCH_*.json artifact at the repo root:
#   1. parses as JSON, and
#   2. carries the common top-level keys every bench binary must emit:
#      "baseline" (string: what the speedup is measured against) and
#      "speedup"  (number: the headline ratio for that bench).
# Keeping the artifacts on one schema lets downstream tooling (and the
# README tables) consume them uniformly. Run from anywhere; exits
# non-zero on the first violation.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v jq >/dev/null 2>&1; then
    echo "check_bench_schema: jq not found; skipping schema validation" >&2
    exit 0
fi

shopt -s nullglob
files=(BENCH_*.json)
if [ ${#files[@]} -eq 0 ]; then
    echo "check_bench_schema: no BENCH_*.json artifacts found" >&2
    exit 1
fi

status=0
# Artifacts the tier-1 gate must always produce: their absence is a
# failure, not a silent pass of the glob above.
for required in BENCH_widedim.json BENCH_autotune.json BENCH_spgemm.json BENCH_batch.json BENCH_shard.json; do
    if [ ! -f "$required" ]; then
        echo "FAIL $required: required artifact missing" >&2
        status=1
    fi
done
for f in "${files[@]}"; do
    if ! jq empty "$f" 2>/dev/null; then
        echo "FAIL $f: not valid JSON" >&2
        status=1
        continue
    fi
    if ! jq -e '(.baseline | type) == "string"' "$f" >/dev/null; then
        echo "FAIL $f: missing top-level string key \"baseline\"" >&2
        status=1
        continue
    fi
    if ! jq -e '(.speedup | type) == "number"' "$f" >/dev/null; then
        echo "FAIL $f: missing top-level numeric key \"speedup\"" >&2
        status=1
        continue
    fi
    # Committed artifacts must come from full benchmark runs. The
    # working-tree copy may be a smoke artifact (tier1 regenerates most
    # benches in smoke shape), so the gate inspects the version at HEAD:
    # files not (yet) tracked are skipped.
    if committed=$(git show "HEAD:$f" 2>/dev/null); then
        if jq -e '.smoke == true' <<<"$committed" >/dev/null 2>&1; then
            echo "FAIL $f: committed artifact is a smoke run — commit a full run" >&2
            status=1
            continue
        fi
    fi
    printf 'ok   %-20s speedup %sx vs %s\n' "$f" \
        "$(jq -r '.speedup' "$f")" "$(jq -r '.baseline' "$f")"
done

exit $status
