//! Figure 6 — merge-path cost sensitivity across dimension sizes.
//!
//! For each dense dimension in {2, 4, 8, 16, 32, 64, 128}, sweeps the
//! merge-path cost from 2 to 50 on a representative sample of graphs,
//! prints the performance normalized to cost 2 (geometric mean), and
//! reports the best-performing cost — the paper's secondary-axis series.

use mpspmm_bench::{banner, full_size_requested, geomean, load, SEED};
use mpspmm_graphs::find_dataset;
use mpspmm_simt::{GpuConfig, GpuKernel};
use mpspmm_sparse::CsrMatrix;

const COSTS: [usize; 11] = [2, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50];
const SAMPLE: [&str; 5] = ["Pubmed", "Wiki-Vote", "email-Enron", "Nell", "PPI"];

fn main() {
    let full = full_size_requested();
    banner(
        "Figure 6",
        "normalized performance and best merge-path cost per dimension size",
        full,
    );
    println!("sample graphs: {SAMPLE:?}, seed {SEED}\n");

    let cfg = GpuConfig::rtx6000();
    let graphs: Vec<CsrMatrix<f32>> = SAMPLE
        .iter()
        .map(|n| load(find_dataset(n).expect("in Table II"), full).1)
        .collect();

    print!("{:<6}", "dim");
    for c in COSTS {
        print!(" {c:>6}");
    }
    println!(" {:>10}", "best cost");

    let mut best_costs = Vec::new();
    for dim in [2usize, 4, 8, 16, 32, 64, 128] {
        // Geomean kernel time at each cost, normalized to cost 2.
        let times: Vec<f64> = COSTS
            .iter()
            .map(|&cost| {
                geomean(
                    &graphs
                        .iter()
                        .map(|a| {
                            GpuKernel::MergePath { cost: Some(cost) }
                                .simulate(a, dim, &cfg)
                                .micros
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let base = times[0];
        let (best_idx, _) = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("non-empty sweep");
        print!("{dim:<6}");
        for t in &times {
            print!(" {:>6.2}", base / t);
        }
        println!(" {:>10}", COSTS[best_idx]);
        best_costs.push((dim, COSTS[best_idx]));
    }

    println!("\nbest cost per dimension (this model): {best_costs:?}");
    println!(
        "paper's empirical optima:        [(2, 50), (4, 15), (8, 15), (16, 20), (32, 30), (64, 35), (128, 50)]"
    );
    println!(
        "\nPaper shape: the optimal cost rises with the dimension size \
         (more warp replication affords fewer threads / fewer atomics). \
         Known deviation: at dimension 2 the paper's extreme-divergence \
         penalty pushes the optimum back up to 50; our machine model \
         reproduces the mid/high-dimension trend but keeps a low optimum \
         at dimension 2 (see EXPERIMENTS.md)."
    );
}
