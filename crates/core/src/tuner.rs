//! Online adaptive auto-tuner: measured kernel selection for
//! [`SchedPolicy::Auto`]/[`DataPath::Auto`] dispatch.
//!
//! The static `Auto` heuristics ([`STEAL_SKEW_THRESHOLD`],
//! [`STRIPE_MIN_DIM`](crate::tuning::STRIPE_MIN_DIM), the panel model)
//! encode measurements taken on *one* machine over *one* graph suite.
//! The paper's own argument — the right SpMM strategy is a function of
//! the input's degree distribution — cuts against trusting them
//! everywhere, and HC-SpMM/Accel-GCN both win by *selecting* kernels
//! from measured input features instead. This module closes that loop
//! on live traffic:
//!
//! 1. Every cached plan gets a pruned **configuration arm space**
//!    ([`arm_space`]): scheduling policy × data path × panel candidates
//!    that are plausible for the plan's [`GraphFingerprint`] (size,
//!    span skew, dense dimension, gather-bound fraction, workers).
//! 2. A **successive-halving explorer** ([`PlanTuner`]) measures each
//!    surviving arm [`TUNE_MEASURES_PER_ARM`] times per round on real
//!    executions (wall time around the engine's `run`), halves the
//!    field by best observed time, and converges on the last survivor.
//!    Exploration cost is the *excess* over the incumbent best arm and
//!    is tracked per engine in
//!    [`EngineStats::tuner`](crate::EngineStats).
//! 3. The converged verdict is written back through the engine into the
//!    process-level [`AutoTuner`] table — keyed by fingerprint, so the
//!    *next* plan with the same shape class starts converged — and
//!    optionally **persisted to disk** (versioned text table) so warm
//!    restarts skip exploration entirely.
//!
//! Correctness is untouched by construction: every arm selects among
//! execution strategies the engine already exposes and the oracle
//! suites already pin — the tuner changes *which* of the equivalent
//! strategies runs, never what any of them computes. In particular the
//! arm space **never** contains a FastMath arm unless the engine
//! explicitly opted in via
//! [`ExecEngine::with_fast_math`](crate::ExecEngine::with_fast_math) or
//! `MPSPMM_FASTMATH` — the bit-equality contract of DESIGN.md §2.11
//! survives tuning verbatim.
//!
//! # Knobs
//!
//! Two environment variables, read once per process like every other
//! engine knob: `MPSPMM_TUNE` (any value but `0`) attaches a
//! process-wide [`AutoTuner`] to every engine that does not carry an
//! explicit one, and `MPSPMM_CALIB_PATH` points that tuner's
//! calibration table at a file. Corrupt or version-mismatched tables
//! are **ignored with a one-time warning** (the `resolve_workers`
//! fallback idiom), never a panic — a calibration file is a perf hint,
//! not an input.
//!
//! [`SchedPolicy::Auto`]: crate::SchedPolicy
//! [`DataPath::Auto`]: crate::DataPath
//! [`STEAL_SKEW_THRESHOLD`]: crate::tuning::STEAL_SKEW_THRESHOLD

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::datapath::DataPath;
use crate::engine::SchedPolicy;
use crate::tuning::{
    STEAL_SKEW_THRESHOLD, STRIPE_MIN_DIM, STRIPE_SKEW_MIN_DIM, TUNE_HALF_PANEL_MIN_DIM,
    TUNE_MEASURES_PER_ARM, TUNE_STEAL_MIN_SKEW_Q, TUNE_STRIPE_MIN_DIM, TUNE_TILED_MAX_DIM,
};

/// Header line of the on-disk calibration table. The version is part of
/// the header: a future format change bumps it and old files are
/// ignored (with a warning) instead of being misparsed.
pub const CALIB_HEADER: &str = "mpspmm-calib v1";

/// Quantized shape class of a prepared plan — the key the calibration
/// table generalizes over. Quantization is deliberate: two graphs of
/// the same order of magnitude, the same skew regime, and the same
/// dense dimension almost always want the same arm, and coarse keys let
/// a warm table cover a *family* of graphs, not one exact matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphFingerprint {
    /// `floor(log2(rows))` (0 for an empty matrix).
    pub rows_log2: u8,
    /// `floor(log2(nnz))` (0 for an empty plan).
    pub nnz_log2: u8,
    /// Exact dense dimension — the single biggest routing signal, never
    /// quantized.
    pub dim: u32,
    /// Static-span skew in saturating eighth-steps above 1.0:
    /// `round((skew − 1) × 8)` clamped to `u8`. The heuristic threshold
    /// 1.25 sits at step 2.
    pub skew_q: u8,
    /// Gather-bound fraction of the plan's non-empty segments in
    /// deciles (0–10).
    pub gather_q: u8,
    /// Effective worker parallelism (saturating at 255).
    pub workers: u8,
}

impl GraphFingerprint {
    /// Builds the fingerprint from raw plan features. `gather` and
    /// `stream` are the degree-adaptive dispatch counts
    /// ([`PreparedPlan::dispatch_profile`](crate::PreparedPlan::dispatch_profile)).
    pub fn from_features(
        rows: usize,
        nnz: usize,
        dim: usize,
        skew: f64,
        gather: usize,
        stream: usize,
        workers: usize,
    ) -> Self {
        let log2 = |v: usize| -> u8 {
            if v == 0 {
                0
            } else {
                (usize::BITS - 1 - v.leading_zeros()).min(255) as u8
            }
        };
        let skew_q = if skew.is_finite() && skew > 1.0 {
            ((skew - 1.0) * 8.0).round().min(255.0) as u8
        } else {
            0
        };
        let segs = gather + stream;
        let gather_q = if segs == 0 {
            0
        } else {
            ((gather as f64 / segs as f64) * 10.0).round() as u8
        };
        Self {
            rows_log2: log2(rows),
            nnz_log2: log2(nnz),
            dim: dim.min(u32::MAX as usize) as u32,
            skew_q,
            gather_q,
            workers: workers.min(255) as u8,
        }
    }

    /// Lower bound of the raw skew this fingerprint's `skew_q` encodes.
    pub fn skew_lower_bound(&self) -> f64 {
        1.0 + self.skew_q as f64 / 8.0
    }
}

/// One point of the tuner's configuration space: a complete routing
/// decision the engine can execute a prepared plan with. Arms only name
/// strategies the engine already exposes — `sched` is never
/// [`SchedPolicy::Auto`] and `path` is never [`DataPath::Auto`] (except
/// under the `force-scalar` build, where `Auto` *is* the scalar pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmConfig {
    /// Scheduling policy this arm routes the run through.
    pub sched: SchedPolicy,
    /// Inner data path this arm resolves segments with.
    pub path: DataPath,
    /// Halve the resolved column panel (lane-aligned) — the panel-model
    /// candidate dimension of the space.
    pub half_panel: bool,
    /// Request FMA contraction. **Never `true` in any arm space unless
    /// the engine explicitly opted into FastMath** (DESIGN.md §2.11).
    pub fast_math: bool,
}

impl ArmConfig {
    /// Compact text form for the calibration table and log lines, e.g.
    /// `static/vector` or `stripe/vector/half`.
    pub fn label(&self) -> String {
        let mut s = format!("{}/{}", sched_token(self.sched), path_token(self.path));
        if self.half_panel {
            s.push_str("/half");
        }
        if self.fast_math {
            s.push_str("/fm");
        }
        s
    }
}

fn sched_token(p: SchedPolicy) -> &'static str {
    match p {
        SchedPolicy::Static => "static",
        SchedPolicy::Stealing => "steal",
        SchedPolicy::ColumnStriped => "stripe",
        SchedPolicy::Auto => "auto",
    }
}

fn parse_sched(tok: &str) -> Option<SchedPolicy> {
    match tok {
        "static" => Some(SchedPolicy::Static),
        "steal" => Some(SchedPolicy::Stealing),
        "stripe" => Some(SchedPolicy::ColumnStriped),
        _ => None,
    }
}

fn path_token(p: DataPath) -> &'static str {
    match p {
        DataPath::Auto => "auto",
        DataPath::Scalar => "scalar",
        DataPath::Tiled => "tiled",
        DataPath::Vector => "vector",
    }
}

fn parse_path(tok: &str) -> Option<DataPath> {
    match tok {
        "auto" => Some(DataPath::Auto),
        "scalar" => Some(DataPath::Scalar),
        "tiled" => Some(DataPath::Tiled),
        "vector" => Some(DataPath::Vector),
        _ => None,
    }
}

/// The arm the static heuristics would pick for `fp` — seeded first in
/// the space so the explorer's earliest measurements cover the
/// incumbent and exploration excess stays small on shapes the
/// heuristics already get right.
fn heuristic_arm(fp: &GraphFingerprint, path: DataPath) -> ArmConfig {
    let skew = fp.skew_lower_bound();
    let dim = fp.dim as usize;
    let sched = if fp.workers >= 2
        && (dim >= STRIPE_MIN_DIM || (dim >= STRIPE_SKEW_MIN_DIM && skew > STEAL_SKEW_THRESHOLD))
    {
        SchedPolicy::ColumnStriped
    } else if fp.workers >= 2 && skew > STEAL_SKEW_THRESHOLD {
        SchedPolicy::Stealing
    } else {
        SchedPolicy::Static
    };
    ArmConfig {
        sched,
        path,
        half_panel: false,
        fast_math: false,
    }
}

/// Builds the pruned configuration arm space for a plan with fingerprint
/// `fp` on an engine configured with (`policy`, `path`, `fast_math`).
///
/// Pruning rules:
///
/// * A pinned (non-`Auto`) `policy` or `path` restricts its axis to the
///   pin — pinning both degenerates to a single arm, which converges
///   instantly and costs zero exploration.
/// * Stealing arms need ≥ 2 workers and quantized skew ≥
///   [`TUNE_STEAL_MIN_SKEW_Q`]; striped arms need ≥ 2 workers and
///   `dim ≥` [`TUNE_STRIPE_MIN_DIM`].
/// * Tiled-path arms appear only at `dim ≤` [`TUNE_TILED_MAX_DIM`];
///   half-panel variants only at `dim ≥` [`TUNE_HALF_PANEL_MIN_DIM`]
///   (and only on vector-family paths, where the panel exists).
/// * `fast_math` arms appear **only** when the engine opted in — with
///   FastMath off every arm is exact and the DESIGN.md §2.11
///   bit-equality contract holds over the whole space. A FastMath
///   engine explores FastMath on its vector arms (matching what its
///   untuned runs would do) and never on scalar/tiled ones.
/// * Under the `force-scalar` build the path axis collapses to
///   [`DataPath::Auto`] (which resolves scalar there).
///
/// The heuristic incumbent ([`SchedPolicy::Auto`]'s static choice) is
/// always first. The space is never empty.
pub fn arm_space(
    fp: &GraphFingerprint,
    policy: SchedPolicy,
    path: DataPath,
    fast_math: bool,
) -> Vec<ArmConfig> {
    let dim = fp.dim as usize;
    let multi = fp.workers >= 2;
    let scheds: Vec<SchedPolicy> = match policy {
        SchedPolicy::Auto => {
            let mut s = vec![SchedPolicy::Static];
            if multi && fp.skew_q >= TUNE_STEAL_MIN_SKEW_Q {
                s.push(SchedPolicy::Stealing);
            }
            if multi && dim >= TUNE_STRIPE_MIN_DIM {
                s.push(SchedPolicy::ColumnStriped);
            }
            s
        }
        pinned => vec![pinned],
    };
    let paths: Vec<DataPath> = match path {
        DataPath::Auto => {
            if cfg!(feature = "force-scalar") {
                vec![DataPath::Auto]
            } else {
                let mut p = vec![DataPath::Vector];
                if dim <= TUNE_TILED_MAX_DIM {
                    p.push(DataPath::Tiled);
                }
                p
            }
        }
        pinned => vec![pinned],
    };
    let vector_family = |p: DataPath| matches!(p, DataPath::Vector | DataPath::Auto);
    let incumbent = match policy {
        SchedPolicy::Auto => heuristic_arm(fp, paths[0]),
        pinned => ArmConfig {
            sched: pinned,
            path: paths[0],
            half_panel: false,
            fast_math: false,
        },
    };
    let mut arms = vec![incumbent];
    let push = |arm: ArmConfig, arms: &mut Vec<ArmConfig>| {
        if !arms.contains(&arm) {
            arms.push(arm);
        }
    };
    for &s in &scheds {
        for &p in &paths {
            let fm = fast_math && vector_family(p);
            push(
                ArmConfig {
                    sched: s,
                    path: p,
                    half_panel: false,
                    fast_math: fm,
                },
                &mut arms,
            );
            if vector_family(p) && dim >= TUNE_HALF_PANEL_MIN_DIM {
                push(
                    ArmConfig {
                        sched: s,
                        path: p,
                        half_panel: true,
                        fast_math: fm,
                    },
                    &mut arms,
                );
            }
        }
    }
    // The FastMath engine's incumbent mirrors its untuned behavior
    // (vector runs contract); replace the seeded exact incumbent so the
    // space never mixes exact and contracted variants of the same arm.
    if fast_math && vector_family(arms[0].path) {
        arms[0].fast_math = true;
        arms.dedup();
    }
    arms
}

/// The SpGEMM accumulator arm family a tuner-carrying engine explores
/// for one shape class (see `crate::spgemm`): the
/// [`Adaptive`](crate::SpgemmStrategy::Adaptive) heuristic incumbent
/// first — so a tie converges to exactly what an untuned engine runs —
/// then the three forced families. Degenerate classes (zero output
/// width: nothing to accumulate) collapse to the incumbent alone.
/// Every arm is bit-identical to every other; the explorer only ranks
/// their numeric-phase time.
pub fn spgemm_arm_space(fp: &GraphFingerprint) -> Vec<crate::SpgemmStrategy> {
    use crate::SpgemmStrategy as S;
    if fp.dim == 0 || fp.nnz_log2 == 0 {
        return vec![S::Adaptive];
    }
    vec![S::Adaptive, S::Merge, S::Hash, S::Dense]
}

/// What one engine run should execute and whether its wall time feeds
/// the explorer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArmTicket {
    /// The configuration to execute with.
    pub arm: ArmConfig,
    /// Index into the tuner's arm vector, echoed back to
    /// [`PlanTuner::observe`].
    pub idx: usize,
    /// `true` while exploring (caller times the run and observes);
    /// `false` once converged (steady state, zero timing overhead).
    pub explore: bool,
}

/// What an observation did to the explorer's state.
#[derive(Debug, Default)]
pub(crate) struct Observation {
    /// Nanoseconds this run spent over the incumbent best arm — the
    /// exploration overhead charged to the tuner.
    pub excess_ns: u64,
    /// Set exactly once, on the observation that left a single
    /// surviving arm.
    pub newly_converged: Option<ArmConfig>,
}

/// Convergence status of one plan's explorer, as reported by
/// [`PreparedPlan::tune_state`](crate::PreparedPlan::tune_state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TuneState {
    /// Still measuring: `surviving` of `total` arms remain after the
    /// halving rounds so far.
    Exploring {
        /// Arms the space started with.
        total: usize,
        /// Arms still in the running.
        surviving: usize,
        /// Measured executions taken so far.
        explorations: u64,
    },
    /// A winner was picked (or inherited from a warm calibration
    /// table); all further runs execute `arm` untimed.
    Converged {
        /// The winning configuration.
        arm: ArmConfig,
        /// Measured executions it took to get here (0 for a warm
        /// start).
        explorations: u64,
    },
}

impl TuneState {
    /// Whether exploration has finished.
    pub fn is_converged(&self) -> bool {
        matches!(self, TuneState::Converged { .. })
    }
}

#[derive(Debug)]
struct ExploreState {
    arms: Vec<ArmConfig>,
    /// Indices into `arms` still in the running, in rank order.
    alive: Vec<usize>,
    /// Best observed wall time per arm (`u64::MAX` until measured).
    best_ns: Vec<u64>,
    /// Measurements started / completed for each arm in the current
    /// halving round.
    begun: Vec<u32>,
    observed: Vec<u32>,
    cursor: usize,
    converged: Option<usize>,
    explorations: u64,
    excess_ns: u64,
}

/// Per-plan explorer: hands out [`ArmTicket`]s round-robin over the
/// surviving arms, halves the field each round by best observed time,
/// and freezes on the last survivor. All state sits behind one mutex
/// taken twice per *exploring* run and once per steady-state run —
/// noise next to an SpMM execution.
#[derive(Debug)]
pub(crate) struct PlanTuner {
    fp: GraphFingerprint,
    state: Mutex<ExploreState>,
}

impl PlanTuner {
    /// A fresh explorer over `arms` (non-empty; a single arm converges
    /// immediately).
    pub(crate) fn exploring(fp: GraphFingerprint, arms: Vec<ArmConfig>) -> Self {
        assert!(!arms.is_empty(), "arm space is never empty");
        let n = arms.len();
        Self {
            fp,
            state: Mutex::new(ExploreState {
                arms,
                alive: (0..n).collect(),
                best_ns: vec![u64::MAX; n],
                begun: vec![0; n],
                observed: vec![0; n],
                cursor: 0,
                converged: if n == 1 { Some(0) } else { None },
                explorations: 0,
                excess_ns: 0,
            }),
        }
    }

    /// A pre-converged explorer seeded from a calibration-table verdict
    /// (`winner` must be a member of `arms`).
    pub(crate) fn warm(fp: GraphFingerprint, winner: ArmConfig, arms: Vec<ArmConfig>) -> Self {
        let pos = arms
            .iter()
            .position(|a| *a == winner)
            .expect("warm verdict validated against the arm space");
        let tuner = Self::exploring(fp, arms);
        {
            let mut st = tuner.state.lock().unwrap();
            st.alive = vec![pos];
            st.converged = Some(pos);
        }
        tuner
    }

    /// The fingerprint this explorer's verdict files under.
    pub(crate) fn fingerprint(&self) -> GraphFingerprint {
        self.fp
    }

    /// Picks the arm for the next run.
    pub(crate) fn begin(&self) -> ArmTicket {
        let mut st = self.state.lock().unwrap();
        if let Some(i) = st.converged {
            return ArmTicket {
                arm: st.arms[i],
                idx: i,
                explore: false,
            };
        }
        let n = st.alive.len();
        for _ in 0..n {
            let i = st.alive[st.cursor % n];
            st.cursor = (st.cursor + 1) % n;
            if st.begun[i] < TUNE_MEASURES_PER_ARM {
                st.begun[i] += 1;
                st.explorations += 1;
                return ArmTicket {
                    arm: st.arms[i],
                    idx: i,
                    explore: true,
                };
            }
        }
        // Round fully dealt but observations still in flight on other
        // threads: measure the current front-runner once more (extra
        // samples only tighten its minimum).
        let i = st
            .alive
            .iter()
            .copied()
            .min_by_key(|&i| st.best_ns[i])
            .unwrap_or(0);
        st.explorations += 1;
        ArmTicket {
            arm: st.arms[i],
            idx: i,
            explore: true,
        }
    }

    /// Feeds one measured execution back. `idx` is the ticket's arm
    /// index; `ns` its wall time.
    pub(crate) fn observe(&self, idx: usize, ns: u64) -> Observation {
        let mut st = self.state.lock().unwrap();
        if st.converged.is_some() || idx >= st.arms.len() {
            return Observation::default();
        }
        st.best_ns[idx] = st.best_ns[idx].min(ns.max(1));
        st.observed[idx] = st.observed[idx].saturating_add(1);
        let best = st
            .alive
            .iter()
            .map(|&i| st.best_ns[i])
            .min()
            .unwrap_or(u64::MAX);
        let excess = if best == u64::MAX {
            0
        } else {
            ns.saturating_sub(best)
        };
        st.excess_ns += excess;
        let round_done = st
            .alive
            .iter()
            .all(|&i| st.observed[i] >= TUNE_MEASURES_PER_ARM && st.best_ns[i] != u64::MAX);
        let mut obs = Observation {
            excess_ns: excess,
            newly_converged: None,
        };
        if round_done {
            let mut ranked = st.alive.clone();
            ranked.sort_by_key(|&i| st.best_ns[i]);
            let keep = ranked
                .len()
                .div_ceil(2)
                .min(ranked.len().saturating_sub(1))
                .max(1);
            ranked.truncate(keep);
            st.alive = ranked;
            for i in 0..st.arms.len() {
                st.begun[i] = 0;
                st.observed[i] = 0;
            }
            st.cursor = 0;
            if st.alive.len() == 1 {
                let w = st.alive[0];
                st.converged = Some(w);
                obs.newly_converged = Some(st.arms[w]);
            }
        }
        obs
    }

    /// The winning arm, once exploration finished.
    pub(crate) fn converged_arm(&self) -> Option<ArmConfig> {
        let st = self.state.lock().unwrap();
        st.converged.map(|i| st.arms[i])
    }

    /// Public status snapshot.
    pub(crate) fn status(&self) -> TuneState {
        let st = self.state.lock().unwrap();
        match st.converged {
            Some(i) => TuneState::Converged {
                arm: st.arms[i],
                explorations: st.explorations,
            },
            None => TuneState::Exploring {
                total: st.arms.len(),
                surviving: st.alive.len(),
                explorations: st.explorations,
            },
        }
    }
}

fn encode_line(fp: &GraphFingerprint, arm: &ArmConfig) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {}",
        fp.rows_log2,
        fp.nnz_log2,
        fp.dim,
        fp.skew_q,
        fp.gather_q,
        fp.workers,
        sched_token(arm.sched),
        path_token(arm.path),
        u8::from(arm.half_panel),
        u8::from(arm.fast_math),
    )
}

fn decode_line(line: &str) -> Option<(GraphFingerprint, ArmConfig)> {
    let mut it = line.split_whitespace();
    let fp = GraphFingerprint {
        rows_log2: it.next()?.parse().ok()?,
        nnz_log2: it.next()?.parse().ok()?,
        dim: it.next()?.parse().ok()?,
        skew_q: it.next()?.parse().ok()?,
        gather_q: it.next()?.parse().ok()?,
        workers: it.next()?.parse().ok()?,
    };
    let sched = parse_sched(it.next()?)?;
    let path = parse_path(it.next()?)?;
    let half_panel = match it.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let fast_math = match it.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    if it.next().is_some() {
        return None;
    }
    Some((
        fp,
        ArmConfig {
            sched,
            path,
            half_panel,
            fast_math,
        },
    ))
}

/// Parses the text form of a calibration table. `Err` carries the
/// human-readable reason the whole file is rejected (wrong header /
/// version, malformed entry) — callers warn once and start cold.
pub(crate) fn parse_calibration(
    text: &str,
) -> Result<HashMap<GraphFingerprint, ArmConfig>, String> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("").trim();
    if header != CALIB_HEADER {
        return Err(format!(
            "unsupported header {header:?} (expected {CALIB_HEADER:?})"
        ));
    }
    let mut table = HashMap::new();
    for (i, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match decode_line(line) {
            Some((fp, arm)) => {
                table.insert(fp, arm);
            }
            None => return Err(format!("malformed entry at line {}", i + 2)),
        }
    }
    Ok(table)
}

/// The process-level calibration table: converged verdicts keyed by
/// [`GraphFingerprint`], shared by every plan an engine tunes and
/// (optionally) persisted to a versioned text file so warm restarts
/// skip exploration. Attach one to an engine with
/// [`ExecEngine::with_autotuner`](crate::ExecEngine::with_autotuner) or
/// process-wide via `MPSPMM_TUNE`/`MPSPMM_CALIB_PATH`.
#[derive(Debug)]
pub struct AutoTuner {
    path: Option<PathBuf>,
    table: Mutex<HashMap<GraphFingerprint, ArmConfig>>,
    warned_write: AtomicBool,
}

impl AutoTuner {
    /// A tuner whose table lives only in this process.
    pub fn in_memory() -> Self {
        Self {
            path: None,
            table: Mutex::new(HashMap::new()),
            warned_write: AtomicBool::new(false),
        }
    }

    /// A tuner backed by the calibration file at `path`: existing
    /// verdicts are loaded now (a missing file starts cold silently; a
    /// corrupt or version-mismatched one starts cold with a one-time
    /// warning) and every new verdict is written through.
    pub fn with_path(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let table = match std::fs::read_to_string(&path) {
            Ok(text) => match parse_calibration(&text) {
                Ok(table) => table,
                Err(reason) => {
                    eprintln!(
                        "mpspmm-core: ignoring calibration table {}: {reason}; starting cold",
                        path.display()
                    );
                    HashMap::new()
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => {
                eprintln!(
                    "mpspmm-core: cannot read calibration table {}: {e}; starting cold",
                    path.display()
                );
                HashMap::new()
            }
        };
        Self {
            path: Some(path),
            table: Mutex::new(table),
            warned_write: AtomicBool::new(false),
        }
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up the converged arm for a fingerprint. Callers must
    /// validate the result against their current [`arm_space`] — a
    /// table written by a FastMath-enabled process, say, may hold arms
    /// a default engine is not allowed to run.
    pub fn lookup(&self, fp: &GraphFingerprint) -> Option<ArmConfig> {
        self.table.lock().unwrap().get(fp).copied()
    }

    /// Records a converged verdict, writing the table through to the
    /// backing file (if any). Re-recording an unchanged verdict is a
    /// no-op.
    pub fn record(&self, fp: GraphFingerprint, arm: ArmConfig) {
        let mut table = self.table.lock().unwrap();
        if table.get(&fp) == Some(&arm) {
            return;
        }
        table.insert(fp, arm);
        self.persist(&table);
    }

    /// Number of verdicts in the table.
    pub fn len(&self) -> usize {
        self.table.lock().unwrap().len()
    }

    /// Whether the table holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every (fingerprint, verdict) pair, unordered.
    pub fn entries(&self) -> Vec<(GraphFingerprint, ArmConfig)> {
        self.table
            .lock()
            .unwrap()
            .iter()
            .map(|(fp, arm)| (*fp, *arm))
            .collect()
    }

    fn persist(&self, table: &HashMap<GraphFingerprint, ArmConfig>) {
        let Some(path) = &self.path else { return };
        let mut lines: Vec<String> = table.iter().map(|(fp, arm)| encode_line(fp, arm)).collect();
        lines.sort_unstable();
        let mut text = String::with_capacity(CALIB_HEADER.len() + 1 + lines.len() * 40);
        text.push_str(CALIB_HEADER);
        text.push('\n');
        for l in &lines {
            text.push_str(l);
            text.push('\n');
        }
        let tmp = path.with_extension("calib-tmp");
        let wrote = (|| -> std::io::Result<()> {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            std::fs::write(&tmp, text.as_bytes())?;
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = wrote {
            if !self.warned_write.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "mpspmm-core: cannot persist calibration table {}: {e}; continuing in-memory",
                    path.display()
                );
            }
        }
    }
}

/// The process-wide tuner `MPSPMM_TUNE`/`MPSPMM_CALIB_PATH` configure,
/// attached by default to every engine built without an explicit one.
/// Resolved once per process like every other engine knob.
pub(crate) fn env_autotuner() -> Option<Arc<AutoTuner>> {
    static TUNER: OnceLock<Option<Arc<AutoTuner>>> = OnceLock::new();
    TUNER
        .get_or_init(|| {
            let on = std::env::var_os("MPSPMM_TUNE").is_some_and(|v| v != "0");
            if !on {
                return None;
            }
            Some(Arc::new(match std::env::var_os("MPSPMM_CALIB_PATH") {
                Some(p) if !p.is_empty() => AutoTuner::with_path(PathBuf::from(p)),
                _ => AutoTuner::in_memory(),
            }))
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(dim: u32, skew_q: u8, workers: u8) -> GraphFingerprint {
        GraphFingerprint {
            rows_log2: 10,
            nnz_log2: 13,
            dim,
            skew_q,
            gather_q: 5,
            workers,
        }
    }

    #[test]
    fn fingerprint_quantization() {
        let f = GraphFingerprint::from_features(1000, 8000, 64, 1.26, 30, 10, 4);
        assert_eq!(f.rows_log2, 9);
        assert_eq!(f.nnz_log2, 12);
        assert_eq!(f.dim, 64);
        assert_eq!(f.skew_q, 2); // (1.26 - 1) * 8 = 2.08 → 2
        assert_eq!(f.gather_q, 8); // 30/40 = 0.75 → 8
        assert_eq!(f.workers, 4);
        // Degenerate inputs saturate, never panic.
        let z = GraphFingerprint::from_features(0, 0, 0, f64::NAN, 0, 0, 500);
        assert_eq!(
            (z.rows_log2, z.nnz_log2, z.skew_q, z.gather_q),
            (0, 0, 0, 0)
        );
        assert_eq!(z.workers, 255);
    }

    #[test]
    fn arm_space_never_contains_fastmath_by_default() {
        // The satellite regression: no engine configuration that did
        // not *explicitly* opt into FastMath may see a FastMath arm,
        // across the whole fingerprint space.
        for dim in [1u32, 16, 32, 64, 128, 512] {
            for skew_q in [0u8, 1, 2, 8] {
                for workers in [1u8, 2, 8] {
                    for policy in [
                        SchedPolicy::Auto,
                        SchedPolicy::Static,
                        SchedPolicy::Stealing,
                        SchedPolicy::ColumnStriped,
                    ] {
                        for path in [DataPath::Auto, DataPath::Vector, DataPath::Tiled] {
                            let arms = arm_space(&fp(dim, skew_q, workers), policy, path, false);
                            assert!(!arms.is_empty());
                            assert!(
                                arms.iter().all(|a| !a.fast_math),
                                "fastmath arm leaked into a non-fastmath space: {arms:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn arm_space_fastmath_only_on_vector_family_when_opted_in() {
        let arms = arm_space(&fp(64, 2, 4), SchedPolicy::Auto, DataPath::Auto, true);
        for a in &arms {
            if cfg!(feature = "force-scalar") {
                continue;
            }
            assert_eq!(
                a.fast_math,
                matches!(a.path, DataPath::Vector | DataPath::Auto),
                "fastmath must track the vector family: {a:?}"
            );
        }
    }

    #[test]
    fn arm_space_prunes_by_fingerprint() {
        // One worker: no stealing, no striping.
        let arms = arm_space(&fp(128, 8, 1), SchedPolicy::Auto, DataPath::Auto, false);
        assert!(arms.iter().all(|a| a.sched == SchedPolicy::Static));
        // Balanced narrow plan: static only, no tiled above the cutoff.
        let arms = arm_space(&fp(64, 0, 4), SchedPolicy::Auto, DataPath::Auto, false);
        assert!(arms.iter().all(|a| a.sched != SchedPolicy::Stealing));
        if !cfg!(feature = "force-scalar") {
            assert!(arms.iter().all(|a| a.path != DataPath::Tiled));
        }
        // Skewed multi-worker plan explores stealing.
        let arms = arm_space(&fp(16, 2, 4), SchedPolicy::Auto, DataPath::Auto, false);
        assert!(arms.iter().any(|a| a.sched == SchedPolicy::Stealing));
        // Narrow dim excludes striping; wide includes it.
        assert!(arms.iter().all(|a| a.sched != SchedPolicy::ColumnStriped));
        let arms = arm_space(&fp(256, 0, 4), SchedPolicy::Auto, DataPath::Auto, false);
        assert!(arms.iter().any(|a| a.sched == SchedPolicy::ColumnStriped));
        // The heuristic incumbent leads the space.
        assert_eq!(arms[0].sched, SchedPolicy::ColumnStriped);
    }

    #[test]
    fn pinned_axes_collapse_the_space() {
        let arms = arm_space(&fp(16, 8, 8), SchedPolicy::Static, DataPath::Scalar, false);
        assert_eq!(arms.len(), 1);
        assert_eq!(arms[0].sched, SchedPolicy::Static);
        assert_eq!(arms[0].path, DataPath::Scalar);
        let t = PlanTuner::exploring(fp(16, 8, 8), arms);
        // A one-arm space is converged before the first run.
        assert!(t.status().is_converged());
        assert!(!t.begin().explore);
    }

    #[test]
    fn successive_halving_converges_to_fastest_arm() {
        let arms = arm_space(&fp(256, 2, 4), SchedPolicy::Auto, DataPath::Auto, false);
        assert!(arms.len() >= 3, "want a real field: {arms:?}");
        let t = PlanTuner::exploring(fp(256, 2, 4), arms.clone());
        // Deterministic synthetic costs: arm i takes 100 + 17*i µs,
        // except the last arm which is fastest.
        let cost = |i: usize| -> u64 {
            if i == arms.len() - 1 {
                50_000
            } else {
                100_000 + 17_000 * i as u64
            }
        };
        let mut runs = 0u32;
        loop {
            let ticket = t.begin();
            if !ticket.explore {
                break;
            }
            let obs = t.observe(ticket.idx, cost(ticket.idx));
            runs += 1;
            assert!(runs < 200, "explorer failed to converge");
            if obs.newly_converged.is_some() {
                break;
            }
        }
        let won = t.converged_arm().expect("converged");
        assert_eq!(won, arms[arms.len() - 1], "fastest arm must win");
        // Converged runs are free: no exploration flag, stable arm.
        let steady = t.begin();
        assert!(!steady.explore);
        assert_eq!(steady.arm, won);
        match t.status() {
            TuneState::Converged { arm, explorations } => {
                assert_eq!(arm, won);
                assert_eq!(explorations as u32, runs);
            }
            s => panic!("expected converged, got {s:?}"),
        }
    }

    #[test]
    fn warm_tuner_skips_exploration() {
        let arms = arm_space(&fp(128, 0, 4), SchedPolicy::Auto, DataPath::Auto, false);
        let winner = arms[arms.len() - 1];
        let t = PlanTuner::warm(fp(128, 0, 4), winner, arms);
        let ticket = t.begin();
        assert!(!ticket.explore);
        assert_eq!(ticket.arm, winner);
        assert_eq!(
            t.status(),
            TuneState::Converged {
                arm: winner,
                explorations: 0
            }
        );
    }

    #[test]
    fn calibration_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mpspmm-tuner-rt-{}", std::process::id()));
        let path = dir.join("table.calib");
        let _ = std::fs::remove_dir_all(&dir);
        let tuner = AutoTuner::with_path(&path);
        assert!(tuner.is_empty());
        let f1 = fp(64, 2, 4);
        let f2 = fp(256, 0, 8);
        let a1 = ArmConfig {
            sched: SchedPolicy::Stealing,
            path: DataPath::Vector,
            half_panel: true,
            fast_math: false,
        };
        let a2 = ArmConfig {
            sched: SchedPolicy::ColumnStriped,
            path: DataPath::Auto,
            half_panel: false,
            fast_math: true,
        };
        tuner.record(f1, a1);
        tuner.record(f2, a2);
        let reloaded = AutoTuner::with_path(&path);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.lookup(&f1), Some(a1));
        assert_eq!(reloaded.lookup(&f2), Some(a2));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(CALIB_HEADER));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_calibration_is_ignored_never_panics() {
        let dir = std::env::temp_dir().join(format!("mpspmm-tuner-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Garbage bytes, wrong version, and a truncated entry all load
        // as an empty table (warning on stderr), never a panic.
        for (name, bytes) in [
            ("garbage.calib", &b"\x00\xffnot a table\x07"[..]),
            (
                "oldver.calib",
                b"mpspmm-calib v0\n1 2 3 4 5 6 static vector 0 0\n",
            ),
            (
                "truncated.calib",
                b"mpspmm-calib v1\n10 13 64 2 5 4 steal vector 0 0\n10 13 256 0",
            ),
            (
                "badarm.calib",
                b"mpspmm-calib v1\n1 2 3 4 5 6 warp vector 0 0\n",
            ),
        ] {
            let p = dir.join(name);
            std::fs::write(&p, bytes).unwrap();
            let tuner = AutoTuner::with_path(&p);
            assert!(tuner.is_empty(), "{name} must load as empty");
            // The tuner stays fully functional: new verdicts overwrite
            // the bad file with a valid table.
            let f = fp(64, 2, 4);
            let a = ArmConfig {
                sched: SchedPolicy::Static,
                path: DataPath::Vector,
                half_panel: false,
                fast_math: false,
            };
            tuner.record(f, a);
            assert_eq!(AutoTuner::with_path(&p).lookup(&f), Some(a));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_rejects_whole_file_on_any_bad_line() {
        assert!(parse_calibration("").is_err());
        assert!(parse_calibration("mpspmm-calib v2\n").is_err());
        let good = format!("{CALIB_HEADER}\n10 13 64 2 5 4 steal vector 0 0\n");
        assert_eq!(parse_calibration(&good).unwrap().len(), 1);
        let mixed = format!("{CALIB_HEADER}\n10 13 64 2 5 4 steal vector 0 0\nnonsense\n");
        assert!(parse_calibration(&mixed).is_err());
    }

    #[test]
    fn arm_labels_are_stable() {
        let a = ArmConfig {
            sched: SchedPolicy::ColumnStriped,
            path: DataPath::Vector,
            half_panel: true,
            fast_math: false,
        };
        assert_eq!(a.label(), "stripe/vector/half");
    }
}
