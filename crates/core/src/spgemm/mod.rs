//! Sparse×sparse SpGEMM: merge-path-balanced CSR×CSR with per-row
//! adaptive accumulators.
//!
//! Every other data path in this crate produces a *dense* output; this
//! module multiplies two CSR matrices into a CSR result
//! ([`ExecEngine::spgemm`]), the kernel behind multi-hop propagation
//! (`A²X` for 2-hop GNNs), graph coarsening, and similarity joins. It
//! runs in two phases:
//!
//! 1. **Symbolic** — per output row `i`, an upper bound on its non-zero
//!    count: `ub(i) = Σ_k nnz(B
//!    row k)` over `A`'s row `i` (exact only when no column collides).
//!    The cumulative bounds feed the *merge-path chunker*
//!    ([`crate::plan::chunk_threads`]) with one logical thread per
//!    row, so chunk boundaries balance `rows + flops` exactly like the
//!    SpMM planner balances `threads + nnz` — a power-law hub row
//!    cannot serialize a whole worker span.
//! 2. **Numeric** — workers self-schedule chunks off an atomic cursor
//!    (the same eager-dealing shape as the stealing scheduler, without
//!    the deques: chunks are already nnz-balanced). Each row picks an
//!    accumulator by [`classify_row`], mirroring the row classification
//!    of the binary-row-merging CPU SpGEMM work (arXiv 2206.06611):
//!    *merge* for rows combining few `B` rows, *dense scratch* for
//!    short wide rows, *hash* for the sparse rest. Chunk outputs are
//!    emitted into arena-backed segments and stitched serially into the
//!    final CSR via
//!    [`from_parts_unchecked`](CsrMatrix::from_parts_unchecked) — the
//!    invariants hold by construction, so the stitch is O(nnz) copies
//!    with no re-validation.
//!
//! # Determinism
//!
//! The engine's output is **bit-identical** to [`spgemm_sequential`]
//! for every strategy and worker count. Three facts make this hold (see
//! the `accum` submodule docs for the per-accumulator argument):
//! every accumulator applies a row's contributions to a given output
//! column in ascending-`k` order with first-touch assignment; each
//! output row is computed by exactly one worker (chunks never split a
//! row); and chunks are stitched in row order regardless of which
//! worker finished them when. Worker count changes only *which* worker
//! computes a row, never the arithmetic inside it.

mod accum;

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use mpspmm_sparse::{CsrMatrix, SparseFormatError};

use crate::arena::BufferArena;
use crate::engine::ExecEngine;
use crate::plan::{chunk_threads, static_span_skew, ChunkDesc};
use crate::pool::ScopedJob;
use crate::tuner::{spgemm_arm_space, GraphFingerprint};
use crate::tuning::{
    SPGEMM_DENSE_FILL_DIV, SPGEMM_MERGE_MAX_WAYS, STEAL_CHUNKS_PER_WORKER, TUNE_MEASURES_PER_ARM,
};

use accum::{merge_row, DenseAccumulator, HashAccumulator};

/// Which accumulator family [`ExecEngine::spgemm`] runs rows through.
///
/// [`Adaptive`](Self::Adaptive) (the default) classifies per row via
/// [`classify_row`]; the forced variants pin every row to one family —
/// an A/B switch for benchmarks and the bit-equality test matrix, and
/// the arm family the online tuner explores
/// ([`crate::tuner::spgemm_arm_space`]). All variants produce identical
/// bits; only speed differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpgemmStrategy {
    /// Per-row choice by [`classify_row`] — the static heuristic.
    #[default]
    Adaptive,
    /// Every row through the dense-scratch accumulator.
    Dense,
    /// Every row through the u32-keyed hash accumulator.
    Hash,
    /// Every row through the sorted multi-way merge.
    Merge,
}

/// The accumulator a row classifies to. Discriminants index the
/// per-chunk class counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumKind {
    /// Dense scratch (short, wide rows).
    Dense = 0,
    /// u32-keyed open-addressing hash (sparse rows).
    Hash = 1,
    /// Sorted multi-way merge (few `B` rows combined).
    Merge = 2,
}

/// The static per-row accumulator choice of
/// [`SpgemmStrategy::Adaptive`]: merge when the row combines at most
/// [`SPGEMM_MERGE_MAX_WAYS`] `B` rows, else dense scratch when the nnz
/// upper bound `ub` is at least `b_cols /`
/// [`SPGEMM_DENSE_FILL_DIV`], else hash. `ways` is the A-row's nnz,
/// `ub` the row's upper bound, `b_cols` the output width.
pub fn classify_row(ways: usize, ub: usize, b_cols: usize) -> AccumKind {
    if ways <= SPGEMM_MERGE_MAX_WAYS {
        AccumKind::Merge
    } else if ub.saturating_mul(SPGEMM_DENSE_FILL_DIV) >= b_cols {
        AccumKind::Dense
    } else {
        AccumKind::Hash
    }
}

/// Cumulative per-row nnz upper bounds (`ends[i]` = Σ of `ub` over rows
/// `0..=i`) — the symbolic phase's output and the chunker's balance
/// signal.
fn upper_bound_ends(a: &CsrMatrix<f32>, b: &CsrMatrix<f32>) -> Vec<usize> {
    let mut ends = Vec::with_capacity(a.rows());
    let mut running = 0usize;
    for arow in a.iter_rows() {
        for &k in arow.cols {
            running += b.row_nnz(k);
        }
        ends.push(running);
    }
    ends
}

/// Total multiply-add upper bound of `A × B` (Σ over `A`'s non-zeros
/// `(i, k)` of `nnz(B row k)`) — the flop count the symbolic phase
/// balances on and the work term of the two-hop crossover model and
/// the SpGEMM benchmark.
pub fn spgemm_flops_upper_bound(a: &CsrMatrix<f32>, b: &CsrMatrix<f32>) -> usize {
    debug_assert_eq!(a.cols(), b.rows(), "operand shapes must chain");
    a.col_indices().iter().map(|&k| b.row_nnz(k)).sum()
}

/// Sequential SpGEMM oracle: one dense scratch pass per row, full
/// [`CsrMatrix::new`] validation on the result. This is the bit-level
/// ground truth [`ExecEngine::spgemm`] is tested against — it follows
/// the same accumulation contract (ascending-`k` order, first-touch
/// assignment, plain scalar products) as every engine accumulator.
///
/// # Errors
///
/// Returns [`SparseFormatError::ShapeMismatch`] if
/// `a.cols() != b.rows()`.
pub fn spgemm_sequential(
    a: &CsrMatrix<f32>,
    b: &CsrMatrix<f32>,
) -> Result<CsrMatrix<f32>, SparseFormatError> {
    check_spgemm_shapes(a, b)?;
    let mut acc = DenseAccumulator::new(Vec::new(), b.cols());
    let mut cols32 = Vec::new();
    let mut vals = Vec::new();
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    row_ptr.push(0usize);
    for arow in a.iter_rows() {
        for (&k, &av) in arow.cols.iter().zip(arow.vals) {
            let brow = b.row(k);
            for (&c, &bv) in brow.cols.iter().zip(brow.vals) {
                acc.accumulate(c, av * bv);
            }
        }
        acc.flush_into(&mut cols32, &mut vals);
        row_ptr.push(cols32.len());
    }
    let col_indices = cols32.into_iter().map(|c| c as usize).collect();
    CsrMatrix::new(a.rows(), b.cols(), row_ptr, col_indices, vals)
}

fn check_spgemm_shapes(a: &CsrMatrix<f32>, b: &CsrMatrix<f32>) -> Result<(), SparseFormatError> {
    if a.cols() != b.rows() {
        return Err(SparseFormatError::ShapeMismatch {
            left: (a.rows(), a.cols()),
            right: (b.rows(), b.cols()),
        });
    }
    Ok(())
}

/// One chunk's output segment: column/value tails (arena-backed) plus
/// per-row lengths and per-class row counts, stitched serially after
/// the join.
struct ChunkOut {
    cols: Vec<u32>,
    vals: Vec<f32>,
    row_nnz: Vec<u32>,
    counts: [u64; 3],
}

/// One worker's drain loop: claim chunks off the shared cursor until
/// none remain. Accumulator state (hash table, dense scratch) lives
/// per worker and is reused across its chunks; the dense scratch is
/// only materialized if a dense-classified row actually appears.
#[allow(clippy::too_many_arguments)]
fn numeric_worker(
    a: &CsrMatrix<f32>,
    b: &CsrMatrix<f32>,
    ub_ends: &[usize],
    chunks: &[ChunkDesc],
    strategy: SpgemmStrategy,
    arena: &BufferArena,
    cursor: &AtomicUsize,
    outs: &[OnceLock<ChunkOut>],
) {
    let mut hash = HashAccumulator::default();
    let mut dense: Option<DenseAccumulator> = None;
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= chunks.len() {
            break;
        }
        let out = run_chunk(
            a, b, ub_ends, chunks[i], strategy, arena, &mut dense, &mut hash,
        );
        assert!(outs[i].set(out).is_ok(), "chunk {i} executed twice");
    }
    if let Some(d) = dense {
        arena.put(d.into_vals());
    }
}

/// Executes every row of one chunk through its (classified or forced)
/// accumulator, emitting into fresh arena segments.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    a: &CsrMatrix<f32>,
    b: &CsrMatrix<f32>,
    ub_ends: &[usize],
    chunk: ChunkDesc,
    strategy: SpgemmStrategy,
    arena: &BufferArena,
    dense: &mut Option<DenseAccumulator>,
    hash: &mut HashAccumulator,
) -> ChunkOut {
    let b_cols = b.cols();
    let mut cols = arena.take_indices(chunk.nnz);
    let mut vals = arena.take_cleared(chunk.nnz);
    let mut row_nnz = Vec::with_capacity(chunk.threads());
    let mut counts = [0u64; 3];
    for r in chunk.thread_start as usize..chunk.thread_end as usize {
        let arow = a.row(r);
        let ub = ub_ends[r] - if r == 0 { 0 } else { ub_ends[r - 1] };
        let kind = match strategy {
            SpgemmStrategy::Adaptive => classify_row(arow.cols.len(), ub, b_cols),
            SpgemmStrategy::Dense => AccumKind::Dense,
            SpgemmStrategy::Hash => AccumKind::Hash,
            SpgemmStrategy::Merge => AccumKind::Merge,
        };
        let n = match kind {
            AccumKind::Merge => merge_row(arow.cols, arow.vals, b, &mut cols, &mut vals),
            AccumKind::Dense => {
                let acc = dense.get_or_insert_with(|| {
                    DenseAccumulator::new(arena.take_cleared(b_cols), b_cols)
                });
                for (&k, &av) in arow.cols.iter().zip(arow.vals) {
                    let brow = b.row(k);
                    for (&c, &bv) in brow.cols.iter().zip(brow.vals) {
                        acc.accumulate(c, av * bv);
                    }
                }
                acc.flush_into(&mut cols, &mut vals)
            }
            AccumKind::Hash => {
                hash.reserve(ub);
                for (&k, &av) in arow.cols.iter().zip(arow.vals) {
                    let brow = b.row(k);
                    for (&c, &bv) in brow.cols.iter().zip(brow.vals) {
                        hash.accumulate(c as u32, av * bv);
                    }
                }
                hash.flush_into(&mut cols, &mut vals)
            }
        };
        row_nnz.push(n as u32);
        counts[kind as usize] += 1;
    }
    ChunkOut {
        cols,
        vals,
        row_nnz,
        counts,
    }
}

/// Online tuner state for one SpGEMM shape class: measure every
/// strategy arm [`TUNE_MEASURES_PER_ARM`] times on the numeric phase,
/// then pin the fastest (ties break to the lowest index, i.e. the
/// heuristic incumbent). Kept per engine, keyed by
/// [`GraphFingerprint`], only when an [`crate::AutoTuner`] is attached.
#[derive(Debug)]
pub(crate) struct SpgemmSlot {
    arms: Vec<SpgemmStrategy>,
    observed: Vec<u32>,
    best_ns: Vec<u64>,
    cursor: usize,
    converged: Option<usize>,
}

impl SpgemmSlot {
    fn new(arms: Vec<SpgemmStrategy>) -> Self {
        let n = arms.len();
        Self {
            arms,
            observed: vec![0; n],
            best_ns: vec![u64::MAX; n],
            cursor: 0,
            converged: None,
        }
    }

    /// Picks the arm for the next run: the winner once converged, else
    /// the next arm still short of its measure quota (round-robin).
    /// Returns `(arm index, strategy, whether this run is a measured
    /// exploration)`.
    fn begin(&mut self) -> (usize, SpgemmStrategy, bool) {
        if let Some(i) = self.converged {
            return (i, self.arms[i], false);
        }
        let n = self.arms.len();
        for _ in 0..n {
            let i = self.cursor % n;
            self.cursor += 1;
            if self.observed[i] < TUNE_MEASURES_PER_ARM {
                return (i, self.arms[i], true);
            }
        }
        // Every arm has its quota but a concurrent observe has not yet
        // declared the winner; run the current best meanwhile.
        let i = self.best_index();
        (i, self.arms[i], false)
    }

    /// Records a measured numeric-phase time for arm `idx`. Returns
    /// `(excess over the incumbent best, whether this observation
    /// completed convergence)`.
    fn observe(&mut self, idx: usize, ns: u64) -> (u64, bool) {
        let incumbent = self.best_ns.iter().copied().min().unwrap_or(u64::MAX);
        let excess = if incumbent == u64::MAX {
            0
        } else {
            ns.saturating_sub(incumbent)
        };
        self.best_ns[idx] = self.best_ns[idx].min(ns);
        self.observed[idx] += 1;
        let done =
            self.converged.is_none() && self.observed.iter().all(|&o| o >= TUNE_MEASURES_PER_ARM);
        if done {
            self.converged = Some(self.best_index());
        }
        (excess, done)
    }

    fn best_index(&self) -> usize {
        let mut best = 0;
        for i in 1..self.arms.len() {
            if self.best_ns[i] < self.best_ns[best] {
                best = i;
            }
        }
        best
    }

    /// The converged winner, if any — exposed through
    /// [`ExecEngine::spgemm_tuned_strategy`].
    fn winner(&self) -> Option<SpgemmStrategy> {
        self.converged.map(|i| self.arms[i])
    }
}

/// Per-engine SpGEMM tuner slots, keyed by shape class.
pub(crate) type SpgemmSlots = HashMap<GraphFingerprint, SpgemmSlot>;

impl ExecEngine {
    /// Pins every SpGEMM row to one accumulator family instead of the
    /// per-row [`classify_row`] heuristic. An A/B switch for the
    /// benchmark and the bit-equality test matrix — results are
    /// identical bits under every strategy; only speed changes. When a
    /// tuner is attached ([`with_autotuner`](Self::with_autotuner) or
    /// `MPSPMM_TUNE`), converged shape classes override this pin.
    #[must_use]
    pub fn with_spgemm_strategy(mut self, strategy: SpgemmStrategy) -> Self {
        self.spgemm_strategy = strategy;
        self
    }

    /// The accumulator strategy untuned SpGEMM runs execute with.
    pub fn spgemm_strategy(&self) -> SpgemmStrategy {
        self.spgemm_strategy
    }

    /// The converged tuner verdict for the SpGEMM shape class of
    /// `(a, b)`, or `None` while exploring or when no tuner is
    /// attached — exposed so tests and the benchmark can assert on
    /// convergence.
    pub fn spgemm_tuned_strategy(
        &self,
        a: &CsrMatrix<f32>,
        b: &CsrMatrix<f32>,
    ) -> Option<SpgemmStrategy> {
        self.autotuner()?;
        let ub_ends = upper_bound_ends(a, b);
        let fp = self.spgemm_fingerprint(a, b, &ub_ends);
        self.spgemm_slots
            .lock()
            .unwrap()
            .get(&fp)
            .and_then(SpgemmSlot::winner)
    }

    /// The quantized shape class an SpGEMM of `(a, b)` files under:
    /// output rows, flop upper bound as the nnz feature, `B`'s column
    /// count as the dense dimension, and the chunk-free static skew of
    /// the upper-bound partition.
    fn spgemm_fingerprint(
        &self,
        a: &CsrMatrix<f32>,
        b: &CsrMatrix<f32>,
        ub_ends: &[usize],
    ) -> GraphFingerprint {
        let eff = self.workers.min(a.rows()).max(1);
        GraphFingerprint::from_features(
            a.rows(),
            ub_ends.last().copied().unwrap_or(0),
            b.cols(),
            static_span_skew(ub_ends, eff),
            0,
            0,
            eff,
        )
    }

    /// Multiplies two CSR matrices into a CSR result, `C = A × B`.
    ///
    /// Two phases (see the [module docs](self)): a serial symbolic
    /// pass computes per-row nnz upper bounds and merge-path-chunks the
    /// rows; the numeric pass runs the chunks on the worker pool with
    /// per-row adaptive accumulators. The output has sorted, duplicate-
    /// free column indices and is **bit-identical** to
    /// [`spgemm_sequential`] at every strategy and worker count.
    /// Explicit zeros are kept: an entry whose products cancel to zero
    /// is structurally present, exactly as in the oracle.
    ///
    /// Phase timings and the per-accumulator row distribution land in
    /// [`EngineStats::spgemm`](crate::EngineStats).
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if
    /// `a.cols() != b.rows()`.
    pub fn spgemm(
        &self,
        a: &CsrMatrix<f32>,
        b: &CsrMatrix<f32>,
    ) -> Result<CsrMatrix<f32>, SparseFormatError> {
        check_spgemm_shapes(a, b)?;
        if b.cols() as u64 >= u32::MAX as u64 {
            // Column keys must fit u32 (u32::MAX is the hash empty
            // sentinel); absurd widths take the oracle verbatim.
            let out = spgemm_sequential(a, b)?;
            self.spgemm_rows
                .fetch_add(a.rows() as u64, Ordering::Relaxed);
            return Ok(out);
        }
        let rows = a.rows();
        let sym_t = Instant::now();
        let ub_ends = upper_bound_ends(a, b);
        let eff = self.workers.min(rows).max(1);
        let target = (eff * STEAL_CHUNKS_PER_WORKER).min(rows.max(1));
        let chunks = chunk_threads(&ub_ends, target);
        self.spgemm_symbolic_ns
            .fetch_add(sym_t.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // Strategy: the tuner slot when one is attached (explore until
        // the shape class converges), else the engine's pinned choice.
        let ticket = if self.autotuner().is_some() && rows > 0 {
            let fp = self.spgemm_fingerprint(a, b, &ub_ends);
            let mut slots = self.spgemm_slots.lock().unwrap();
            let slot = slots
                .entry(fp)
                .or_insert_with(|| SpgemmSlot::new(spgemm_arm_space(&fp)));
            let (idx, strategy, explore) = slot.begin();
            Some((fp, idx, strategy, explore))
        } else {
            None
        };
        let strategy = ticket.map_or(self.spgemm_strategy, |(_, _, s, _)| s);

        // Numeric phase: timed around the parallel chunk drain only —
        // the serial stitch is excluded so the figure is the one the
        // makespan model of `bench_spgemm` calibrates against.
        let outs: Vec<OnceLock<ChunkOut>> = chunks.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let num_t = Instant::now();
        let drivers = eff.min(chunks.len()).max(1);
        if drivers <= 1 {
            numeric_worker(
                a,
                b,
                &ub_ends,
                &chunks,
                strategy,
                &self.arena,
                &cursor,
                &outs,
            );
        } else {
            let jobs: Vec<ScopedJob<'_>> = (0..drivers)
                .map(|_| {
                    let (ub_ends, chunks, outs, cursor) = (&ub_ends, &chunks, &outs, &cursor);
                    Box::new(move || {
                        numeric_worker(a, b, ub_ends, chunks, strategy, &self.arena, cursor, outs);
                    }) as ScopedJob<'_>
                })
                .collect();
            self.pool.get().scope_run(jobs);
        }
        let numeric_ns = num_t.elapsed().as_nanos() as u64;
        self.spgemm_numeric_ns
            .fetch_add(numeric_ns, Ordering::Relaxed);

        if let Some((fp, idx, _, true)) = ticket {
            let mut slots = self.spgemm_slots.lock().unwrap();
            if let Some(slot) = slots.get_mut(&fp) {
                let (excess, converged) = slot.observe(idx, numeric_ns);
                self.tuner_explorations.fetch_add(1, Ordering::Relaxed);
                self.tuner_exploration_ns
                    .fetch_add(numeric_ns, Ordering::Relaxed);
                self.tuner_excess_ns.fetch_add(excess, Ordering::Relaxed);
                if converged {
                    self.tuner_converged.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // Serial stitch, in chunk (= row) order: whichever worker
        // finished a chunk, its segment lands at the same offset.
        let total: usize = outs
            .iter()
            .map(|o| o.get().map_or(0, |c| c.cols.len()))
            .sum();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0usize);
        let mut col_indices = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        let mut counts = [0u64; 3];
        let mut running = 0usize;
        for out in outs {
            let out = out.into_inner().expect("every chunk executed");
            for &n in &out.row_nnz {
                running += n as usize;
                row_ptr.push(running);
            }
            col_indices.extend(out.cols.iter().map(|&c| c as usize));
            values.extend_from_slice(&out.vals);
            for (t, c) in counts.iter_mut().zip(out.counts) {
                *t += c;
            }
            self.arena.put_indices(out.cols);
            self.arena.put(out.vals);
        }
        self.spgemm_rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.spgemm_dense.fetch_add(counts[0], Ordering::Relaxed);
        self.spgemm_hash.fetch_add(counts[1], Ordering::Relaxed);
        self.spgemm_merge.fetch_add(counts[2], Ordering::Relaxed);
        Ok(CsrMatrix::from_parts_unchecked(
            rows,
            b.cols(),
            row_ptr,
            col_indices,
            values,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_sparse::testing::assert_csr_eq;

    fn power_law_pair() -> (CsrMatrix<f32>, CsrMatrix<f32>) {
        // Hand-rolled skew: row r of A has ~64/(r+1) entries, B is a
        // banded matrix — enough structure to hit all three classes.
        let n = 64;
        let a_rows: Vec<Vec<(usize, f32)>> = (0..n)
            .map(|r| {
                (0..(n / (r + 1)).max(1))
                    .map(|j| ((j * (r + 3)) % n, 0.5 + (r * 7 + j) as f32 * 0.25))
                    .collect::<Vec<_>>()
            })
            .map(|mut row| {
                row.sort_unstable_by_key(|&(c, _)| c);
                row.dedup_by_key(|&mut (c, _)| c);
                row
            })
            .collect();
        let b_rows: Vec<Vec<(usize, f32)>> = (0..n)
            .map(|r| {
                (r..(r + 5).min(n))
                    .map(|c| (c, 1.0 - (c as f32) * 0.01))
                    .collect()
            })
            .collect();
        (
            CsrMatrix::from_sorted_rows(n, &a_rows).unwrap(),
            CsrMatrix::from_sorted_rows(n, &b_rows).unwrap(),
        )
    }

    #[test]
    fn sequential_oracle_matches_dense_reference() {
        let (a, b) = power_law_pair();
        let c = spgemm_sequential(&a, &b).unwrap();
        let (ad, bd, cd) = (a.to_dense(), b.to_dense(), c.to_dense());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut want = 0.0f32;
                let mut first = true;
                for k in 0..a.cols() {
                    let (av, bv) = (ad.get(i, k), bd.get(k, j));
                    if a.row(i).cols.contains(&k) && b.row(k).cols.contains(&j) {
                        let contrib = av * bv;
                        if first {
                            want = contrib;
                            first = false;
                        } else {
                            want += contrib;
                        }
                    }
                }
                assert_eq!(cd.get(i, j).to_bits(), want.to_bits(), "({i}, {j})");
            }
        }
    }

    #[test]
    fn engine_matches_oracle_on_every_strategy() {
        let (a, b) = power_law_pair();
        let want = spgemm_sequential(&a, &b).unwrap();
        for strategy in [
            SpgemmStrategy::Adaptive,
            SpgemmStrategy::Dense,
            SpgemmStrategy::Hash,
            SpgemmStrategy::Merge,
        ] {
            for workers in [1, 3] {
                let engine = ExecEngine::new(workers).with_spgemm_strategy(strategy);
                let got = engine.spgemm(&a, &b).unwrap();
                assert_csr_eq(&got, &want);
            }
        }
    }

    #[test]
    fn adaptive_classification_lands_in_stats() {
        let (a, b) = power_law_pair();
        let engine = ExecEngine::new(2);
        engine.spgemm(&a, &b).unwrap();
        let s = engine.stats().spgemm;
        assert_eq!(s.rows, a.rows() as u64);
        assert_eq!(s.classified_rows(), s.rows);
        // The skewed A has hub rows (dense or hash) *and* thin rows
        // (merge) — the classifier must actually split.
        assert!(s.accum_merge > 0, "thin rows classify to merge: {s:?}");
        assert!(
            s.accum_dense + s.accum_hash > 0,
            "hub rows classify off the merge path: {s:?}"
        );
        // A hand-run of the classifier over the rows must agree.
        let ub_ends = upper_bound_ends(&a, &b);
        let mut want = [0u64; 3];
        for r in 0..a.rows() {
            let ub = ub_ends[r] - if r == 0 { 0 } else { ub_ends[r - 1] };
            want[classify_row(a.row_nnz(r), ub, b.cols()) as usize] += 1;
        }
        assert_eq!([s.accum_dense, s.accum_hash, s.accum_merge], want);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = CsrMatrix::<f32>::zeros(2, 3);
        let b = CsrMatrix::<f32>::zeros(4, 2);
        assert!(matches!(
            spgemm_sequential(&a, &b),
            Err(SparseFormatError::ShapeMismatch { .. })
        ));
        assert!(ExecEngine::new(1).spgemm(&a, &b).is_err());
    }

    #[test]
    fn empty_operands_produce_empty_outputs() {
        let a = CsrMatrix::<f32>::zeros(3, 4);
        let b = CsrMatrix::<f32>::zeros(4, 5);
        let engine = ExecEngine::new(2);
        let c = engine.spgemm(&a, &b).unwrap();
        assert_eq!((c.rows(), c.cols(), c.nnz()), (3, 5, 0));
        assert_csr_eq(&c, &spgemm_sequential(&a, &b).unwrap());
        let empty_rows = ExecEngine::new(1)
            .spgemm(&CsrMatrix::zeros(0, 4), &b)
            .unwrap();
        assert_eq!((empty_rows.rows(), empty_rows.cols()), (0, 5));
    }

    #[test]
    fn slot_converges_to_argmin_with_heuristic_tiebreak() {
        let mut slot = SpgemmSlot::new(vec![
            SpgemmStrategy::Adaptive,
            SpgemmStrategy::Hash,
            SpgemmStrategy::Merge,
        ]);
        let mut converged = false;
        let mut runs = 0;
        while !converged {
            let (idx, _, explore) = slot.begin();
            assert!(explore, "must explore until every arm is measured");
            // Arm 1 (Hash) is fastest; ties elsewhere.
            let ns = if idx == 1 { 100 } else { 300 };
            converged = slot.observe(idx, ns).1;
            runs += 1;
            assert!(runs <= 3 * TUNE_MEASURES_PER_ARM, "must converge");
        }
        assert_eq!(slot.winner(), Some(SpgemmStrategy::Hash));
        let (_, strategy, explore) = slot.begin();
        assert_eq!((strategy, explore), (SpgemmStrategy::Hash, false));
    }
}
