//! Column-striped execution for wide feature dimensions.
//!
//! Merge-path scheduling balances the **sparse** axis: it splits rows
//! plus non-zeros evenly and pays for the split with shared-row
//! machinery — per-worker strips folded after the join, carry segments
//! replayed serially. That serial fraction is O(boundary segments × dim),
//! so it *grows linearly with the dense dimension* while the parallel
//! phase merely gets denser. At GNN hidden widths (128–512 columns) the
//! fold/replay tail starts to dominate exactly the way the atomic tail
//! does in the paper's row-split baseline.
//!
//! This module flips the partition axis: each worker owns a contiguous
//! **feature-column stripe of all rows** and replays the *entire* plan
//! walk restricted to its stripe. Shared-row handling disappears — no
//! per-worker strips, no strip folding, no cross-worker carry replay,
//! no atomics — because no two workers ever touch the same output
//! element. Within a stripe the worker performs, per column, exactly the
//! additions of the sequential executor in exactly its order (Regular
//! stores overwrite, Atomic segments accumulate locally then add, Carry
//! segments replay after the walk in `(thread, segment)` order), so the
//! striped result is **bit-identical to the sequential oracle at any
//! worker count** — stronger than the static path's tolerance contract.
//!
//! The price is that the packed column indices and `A`'s values are
//! re-streamed once per stripe. At `dim >= 128` a stripe still spans at
//! least ~64 columns, so each touched row of `B` serves 64+
//! multiply-adds per index load — the index traffic is noise, and the
//! stripes are sized to [`crate::tuning::stripe_panel_cols`] so a
//! stripe's working set (the gathered `B` rows' column windows) stays
//! L2-resident. [`crate::SchedPolicy::Auto`] routes wide-dimension runs
//! here (see [`crate::tuning::STRIPE_MIN_DIM`]); narrow runs keep the
//! static/stealing schedulers, whose single sweep of the indices wins
//! when `dim` is small.
//!
//! # Why the raw-pointer output view is sound
//!
//! This is, with [`crate::pool`], [`crate::steal`], and the
//! `#[target_feature]` clones in `datapath`, one of the four modules
//! allowed out of the crate's `deny(unsafe_code)`. The argument is
//! column disjointness:
//!
//! * [`stripe_bounds`] partitions `0..dim` into non-overlapping,
//!   non-empty `[lo, hi)` windows;
//! * each stripe is pushed onto exactly one worker's list, and a worker
//!   writes only through [`StripedOut::cols_mut`] with its own stripe's
//!   window — elements `row * dim + [lo, hi)` for each row;
//! * distinct stripes therefore write disjoint index sets, and the
//!   pool's completion barrier orders every write before the caller
//!   reads the output.

#![allow(unsafe_code)]

use mpspmm_sparse::{CsrMatrix, DenseMatrix};

use crate::arena::BufferArena;
use crate::datapath::{accumulate_segment_dispatch, prefetch_segment_rows, ResolvedPath};
use crate::engine::PreparedPlan;
use crate::epilogue::Epilogue;
use crate::plan::Flush;
use crate::pool::{ScopedJob, WorkerPool};
use crate::tuning::{stripe_panel_cols, CacheModel};

/// Raw-pointer view of the output buffer for the duration of the
/// parallel phase. See the module docs for the disjointness argument.
struct StripedOut {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: `StripedOut` only exposes the output through `cols_mut`, whose
// caller contract (one worker per column stripe, see module docs) makes
// concurrent use race-free; the pointer itself is plain data.
unsafe impl Send for StripedOut {}
unsafe impl Sync for StripedOut {}

impl StripedOut {
    /// The `[lo, hi)` column window of output row `row`.
    ///
    /// # Safety
    ///
    /// The caller must be the only thread accessing columns `[lo, hi)`
    /// until the pool barrier — guaranteed when `[lo, hi)` is the
    /// caller's own stripe (stripes partition the columns and each is
    /// executed by exactly one worker).
    // The `&self -> &mut` shape is the point: `StripedOut` is an
    // `UnsafeCell`-style shared-writer view, and the exclusivity clippy
    // cannot see is exactly the caller contract above.
    #[allow(clippy::mut_from_ref)]
    unsafe fn cols_mut(&self, row: usize, dim: usize, lo: usize, hi: usize) -> &mut [f32] {
        debug_assert!(lo <= hi && hi <= dim, "window inside the row");
        debug_assert!(row * dim + hi <= self.len, "window inside the output");
        // SAFETY: in-bounds by the asserts; exclusive by the caller
        // contract above.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(row * dim + lo), hi - lo) }
    }
}

/// Partitions `0..dim` into contiguous, lane-aligned column stripes:
/// at least `workers` stripes (so every worker gets one) and at least
/// enough that no stripe exceeds `max_width` (the L2 panel budget),
/// except that no stripe is narrower than `lanes` — a sub-lane stripe
/// would run entirely on the scalar tail. Every returned `(lo, hi)` is
/// non-empty, the windows are disjoint, and they cover `0..dim`.
pub(crate) fn stripe_bounds(
    dim: usize,
    lanes: usize,
    workers: usize,
    max_width: usize,
) -> Vec<(usize, usize)> {
    if dim == 0 {
        return Vec::new();
    }
    let lanes = lanes.max(1);
    let max_width = max_width.max(lanes);
    let want = workers.max(dim.div_ceil(max_width)).max(1);
    let n = want.min(dim.div_ceil(lanes));
    let w = dim.div_ceil(n).next_multiple_of(lanes);
    let mut bounds = Vec::with_capacity(n);
    let mut lo = 0;
    while lo < dim {
        let hi = (lo + w).min(dim);
        bounds.push((lo, hi));
        lo = hi;
    }
    bounds
}

/// Executes `prep` column-striped over `eff_workers` pool workers,
/// writing into the caller's zeroed `out` (length `rows * dim`). Each
/// stripe applies the full fused-epilogue contract locally: fusable rows
/// at store time, every other row after the stripe's carry replay — the
/// caller must **not** run its deferred-epilogue pass afterwards.
/// Returns the number of stripes executed. Caller guarantees shapes are
/// checked, `epi` is validated, `dim > 0`, and the plan is non-empty.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_striped(
    prep: &PreparedPlan,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
    dim: usize,
    eff_workers: usize,
    rp: &ResolvedPath,
    cols32: Option<&[u32]>,
    epi: &Epilogue,
    arena: &BufferArena,
    pool: &WorkerPool,
    out: &mut [f32],
) -> u64 {
    let lanes = rp.lanes.lanes();
    let panel = stripe_panel_cols(dim, lanes, &CacheModel::default());
    let bounds = stripe_bounds(dim, lanes, eff_workers, panel);
    let stripes = bounds.len();
    let fuse = !epi.is_noop();
    // One arena buffer holds every stripe's private scratch: a
    // stripe-width accumulator for Atomic/Carry segments plus one
    // stripe-width slot per carry segment of the plan. Stripe widths sum
    // to `dim`, so the whole checkout is `(carries + 1) * dim` floats —
    // the same order as ONE full-width carry buffer of the static path.
    let carries = prep.expected_stats().serial_row_updates;
    let mut scratch = arena.take_zeroed((carries + 1) * dim);
    let mut per_worker: Vec<Vec<(usize, usize, &mut [f32])>> =
        (0..eff_workers).map(|_| Vec::new()).collect();
    {
        let mut rest: &mut [f32] = &mut scratch;
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            let (head, tail) = rest.split_at_mut((carries + 1) * (hi - lo));
            per_worker[i % eff_workers].push((lo, hi, head));
            rest = tail;
        }
    }
    let shared = StripedOut {
        ptr: out.as_mut_ptr(),
        len: out.len(),
    };

    let jobs: Vec<ScopedJob<'_>> = per_worker
        .into_iter()
        .map(|stripes| {
            let shared = &shared;
            let epi = &*epi;
            Box::new(move || {
                for (lo, hi, scratch) in stripes {
                    run_stripe(
                        prep, a, b, dim, lo, hi, rp, cols32, epi, fuse, shared, scratch,
                    );
                }
            }) as ScopedJob<'_>
        })
        .collect();
    pool.scope_run(jobs);

    arena.put(scratch);
    stripes as u64
}

/// One stripe: the full `(thread, segment)` plan walk restricted to
/// columns `[lo, hi)`, including the stripe-local carry replay and the
/// stripe's share of the fused epilogue. Accumulation order per column
/// is exactly the sequential executor's.
#[allow(clippy::too_many_arguments)]
fn run_stripe(
    prep: &PreparedPlan,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
    dim: usize,
    lo: usize,
    hi: usize,
    rp: &ResolvedPath,
    cols32: Option<&[u32]>,
    epi: &Epilogue,
    fuse: bool,
    shared: &StripedOut,
    scratch: &mut [f32],
) {
    let sw = hi - lo;
    let (acc, carry_buf) = scratch.split_at_mut(sw);
    let mut carry_rows: Vec<usize> = Vec::new();
    for tp in &prep.plan().threads {
        for (s, seg) in tp.segments.iter().enumerate() {
            if seg.is_empty() {
                continue;
            }
            prefetch_segment_rows(rp, tp.segments.get(s + 1), a, cols32, b, lo);
            match seg.flush {
                Flush::Regular => {
                    // SAFETY: `[lo, hi)` is this worker's own stripe.
                    let dst = unsafe { shared.cols_mut(seg.row, dim, lo, hi) };
                    accumulate_segment_dispatch(rp, seg, a, cols32, b, lo, dst);
                    if fuse && prep.fused_ok[seg.row] {
                        epi.apply_cols(dst, lo);
                    }
                }
                Flush::Atomic => {
                    accumulate_segment_dispatch(rp, seg, a, cols32, b, lo, acc);
                    // SAFETY: `[lo, hi)` is this worker's own stripe.
                    let dst = unsafe { shared.cols_mut(seg.row, dim, lo, hi) };
                    for (d, &v) in dst.iter_mut().zip(&*acc) {
                        *d += v;
                    }
                }
                Flush::Carry => {
                    let slot = &mut carry_buf[carry_rows.len() * sw..][..sw];
                    accumulate_segment_dispatch(rp, seg, a, cols32, b, lo, slot);
                    carry_rows.push(seg.row);
                }
            }
        }
    }
    // Stripe-local carry replay, in the `(thread, segment)` order the
    // walk recorded them — the sequential executor's order.
    for (i, &row) in carry_rows.iter().enumerate() {
        let src = &carry_buf[i * sw..][..sw];
        // SAFETY: `[lo, hi)` is this worker's own stripe.
        let dst = unsafe { shared.cols_mut(row, dim, lo, hi) };
        for (d, &v) in dst.iter_mut().zip(src) {
            *d += v;
        }
    }
    // Stripe share of the deferred epilogue: rows not finalized at store
    // time hold their final SpMM value only after the carry replay.
    if fuse {
        for &row in prep.deferred_rows() {
            // SAFETY: `[lo, hi)` is this worker's own stripe.
            let dst = unsafe { shared.cols_mut(row as usize, dim, lo, hi) };
            epi.apply_cols(dst, lo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_partition_cover_and_align() {
        for dim in [1usize, 7, 16, 33, 128, 257, 512] {
            for lanes in [8usize, 16] {
                for workers in [1usize, 2, 4, 7] {
                    for max_width in [16usize, 4096] {
                        let bounds = stripe_bounds(dim, lanes, workers, max_width);
                        assert!(!bounds.is_empty());
                        let mut next = 0;
                        for &(lo, hi) in &bounds {
                            assert_eq!(lo, next, "contiguous");
                            assert!(hi > lo, "non-empty");
                            next = hi;
                        }
                        assert_eq!(next, dim, "covers all columns");
                        // Every stripe but the last is lane-aligned in width.
                        for &(lo, hi) in &bounds[..bounds.len() - 1] {
                            assert_eq!((hi - lo) % lanes, 0, "dim={dim} lanes={lanes}");
                        }
                    }
                }
            }
        }
        assert!(stripe_bounds(0, 8, 4, 64).is_empty());
    }

    #[test]
    fn fixed_multi_stripe_runs_are_bit_identical_to_sequential() {
        // The engine clamps the live stripe count to the machine's
        // hardware parallelism, so a 1-core CI box would only ever
        // exercise the single-stripe split through the public API. This
        // drives `run_striped` directly with explicit worker targets to
        // pin the multi-stripe splits bit-exactly against the
        // sequential oracle on any box.
        use crate::spmm::test_support::{random_dense, random_matrix};
        use crate::SpmmKernel;
        use mpspmm_sparse::AlignedVec;
        let a = random_matrix(96, 96, 700, 11);
        for dim in [128usize, 192, 512] {
            let b = random_dense(96, dim, 13);
            let plan = crate::MergePathSpmm::with_threads(24).plan(&a, dim);
            let (want, _) = crate::executor::execute_sequential(&plan, &a, &b).unwrap();
            let prep = PreparedPlan::for_matrix(plan, &a);
            let rp = crate::DataPath::Auto.resolve_fast(dim, false);
            let cols32 = prep.cols32.as_ref().map(AlignedVec::as_slice);
            let arena = BufferArena::default();
            for workers in [2usize, 3, 5, 8] {
                let mut out = vec![0.0f32; a.rows() * dim];
                let stripes = run_striped(
                    &prep,
                    &a,
                    &b,
                    dim,
                    workers,
                    &rp,
                    cols32,
                    &Epilogue::None,
                    &arena,
                    crate::pool::WorkerPool::global(),
                    &mut out,
                );
                assert!(stripes >= 2, "dim={dim} workers={workers}: split happened");
                let got = DenseMatrix::from_vec(a.rows(), dim, out).unwrap();
                assert_eq!(
                    got.max_abs_diff(&want).unwrap(),
                    0.0,
                    "dim={dim} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn bounds_split_wide_dims_past_worker_count() {
        // An L2-overflowing width forces more stripes than workers so
        // each stays panel-sized.
        let bounds = stripe_bounds(4096, 16, 2, 512);
        assert!(bounds.len() >= 8);
        assert!(bounds.iter().all(|&(lo, hi)| hi - lo <= 512));
        // A narrow dim never splits below one lane per stripe.
        let bounds = stripe_bounds(20, 16, 8, 512);
        assert!(bounds.iter().all(|&(lo, hi)| hi - lo >= 4));
        assert!(bounds.len() <= 2);
    }
}
