//! Figure 3 — the merge-path partition walkthrough.
//!
//! Reconstructs the paper's representative example: a sparse matrix with
//! 10 rows and 16 non-zeros distributed among four threads, 26 merge items
//! → 7 items per thread. Prints each thread's diagonal search, its start
//! and end coordinates, and the resulting complete/partial row work
//! assignment of Algorithm 2.

use mpspmm_core::{merge_path_search, plan_from_schedule, Flush, Schedule};
use mpspmm_sparse::CsrMatrix;

fn main() {
    println!("Figure 3: merge-path distribution of a 10-row, 16-nnz matrix over 4 threads\n");

    // Row lengths as in the figure: one long first row (8 nnz), the rest
    // sparse.
    let lengths = [8usize, 1, 2, 1, 0, 1, 0, 0, 1, 2];
    let mut triplets = Vec::new();
    for (r, &len) in lengths.iter().enumerate() {
        for c in 0..len {
            triplets.push((r, c, 1.0f32));
        }
    }
    let a = CsrMatrix::from_triplets(10, 10, &triplets).expect("valid example matrix");
    println!("row pointer RP = {:?}", a.row_ptr());
    println!(
        "merge items = rows + nnz = {} + {} = {}",
        a.rows(),
        a.nnz(),
        a.merge_items()
    );

    let threads = 4;
    let schedule = Schedule::build(&a, threads);
    println!(
        "items per thread = ceil({} / {}) = {}\n",
        a.merge_items(),
        threads,
        schedule.items_per_thread()
    );

    for (t, asg) in schedule.assignments().iter().enumerate() {
        let start_diag = asg.start.diagonal();
        let end_diag = asg.end.diagonal();
        // Re-derive the coordinates with the public search to show the
        // 2-D binary search at work.
        let s = merge_path_search(start_diag, &a.row_ptr()[1..], a.nnz());
        let e = merge_path_search(end_diag, &a.row_ptr()[1..], a.nnz());
        assert_eq!((s, e), (asg.start, asg.end));
        println!(
            "thread {}: costs [{start_diag}, {end_diag}) -> start ({}, {}), end ({}, {}) | {} rows touched, {} non-zeros | start {} end {}",
            t + 1,
            s.row,
            s.nnz,
            e.row,
            e.nnz,
            e.row - s.row + usize::from(e.nnz > a.row_ptr()[e.row]),
            asg.nnz(),
            if asg.start_is_partial(a.row_ptr()) {
                "PARTIAL"
            } else {
                "complete"
            },
            if asg.end_is_partial(a.row_ptr()) {
                "PARTIAL"
            } else {
                "complete"
            },
        );
    }

    println!("\nAlgorithm 2 lowering (segments per thread):");
    let plan = plan_from_schedule(&schedule, &a);
    plan.validate(&a)
        .expect("plan covers the matrix exactly once");
    for (t, tp) in plan.threads.iter().enumerate() {
        print!("thread {}:", t + 1);
        for seg in &tp.segments {
            print!(
                " [row {} nnz {}..{} {}]",
                seg.row,
                seg.nz_start,
                seg.nz_end,
                match seg.flush {
                    Flush::Atomic => "ATOMIC",
                    Flush::Regular => "regular",
                    Flush::Carry => "carry",
                }
            );
        }
        println!();
    }
    let stats = plan.write_stats();
    println!(
        "\ntotals: {} atomic row updates over {} non-zeros; {} regular row writes over {} non-zeros",
        stats.atomic_row_updates, stats.atomic_nnz, stats.regular_row_writes, stats.regular_nnz
    );
    println!(
        "\nNote: the paper's prose quotes thread 2's start as (1, 6) but then \
         assigns it non-zeros 7-11; we follow the self-consistent \
         Merrill-Garland convention where 7 consumed merge items land at \
         (0, 7) — the same partial-start-row situation Section III-B describes."
    );
}
