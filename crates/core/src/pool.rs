//! Persistent worker pool for the execution engine.
//!
//! The seed executor spawned (scoped) OS threads on every `spmm` call;
//! for GNN inference — thousands of small SpMM calls — the spawn/join
//! cost is pure overhead the paper's GPU kernels never pay. This module
//! keeps a process-wide set of long-lived workers and hands them batches
//! of borrowed closures per call.
//!
//! # Safety argument (the one `unsafe` block)
//!
//! [`WorkerPool::scope_run`] accepts closures borrowing the caller's
//! stack (`'scope`) and erases that lifetime to `'static` so they can sit
//! in the shared job queue. Soundness rests on a completion barrier, the
//! same argument `std::thread::scope` / crossbeam's scope make:
//!
//! 1. every submitted job decrements the shared [`Completion`] counter
//!    exactly once — even when the closure panics, because the decrement
//!    happens after `catch_unwind`;
//! 2. `scope_run` does not return (not even by panicking) before the
//!    counter reaches zero — the only panic it raises is *after* the
//!    wait, to propagate worker panics;
//! 3. therefore no erased closure (or anything it borrows) is ever used
//!    after `scope_run` returns, so the `'scope` borrows never dangle.
//!
//! Jobs must not block on other jobs of the same pool (they don't: the
//! engine's static workers only touch disjoint output slices and
//! atomics, and the stealing workers ([`crate::steal`]) only contend on
//! short mutex-guarded deque pops — a steal takes work, it never waits
//! for another job to finish), and [`WorkerPool::scope_run`] must not be
//! called from inside a pool worker (the engine never does; it is only
//! entered from caller threads).
//!
//! # Private pools and core pinning
//!
//! Historically this module held exactly one pool, sized once from
//! `MPSPMM_WORKERS`. Sharded execution ([`crate::shard`]) runs several
//! engines side by side in one process; if they all shared the global
//! queue, every shard's jobs would serialize behind every other
//! shard's — the contention the sharding exists to remove. An engine
//! built with [`crate::ExecEngine::with_worker_count`] therefore owns a
//! **private** pool ([`EnginePool::Private`]), spawned lazily on first
//! parallel run, whose size follows the engine rather than the process.
//!
//! With `MPSPMM_PIN=1`, pool workers additionally pin themselves to
//! consecutive CPU cores starting at the pool's `pin_base` (a raw
//! `sched_setaffinity` syscall on Linux/x86-64; a silent no-op
//! elsewhere, and best-effort even there — a container that restricts
//! affinity just leaves the thread unpinned). Co-resident shard engines
//! pass disjoint bases so their workers land on disjoint cores. The
//! caller thread — which executes one job of every batch — is never
//! pinned; pinning it would leak policy out of the engine into whatever
//! thread happened to submit.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A job after lifetime erasure, parked in the shared queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowed job as submitted by the engine.
pub(crate) type ScopedJob<'scope> = Box<dyn FnOnce() + Send + 'scope>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

struct Completion {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

/// A fixed set of long-lived worker threads consuming a shared job queue.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` detached workers (min 1). When the
    /// `MPSPMM_PIN=1` opt-in is set, worker `i` pins itself to CPU core
    /// `pin_base + i` (best effort — see the module docs).
    pub(crate) fn with_options(threads: usize, pin_base: usize) -> Self {
        let threads = threads.max(1);
        let pin = pin_requested();
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        });
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("mpspmm-pool-{i}"))
                .spawn(move || {
                    if pin {
                        pin_current_thread(pin_base + i);
                    }
                    worker_loop(&shared)
                })
                .expect("spawn pool worker");
        }
        Self { shared }
    }

    /// The process-wide pool, sized to the default worker count minus the
    /// caller thread (which executes one job of every batch itself).
    pub(crate) fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            WorkerPool::with_options(crate::spmm::default_workers().saturating_sub(1), 0)
        })
    }

    /// Runs every job to completion before returning; the last job runs on
    /// the calling thread (so a batch of `n` jobs occupies `n - 1` pool
    /// workers plus the caller).
    ///
    /// # Panics
    ///
    /// Panics (after all jobs finished) if any job panicked.
    pub(crate) fn scope_run(&self, mut jobs: Vec<ScopedJob<'_>>) {
        let Some(local) = jobs.pop() else { return };
        let completion = Arc::new(Completion {
            remaining: Mutex::new(jobs.len()),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for job in jobs {
                // SAFETY: see the module-level safety argument — the
                // completion barrier below keeps this function from
                // returning until the erased closure has run, so its
                // borrows outlive every use.
                let job: Job = unsafe { std::mem::transmute::<ScopedJob<'_>, Job>(job) };
                let completion = Arc::clone(&completion);
                queue.push_back(Box::new(move || {
                    if catch_unwind(AssertUnwindSafe(job)).is_err() {
                        completion.panicked.store(true, Ordering::SeqCst);
                    }
                    let mut remaining = completion.remaining.lock().unwrap();
                    *remaining -= 1;
                    if *remaining == 0 {
                        completion.done.notify_all();
                    }
                }));
            }
            self.shared.job_ready.notify_all();
        }

        let local_result = catch_unwind(AssertUnwindSafe(local));

        let mut remaining = completion.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = completion.done.wait(remaining).unwrap();
        }
        drop(remaining);

        if local_result.is_err() || completion.panicked.load(Ordering::SeqCst) {
            panic!("engine worker job panicked");
        }
    }
}

/// Which worker pool an [`crate::ExecEngine`] runs its parallel phases
/// on: the process-wide pool (the default — one queue, sized once from
/// `MPSPMM_WORKERS`), or an engine-private pool whose thread count
/// follows the engine. Private pools spawn lazily on first use, so
/// engines that only ever run single-worker (or are constructed and
/// dropped by tests) cost no threads.
pub(crate) enum EnginePool {
    /// Share the process-wide pool.
    Global,
    /// A dedicated pool of `threads` workers, pinned (under
    /// `MPSPMM_PIN=1`) to consecutive cores starting at `pin_base`.
    Private {
        threads: usize,
        pin_base: usize,
        pool: OnceLock<WorkerPool>,
    },
}

impl EnginePool {
    /// A lazily spawned private pool serving an engine of
    /// `workers`-way parallelism: the caller thread runs one job of
    /// every batch, so the pool holds `workers - 1` threads.
    pub(crate) fn private(workers: usize, pin_base: usize) -> Self {
        EnginePool::Private {
            threads: workers.saturating_sub(1).max(1),
            pin_base,
            pool: OnceLock::new(),
        }
    }

    /// The pool to submit this engine's jobs to.
    pub(crate) fn get(&self) -> &WorkerPool {
        match self {
            EnginePool::Global => WorkerPool::global(),
            EnginePool::Private {
                threads,
                pin_base,
                pool,
            } => pool.get_or_init(|| WorkerPool::with_options(*threads, *pin_base)),
        }
    }

    /// Whether this is an engine-private pool.
    pub(crate) fn is_private(&self) -> bool {
        matches!(self, EnginePool::Private { .. })
    }

    /// The base core private workers pin from (0 for the global pool).
    pub(crate) fn pin_base(&self) -> usize {
        match self {
            EnginePool::Global => 0,
            EnginePool::Private { pin_base, .. } => *pin_base,
        }
    }

    /// Re-bases the pinning window. Panics if the pool already spawned —
    /// pin placement is fixed at thread birth.
    pub(crate) fn set_pin_base(&mut self, base: usize) {
        match self {
            EnginePool::Global => {}
            EnginePool::Private { pin_base, pool, .. } => {
                assert!(
                    pool.get().is_none(),
                    "pin base must be set before the pool first runs"
                );
                *pin_base = base;
            }
        }
    }
}

impl std::fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnginePool::Global => f.write_str("Global"),
            EnginePool::Private {
                threads, pin_base, ..
            } => f
                .debug_struct("Private")
                .field("threads", threads)
                .field("pin_base", pin_base)
                .finish(),
        }
    }
}

/// Whether the process opted into core pinning (`MPSPMM_PIN=1`). Read
/// once: pool threads outlive any env mutation a test could make.
pub(crate) fn pin_requested() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| {
        std::env::var("MPSPMM_PIN").is_ok_and(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
    })
}

/// Pins the calling thread to `core` (modulo the machine's core count).
/// Returns whether the kernel accepted the mask.
///
/// No `libc` is available in this build, so on Linux/x86-64 this issues
/// the raw `sched_setaffinity` syscall (number 203) with a 1024-bit CPU
/// mask; everywhere else it is a no-op returning `false`. Failure is
/// tolerated by every caller: a cpuset-restricted container may refuse
/// cores outside its slice, and an unpinned worker is merely the
/// pre-pinning status quo.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) fn pin_current_thread(core: usize) -> bool {
    let ncpu = std::thread::available_parallelism().map_or(1, usize::from);
    let core = core % ncpu.max(1);
    let mut mask = [0u64; 16]; // 1024 CPUs, the kernel's historical cap
    mask[(core / 64) % mask.len()] = 1u64 << (core % 64);
    let ret: i64;
    // SAFETY: sched_setaffinity(0, len, ptr) reads `len` bytes from
    // `ptr` and touches no other memory; the mask outlives the call and
    // rcx/r11 are declared clobbered per the syscall ABI.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0usize,
            in("rsi") mask.len() * core::mem::size_of::<u64>(),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Non-Linux / non-x86-64 stub: pinning is unsupported, report failure.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub(crate) fn pin_current_thread(_core: usize) -> bool {
    false
}

/// Applies `f` to disjoint spans of `data` in parallel on the global
/// pool. Spans are aligned to `granule` elements (the last span takes the
/// remainder), and `f` receives each span's starting offset into `data`
/// alongside the span itself — so callers whose transform depends on the
/// position (e.g. a per-column bias on a row-major matrix with
/// `granule = cols`) stay correct under any split.
///
/// Small inputs (and single-worker processes) run inline on the caller:
/// the crossover is [`crate::tuning::PAR_APPLY_MIN_LEN`] elements, below
/// which the pool's wake/barrier cost exceeds the element-wise work.
pub fn parallel_apply_chunks<F>(data: &mut [f32], granule: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let granule = granule.max(1);
    let workers = crate::spmm::default_workers();
    let granules = data.len().div_ceil(granule);
    if workers <= 1 || data.len() < crate::tuning::PAR_APPLY_MIN_LEN || granules <= 1 {
        f(0, data);
        return;
    }
    let eff = workers.min(granules);
    let per_worker = granules.div_ceil(eff);
    let mut rest: &mut [f32] = data;
    let mut offset = 0usize;
    let mut jobs: Vec<ScopedJob<'_>> = Vec::with_capacity(eff);
    let f = &f;
    while !rest.is_empty() {
        let take = (per_worker * granule).min(rest.len());
        let (span, tail) = std::mem::take(&mut rest).split_at_mut(take);
        rest = tail;
        let start = offset;
        offset += take;
        jobs.push(Box::new(move || f(start, span)));
    }
    WorkerPool::global().scope_run(jobs);
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.job_ready.wait(queue).unwrap();
            }
        };
        // Jobs contain their own catch_unwind; a stray panic here would
        // only kill this worker, so keep the loop tight and let the
        // wrapper absorb unwinds.
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    impl WorkerPool {
        fn with_options_test(threads: usize) -> Self {
            WorkerPool::with_options(threads, 0)
        }
    }

    #[test]
    fn runs_all_jobs_and_observes_borrowed_state() {
        let pool = WorkerPool::with_options_test(3);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<ScopedJob<'_>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as ScopedJob<'_>
            })
            .collect();
        pool.scope_run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn disjoint_mutable_borrows_work() {
        let pool = WorkerPool::with_options_test(2);
        let mut data = vec![0usize; 4];
        let jobs: Vec<ScopedJob<'_>> = data
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = i + 1;
                }) as ScopedJob<'_>
            })
            .collect();
        pool.scope_run(jobs);
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reuse_across_batches() {
        let pool = WorkerPool::with_options_test(2);
        for round in 0..32 {
            let sum = AtomicUsize::new(0);
            let jobs: Vec<ScopedJob<'_>> = (0..5)
                .map(|i| {
                    let sum = &sum;
                    Box::new(move || {
                        sum.fetch_add(i, Ordering::SeqCst);
                    }) as ScopedJob<'_>
                })
                .collect();
            pool.scope_run(jobs);
            assert_eq!(sum.load(Ordering::SeqCst), 10, "round {round}");
        }
    }

    #[test]
    fn panicking_job_propagates_after_completion() {
        let pool = WorkerPool::with_options_test(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<ScopedJob<'_>> = vec![
                Box::new(|| panic!("boom")),
                Box::new(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                }),
            ];
            pool.scope_run(jobs);
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "other jobs still complete");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::with_options_test(1);
        pool.scope_run(Vec::new());
    }

    #[test]
    fn parallel_apply_chunks_covers_every_element_with_offsets() {
        // Large enough to cross PAR_APPLY_MIN_LEN, odd granule so the
        // final span is a remainder.
        let len = crate::tuning::PAR_APPLY_MIN_LEN + 37;
        let mut data = vec![0.0f32; len];
        parallel_apply_chunks(&mut data, 53, |start, span| {
            for (i, v) in span.iter_mut().enumerate() {
                *v = (start + i) as f32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f32, "element {i}");
        }
    }

    #[test]
    fn parallel_apply_chunks_inline_small_and_empty() {
        let mut small = vec![1.0f32; 8];
        parallel_apply_chunks(&mut small, 4, |_, span| {
            for v in span {
                *v += 1.0;
            }
        });
        assert!(small.iter().all(|&v| v == 2.0));
        let mut empty: Vec<f32> = Vec::new();
        parallel_apply_chunks(&mut empty, 16, |_, _| {});
    }

    #[test]
    fn global_pool_is_shared() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn private_engine_pools_are_distinct_and_lazy() {
        let a = EnginePool::private(4, 0);
        let b = EnginePool::private(2, 4);
        assert!(a.is_private() && b.is_private());
        assert_eq!(b.pin_base(), 4);
        // Lazy: no threads yet; first get() spawns, and repeated gets
        // return the same pool while two engines never share one.
        let pa = a.get() as *const WorkerPool;
        assert_eq!(pa, a.get() as *const _);
        assert_ne!(pa, b.get() as *const _);
        assert_ne!(pa, WorkerPool::global() as *const _);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<ScopedJob<'_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as ScopedJob<'_>
            })
            .collect();
        b.get().scope_run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn set_pin_base_before_spawn_only() {
        let mut p = EnginePool::private(3, 0);
        p.set_pin_base(7);
        assert_eq!(p.pin_base(), 7);
        let mut g = EnginePool::Global;
        g.set_pin_base(9); // no-op, never panics
        assert_eq!(g.pin_base(), 0);
    }

    #[test]
    fn pinning_is_best_effort_on_this_machine() {
        // Core 0 always exists; the call must not panic whatever the
        // container's cpuset policy is. On Linux/x86-64 with an
        // unrestricted mask this succeeds; elsewhere it reports false.
        let _ = pin_current_thread(0);
        let _ = pin_current_thread(usize::MAX); // wraps modulo ncpu
    }
}
