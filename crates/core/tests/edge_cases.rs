//! Edge-case integration tests for the core crate: degenerate matrices,
//! extreme thread counts, and boundary cost values.

use mpspmm_core::{
    merge_path_search, MergePathSerialFixup, MergePathSpmm, NnzSplitSpmm, RowSplitSpmm, Schedule,
    SerialSpmm, SpmmKernel,
};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};

fn kernels() -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(SerialSpmm),
        Box::new(RowSplitSpmm::with_threads(7)),
        Box::new(NnzSplitSpmm::with_ng_size(2)),
        Box::new(MergePathSpmm::with_threads(5)),
        Box::new(MergePathSerialFixup::with_threads(5)),
    ]
}

#[test]
fn empty_matrix_products_are_zero() {
    let a = CsrMatrix::<f32>::zeros(6, 6);
    let b = DenseMatrix::from_fn(6, 4, |r, c| (r + c) as f32);
    for k in kernels() {
        let (out, stats) = k.spmm_sequential(&a, &b).expect("empty product");
        assert_eq!(out.frobenius_norm(), 0.0, "{}", k.name());
        assert_eq!(stats.total_nnz(), 0, "{}", k.name());
    }
}

#[test]
fn single_entry_matrix() {
    let a = CsrMatrix::from_triplets(5, 5, &[(2, 3, 4.0f32)]).unwrap();
    let b = DenseMatrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
    for k in kernels() {
        let (out, _) = k.spmm_sequential(&a, &b).expect("product");
        for r in 0..5 {
            for c in 0..3 {
                let want = if r == 2 { 4.0 * b.get(3, c) } else { 0.0 };
                assert_eq!(out.get(r, c), want, "{} at ({r},{c})", k.name());
            }
        }
    }
}

#[test]
fn more_threads_than_merge_items() {
    let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0f32), (2, 1, 2.0)]).unwrap();
    // 5 merge items, 50 threads: most threads own nothing; result intact.
    let kernel = MergePathSpmm::with_threads(50);
    let plan = kernel.plan(&a, 2);
    plan.validate(&a).expect("valid over-threaded plan");
    let b = DenseMatrix::from_fn(3, 2, |r, _| r as f32 + 1.0);
    let (out, _) = kernel.spmm_sequential(&a, &b).expect("product");
    assert_eq!(out.get(0, 0), 1.0);
    assert_eq!(out.get(2, 0), 4.0);
}

#[test]
fn cost_one_yields_one_item_threads() {
    let a = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0f32), (1, 2, 1.0), (3, 0, 1.0)]).unwrap();
    let s = Schedule::with_cost(&a, 1, 1);
    assert_eq!(s.num_threads(), a.merge_items());
    for asg in s.assignments() {
        assert!(asg.merge_items() <= 1);
    }
}

#[test]
fn search_extremes() {
    let a = CsrMatrix::from_triplets(4, 4, &[(1, 0, 1.0f32), (1, 1, 1.0)]).unwrap();
    let start = merge_path_search(0, &a.row_ptr()[1..], a.nnz());
    assert_eq!((start.row, start.nnz), (0, 0));
    let end = merge_path_search(a.merge_items(), &a.row_ptr()[1..], a.nnz());
    assert_eq!((end.row, end.nnz), (4, 2));
}

#[test]
fn rectangular_spmm_works() {
    // The unified-engine case: A is rectangular (features matrix X).
    let x = CsrMatrix::from_triplets(4, 7, &[(0, 6, 1.0f32), (2, 0, 2.0), (3, 3, 3.0)]).unwrap();
    let w = DenseMatrix::from_fn(7, 2, |r, c| (r * 2 + c) as f32);
    let (want, _) = SerialSpmm.spmm_sequential(&x, &w).unwrap();
    for k in kernels() {
        let (got, _) = k.spmm_sequential(&x, &w).expect("rectangular product");
        assert!(got.approx_eq(&want, 1e-6).unwrap(), "{}", k.name());
    }
}

#[test]
fn wide_output_dimension() {
    // dim far above the SIMD width exercises the multi-slice paths.
    let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0f32), (1, 0, 1.0), (1, 2, 1.0)]).unwrap();
    let b = DenseMatrix::from_fn(3, 257, |r, c| ((r * 257 + c) % 13) as f32);
    let (want, _) = SerialSpmm.spmm_sequential(&a, &b).unwrap();
    for k in kernels() {
        let (got, _) = k.spmm_with_stats(&a, &b).expect("wide product");
        assert!(got.approx_eq(&want, 1e-5).unwrap(), "{}", k.name());
    }
}

#[test]
fn min_threads_floor_zero_is_clamped() {
    let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0f32)]).unwrap();
    let kernel = MergePathSpmm::new().min_threads(0);
    // Floor clamps to at least one thread.
    assert!(kernel.schedule(&a, 16).num_threads() >= 1);
}
