//! GPU machine description.

/// Parameters of the simulated SIMT (GPU) machine.
///
/// Defaults model the paper's evaluation GPU, an NVidia Quadro RTX 6000:
/// 72 SMs / 4608 CUDA cores at 1.44 GHz, 672 GB/s DRAM bandwidth, 32-lane
/// warps with independent thread scheduling (§IV-A). Latency and
/// contention constants are calibrated so the *relative* behaviour of the
/// SpMM kernels matches the paper's figures; absolute microseconds are
/// indicative only (see DESIGN.md §1 on substitutions).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Maximum resident warps per SM available to hide latency.
    pub warp_slots: usize,
    /// SIMD lanes per warp.
    pub lanes: usize,
    /// Core clock in GHz (converts cycles to microseconds).
    pub clock_ghz: f64,
    /// Warp instructions each SM can issue per cycle (aggregate over its
    /// schedulers).
    pub issue_per_cycle: f64,
    /// DRAM access latency in cycles.
    pub mem_latency: f64,
    /// L2 hit latency in cycles.
    pub l2_latency: f64,
    /// Latency of one atomic read-modify-write at the L2, in cycles.
    pub atomic_latency: f64,
    /// Serialization cost per conflicting atomic flush to the *same*
    /// output row, in cycles (models L2 bank / reservation conflicts).
    pub atomic_serialize: f64,
    /// Aggregate L2 atomic throughput in f32 elements per cycle (all
    /// flushes share the atomic pipelines).
    pub atomic_throughput_elems: f64,
    /// Flush count per output row at which that row's atomic round-trip
    /// latency doubles (hot-row queueing).
    pub atomic_contention_scale: f64,
    /// Cap on the hot-row atomic latency inflation factor.
    pub atomic_contention_cap: f64,
    /// Minimum elements charged per atomic flush (sector granularity).
    pub min_atomic_unit: f64,
    /// Fixed scheduling/teardown cycles charged to every warp's chain.
    pub warp_overhead: f64,
    /// Divergence overhead per additional logical thread packed into a
    /// warp (reconvergence cost of independent thread scheduling).
    pub divergence_per_packed: f64,
    /// L2 capacity in bytes (6 MB on the RTX 6000).
    pub l2_bytes: f64,
    /// DRAM bandwidth in bytes per core cycle
    /// (672 GB/s ÷ 1.44 GHz ≈ 467 B/cycle).
    pub dram_bytes_per_cycle: f64,
    /// Fixed kernel launch/drain overhead in cycles.
    pub launch_overhead: f64,
    /// Exponent shaping the cache-hit model for scattered `XW` row
    /// accesses: `p_hit = min(1, (l2 / working_set)^hit_exponent)`.
    /// Values below 1 credit the hub-concentrated (power-law) reuse the
    /// real access streams exhibit.
    pub hit_exponent: f64,
    /// Per-carry cost (cycles) of the serial fix-up phase beyond the
    /// vector add itself — the pointer-chase through the saved carry list.
    pub serial_fixup_latency: f64,
}

impl GpuConfig {
    /// The paper's evaluation GPU (NVidia Quadro RTX 6000).
    pub fn rtx6000() -> Self {
        Self {
            sms: 72,
            warp_slots: 32,
            lanes: 32,
            clock_ghz: 1.44,
            issue_per_cycle: 2.0,
            mem_latency: 500.0,
            l2_latency: 180.0,
            atomic_latency: 600.0,
            atomic_serialize: 8.0,
            atomic_throughput_elems: 32.0,
            atomic_contention_scale: 8.0,
            atomic_contention_cap: 4.0,
            min_atomic_unit: 8.0,
            warp_overhead: 150.0,
            divergence_per_packed: 0.05,
            l2_bytes: 6.0 * 1024.0 * 1024.0,
            dram_bytes_per_cycle: 467.0,
            launch_overhead: 6000.0,
            hit_exponent: 0.35,
            serial_fixup_latency: 90.0,
        }
    }

    /// Converts cycles to microseconds at this machine's clock.
    pub fn cycles_to_micros(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::rtx6000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx6000_matches_paper_specs() {
        let c = GpuConfig::rtx6000();
        assert_eq!(c.sms, 72);
        assert_eq!(c.lanes, 32);
        // 72 SMs × 64 cores = 4608 CUDA cores (checked via lanes×2 issue).
        assert!((c.clock_ghz - 1.44).abs() < 1e-9);
        // 672 GB/s at 1.44 GHz.
        assert!((c.dram_bytes_per_cycle * c.clock_ghz - 672.0).abs() < 10.0);
    }

    #[test]
    fn cycle_conversion() {
        let c = GpuConfig::rtx6000();
        assert!((c.cycles_to_micros(1440.0) - 1.0).abs() < 1e-9);
    }
}
