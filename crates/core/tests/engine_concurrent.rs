//! Property test for *concurrent* engine use: one shared [`ExecEngine`]
//! and shared [`PreparedPlan`]s driven from many threads at once — the
//! exact shape the serving layer (`mpspmm-serve`) puts the engine in.
//!
//! Each thread runs its own request stream against one of several shared
//! graphs and compares every result to the sequential oracle computed up
//! front. This pins down that the worker pool, the plan cache, and the
//! prepared-plan execution path are safe to share: no cross-talk between
//! interleaved jobs, no torn outputs, and cache hits from racing threads
//! return plans that compute the same answer.

use std::sync::Arc;
use std::thread;

use mpspmm_core::executor::execute_sequential;
use mpspmm_core::{ExecEngine, MergePathSpmm, PreparedPlan, SpmmKernel};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random square CSR matrix with a heavy first row (to force partial /
/// atomic segments) and `streams` dense operands derived from `seed`.
fn random_graph(
    rows: usize,
    nnz: usize,
    dim: usize,
    streams: usize,
    seed: u64,
) -> (CsrMatrix<f32>, Vec<DenseMatrix<f32>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coords = std::collections::BTreeSet::new();
    for c in 0..(nnz / 3).min(rows) {
        coords.insert((0usize, c));
    }
    while coords.len() < nnz.min(rows * rows) {
        coords.insert((rng.gen_range(0..rows), rng.gen_range(0..rows)));
    }
    let triplets: Vec<(usize, usize, f32)> = coords
        .into_iter()
        .map(|(r, c)| (r, c, rng.gen_range(-2.0..2.0)))
        .collect();
    let a = CsrMatrix::from_triplets(rows, rows, &triplets).unwrap();
    let blocks = (0..streams)
        .map(|s| {
            let mut frng = SmallRng::seed_from_u64(seed ^ (0x5EED + s as u64));
            DenseMatrix::from_fn(rows, dim, |_, _| frng.gen_range(-1.0..1.0))
        })
        .collect();
    (a, blocks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N threads × M graphs × K requests each, all through ONE engine and
    /// ONE prepared plan per graph, every answer checked against the
    /// oracle computed before any thread started.
    #[test]
    fn shared_engine_is_correct_under_concurrent_use(
        rows in 4usize..40,
        fill in 1usize..5,
        workers in 1usize..5,
        seed in any::<u64>(),
    ) {
        const THREADS: usize = 6;
        const GRAPHS: usize = 3;
        const REQUESTS_PER_THREAD: usize = 4;

        let kernel = MergePathSpmm::with_threads(7);
        let engine = Arc::new(ExecEngine::new(workers));
        let nnz = (rows * fill).min(rows * rows);

        // Build the shared graphs, plans, and per-stream oracles.
        let mut shared = Vec::with_capacity(GRAPHS);
        for g in 0..GRAPHS {
            let dim = [3usize, 8, 17][g % 3];
            let (a, blocks) = random_graph(rows, nnz, dim, THREADS, seed ^ g as u64);
            let plan = kernel.plan(&a, dim);
            let oracles: Vec<DenseMatrix<f32>> = blocks
                .iter()
                .map(|b| execute_sequential(&plan, &a, b).unwrap().0)
                .collect();
            let prep = Arc::new(PreparedPlan::for_matrix(plan, &a));
            shared.push(Arc::new((a, prep, blocks, oracles)));
        }
        let shared = Arc::new(shared);

        let failures: Vec<String> = thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let engine = Arc::clone(&engine);
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || -> Result<(), String> {
                        for r in 0..REQUESTS_PER_THREAD {
                            // Every thread walks the graphs in a different
                            // order so distinct plans interleave in the pool.
                            let g = (t + r) % GRAPHS;
                            let (a, prep, blocks, oracles) = &*shared[g];
                            let b = &blocks[t];
                            let want = &oracles[t];
                            let (got, _) = engine
                                .execute_prepared(prep, a, b)
                                .map_err(|e| format!("thread {t} graph {g}: {e}"))?;
                            let scale = 1.0f32.max(want.frobenius_norm());
                            let diff = got.max_abs_diff(want).unwrap();
                            if diff > 1e-4 * scale {
                                return Err(format!(
                                    "thread {t} req {r} graph {g}: diff {diff} \
                                     exceeds tolerance (scale {scale})"
                                ));
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("worker thread panicked").err())
                .collect()
        });
        prop_assert!(failures.is_empty(), "{}", failures.join("\n"));
    }

    /// Racing threads hammering `plan_cached` for the same key must all
    /// get functionally identical plans, and the cache must end up with
    /// exactly one entry per distinct key regardless of interleaving.
    #[test]
    fn racing_plan_cache_lookups_converge(
        rows in 4usize..32,
        seed in any::<u64>(),
    ) {
        const THREADS: usize = 8;
        let kernel = MergePathSpmm::with_threads(5);
        let engine = Arc::new(ExecEngine::new(2));
        let nnz = (rows * 3).min(rows * rows);
        let (a, blocks) = random_graph(rows, nnz, 9, 1, seed);
        let b = &blocks[0];
        let plan = kernel.plan(&a, 9);
        let (want, _) = execute_sequential(&plan, &a, b).unwrap();
        let scale = 1.0f32.max(want.frobenius_norm());

        thread::scope(|scope| {
            for _ in 0..THREADS {
                let engine = Arc::clone(&engine);
                let (kernel, a, b, want) = (&kernel, &a, b, &want);
                scope.spawn(move || {
                    for _ in 0..3 {
                        let prep = engine.plan_cached(kernel, a, 9, 0);
                        let (got, _) = engine.execute_prepared(&prep, a, b).unwrap();
                        assert!(got.max_abs_diff(want).unwrap() <= 1e-4 * scale);
                    }
                });
            }
        });

        let stats = engine.stats();
        prop_assert_eq!(stats.cached_plans, 1, "one key, one resident plan");
        // Every lookup either hit or raced a miss; all are accounted for.
        prop_assert_eq!(
            stats.plan_cache_hits + stats.plan_cache_misses,
            (THREADS * 3) as u64
        );
        prop_assert!(stats.plan_cache_misses >= 1);
    }
}
