//! Property-based tests for the merge-path decomposition and every SpMM
//! kernel: arbitrary sparse matrices, arbitrary thread counts, checked
//! against the dense oracle and the plan-validity rules.

use mpspmm_core::{
    merge_path_search, plan_from_schedule, MergePathSerialFixup, MergePathSpmm, NnzSplitSpmm,
    RowSplitSpmm, Schedule, SerialSpmm, SpmmKernel,
};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};
use proptest::collection::btree_set;
use proptest::prelude::*;

fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix<f32>> {
    (2..=max_dim).prop_flat_map(move |n| {
        btree_set((0..n, 0..n), 0..=max_nnz.min(n * n)).prop_map(move |coords| {
            let triplets: Vec<(usize, usize, f32)> = coords
                .into_iter()
                .enumerate()
                .map(|(k, (r, c))| (r, c, ((k % 13) as f32 - 6.0) * 0.5))
                .collect();
            CsrMatrix::from_triplets(n, n, &triplets).unwrap()
        })
    })
}

fn dense_oracle(a: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        let row = a.row(r);
        for (&c, &v) in row.cols.iter().zip(row.vals) {
            for d in 0..b.cols() {
                out.set(r, d, out.get(r, d) + v * b.get(c, d));
            }
        }
    }
    out
}

fn input_for(a: &CsrMatrix<f32>, dim: usize) -> DenseMatrix<f32> {
    DenseMatrix::from_fn(a.cols(), dim, |r, c| {
        ((r * 7 + c * 3) % 11) as f32 * 0.25 - 1.0
    })
}

proptest! {
    #[test]
    fn search_is_consistent_with_item_consumption(
        m in arb_csr(24, 80),
        frac in 0.0f64..=1.0,
    ) {
        let nnz = m.nnz();
        let merge_items = m.merge_items();
        let d = (frac * merge_items as f64) as usize;
        let coord = merge_path_search(d, &m.row_ptr()[1..], nnz);
        prop_assert_eq!(coord.row + coord.nnz, d);
        // All non-zeros before coord.nnz belong to rows < coord.row + 1:
        prop_assert!(coord.nnz >= m.row_ptr()[coord.row]);
        if coord.row < m.rows() {
            prop_assert!(coord.nnz <= m.row_ptr()[coord.row + 1]);
        }
    }

    #[test]
    fn schedule_partitions_tile_exactly(m in arb_csr(24, 80), threads in 1usize..40) {
        let s = Schedule::build(&m, threads);
        // Contiguity + completeness.
        prop_assert_eq!(s.assignments()[0].start.diagonal(), 0);
        for w in s.assignments().windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        prop_assert_eq!(
            s.assignments().last().unwrap().end.diagonal(),
            m.merge_items()
        );
        // Load bound: nobody exceeds the per-thread budget.
        for a in s.assignments() {
            prop_assert!(a.merge_items() <= s.items_per_thread());
        }
        // All non-zeros distributed exactly once.
        let nnz_sum: usize = s.assignments().iter().map(|a| a.nnz()).sum();
        prop_assert_eq!(nnz_sum, m.nnz());
    }

    #[test]
    fn mergepath_plan_is_valid_and_correct(
        m in arb_csr(20, 60),
        threads in 1usize..32,
        dim in 1usize..9,
    ) {
        let kernel = MergePathSpmm::with_threads(threads);
        let plan = kernel.plan(&m, dim);
        prop_assert!(plan.validate(&m).is_ok());
        let b = input_for(&m, dim);
        let oracle = dense_oracle(&m, &b);
        let (seq, stats) = kernel.spmm_sequential(&m, &b).unwrap();
        prop_assert!(seq.max_abs_diff(&oracle).unwrap() <= 1e-4);
        prop_assert_eq!(stats.total_nnz(), m.nnz());
        let (par, _) = kernel.spmm_with_stats(&m, &b).unwrap();
        prop_assert!(par.max_abs_diff(&oracle).unwrap() <= 1e-4);
    }

    #[test]
    fn all_kernels_agree_with_oracle(m in arb_csr(16, 48), dim in 1usize..6) {
        let b = input_for(&m, dim);
        let oracle = dense_oracle(&m, &b);
        let kernels: Vec<Box<dyn SpmmKernel>> = vec![
            Box::new(SerialSpmm),
            Box::new(RowSplitSpmm::with_threads(5)),
            Box::new(NnzSplitSpmm::with_ng_size(3)),
            Box::new(MergePathSpmm::with_threads(6)),
            Box::new(MergePathSerialFixup::with_threads(6)),
        ];
        for k in &kernels {
            let plan = k.plan(&m, dim);
            prop_assert!(plan.validate(&m).is_ok(), "{} invalid plan", k.name());
            let (out, stats) = k.spmm_sequential(&m, &b).unwrap();
            prop_assert!(
                out.max_abs_diff(&oracle).unwrap() <= 1e-4,
                "{} diverges",
                k.name()
            );
            prop_assert_eq!(stats.total_nnz(), m.nnz());
        }
    }

    #[test]
    fn mergepath_atomics_at_most_two_per_thread(
        m in arb_csr(20, 60),
        threads in 1usize..32,
    ) {
        let plan = MergePathSpmm::with_threads(threads).plan(&m, 16);
        for tp in &plan.threads {
            let atomics = tp
                .segments
                .iter()
                .filter(|s| s.flush == mpspmm_core::Flush::Atomic && !s.is_empty())
                .count();
            prop_assert!(atomics <= 2);
        }
    }

    #[test]
    fn gnnadvisor_atomic_fraction_is_one(m in arb_csr(20, 60), ng in 1usize..8) {
        let plan = NnzSplitSpmm::with_ng_size(ng).plan(&m, 16);
        let stats = plan.write_stats();
        if m.nnz() > 0 {
            prop_assert!((stats.atomic_update_fraction() - 1.0).abs() < 1e-12);
            prop_assert_eq!(stats.atomic_nnz, m.nnz());
        }
    }

    #[test]
    fn serial_fixup_never_atomic(m in arb_csr(20, 60), threads in 1usize..32) {
        let plan = MergePathSerialFixup::with_threads(threads).plan(&m, 16);
        prop_assert_eq!(plan.write_stats().atomic_row_updates, 0);
        prop_assert!(plan.validate(&m).is_ok());
    }

    #[test]
    fn schedule_is_deterministic_and_serializable(
        m in arb_csr(16, 40),
        threads in 1usize..16,
    ) {
        let s1 = Schedule::build(&m, threads);
        let s2 = Schedule::build(&m, threads);
        prop_assert_eq!(&s1, &s2);
        let plan1 = plan_from_schedule(&s1, &m);
        let plan2 = plan_from_schedule(&s2, &m);
        prop_assert_eq!(plan1, plan2);
    }

    #[test]
    fn spmv_matches_spmm_single_column(m in arb_csr(16, 48), threads in 1usize..16) {
        let x: Vec<f32> = (0..m.cols()).map(|i| (i as f32 * 0.3).cos()).collect();
        let y = mpspmm_core::spmv::merge_path_spmv(&m, &x, threads).unwrap();
        let b = DenseMatrix::from_fn(m.cols(), 1, |r, _| x[r]);
        let (c, _) = SerialSpmm.spmm_sequential(&m, &b).unwrap();
        for (r, &yr) in y.iter().enumerate() {
            prop_assert!((yr - c.get(r, 0)).abs() <= 1e-4);
        }
    }
}
