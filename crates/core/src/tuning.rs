//! Thread-count and SIMD-mapping heuristics (§III-C of the paper).
//!
//! The SpMM kernel's dense dimension `d` must be mapped onto the SIMD width
//! of the machine (32 lanes per warp on the evaluated GPU). §III-C
//! distinguishes three regimes — `d == lanes`, `d > lanes` (replicate each
//! logical thread across several warps), and `d < lanes` (pack several
//! logical threads into one warp) — and ties the *merge-path cost* (work
//! per thread) to the regime via an empirical table (Figure 6).

/// Minimum logical-thread floor for small graphs (§III-C1: "When the
/// computed threads are below a threshold (e.g., 1024), the total thread
/// count is set to the threshold value").
pub const MIN_THREADS: usize = 1024;

/// Degree-adaptive dispatch threshold of the CPU data path: segments with
/// at most this many non-zeros run the gather microkernel; longer
/// segments run the streaming panel kernel. Power-law graphs put most
/// rows (but few non-zeros) below this line, which is exactly the regime
/// where per-panel loop restarts cost more than the segment's arithmetic.
pub const GATHER_MAX_NNZ: usize = 4;

/// Stealable chunks carved per worker by the work-stealing scheduler.
///
/// The plan is pre-split into `workers × this` nnz-balanced
/// [`ChunkDesc`](crate::ChunkDesc)s (capped at one logical thread per
/// chunk): enough granularity that an idle worker can always relieve the
/// critical path, few enough that deque traffic stays negligible next to
/// a chunk's arithmetic. 4–8 is the classic work-stealing sweet spot; 6
/// measured best on the power-law suite.
pub const STEAL_CHUNKS_PER_WORKER: usize = 6;

/// Static-span nnz skew (max/mean, see
/// [`static_span_skew`](crate::static_span_skew)) above which
/// [`SchedPolicy::Auto`](crate::SchedPolicy) switches from the static
/// scheduler to work stealing. Merge-path plans sit at ~1.0–1.13 and stay
/// on the bit-identical static fast path; clustered row-split plans on
/// power-law graphs exceed this by multiples.
pub const STEAL_SKEW_THRESHOLD: f64 = 1.25;

/// Register-tile height of the engine's dense GEMM microkernel: this
/// many `A` rows share every loaded `B` row panel, so each `B` element
/// feeds `GEMM_MR` fused multiply-adds instead of one. Four rows ×
/// 16 lanes = 64 live f32 accumulators, which fits the 16 (32 with
/// AVX-512) architectural vector registers with spill-free headroom.
pub const GEMM_MR: usize = 4;

/// Rows per work unit of the engine's parallel GEMM. Bands are dealt to
/// pool workers (self-scheduled under `Auto`/`Stealing`, contiguous
/// spans under `Static`); 32 rows amortize the per-band dispatch while
/// keeping `workers × several` bands available for balancing on
/// GNN-sized matrices.
pub const GEMM_BAND_ROWS: usize = 32;

/// Below this many f32 elements an element-wise pass
/// ([`crate::parallel_apply_chunks`]) runs inline on the caller: a 16 K
/// element sweep finishes in a few microseconds, under the pool's
/// dispatch-plus-barrier cost.
pub const PAR_APPLY_MIN_LEN: usize = 1 << 14;

/// Tiny CPU cache model the plan uses to size feature-dimension panels.
///
/// Only order-of-magnitude accuracy matters: the panel must keep a
/// segment's working set — a few gathered `B` row panels plus the
/// accumulator row — resident in L1 while leaving headroom for the
/// streamed index/value arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheModel {
    /// Per-core L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// Per-core L2 capacity in bytes (reserved for multi-level blocking).
    pub l2_bytes: usize,
}

impl Default for CacheModel {
    /// Conservative defaults (32 KiB L1d / 1 MiB L2) that fit every
    /// mainstream x86-64 and AArch64 core of the last decade.
    fn default() -> Self {
        Self {
            l1_bytes: 32 * 1024,
            l2_bytes: 1024 * 1024,
        }
    }
}

/// Number of distinct `B` rows the panel model budgets as simultaneously
/// hot during one segment sweep.
const PANEL_RESIDENT_ROWS: usize = 8;

/// Column-panel width (in f32 columns) for sweeping a `dim`-wide dense
/// operand with `lanes`-wide accumulator blocks.
///
/// Model: reserve half of L1 for gathered `B` row panels (the other half
/// absorbs the streamed indices/values and the destination row), assume
/// [`PANEL_RESIDENT_ROWS`] rows hot at a time, and round the resulting
/// width down to a multiple of `lanes` so panels never split a wide
/// block. The result is clamped to cover `dim` in one panel when `dim`
/// already fits (the common GNN case — hidden widths of 16–128 are far
/// below the ~512-column panel a 32 KiB L1 yields).
///
/// # Panics
///
/// Panics if `lanes == 0`.
pub fn panel_cols(dim: usize, lanes: usize, model: &CacheModel) -> usize {
    assert!(lanes > 0, "lane width must be positive");
    let budget = model.l1_bytes / 2;
    let raw = budget / (PANEL_RESIDENT_ROWS * std::mem::size_of::<f32>());
    let aligned = (raw / lanes).max(1) * lanes;
    aligned.min(dim.next_multiple_of(lanes).max(lanes))
}

/// SIMD lanes per warp on the evaluated GPU (NVidia, 32-lane warps).
pub const GPU_SIMD_LANES: usize = 32;

/// How logical threads map onto SIMD units for a given dense dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdMapping {
    /// SIMD lanes per hardware unit (warp).
    pub lanes: usize,
    /// Dense dimension size being processed.
    pub dim: usize,
    /// Number of warps each logical thread is replicated across
    /// (`> 1` when `dim > lanes`; §III-C2).
    pub warps_per_thread: usize,
    /// Number of logical threads packed into each warp
    /// (`> 1` when `dim < lanes`; §III-C3).
    pub threads_per_warp: usize,
}

impl SimdMapping {
    /// Computes the mapping for dense dimension `dim` on `lanes`-wide SIMD
    /// units.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `lanes == 0`.
    pub fn for_dim(dim: usize, lanes: usize) -> Self {
        assert!(dim > 0, "dimension size must be positive");
        assert!(lanes > 0, "SIMD width must be positive");
        if dim >= lanes {
            Self {
                lanes,
                dim,
                warps_per_thread: dim.div_ceil(lanes),
                threads_per_warp: 1,
            }
        } else {
            Self {
                lanes,
                dim,
                warps_per_thread: 1,
                threads_per_warp: (lanes / dim).max(1),
            }
        }
    }

    /// Number of warps needed to run `logical_threads` threads under this
    /// mapping.
    pub fn warps_for_threads(&self, logical_threads: usize) -> usize {
        if self.warps_per_thread > 1 {
            logical_threads * self.warps_per_thread
        } else {
            logical_threads.div_ceil(self.threads_per_warp)
        }
    }

    /// Fraction of SIMD lanes doing useful work in each warp, in `(0, 1]`.
    pub fn lane_utilization(&self) -> f64 {
        if self.dim >= self.lanes {
            // Last replica warp may be partially filled.
            let used = self.dim as f64;
            let provisioned = (self.warps_per_thread * self.lanes) as f64;
            used / provisioned
        } else {
            (self.threads_per_warp * self.dim) as f64 / self.lanes as f64
        }
    }
}

/// The empirically best merge-path cost per dimension size (Figure 6 of
/// the paper, sweeping costs 2–50 at each dimension).
///
/// * dim 128 → 50 (threads already replicated 4× across warps; favour
///   fewer atomics),
/// * dim 64 → 35, dim 32 → 30, dim 16 → 20, dims 8 and 4 → 15 (buy
///   parallelism with some extra atomics),
/// * dim 2 → 50 (extreme thread divergence favours fewer warps).
///
/// Dimensions between table entries use the nearest entry (ties toward the
/// larger dimension).
pub fn default_cost_for_dim(dim: usize) -> usize {
    const TABLE: [(usize, usize); 7] = [
        (2, 50),
        (4, 15),
        (8, 15),
        (16, 20),
        (32, 30),
        (64, 35),
        (128, 50),
    ];
    assert!(dim > 0, "dimension size must be positive");
    let mut best = TABLE[0];
    let mut best_dist = usize::MAX;
    for &(d, cost) in &TABLE {
        let dist = d.abs_diff(dim);
        if dist < best_dist || (dist == best_dist && d > best.0) {
            best = (d, cost);
            best_dist = dist;
        }
    }
    best.1
}

/// Number of logical threads for a given merge-path length and cost,
/// applying the small-graph floor (§III-C1).
pub fn thread_count(merge_items: usize, cost: usize, min_threads: usize) -> usize {
    assert!(cost > 0, "merge-path cost must be positive");
    let computed = merge_items.div_ceil(cost).max(1);
    if computed < min_threads {
        min_threads.min(merge_items).max(1)
    } else {
        computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_matches_lanes() {
        let m = SimdMapping::for_dim(32, 32);
        assert_eq!(m.warps_per_thread, 1);
        assert_eq!(m.threads_per_warp, 1);
        assert_eq!(m.warps_for_threads(100), 100);
        assert_eq!(m.lane_utilization(), 1.0);
    }

    #[test]
    fn mapping_dim_greater_than_lanes() {
        // §III-C2: "If the dimension size is 64, each thread is executed
        // using two warps."
        let m = SimdMapping::for_dim(64, 32);
        assert_eq!(m.warps_per_thread, 2);
        assert_eq!(m.warps_for_threads(10), 20);
        let m = SimdMapping::for_dim(128, 32);
        assert_eq!(m.warps_per_thread, 4);
        // Non-multiple: 48 dims → 2 warps, 75% utilization.
        let m = SimdMapping::for_dim(48, 32);
        assert_eq!(m.warps_per_thread, 2);
        assert!((m.lane_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mapping_dim_smaller_than_lanes() {
        // §III-C3: "If the dimension size is 16, two threads execute on a
        // single warp."
        let m = SimdMapping::for_dim(16, 32);
        assert_eq!(m.threads_per_warp, 2);
        assert_eq!(m.warps_for_threads(10), 5);
        // §V: "At the dimension size of 2, each SIMD unit is mapped with 16
        // threads."
        let m = SimdMapping::for_dim(2, 32);
        assert_eq!(m.threads_per_warp, 16);
        assert_eq!(m.lane_utilization(), 1.0);
    }

    #[test]
    fn default_costs_match_figure6() {
        assert_eq!(default_cost_for_dim(128), 50);
        assert_eq!(default_cost_for_dim(64), 35);
        assert_eq!(default_cost_for_dim(32), 30);
        assert_eq!(default_cost_for_dim(16), 20);
        assert_eq!(default_cost_for_dim(8), 15);
        assert_eq!(default_cost_for_dim(4), 15);
        assert_eq!(default_cost_for_dim(2), 50);
        // Off-table dimension snaps to the nearest entry.
        assert_eq!(default_cost_for_dim(24), 30);
        assert_eq!(default_cost_for_dim(256), 50);
    }

    #[test]
    fn panel_model_aligns_and_clamps() {
        let m = CacheModel::default();
        // 32 KiB L1 → 16 KiB row budget / (8 rows × 4 B) = 512 columns.
        assert_eq!(panel_cols(4096, 16, &m), 512);
        assert_eq!(panel_cols(4096, 8, &m), 512);
        // GNN-sized dims fit in a single panel (rounded up to the lane
        // width so the wide block never splits).
        assert_eq!(panel_cols(16, 16, &m), 16);
        assert_eq!(panel_cols(32, 16, &m), 32);
        assert_eq!(panel_cols(20, 16, &m), 32);
        assert_eq!(panel_cols(0, 8, &m), 8);
        // A tiny L1 still yields at least one lane-aligned panel.
        let tiny = CacheModel {
            l1_bytes: 64,
            l2_bytes: 1024,
        };
        assert_eq!(panel_cols(4096, 16, &tiny), 16);
    }

    #[test]
    fn thread_count_applies_floor() {
        // Plenty of work: cost division wins.
        assert_eq!(thread_count(100_000, 20, MIN_THREADS), 5_000);
        // Small graph: floor of MIN_THREADS.
        assert_eq!(thread_count(10_000, 20, MIN_THREADS), MIN_THREADS);
        // Tiny graph: floor clamped to merge items.
        assert_eq!(thread_count(100, 20, MIN_THREADS), 100);
        assert_eq!(thread_count(0, 20, MIN_THREADS), 1);
    }
}
