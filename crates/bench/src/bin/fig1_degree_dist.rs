//! Figure 1 — power-law degree distributions.
//!
//! The paper's Figure 1 plots the degree distributions of graphs from
//! diverse application domains to motivate the load-imbalance problem.
//! This harness prints the degree CCDF (log-log series) and the skew
//! statistics for representative Type I (power-law) and Type II
//! (structured) graphs; on log-log axes the Type I series form the
//! straight-line tails of Figure 1 while Type II series collapse.

use mpspmm_bench::{banner, full_size_requested, load};
use mpspmm_graphs::find_dataset;
use mpspmm_sparse::stats::{degree_ccdf, fit_powerlaw_alpha, DegreeStats};

fn main() {
    let full = full_size_requested();
    banner(
        "Figure 1",
        "degree distributions: power-law tails vs structured graphs",
        full,
    );

    for name in ["Cora", "Pubmed", "Nell", "soc-BlogCatalog", "Yeast", "DD"] {
        let spec = find_dataset(name).expect("dataset in Table II");
        let (spec, a) = load(spec, full);
        let stats = DegreeStats::compute(&a);
        let alpha = fit_powerlaw_alpha(&a, 2);
        println!(
            "\n{name} [{}]: avg deg {:.1}, max deg {}, evil-row ratio {:.0}, gini {:.3}{}",
            spec.class,
            stats.avg,
            stats.max,
            stats.evil_row_ratio(),
            stats.gini,
            match alpha {
                Some(al) => format!(", fitted power-law alpha {al:.2}"),
                None => String::new(),
            }
        );
        // Decimated CCDF series: (degree, P[deg >= d]) at log-spaced points.
        let ccdf = degree_ccdf(&a);
        let mut next = 1usize;
        print!("  ccdf:");
        for &(d, p) in &ccdf {
            if d >= next {
                print!(" ({d}, {p:.4})");
                next = (next * 2).max(d * 2);
            }
        }
        if let Some(&(d, p)) = ccdf.last() {
            print!(" ({d}, {p:.6})");
        }
        println!();
    }

    println!(
        "\nPaper shape: Type I graphs show straight-line (power-law) CCDF \
         tails spanning orders of magnitude in degree; Type II graphs cut \
         off after at most a few tens."
    );
}
