use crate::{CooMatrix, DenseMatrix, SparseFormatError};

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// CSR is the format the paper's kernels consume directly: the *row pointer*
/// array (`RP` in the paper, [`row_ptr`](Self::row_ptr) here) encodes where
/// each row starts inside the *column index* array (`CP`,
/// [`col_indices`](Self::col_indices)) and the parallel value array.
///
/// # Invariants
///
/// Maintained by every constructor and relied upon by the kernels:
///
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == nnz`, and `row_ptr` is non-decreasing;
/// * `col_indices.len() == values.len() == nnz`;
/// * every column index is `< cols`;
/// * column indices within each row are strictly increasing (sorted,
///   duplicate-free).
///
/// # Example
///
/// ```
/// use mpspmm_sparse::CsrMatrix;
///
/// let m = CsrMatrix::<f32>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)])?;
/// assert_eq!(m.row(0).cols, &[0]);
/// assert_eq!(m.row(1).vals, &[3.0]);
/// # Ok::<(), mpspmm_sparse::SparseFormatError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<T>,
}

impl<T> CsrMatrix<T> {
    /// Creates a CSR matrix from raw arrays, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns a [`SparseFormatError`] describing the first violated
    /// invariant (row pointer shape/monotonicity, index/value length
    /// mismatch, out-of-bounds column, or unsorted row).
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseFormatError> {
        validate_parts(rows, cols, &row_ptr, &col_indices, values.len())?;
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_indices,
            values,
        })
    }

    /// Creates a CSR matrix from raw arrays **without** release-mode
    /// validation.
    ///
    /// This is the constructor of hot assembly paths whose invariants
    /// hold by construction — the SpGEMM engine stitches per-chunk row
    /// segments that each worker emitted sorted and in-bounds, and
    /// re-running the O(nnz) checks of [`CsrMatrix::new`] on every
    /// stitch would double the cost of the (memcpy-bound) phase.
    ///
    /// Every invariant is still asserted in debug builds, so the tier-1
    /// debug test legs exercise all callers under full validation. This
    /// function is *not* `unsafe`: violating the contract in release
    /// cannot break memory safety (this crate forbids `unsafe` and all
    /// consumers index through bounds-checked slices) — it produces
    /// wrong results or downstream panics instead.
    pub fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(
            validate_parts(rows, cols, &row_ptr, &col_indices, values.len()),
            Ok(()),
            "from_parts_unchecked caller violated a CSR invariant"
        );
        Self {
            rows,
            cols,
            row_ptr,
            col_indices,
            values,
        }
    }

    /// Creates an empty (all-zero) matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array (`RP` in the paper), of length `rows + 1`.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array (`CP` in the paper), of length `nnz`.
    pub fn col_indices(&self) -> &[usize] {
        &self.col_indices
    }

    /// The stored values, of length `nnz`.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the stored values (structure stays fixed).
    ///
    /// Useful for re-weighting edges (e.g. GCN normalization) without
    /// rebuilding the sparsity pattern.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Number of non-zeros in row `row` (its degree for adjacency matrices).
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_ptr[row + 1] - self.row_ptr[row]
    }

    /// A view of row `row`: its column indices and values.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> CsrRow<'_, T> {
        let (start, end) = (self.row_ptr[row], self.row_ptr[row + 1]);
        CsrRow {
            index: row,
            cols: &self.col_indices[start..end],
            vals: &self.values[start..end],
        }
    }

    /// Iterates over all rows in order.
    pub fn iter_rows(&self) -> CsrRowIter<'_, T> {
        CsrRowIter {
            matrix: self,
            next: 0,
        }
    }

    /// The length of the merge path for this matrix: `rows + nnz`.
    ///
    /// This is `merge_items` in Algorithm 1 of the paper — the total amount
    /// of "work" (consuming a row terminator or a non-zero) that merge-path
    /// partitions equitably among threads.
    pub fn merge_items(&self) -> usize {
        self.rows + self.nnz()
    }

    /// Row lengths (degrees) as a vector; convenience for statistics.
    pub fn row_lengths(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// FNV-1a hash of the sparsity *structure* — shape, row pointer, and
    /// column indices, but **not** the stored values.
    ///
    /// Two matrices with the same structure hash (and, outside hash
    /// collisions, only those) admit the same merge-path plan: planning
    /// reads only `row_ptr`/`col_indices`, so a value-only update (edge
    /// re-weighting, GCN renormalization) keeps every prepared plan
    /// valid. Batch-shape-class plan caching keys on this.
    pub fn structure_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(FNV_PRIME);
        };
        mix(self.rows as u64);
        mix(self.cols as u64);
        for &p in &self.row_ptr {
            mix(p as u64);
        }
        for &c in &self.col_indices {
            mix(c as u64);
        }
        h
    }

    /// Consumes the matrix and returns its raw parts
    /// `(rows, cols, row_ptr, col_indices, values)`.
    pub fn into_raw_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<T>) {
        (
            self.rows,
            self.cols,
            self.row_ptr,
            self.col_indices,
            self.values,
        )
    }
}

/// Checks every CSR invariant over borrowed arrays; shared by
/// [`CsrMatrix::new`] (release path) and the debug assertion of
/// [`CsrMatrix::from_parts_unchecked`].
fn validate_parts(
    rows: usize,
    cols: usize,
    row_ptr: &[usize],
    col_indices: &[usize],
    values_len: usize,
) -> Result<(), SparseFormatError> {
    if row_ptr.len() != rows + 1 {
        return Err(SparseFormatError::RowPointerLength {
            rows,
            len: row_ptr.len(),
        });
    }
    if row_ptr[0] != 0 {
        return Err(SparseFormatError::RowPointerStart { first: row_ptr[0] });
    }
    for i in 0..rows {
        if row_ptr[i] > row_ptr[i + 1] {
            return Err(SparseFormatError::RowPointerNotMonotonic { row: i });
        }
    }
    if col_indices.len() != values_len {
        return Err(SparseFormatError::IndexValueLength {
            indices: col_indices.len(),
            values: values_len,
        });
    }
    if row_ptr[rows] != values_len {
        return Err(SparseFormatError::RowPointerEnd {
            last: row_ptr[rows],
            nnz: values_len,
        });
    }
    for (position, &c) in col_indices.iter().enumerate() {
        if c >= cols {
            return Err(SparseFormatError::ColumnOutOfBounds {
                position,
                column: c,
                cols,
            });
        }
    }
    for row in 0..rows {
        let (start, end) = (row_ptr[row], row_ptr[row + 1]);
        for k in start + 1..end {
            if col_indices[k - 1] >= col_indices[k] {
                return Err(SparseFormatError::UnsortedRow { row, position: k });
            }
        }
    }
    Ok(())
}

impl<T: Copy> CsrMatrix<T> {
    /// Builds a CSR matrix from unsorted `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are rejected (the generators never produce
    /// them; accepting silently-summed duplicates would mask generator
    /// bugs).
    ///
    /// # Errors
    ///
    /// Returns an error if any coordinate is out of bounds or duplicated.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, T)],
    ) -> Result<Self, SparseFormatError> {
        for (position, &(r, c, _)) in triplets.iter().enumerate() {
            if r >= rows {
                return Err(SparseFormatError::RowOutOfBounds {
                    position,
                    row: r,
                    rows,
                });
            }
            if c >= cols {
                return Err(SparseFormatError::ColumnOutOfBounds {
                    position,
                    column: c,
                    cols,
                });
            }
        }
        let mut sorted: Vec<(usize, usize, T)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        for (k, w) in sorted.windows(2).enumerate() {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                return Err(SparseFormatError::UnsortedRow {
                    row: w[0].0,
                    position: k + 1,
                });
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &sorted {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        for (_, c, v) in sorted {
            col_indices.push(c);
            values.push(v);
        }
        Self::new(rows, cols, row_ptr, col_indices, values)
    }

    /// Builds a CSR matrix from per-row `(col, value)` lists whose
    /// columns are already strictly increasing — the natural shape of
    /// row-wise builders and hand-written test fixtures.
    ///
    /// Fully validated: delegates to [`CsrMatrix::new`], so an unsorted
    /// or out-of-bounds row is reported with its exact position instead
    /// of being accepted silently.
    ///
    /// # Errors
    ///
    /// Returns a [`SparseFormatError`] when any row's columns are
    /// unsorted, duplicated, or `>= cols`.
    pub fn from_sorted_rows(
        cols: usize,
        rows: &[Vec<(usize, T)>],
    ) -> Result<Self, SparseFormatError> {
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in rows {
            for &(c, v) in row {
                col_indices.push(c);
                values.push(v);
            }
            row_ptr.push(col_indices.len());
        }
        Self::new(rows.len(), cols, row_ptr, col_indices, values)
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut cursor = counts;
        let mut col_indices = vec![0usize; self.nnz()];
        let mut values = self.values.clone();
        for row in 0..self.rows {
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                let c = self.col_indices[k];
                let dst = cursor[c];
                col_indices[dst] = row;
                values[dst] = self.values[k];
                cursor[c] += 1;
            }
        }
        // Rows of the transpose are sorted because we scanned source rows in
        // increasing order.
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_indices,
            values,
        }
    }

    /// Whether the sparsity pattern and values are symmetric
    /// (`A == A^T`, requires a square matrix).
    pub fn is_symmetric(&self) -> bool
    where
        T: PartialEq,
    {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_indices == t.col_indices && self.values == t.values
    }
}

impl CsrMatrix<f32> {
    /// Converts to a dense matrix (for small matrices / tests).
    pub fn to_dense(&self) -> DenseMatrix<f32> {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for row in 0..self.rows {
            let r = self.row(row);
            for (&c, &v) in r.cols.iter().zip(r.vals) {
                d.set(row, c, v);
            }
        }
        d
    }

    /// Builds a CSR matrix from a dense matrix, storing exact non-zeros.
    pub fn from_dense(dense: &DenseMatrix<f32>) -> Self {
        let mut row_ptr = Vec::with_capacity(dense.rows() + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                let v = dense.get(r, c);
                if v != 0.0 {
                    col_indices.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_indices.len());
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            row_ptr,
            col_indices,
            values,
        }
    }
}

impl<T: Copy> From<CooMatrix<T>> for CsrMatrix<T> {
    /// Converts validated COO data; cannot fail because [`CooMatrix`]
    /// enforces bounds and duplicate-freedom at construction.
    fn from(coo: CooMatrix<T>) -> Self {
        let (rows, cols, triplets) = coo.into_raw_parts();
        CsrMatrix::from_triplets(rows, cols, &triplets)
            .expect("CooMatrix invariants guarantee valid triplets")
    }
}

/// A borrowed view of one CSR row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsrRow<'a, T> {
    /// Row index within the parent matrix.
    pub index: usize,
    /// Column indices of the row's non-zeros (strictly increasing).
    pub cols: &'a [usize],
    /// Values of the row's non-zeros, parallel to `cols`.
    pub vals: &'a [T],
}

impl<'a, T> CsrRow<'a, T> {
    /// Number of non-zeros in this row.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }
}

/// Iterator over the rows of a [`CsrMatrix`], produced by
/// [`CsrMatrix::iter_rows`].
#[derive(Debug, Clone)]
pub struct CsrRowIter<'a, T> {
    matrix: &'a CsrMatrix<T>,
    next: usize,
}

impl<'a, T> Iterator for CsrRowIter<'a, T> {
    type Item = CsrRow<'a, T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.matrix.rows() {
            return None;
        }
        let row = self.matrix.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.matrix.rows() - self.next;
        (rem, Some(rem))
    }
}

impl<'a, T> ExactSizeIterator for CsrRowIter<'a, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        // 0: [., 1, .]
        // 1: [2, ., 3]
        // 2: [., ., .]
        CsrMatrix::new(3, 3, vec![0, 1, 3, 3], vec![1, 0, 2], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn valid_construction() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.merge_items(), 6);
        assert_eq!(m.row_nnz(0), 1);
        assert_eq!(m.row_nnz(2), 0);
    }

    #[test]
    fn rejects_bad_row_ptr_length() {
        let err = CsrMatrix::<f32>::new(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert_eq!(err, SparseFormatError::RowPointerLength { rows: 2, len: 2 });
    }

    #[test]
    fn rejects_nonzero_start() {
        let err = CsrMatrix::<f32>::new(1, 2, vec![1, 1], vec![], vec![]).unwrap_err();
        assert_eq!(err, SparseFormatError::RowPointerStart { first: 1 });
    }

    #[test]
    fn rejects_decreasing_row_ptr() {
        let err = CsrMatrix::<f32>::new(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).unwrap_err();
        assert_eq!(err, SparseFormatError::RowPointerNotMonotonic { row: 1 });
    }

    #[test]
    fn rejects_row_ptr_end_mismatch() {
        let err = CsrMatrix::<f32>::new(1, 2, vec![0, 2], vec![0], vec![1.0]).unwrap_err();
        assert_eq!(err, SparseFormatError::RowPointerEnd { last: 2, nnz: 1 });
    }

    #[test]
    fn rejects_index_value_length_mismatch() {
        let err = CsrMatrix::<f32>::new(1, 2, vec![0, 1], vec![0, 1], vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            SparseFormatError::IndexValueLength {
                indices: 2,
                values: 1
            }
        );
    }

    #[test]
    fn rejects_column_out_of_bounds() {
        let err = CsrMatrix::<f32>::new(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            SparseFormatError::ColumnOutOfBounds {
                position: 0,
                column: 5,
                cols: 2
            }
        );
    }

    #[test]
    fn rejects_unsorted_row() {
        let err = CsrMatrix::<f32>::new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(
            err,
            SparseFormatError::UnsortedRow {
                row: 0,
                position: 1
            }
        );
    }

    #[test]
    fn rejects_duplicate_column_in_row() {
        let err = CsrMatrix::<f32>::new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(
            err,
            SparseFormatError::UnsortedRow {
                row: 0,
                position: 1
            }
        );
    }

    #[test]
    fn from_parts_unchecked_round_trips_valid_parts() {
        let m = sample();
        let (rows, cols, rp, ci, vals) = m.clone().into_raw_parts();
        let back = CsrMatrix::from_parts_unchecked(rows, cols, rp, ci, vals);
        assert_eq!(m, back);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "violated a CSR invariant")]
    fn from_parts_unchecked_asserts_in_debug() {
        // Unsorted row: caught by the debug assertion, silently wrong in
        // release (the documented contract).
        let _ = CsrMatrix::from_parts_unchecked(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn from_sorted_rows_builds_and_validates() {
        let m = CsrMatrix::from_sorted_rows(
            3,
            &[vec![(1, 1.0f32)], vec![(0, 2.0), (2, 3.0)], Vec::new()],
        )
        .unwrap();
        assert_eq!(m, sample());
        let err = CsrMatrix::from_sorted_rows(3, &[vec![(2, 1.0f32), (0, 2.0)]]).unwrap_err();
        assert_eq!(
            err,
            SparseFormatError::UnsortedRow {
                row: 0,
                position: 1
            }
        );
        let err = CsrMatrix::from_sorted_rows(2, &[vec![(5, 1.0f32)]]).unwrap_err();
        assert!(matches!(err, SparseFormatError::ColumnOutOfBounds { .. }));
    }

    #[test]
    fn from_triplets_sorts_and_matches_dense() {
        let m = CsrMatrix::<f32>::from_triplets(2, 3, &[(1, 2, 3.0), (0, 1, 1.0), (1, 0, 2.0)])
            .unwrap();
        assert_eq!(m.row(1).cols, &[0, 2]);
        assert_eq!(m.row(1).vals, &[2.0, 3.0]);
    }

    #[test]
    fn from_triplets_rejects_duplicates() {
        let err = CsrMatrix::<f32>::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]).unwrap_err();
        assert!(matches!(err, SparseFormatError::UnsortedRow { row: 0, .. }));
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds_row() {
        let err = CsrMatrix::<f32>::from_triplets(2, 2, &[(7, 0, 1.0)]).unwrap_err();
        assert!(matches!(
            err,
            SparseFormatError::RowOutOfBounds { row: 7, .. }
        ));
    }

    #[test]
    fn empty_triplets_give_zero_matrix() {
        let m = CsrMatrix::<f32>::from_triplets(3, 4, &[]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row_ptr(), &[0, 0, 0, 0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_moves_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.row(0).cols, &[1]);
        assert_eq!(t.row(0).vals, &[2.0]);
        assert_eq!(t.row(2).cols, &[1]);
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::<f32>::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(sym.is_symmetric());
        let asym = CsrMatrix::<f32>::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(!asym.is_symmetric());
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let back = CsrMatrix::from_dense(&m.to_dense());
        assert_eq!(m, back);
    }

    #[test]
    fn row_iterator_visits_all_rows() {
        let m = sample();
        let lens: Vec<usize> = m.iter_rows().map(|r| r.nnz()).collect();
        assert_eq!(lens, vec![1, 2, 0]);
        assert_eq!(m.iter_rows().len(), 3);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::<f32>::zeros(4, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.merge_items(), 4);
    }

    #[test]
    fn io_round_trip() {
        // Persistence goes through the self-contained binary format in
        // `io` (the workspace carries no serialization dependency).
        let m = sample();
        let mut buf = Vec::new();
        crate::io::write_csr(&mut buf, &m).unwrap();
        let back = crate::io::read_csr(buf.as_slice()).unwrap();
        assert_eq!(m, back);
    }
}
