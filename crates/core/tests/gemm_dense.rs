//! Property test pinning the engine's blocked, register-tiled dense GEMM
//! to the seed naive `ikj` loop **with its `a == 0.0` skip** — the exact
//! loop `mpspmm-gcn`'s layer-0 combination still runs. The blocked
//! kernel drops the per-element branch, so the two may differ only in
//! the sign of zero terms the skip never adds; `f32` equality treats
//! `-0.0 == 0.0`, so bit-level agreement is asserted with `==` across
//! dims 1..=67, k = 0, and fully empty operands.

use mpspmm_core::{DataPath, ExecEngine, SchedPolicy};
use mpspmm_sparse::DenseMatrix;
use proptest::prelude::*;

/// The pre-fusion `mpspmm_gcn::ops::gemm` loop, inlined as the oracle
/// (ikj order, `av == 0.0` skip).
fn naive_gemm_with_skip(a: &DenseMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
    let (m, n) = (a.rows(), b.cols());
    let mut out = DenseMatrix::<f32>::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for (dst, &bv) in orow.iter_mut().zip(b.row(p)) {
                *dst += av * bv;
            }
        }
    }
    out
}

/// Deterministic pseudo-random fill with a deliberately fat zero class
/// (about a third of entries are exact `0.0`), so the skip-vs-no-skip
/// difference is actually exercised.
fn filled(rows: usize, cols: usize, seed: u64) -> DenseMatrix<f32> {
    let mut v = seed | 1;
    DenseMatrix::from_fn(rows, cols, |_, _| {
        v = v
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let q = (v >> 33) % 9;
        if q < 3 {
            0.0
        } else {
            (q as f32 - 6.0) * 0.375
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gemm_dense_vs_naive(
        m in 0usize..=67,
        k in 0usize..=67,
        n in 0usize..=67,
        seed in any::<u64>(),
        workers in 1usize..=5,
    ) {
        let a = filled(m, k, seed);
        let b = filled(k, n, seed ^ 0xBEEF);
        let want = naive_gemm_with_skip(&a, &b);
        for path in [DataPath::Scalar, DataPath::Tiled, DataPath::Vector, DataPath::Auto] {
            for policy in [SchedPolicy::Static, SchedPolicy::Stealing, SchedPolicy::Auto] {
                let engine = ExecEngine::with_sched_policy(workers, path, policy);
                let got = engine.gemm(&a, &b).unwrap();
                prop_assert_eq!(got.rows(), m);
                prop_assert_eq!(got.cols(), n);
                prop_assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "m={} k={} n={} path={:?} policy={:?} workers={}",
                    m, k, n, path, policy, workers
                );
            }
        }
    }
}
