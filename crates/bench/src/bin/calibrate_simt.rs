//! Calibration scratchpad for the SIMT machine model: prints the key
//! figure-shape quantities (Figure 2 orderings, Figure 4 geomeans,
//! Figure 6 cost sweep, Figure 7 dimension scaling) so the model constants
//! in `GpuConfig` / `AwbGcnConfig` can be tuned. Not one of the paper
//! harnesses — see `fig*` binaries for those.

use mpspmm_graphs::{find_dataset, table_ii, GraphClass};
use mpspmm_simt::{awbgcn, vendor, GpuConfig, GpuKernel};
use mpspmm_sparse::stats::DegreeStats;
use mpspmm_sparse::CsrMatrix;

const SEED: u64 = 7;

fn geomean(vals: &[f64]) -> f64 {
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

fn main() {
    let cfg = GpuConfig::rtx6000();
    let awb = awbgcn::AwbGcnConfig::paper();

    println!("=== Figure 2: accelerator comparison (micros) ===");
    for (name, dim) in [("Cora", 16), ("Citeseer", 16), ("Pubmed", 16), ("Nell", 64)] {
        let spec = find_dataset(name).unwrap();
        let a: CsrMatrix<f32> = spec.synthesize(SEED);
        let stats = DegreeStats::compute(&a);
        let awb_t = awbgcn::awbgcn_micros(name, &stats, dim, &awb);
        let rs = GpuKernel::RowSplit.simulate(&a, dim, &cfg).micros;
        let gnn = GpuKernel::GnnAdvisor {
            opt: false,
            ng_size: None,
        }
        .simulate(&a, dim, &cfg)
        .micros;
        let mps = GpuKernel::SerialFixup { threads: None }
            .simulate(&a, dim, &cfg)
            .micros;
        let mp = GpuKernel::MergePath { cost: None }
            .simulate(&a, dim, &cfg)
            .micros;
        println!(
            "{name:<10} dim{dim:<3} AWB {awb_t:8.2}  row-split {rs:8.2}  GNNAdvisor {gnn:8.2}  merge-serial {mps:8.2}  [MergePath {mp:8.2}]"
        );
    }

    println!("\n=== Figure 4: speedup over GNNAdvisor at dim 16 ===");
    let mut sp_mp = Vec::new();
    let mut sp_opt = Vec::new();
    let mut sp_cu = Vec::new();
    for spec in table_ii() {
        // Scale down the giants so calibration stays fast; shapes hold.
        let spec = if spec.nnz > 2_500_000 {
            spec.scaled_down(4)
        } else {
            spec.clone()
        };
        let a = spec.synthesize(SEED);
        let gnn = GpuKernel::GnnAdvisor {
            opt: false,
            ng_size: None,
        }
        .simulate(&a, 16, &cfg)
        .micros;
        let opt = GpuKernel::GnnAdvisor {
            opt: true,
            ng_size: None,
        }
        .simulate(&a, 16, &cfg)
        .micros;
        let mp = GpuKernel::MergePath { cost: Some(20) }
            .simulate(&a, 16, &cfg)
            .micros;
        let cu = vendor::simulate_vendor(&a, 16, &cfg).report.micros;
        let t = if spec.class == GraphClass::PowerLaw {
            "I "
        } else {
            "II"
        };
        println!(
            "{t} {:<16} cuSPARSE {:5.2}  opt {:5.2}  MergePath {:5.2}",
            spec.name,
            gnn / cu,
            gnn / opt,
            gnn / mp
        );
        sp_mp.push(gnn / mp);
        sp_opt.push(gnn / opt);
        sp_cu.push(gnn / cu);
    }
    println!(
        "GEOMEAN: cuSPARSE {:.2}  GNNAdvisor-opt {:.2} (paper 1.41)  MergePath {:.2} (paper 1.85; opt ratio {:.2}, paper 1.31)",
        geomean(&sp_cu),
        geomean(&sp_opt),
        geomean(&sp_mp),
        geomean(&sp_mp) / geomean(&sp_opt),
    );

    println!("\n=== Figure 6: best merge-path cost per dim (paper: 128→50 64→35 32→30 16→20 8→15 4→15 2→50) ===");
    let sample: Vec<_> = ["Pubmed", "Wiki-Vote", "email-Enron", "Nell", "PPI"]
        .iter()
        .map(|n| find_dataset(n).unwrap().synthesize(SEED))
        .collect();
    for dim in [2usize, 4, 8, 16, 32, 64, 128] {
        let mut best = (0usize, f64::INFINITY);
        for cost in [2usize, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50] {
            let total: f64 = sample
                .iter()
                .map(|a| {
                    GpuKernel::MergePath { cost: Some(cost) }
                        .simulate(a, dim, &cfg)
                        .micros
                        .ln()
                })
                .sum();
            if total < best.1 {
                best = (cost, total);
            }
        }
        println!("dim {dim:<4} best cost {}", best.0);
    }

    println!("\n=== Figure 7: speedup vs GNNAdvisor@128 across dims ===");
    let denom: Vec<f64> = sample
        .iter()
        .map(|a| {
            GpuKernel::GnnAdvisor {
                opt: false,
                ng_size: None,
            }
            .simulate(a, 128, &cfg)
            .micros
        })
        .collect();
    for dim in [128usize, 64, 32, 16, 8, 4, 2] {
        let mut gnn_s = Vec::new();
        let mut opt_s = Vec::new();
        let mut mp_s = Vec::new();
        for (i, a) in sample.iter().enumerate() {
            gnn_s.push(
                denom[i]
                    / GpuKernel::GnnAdvisor {
                        opt: false,
                        ng_size: None,
                    }
                    .simulate(a, dim, &cfg)
                    .micros,
            );
            opt_s.push(
                denom[i]
                    / GpuKernel::GnnAdvisor {
                        opt: true,
                        ng_size: None,
                    }
                    .simulate(a, dim, &cfg)
                    .micros,
            );
            mp_s.push(
                denom[i]
                    / GpuKernel::MergePath { cost: None }
                        .simulate(a, dim, &cfg)
                        .micros,
            );
        }
        println!(
            "dim {dim:<4} GNNAdvisor {:6.2}  opt {:6.2}  MergePath {:6.2}",
            geomean(&gnn_s),
            geomean(&opt_s),
            geomean(&mp_s)
        );
    }
    println!("(paper: GNNAdvisor saturates ~2x below dim 32; opt ~9x at dim 2; MergePath ~27.6x at dim 2)");
}
