//! Fused-pipeline benchmark — the PR-4 unfused GCN forward pass vs the
//! fused engine pipeline (parallel blocked GEMM + epilogue-in-store SpMM).
//!
//! For a uniform (Type II) and a power-law (Type I) synthetic graph, a
//! three-layer biased GCN is run end-to-end at dense dimensions
//! {16, 32, 64} and worker counts {1, 4} two ways:
//!
//! * **unfused** — the exact pre-fusion pipeline, replicated inline:
//!   naive zero-skip GEMM for every layer's combination, plain cached
//!   SpMM for the aggregation, then bias and activation as separate
//!   serial passes over the output;
//! * **fused** — [`GcnModel::forward_cached`]: hidden-layer combinations
//!   on [`ExecEngine::gemm`] (register-tiled bands, no per-element
//!   branch), bias + activation fused into the SpMM store stage.
//!
//! Both sides share one engine per configuration, so the plan cache and
//! buffer arena are equally warm. Every timed pair is also checked for
//! numerical agreement before its record is trusted.
//!
//! Additionally measures the *fusion overhead* on the SpMM alone — a
//! single-worker `execute_prepared` vs `execute_prepared_fused` with
//! [`Epilogue::None`] on the same prepared plan (the acceptance bound is
//! ≤ 2% regression) — and reports the GEMM/SpMM wall-time split of one
//! fused forward pass from [`EngineStats::gemm_ns`].
//!
//! Writes `BENCH_fused.json`. Pass `--smoke` for a seconds-fast run on
//! scaled-down graphs.

use mpspmm_bench::{geomean, time_ns, SEED};
use mpspmm_core::{Epilogue, ExecEngine, MergePathSpmm, SpmmKernel};
use mpspmm_gcn::ops::{gemm, random_features, xavier_init, Activation};
use mpspmm_gcn::{GcnLayer, GcnModel};
use mpspmm_graphs::{gcn_normalize, DatasetSpec, GraphClass};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};

const DIMS: [usize; 3] = [16, 32, 64];
const WORKER_COUNTS: [usize; 2] = [1, 4];

/// One layer's raw parameters, kept outside [`GcnLayer`] so the unfused
/// baseline can replay the pre-fusion pipeline from the same weights.
struct LayerSpec {
    weight: DenseMatrix<f32>,
    bias: Vec<f32>,
    activation: Activation,
}

fn model_layers(dim: usize) -> Vec<LayerSpec> {
    let bias = |salt: usize| -> Vec<f32> {
        (0..dim)
            .map(|j| ((j * 7 + salt * 3) % 11) as f32 * 0.02 - 0.1)
            .collect()
    };
    vec![
        LayerSpec {
            weight: xavier_init(dim, dim, 11),
            bias: bias(1),
            activation: Activation::Relu,
        },
        LayerSpec {
            weight: xavier_init(dim, dim, 12),
            bias: bias(2),
            activation: Activation::Relu,
        },
        LayerSpec {
            weight: xavier_init(dim, dim, 13),
            bias: bias(3),
            activation: Activation::Identity,
        },
    ]
}

fn build_model(layers: &[LayerSpec]) -> GcnModel {
    GcnModel::new(
        layers
            .iter()
            .map(|l| GcnLayer::with_bias(l.weight.clone(), l.bias.clone(), l.activation))
            .collect(),
    )
}

/// The pre-fusion (PR-4) pipeline, replicated exactly: naive zero-skip
/// GEMM, plain cached SpMM, then bias and activation as separate serial
/// passes. Scratch still recycles through the engine's arena, as it did
/// before fusion.
fn unfused_forward(
    a: &CsrMatrix<f32>,
    x: &DenseMatrix<f32>,
    layers: &[LayerSpec],
    kernel: &dyn SpmmKernel,
    engine: &ExecEngine,
) -> DenseMatrix<f32> {
    let mut h: Option<DenseMatrix<f32>> = None;
    for layer in layers {
        let input = h.as_ref().unwrap_or(x);
        let hw = gemm(input, &layer.weight).expect("layer widths chain");
        let (mut out, _) = engine.spmm_cached(kernel, a, &hw, 0).expect("shapes agree");
        engine.recycle(hw);
        for r in 0..out.rows() {
            for (v, &b) in out.row_mut(r).iter_mut().zip(&layer.bias) {
                *v += b;
            }
        }
        match layer.activation {
            Activation::Identity => {}
            Activation::Relu => {
                for v in out.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for v in out.as_mut_slice() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
        }
        if let Some(prev) = h.take() {
            engine.recycle(prev);
        }
        h = Some(out);
    }
    h.expect("at least one layer")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Average degree ~3 — the citation-graph regime (Cora is 3.9,
    // Citeseer 2.8) where GCN inference is actually run, and where the
    // combination GEMM carries most of the layer's arithmetic.
    let (nodes, nnz, max_deg, warm, iters) = if smoke {
        (1_600usize, 4_800usize, 80usize, 1usize, 3usize)
    } else {
        (20_000, 60_000, 600, 2, 7)
    };
    println!("==================================================================");
    println!("BENCH fused: unfused PR-4 GCN pipeline vs fused engine pipeline");
    println!(
        "3-layer biased GCN, dims {{16, 32, 64}}, workers {{1, 4}}, seed {SEED}{}",
        if smoke { " (--smoke)" } else { "" }
    );
    println!("==================================================================");

    let kernel = MergePathSpmm::new();
    let graphs = [
        (
            "uniform",
            gcn_normalize(
                &DatasetSpec::custom("fused-uniform", GraphClass::Structured, nodes, nnz, 16)
                    .synthesize(SEED),
            ),
        ),
        (
            "powerlaw",
            gcn_normalize(
                &DatasetSpec::custom("fused-powerlaw", GraphClass::PowerLaw, nodes, nnz, max_deg)
                    .synthesize(SEED),
            ),
        ),
    ];

    println!(
        "\n{:<10} {:>4} {:>8} {:>14} {:>14} {:>9}",
        "Graph", "dim", "workers", "unfused ns", "fused ns", "speedup"
    );
    let mut records = Vec::new();
    let mut powerlaw_4w = Vec::new();
    for (gname, a) in &graphs {
        for dim in DIMS {
            let layers = model_layers(dim);
            let model = build_model(&layers);
            // Raw input features in the bag-of-words density regime both
            // pipelines handle with the same zero-skipping layer-0 GEMM.
            let x = random_features(a.rows(), dim, 0.05, 33);
            for workers in WORKER_COUNTS {
                let engine = ExecEngine::new(workers);
                // Correctness guard: a record is only trusted if the two
                // pipelines agree numerically on this configuration.
                let want = unfused_forward(a, &x, &layers, &kernel, &engine);
                let got = model.forward_cached(a, &x, &kernel, &engine, 0).unwrap();
                assert!(
                    got.approx_eq(&want, 1e-4).unwrap(),
                    "fused diverged from unfused ({gname}, dim {dim}, workers {workers})"
                );
                engine.recycle(want);
                engine.recycle(got);
                let unfused_ns = time_ns(warm, iters, || {
                    let out = unfused_forward(a, &x, &layers, &kernel, &engine);
                    engine.recycle(out);
                });
                let fused_ns = time_ns(warm, iters, || {
                    let out = model.forward_cached(a, &x, &kernel, &engine, 0).unwrap();
                    engine.recycle(out);
                });
                let speedup = unfused_ns / fused_ns;
                println!(
                    "{gname:<10} {dim:>4} {workers:>8} {unfused_ns:>14.0} {fused_ns:>14.0} {speedup:>8.2}x"
                );
                if *gname == "powerlaw" && workers == 4 {
                    powerlaw_4w.push(speedup);
                }
                records.push(format!(
                    "    {{\"graph\": \"{gname}\", \"dim\": {dim}, \"workers\": {workers}, \
                     \"unfused_ns\": {unfused_ns:.0}, \"fused_ns\": {fused_ns:.0}, \
                     \"speedup\": {speedup:.3}}}"
                ));
            }
        }
    }
    let headline = geomean(&powerlaw_4w);
    println!(
        "\nend-to-end fused speedup, power-law @ 4 workers (geomean over dims): {headline:.2}x"
    );

    // --- GEMM-only: the naive zero-skip loop vs the engine's blocked
    // kernel on a dense hidden-layer activation (the matrix shape the
    // fused pipeline actually feeds it), single worker so the comparison
    // is pure kernel quality.
    let mut gemm_only = Vec::new();
    for dim in DIMS {
        let engine = ExecEngine::new(1);
        let h = {
            // Post-ReLU-like input: dense with a fat zero class, the most
            // favourable case for the naive loop's skip.
            let mut m = random_features(nodes, dim, 0.55, 77);
            for v in m.as_mut_slice() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            m
        };
        let w = xavier_init(dim, dim, 78);
        let naive_ns = time_ns(warm, iters, || {
            let _ = gemm(&h, &w).unwrap();
        });
        let engine_ns = time_ns(warm, iters, || {
            let out = engine.gemm(&h, &w).unwrap();
            engine.recycle(out);
        });
        println!(
            "gemm-only (dense {nodes}x{dim} . {dim}x{dim}, 1 worker): naive {naive_ns:.0} ns, \
             engine {engine_ns:.0} ns ({:.2}x)",
            naive_ns / engine_ns
        );
        gemm_only.push((dim, naive_ns, engine_ns));
    }

    // --- SpMM-only fusion overhead: the epilogue plumbing must be free
    // when there is nothing to fuse. Single worker, same prepared plan.
    let a_pl = &graphs[1].1;
    let dim = 32usize;
    let b = random_features(a_pl.cols(), dim, 0.9, 44);
    let (spmm_warm, spmm_iters) = (warm + 1, iters * 2 + 1);
    let mut spmm_regression_pct = 0.0;
    for workers in WORKER_COUNTS {
        let engine = ExecEngine::new(workers);
        let prep = engine.plan_cached(&kernel, a_pl, dim, 0);
        let plain_ns = time_ns(spmm_warm, spmm_iters, || {
            let (out, _) = engine.execute_prepared(&prep, a_pl, &b).unwrap();
            engine.recycle(out);
        });
        let fused_noop_ns = time_ns(spmm_warm, spmm_iters, || {
            let (out, _) = engine
                .execute_prepared_fused(&prep, a_pl, &b, &Epilogue::None)
                .unwrap();
            engine.recycle(out);
        });
        let pct = (fused_noop_ns - plain_ns) / plain_ns * 100.0;
        if workers == 1 {
            spmm_regression_pct = pct;
        }
        println!(
            "spmm-only fusion overhead ({workers} worker(s), dim {dim}): plain {plain_ns:.0} ns \
             vs fused-noop {fused_noop_ns:.0} ns ({pct:+.2}%)"
        );
    }

    // --- Where the time goes now: GEMM vs SpMM(+epilogue) wall split of
    // one fused forward pass, from the engine's own counters.
    let layers = model_layers(64);
    let model = build_model(&layers);
    let x = random_features(a_pl.rows(), 64, 0.4, 33);
    let split_engine = ExecEngine::new(4);
    let out = model
        .forward_cached(a_pl, &x, &kernel, &split_engine, 0)
        .unwrap();
    split_engine.recycle(out);
    let before = split_engine.stats();
    let t0 = std::time::Instant::now();
    let out = model
        .forward_cached(a_pl, &x, &kernel, &split_engine, 0)
        .unwrap();
    let total_ns = t0.elapsed().as_nanos() as f64;
    split_engine.recycle(out);
    let after = split_engine.stats();
    let gemm_ns = (after.gemm_ns - before.gemm_ns) as f64;
    let spmm_ns = (total_ns - gemm_ns).max(0.0);
    let fused_runs = after.fused_epilogues - before.fused_epilogues;
    println!(
        "time split, fused 3-layer forward (powerlaw, dim 64, 4 workers): \
         GEMM {:.0}% / SpMM+epilogue {:.0}% ({} aggregations ran with a fused epilogue)",
        gemm_ns / total_ns * 100.0,
        spmm_ns / total_ns * 100.0,
        fused_runs
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"baseline\": \"unfused PR-4 pipeline: naive zero-skip GEMM + plain cached SpMM ",
            "+ serial bias/activation passes, same engine and workers\",\n",
            "  \"speedup\": {:.3},\n",
            "  \"smoke\": {},\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"acceptance\": {{\n",
            "    \"powerlaw_speedup_at_4_workers\": {:.3},\n",
            "    \"spmm_only_single_worker_regression_pct\": {:.3}\n",
            "  }},\n",
            "  \"time_split\": {{\"gemm_ns\": {:.0}, \"spmm_plus_epilogue_ns\": {:.0}, ",
            "\"gemm_share\": {:.3}, \"fused_epilogues\": {}}}\n",
            "}}\n"
        ),
        headline,
        smoke,
        records.join(",\n"),
        headline,
        spmm_regression_pct,
        gemm_ns,
        spmm_ns,
        gemm_ns / total_ns,
        fused_runs
    );
    std::fs::write("BENCH_fused.json", &json).expect("write BENCH_fused.json");
    println!("wrote BENCH_fused.json");
}
