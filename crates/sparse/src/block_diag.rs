//! Block-diagonal concatenation of many small CSR graphs.
//!
//! The paper's Type II workloads (molecular datasets) are thousands of
//! tiny graphs. Running them one SpMM at a time pays full dispatch and
//! plan overhead per few hundred non-zeros. [`BlockDiagCsr`] packs `N`
//! constituent graphs into **one** block-diagonal CSR — graph `i`
//! occupies the row band `row_offsets[i]..row_offsets[i+1]` and the
//! column band `col_offsets[i]..col_offsets[i+1]` — so a single
//! merge-path execution balances load across the whole batch.
//!
//! Because the blocks are diagonal, the packed product factors exactly:
//! row band `i` of `pack × X` reads only rows of `X` inside column band
//! `i`, which is precisely `A_i × X_i` for the vertically stacked
//! feature matrix. The offset tables double as the scatter map back to
//! each constituent: every graph's result is a contiguous row slice of
//! the packed output, so scattering is a bounds-checked `memcpy` per
//! block with no overlap by construction.
//!
//! A single-constituent "batch" is zero-copy: the packed matrix is the
//! constituent's own `Arc`.

use std::sync::Arc;

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::SparseFormatError;

/// `N` small CSR graphs packed into one block-diagonal CSR, plus the
/// offset tables needed to stack inputs and scatter results back.
#[derive(Debug, Clone)]
pub struct BlockDiagCsr {
    matrix: Arc<CsrMatrix<f32>>,
    row_offsets: Vec<usize>,
    col_offsets: Vec<usize>,
    nnz_offsets: Vec<usize>,
}

impl BlockDiagCsr {
    /// Packs `blocks` in order into one block-diagonal matrix.
    ///
    /// Constituents with zero rows or zero non-zeros are allowed (they
    /// occupy an empty band). A single-element batch shares the
    /// constituent's storage (`Arc::clone`, no copy).
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::EmptyBatch`] when `blocks` is empty.
    pub fn build(blocks: &[Arc<CsrMatrix<f32>>]) -> Result<Self, SparseFormatError> {
        if blocks.is_empty() {
            return Err(SparseFormatError::EmptyBatch);
        }
        let mut row_offsets = Vec::with_capacity(blocks.len() + 1);
        let mut col_offsets = Vec::with_capacity(blocks.len() + 1);
        let mut nnz_offsets = Vec::with_capacity(blocks.len() + 1);
        row_offsets.push(0);
        col_offsets.push(0);
        nnz_offsets.push(0);
        for b in blocks {
            row_offsets.push(row_offsets.last().unwrap() + b.rows());
            col_offsets.push(col_offsets.last().unwrap() + b.cols());
            nnz_offsets.push(nnz_offsets.last().unwrap() + b.nnz());
        }
        let matrix = if blocks.len() == 1 {
            Arc::clone(&blocks[0])
        } else {
            let (rows, cols, nnz) = (
                *row_offsets.last().unwrap(),
                *col_offsets.last().unwrap(),
                *nnz_offsets.last().unwrap(),
            );
            let mut row_ptr = Vec::with_capacity(rows + 1);
            let mut col_indices = Vec::with_capacity(nnz);
            let mut values = Vec::with_capacity(nnz);
            row_ptr.push(0);
            for (i, b) in blocks.iter().enumerate() {
                let (nnz_base, col_base) = (nnz_offsets[i], col_offsets[i]);
                row_ptr.extend(b.row_ptr()[1..].iter().map(|&p| nnz_base + p));
                col_indices.extend(b.col_indices().iter().map(|&c| col_base + c));
                values.extend_from_slice(b.values());
            }
            // Invariants hold by construction: each block's row pointer is
            // monotone and its rows sorted/in-bounds, and the per-block
            // offsets are strictly cumulative.
            Arc::new(CsrMatrix::from_parts_unchecked(
                rows,
                cols,
                row_ptr,
                col_indices,
                values,
            ))
        };
        Ok(Self {
            matrix,
            row_offsets,
            col_offsets,
            nnz_offsets,
        })
    }

    /// Number of constituent graphs.
    pub fn num_blocks(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// The packed block-diagonal matrix.
    pub fn matrix(&self) -> &Arc<CsrMatrix<f32>> {
        &self.matrix
    }

    /// Total packed rows.
    pub fn rows(&self) -> usize {
        *self.row_offsets.last().unwrap()
    }

    /// Total packed columns.
    pub fn cols(&self) -> usize {
        *self.col_offsets.last().unwrap()
    }

    /// Total packed non-zeros.
    pub fn nnz(&self) -> usize {
        *self.nnz_offsets.last().unwrap()
    }

    /// Row band of constituent `i` in the packed matrix.
    pub fn block_rows(&self, i: usize) -> std::ops::Range<usize> {
        self.row_offsets[i]..self.row_offsets[i + 1]
    }

    /// Column band of constituent `i` in the packed matrix.
    pub fn block_cols(&self, i: usize) -> std::ops::Range<usize> {
        self.col_offsets[i]..self.col_offsets[i + 1]
    }

    /// Non-zero range of constituent `i` in the packed arrays.
    pub fn block_nnz(&self, i: usize) -> std::ops::Range<usize> {
        self.nnz_offsets[i]..self.nnz_offsets[i + 1]
    }

    /// Vertically stacks per-constituent feature matrices into the
    /// packed input (block `i`'s features land in its column band's
    /// rows). All features must share a column count and each must have
    /// `block_cols(i).len()` rows.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] naming the first
    /// offending block's shape against the expected one.
    pub fn stack_features(
        &self,
        features: &[&DenseMatrix<f32>],
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let dim = features.first().map_or(0, |f| f.cols());
        if features.len() != self.num_blocks() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (self.num_blocks(), dim),
                right: (features.len(), dim),
            });
        }
        for (i, f) in features.iter().enumerate() {
            let want_rows = self.block_cols(i).len();
            if f.rows() != want_rows || f.cols() != dim {
                return Err(SparseFormatError::ShapeMismatch {
                    left: (want_rows, dim),
                    right: (f.rows(), f.cols()),
                });
            }
        }
        let mut stacked = DenseMatrix::zeros(self.cols(), dim);
        self.stack_into(features, &mut stacked);
        Ok(stacked)
    }

    /// [`stack_features`](Self::stack_features) into a caller-provided
    /// matrix — for callers that recycle their stacking buffer (the
    /// serving layer leases one from the engine arena every window).
    /// `stacked` must be `cols() × features[0].cols()`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] on any block shape
    /// mismatch (as [`stack_features`](Self::stack_features)) or when
    /// `stacked` itself has the wrong shape.
    pub fn stack_features_into(
        &self,
        features: &[&DenseMatrix<f32>],
        stacked: &mut DenseMatrix<f32>,
    ) -> Result<(), SparseFormatError> {
        let dim = features.first().map_or(0, |f| f.cols());
        if features.len() != self.num_blocks() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (self.num_blocks(), dim),
                right: (features.len(), dim),
            });
        }
        for (i, f) in features.iter().enumerate() {
            let want_rows = self.block_cols(i).len();
            if f.rows() != want_rows || f.cols() != dim {
                return Err(SparseFormatError::ShapeMismatch {
                    left: (want_rows, dim),
                    right: (f.rows(), f.cols()),
                });
            }
        }
        if stacked.rows() != self.cols() || stacked.cols() != dim {
            return Err(SparseFormatError::ShapeMismatch {
                left: (self.cols(), dim),
                right: (stacked.rows(), stacked.cols()),
            });
        }
        self.stack_into(features, stacked);
        Ok(())
    }

    /// The copy behind both stacking entry points; shapes already
    /// validated.
    fn stack_into(&self, features: &[&DenseMatrix<f32>], stacked: &mut DenseMatrix<f32>) {
        let dim = stacked.cols();
        // Row-major storage makes each block a single contiguous copy.
        let out = stacked.as_mut_slice();
        for (i, f) in features.iter().enumerate() {
            let start = self.col_offsets[i] * dim;
            out[start..start + f.rows() * dim].copy_from_slice(f.as_slice());
        }
    }

    /// Copies constituent `i`'s result rows out of the packed output.
    ///
    /// # Panics
    ///
    /// Panics if `packed` has fewer rows than the pack or `i` is out of
    /// range.
    pub fn scatter_block(&self, packed: &DenseMatrix<f32>, i: usize) -> DenseMatrix<f32> {
        let band = self.block_rows(i);
        let dim = packed.cols();
        let mut out = DenseMatrix::zeros(band.len(), dim);
        let src = &packed.as_slice()[band.start * dim..band.end * dim];
        out.as_mut_slice().copy_from_slice(src);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(rows: usize, cols: usize, t: &[(usize, usize, f32)]) -> Arc<CsrMatrix<f32>> {
        Arc::new(CsrMatrix::from_triplets(rows, cols, t).unwrap())
    }

    #[test]
    fn empty_batch_is_an_error() {
        assert_eq!(
            BlockDiagCsr::build(&[]).unwrap_err(),
            SparseFormatError::EmptyBatch
        );
    }

    #[test]
    fn single_block_is_zero_copy() {
        let a = tri(3, 3, &[(0, 1, 1.0), (2, 0, 2.0)]);
        let pack = BlockDiagCsr::build(std::slice::from_ref(&a)).unwrap();
        assert!(Arc::ptr_eq(pack.matrix(), &a));
        assert_eq!(pack.num_blocks(), 1);
        assert_eq!(pack.block_rows(0), 0..3);
        assert_eq!(pack.block_nnz(0), 0..2);
    }

    #[test]
    fn blocks_land_on_the_diagonal() {
        let a = tri(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let b = tri(3, 3, &[(0, 2, 3.0), (2, 0, 4.0)]);
        let empty = tri(2, 2, &[]);
        let pack = BlockDiagCsr::build(&[a, empty, b]).unwrap();
        assert_eq!(pack.rows(), 7);
        assert_eq!(pack.cols(), 7);
        assert_eq!(pack.nnz(), 4);
        assert_eq!(pack.block_rows(1), 2..4);
        assert_eq!(pack.block_nnz(1), 2..2);
        let m = pack.matrix();
        // b's (0, 2) entry lands at packed row 4, column 4 + 2 = 6.
        assert_eq!(m.row(4).cols, &[6]);
        assert_eq!(m.row(4).vals, &[3.0]);
        assert_eq!(m.row(6).cols, &[4]);
        // The packed matrix passes full validation.
        let (rows, cols, rp, ci, vals) = (**m).clone().into_raw_parts();
        CsrMatrix::new(rows, cols, rp, ci, vals).unwrap();
    }

    #[test]
    fn stack_then_scatter_roundtrips() {
        let a = tri(2, 2, &[(0, 0, 1.0)]);
        let b = tri(1, 3, &[(0, 1, 2.0)]);
        let pack = BlockDiagCsr::build(&[a, b]).unwrap();
        let fa = DenseMatrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        let fb = DenseMatrix::from_fn(3, 4, |r, c| 100.0 + (r * 4 + c) as f32);
        let stacked = pack.stack_features(&[&fa, &fb]).unwrap();
        assert_eq!(stacked.rows(), 5);
        assert_eq!(stacked.row(0), fa.row(0));
        assert_eq!(stacked.row(2), fb.row(0));
        // Scatter on an arbitrary "output" recovers contiguous bands.
        let out = DenseMatrix::from_fn(pack.rows(), 4, |r, c| (r * 10 + c) as f32);
        let s1 = pack.scatter_block(&out, 1);
        assert_eq!(s1.rows(), 1);
        assert_eq!(s1.row(0), out.row(2));
    }

    #[test]
    fn stack_rejects_shape_mismatch() {
        let a = tri(2, 2, &[(0, 0, 1.0)]);
        let pack = BlockDiagCsr::build(&[Arc::clone(&a), a]).unwrap();
        let good = DenseMatrix::zeros(2, 4);
        let bad = DenseMatrix::zeros(3, 4);
        assert!(matches!(
            pack.stack_features(&[&good, &bad]),
            Err(SparseFormatError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            pack.stack_features(&[&good]),
            Err(SparseFormatError::ShapeMismatch { .. })
        ));
    }
}
