//! Sparse and dense matrix substrate for the MergePath-SpMM reproduction.
//!
//! This crate provides the storage formats the paper's kernels operate on:
//!
//! * [`CsrMatrix`] — compressed sparse row, the format of the graph adjacency
//!   matrix `A`. The merge-path decomposition works directly on its row
//!   pointer (`RP`) and column index (`CP`) arrays.
//! * [`CooMatrix`] — coordinate triplets, used as a construction intermediate
//!   and by generators.
//! * [`DenseMatrix`] — row-major dense storage for the `XW` input and the
//!   `C` output of the SpMM kernel `C = A × XW`.
//! * [`stats`] — row-length (degree) statistics used to characterize the
//!   power-law inputs (Figure 1 / Table II of the paper).
//!
//! # Example
//!
//! ```
//! use mpspmm_sparse::{CsrMatrix, DenseMatrix};
//!
//! // A 3x3 adjacency matrix with 4 non-zeros.
//! let a = CsrMatrix::<f32>::from_triplets(
//!     3,
//!     3,
//!     &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
//! )?;
//! assert_eq!(a.nnz(), 4);
//! let dense = a.to_dense();
//! assert_eq!(dense.get(1, 2), 1.0);
//! # Ok::<(), mpspmm_sparse::SparseFormatError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block_diag;
mod coo;
mod csr;
mod dense;
mod error;
pub mod io;
mod packed;
pub mod reorder;
mod shard;
pub mod stats;
pub mod testing;

pub use block_diag::BlockDiagCsr;
pub use coo::CooMatrix;
pub use csr::{CsrMatrix, CsrRow, CsrRowIter};
pub use dense::DenseMatrix;
pub use error::SparseFormatError;
pub use packed::{AlignedVec, PackedCsr, CACHE_LINE_BYTES};
pub use shard::{CsrShard, ShardedCsr};

/// Index type used for row/column indices throughout the workspace.
///
/// The paper's largest evaluation graph (amazon0505) has ~5.5 M non-zeros,
/// comfortably within `u32`, but we use `usize` end-to-end for simplicity and
/// to avoid conversion noise in the algorithm code.
pub type Index = usize;
