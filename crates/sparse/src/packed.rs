//! Packed, cache-aligned structure-of-arrays view of a CSR matrix.
//!
//! The validated [`CsrMatrix`] stores `usize` column indices — convenient
//! for algorithm code, wasteful for the SpMM hot loop: on 64-bit targets
//! every gather of a dense row pays 8 bytes of index traffic per non-zero,
//! and `Vec`'s 8/4-byte allocation alignment lets the index and value
//! streams straddle cache-line boundaries arbitrarily.
//!
//! [`PackedCsr`] is the execution-side remedy (the same preprocessing-free
//! spirit as the paper — the packing is a pure O(nnz) narrowing copy, no
//! reordering, no format extension):
//!
//! * column indices narrowed to `u32` (every Table II graph fits with room
//!   to spare; packing fails gracefully for matrices wider than `u32`),
//! * value and index arrays start on 64-byte (cache-line) boundaries via
//!   [`AlignedVec`], so wide-lane kernels never split their first block
//!   across two lines,
//! * row pointers kept as `usize` (they index the packed arrays directly).
//!
//! Alignment is achieved without `unsafe`: [`AlignedVec`] over-allocates a
//! plain `Vec<T>` by one cache line and exposes the slice starting at the
//! first 64-byte boundary inside the allocation.

use crate::{CsrMatrix, SparseFormatError};

/// Cache-line size the packed buffers align to.
pub const CACHE_LINE_BYTES: usize = 64;

/// A fixed-length buffer whose payload starts on a 64-byte boundary.
///
/// Built safely on top of `Vec<T>`: the backing vector is created with
/// enough spare capacity for one cache line of padding, the distance from
/// the allocation start to the next 64-byte boundary is measured, and that
/// many default elements are prepended. The vector never reallocates after
/// construction, so the measured offset stays valid for the buffer's
/// lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedVec<T> {
    buf: Vec<T>,
    offset: usize,
    len: usize,
}

impl<T: Copy + Default> AlignedVec<T> {
    /// Builds an aligned buffer holding exactly `len` elements drawn from
    /// `fill(i)` for `i in 0..len`.
    pub fn from_fn(len: usize, mut fill: impl FnMut(usize) -> T) -> Self {
        let elem = std::mem::size_of::<T>().max(1);
        let pad = CACHE_LINE_BYTES.div_ceil(elem);
        let mut buf: Vec<T> = Vec::with_capacity(len + pad);
        // `as_ptr` on a freshly allocated (possibly empty) Vec points at the
        // allocation; with zero capacity it is a dangling-but-aligned
        // sentinel, which the modulo below still handles (offset 0 or pad).
        let addr = buf.as_ptr() as usize;
        let offset = (addr.next_multiple_of(CACHE_LINE_BYTES) - addr) / elem;
        debug_assert!(offset <= pad);
        buf.resize(offset, T::default());
        buf.extend((0..len).map(&mut fill));
        debug_assert_eq!(buf.len(), offset + len);
        Self { buf, offset, len }
    }

    /// Copies `src` into a new aligned buffer.
    pub fn from_slice(src: &[T]) -> Self {
        Self::from_fn(src.len(), |i| src[i])
    }

    /// The aligned payload.
    pub fn as_slice(&self) -> &[T] {
        &self.buf[self.offset..self.offset + self.len]
    }

    /// Mutable access to the aligned payload (length is fixed).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.buf[self.offset..self.offset + self.len]
    }

    /// Number of payload elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no payload.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the payload actually starts on a cache-line boundary.
    ///
    /// True by construction whenever the backing allocation is non-empty;
    /// exposed so tests can assert the invariant instead of trusting it.
    pub fn is_cache_aligned(&self) -> bool {
        (self.as_slice().as_ptr() as usize).is_multiple_of(CACHE_LINE_BYTES)
    }
}

/// Structure-of-arrays packed view of a CSR matrix: `u32` column indices
/// and `f32` values in 64-byte-aligned buffers, plus the original row
/// pointers.
///
/// A `PackedCsr` is a snapshot: it does not track later mutations of the
/// source matrix. Re-pack (or [`refresh_values`](Self::refresh_values)
/// after value-only re-weighting) when the source changes — the same
/// staleness contract the execution engine's plan cache documents for its
/// `epoch` key.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedCsr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_indices: AlignedVec<u32>,
    values: AlignedVec<f32>,
}

impl PackedCsr {
    /// Packs `matrix` into the SoA layout.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ColumnOutOfBounds`] if the matrix has
    /// more columns than `u32` can index (no Table II graph comes close).
    pub fn pack(matrix: &CsrMatrix<f32>) -> Result<Self, SparseFormatError> {
        if matrix.cols() > u32::MAX as usize {
            return Err(SparseFormatError::ColumnOutOfBounds {
                position: 0,
                column: matrix.cols(),
                cols: u32::MAX as usize,
            });
        }
        let src_cols = matrix.col_indices();
        Ok(Self {
            rows: matrix.rows(),
            cols: matrix.cols(),
            row_ptr: matrix.row_ptr().to_vec(),
            col_indices: AlignedVec::from_fn(src_cols.len(), |i| src_cols[i] as u32),
            values: AlignedVec::from_slice(matrix.values()),
        })
    }

    /// Re-copies the values from `matrix` (e.g. after GCN re-normalization
    /// through [`CsrMatrix::values_mut`]) without re-packing the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::IndexValueLength`] if `matrix` no
    /// longer has the same non-zero count as this packing.
    pub fn refresh_values(&mut self, matrix: &CsrMatrix<f32>) -> Result<(), SparseFormatError> {
        if matrix.nnz() != self.values.len() {
            return Err(SparseFormatError::IndexValueLength {
                indices: self.values.len(),
                values: matrix.nnz(),
            });
        }
        self.values.as_mut_slice().copy_from_slice(matrix.values());
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array, of length `rows + 1`.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The packed `u32` column indices, of length `nnz`, 64-byte aligned.
    pub fn col_indices(&self) -> &[u32] {
        self.col_indices.as_slice()
    }

    /// The packed values, of length `nnz`, 64-byte aligned.
    pub fn values(&self) -> &[f32] {
        self.values.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(
            4,
            5,
            &[
                (0, 1, 1.5),
                (0, 4, -2.0),
                (1, 0, 3.0),
                (3, 2, 0.25),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn aligned_vec_is_cache_aligned_and_round_trips() {
        for len in [0usize, 1, 3, 15, 16, 17, 100, 1000] {
            let v = AlignedVec::<f32>::from_fn(len, |i| i as f32 * 0.5);
            assert_eq!(v.len(), len);
            assert_eq!(v.is_empty(), len == 0);
            if len > 0 {
                assert!(v.is_cache_aligned(), "len={len}");
            }
            assert!(v
                .as_slice()
                .iter()
                .enumerate()
                .all(|(i, &x)| x == i as f32 * 0.5));
            let u = AlignedVec::<u32>::from_fn(len, |i| i as u32 * 3);
            if len > 0 {
                assert!(u.is_cache_aligned(), "len={len}");
            }
            assert_eq!(u.as_slice().len(), len);
        }
    }

    #[test]
    fn aligned_vec_mutation_writes_through() {
        let mut v = AlignedVec::<f32>::from_fn(8, |_| 0.0);
        v.as_mut_slice()[3] = 7.0;
        assert_eq!(v.as_slice()[3], 7.0);
    }

    #[test]
    fn pack_preserves_structure_and_values() {
        let m = sample();
        let p = PackedCsr::pack(&m).unwrap();
        assert_eq!(p.rows(), m.rows());
        assert_eq!(p.cols(), m.cols());
        assert_eq!(p.nnz(), m.nnz());
        assert_eq!(p.row_ptr(), m.row_ptr());
        let widened: Vec<usize> = p.col_indices().iter().map(|&c| c as usize).collect();
        assert_eq!(widened, m.col_indices());
        assert_eq!(p.values(), m.values());
    }

    #[test]
    fn packed_buffers_are_aligned() {
        let p = PackedCsr::pack(&sample()).unwrap();
        assert_eq!(p.col_indices().as_ptr() as usize % CACHE_LINE_BYTES, 0);
        assert_eq!(p.values().as_ptr() as usize % CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn refresh_values_tracks_reweighting() {
        let mut m = sample();
        let mut p = PackedCsr::pack(&m).unwrap();
        for v in m.values_mut() {
            *v *= 2.0;
        }
        p.refresh_values(&m).unwrap();
        assert_eq!(p.values(), m.values());
        let other = CsrMatrix::<f32>::zeros(4, 5);
        assert!(p.refresh_values(&other).is_err());
    }

    #[test]
    fn empty_matrix_packs() {
        let p = PackedCsr::pack(&CsrMatrix::<f32>::zeros(3, 3)).unwrap();
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.row_ptr(), &[0, 0, 0, 0]);
    }
}
