//! Structured (Type II) graph generator.
//!
//! The paper's Type II inputs are molecular datasets (PROTEINS_full, DD,
//! Yeast, OVCAR-8H, SW-620H) and Twitter-partial — graphs whose row lengths
//! are nearly uniform (max degree within a small factor of the average), so
//! they exhibit no evil rows and no load-imbalance challenge.
//!
//! The generator produces a *banded* adjacency structure: each node connects
//! to its nearest neighbors in index order, which matches the
//! block-diagonal / small-component structure of the molecular datasets:
//! near-uniform degrees, high access locality, bounded bandwidth.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mpspmm_sparse::CsrMatrix;

use crate::powerlaw::fix_sum;
use crate::DatasetSpec;

pub(crate) fn generate_structured(spec: &DatasetSpec, seed: u64) -> CsrMatrix<f32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
    let n = spec.nodes;
    let cap = spec.max_degree.min(n - 1);

    // Near-uniform degree sequence: everyone gets floor(avg), the remainder
    // is spread with small random jitter, one pinned node attains the max.
    let base = spec.nnz / n;
    let mut degrees = vec![base.min(cap); n];
    let hub = rng.gen_range(0..n);
    degrees[hub] = cap;
    let mut remainder = spec.nnz.saturating_sub(degrees.iter().sum::<usize>());
    // Spread the remainder round-robin with a random offset; the +1 jitter
    // keeps rows within one of each other (structured graphs have max/avg
    // ratios of ~2-7, far from power-law skew).
    let offset = rng.gen_range(0..n);
    let mut i = 0usize;
    while remainder > 0 && i < 4 * n {
        let node = (offset + i) % n;
        if node != hub && degrees[node] < cap {
            degrees[node] += 1;
            remainder -= 1;
        }
        i += 1;
    }
    fix_sum(&mut degrees, spec.nnz, cap, hub, &mut rng);

    realize_banded(n, &degrees)
}

/// Materializes a banded adjacency matrix: node `i`'s neighbors are
/// `i+1, i-1, i+2, i-2, …` (clipped at the boundary), taking `degrees[i]`
/// distinct targets.
fn realize_banded(n: usize, degrees: &[usize]) -> CsrMatrix<f32> {
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    for &d in degrees {
        row_ptr.push(row_ptr.last().unwrap() + d);
    }
    let nnz = *row_ptr.last().unwrap();
    let mut col_indices = Vec::with_capacity(nnz);
    let mut picked = Vec::new();
    for (row, &d) in degrees.iter().enumerate() {
        picked.clear();
        let mut step = 1usize;
        while picked.len() < d {
            let above = row + step;
            if above < n {
                picked.push(above);
            }
            if picked.len() < d {
                if let Some(below) = row.checked_sub(step) {
                    picked.push(below);
                }
            }
            step += 1;
            assert!(
                step <= n,
                "degree {d} of row {row} exceeds available targets"
            );
        }
        picked.sort_unstable();
        col_indices.extend_from_slice(&picked);
    }
    let values = vec![1.0f32; nnz];
    CsrMatrix::new(n, n, row_ptr, col_indices, values)
        .expect("banded generator maintains CSR invariants")
}

#[cfg(test)]
mod tests {
    use crate::{DatasetSpec, GraphClass};
    use mpspmm_sparse::stats::DegreeStats;

    fn spec(nodes: usize, nnz: usize, max_degree: usize) -> DatasetSpec {
        DatasetSpec::custom("t", GraphClass::Structured, nodes, nnz, max_degree)
    }

    #[test]
    fn matches_spec_exactly() {
        let s = spec(2_000, 4_200, 6); // Yeast-like: avg 2.1, max 6
        let a = s.synthesize(13);
        let st = DegreeStats::compute(&a);
        assert_eq!(st.rows, 2_000);
        assert_eq!(st.nnz, 4_200);
        assert_eq!(st.max, 6);
    }

    #[test]
    fn degrees_are_near_uniform() {
        let s = spec(3_000, 15_000, 19); // DD-like: avg 5, max 19
        let a = s.synthesize(4);
        let st = DegreeStats::compute(&a);
        assert!(
            st.gini < 0.15,
            "structured graph should be even, gini = {}",
            st.gini
        );
        assert!(st.evil_row_ratio() < 8.0);
    }

    #[test]
    fn structure_is_banded_and_local() {
        let s = spec(1_000, 2_500, 12);
        let a = s.synthesize(21);
        for r in 0..a.rows() {
            for &c in a.row(r).cols {
                assert!(
                    (c as isize - r as isize).unsigned_abs() <= 16,
                    "row {r} reaches far column {c}"
                );
                assert_ne!(c, r, "self loop at {r}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = spec(500, 1_100, 5);
        assert_eq!(s.synthesize(2), s.synthesize(2));
    }

    #[test]
    fn structured_vs_powerlaw_skew() {
        let st = DegreeStats::compute(&spec(2_000, 4_200, 6).synthesize(1));
        let pl = DegreeStats::compute(
            &DatasetSpec::custom("p", GraphClass::PowerLaw, 2_000, 4_200, 300).synthesize(1),
        );
        assert!(
            pl.gini > 2.0 * st.gini.max(0.05),
            "power law ({}) must be more skewed than structured ({})",
            pl.gini,
            st.gini
        );
    }
}
