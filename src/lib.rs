//! Facade crate for the MergePath-SpMM reproduction.
//!
//! Re-exports every sub-crate of the workspace under one roof so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`sparse`] — CSR/COO/dense matrix substrate.
//! * [`graphs`] — synthetic evaluation graphs (paper Table II).
//! * [`core`] — the MergePath-SpMM algorithm and the software baselines.
//! * [`simt`] — GPU (SIMT) machine model, AWB-GCN and vendor-library models.
//! * [`multicore`] — Graphite-like 1000-core multicore simulator (Table I).
//! * [`gcn`] — graph convolutional network substrate.
//! * [`serve`] — batched multi-tenant inference serving layer over the
//!   execution engine (graph registry, coalescing scheduler, admission
//!   control, serving stats).
//!
//! # Quickstart
//!
//! ```
//! use merge_path_spmm::core::{MergePathSpmm, SpmmKernel};
//! use merge_path_spmm::sparse::{CsrMatrix, DenseMatrix};
//!
//! let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0f32), (1, 0, 2.0)])?;
//! let xw = DenseMatrix::from_fn(2, 4, |r, c| (r + c) as f32);
//! let kernel = MergePathSpmm::with_threads(2);
//! let c = kernel.spmm(&a, &xw)?;
//! assert_eq!(c.get(1, 3), 6.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpspmm_core as core;
pub use mpspmm_gcn as gcn;
pub use mpspmm_graphs as graphs;
pub use mpspmm_multicore as multicore;
pub use mpspmm_serve as serve;
pub use mpspmm_simt as simt;
pub use mpspmm_sparse as sparse;

// Fused GCN layer pipeline entry points, re-exported at the facade root:
// [`ExecEngine`] carries both halves of a layer — the parallel blocked
// GEMM (`ExecEngine::gemm`) and the SpMM whose store stage applies an
// [`Epilogue`] to direct rows in place — and [`WideIsa`] reports which
// runtime-detected wide instruction set the data path dispatched to.
pub use mpspmm_core::{Epilogue, ExecEngine, WideIsa};
