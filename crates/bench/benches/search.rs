//! Criterion benchmark of the constrained 2-D binary search — the inner
//! primitive of Algorithm 1 (one call per thread boundary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpspmm_core::merge_path_search;
use mpspmm_graphs::{DatasetSpec, GraphClass};

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_path_search");
    for (label, nodes, nnz, max_deg) in [
        ("10k", 10_000usize, 50_000usize, 500usize),
        ("300k", 300_000, 1_500_000, 2_000),
    ] {
        let a = DatasetSpec::custom("pl", GraphClass::PowerLaw, nodes, nnz, max_deg).synthesize(7);
        let row_end = &a.row_ptr()[1..];
        let total = a.merge_items();
        group.bench_with_input(BenchmarkId::from_parameter(label), &a, |bch, a| {
            bch.iter(|| {
                // Sweep 1024 evenly spaced diagonals (one schedule build's
                // worth of searches at the paper's thread floor).
                let mut acc = 0usize;
                for t in 0..1024usize {
                    let diag = t * total / 1024;
                    acc += merge_path_search(diag, row_end, a.nnz()).row;
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_search
}
criterion_main!(benches);
