//! Multicore machine description (Table I of the paper).

/// Cache line size in bytes (fixed across the hierarchy).
pub const LINE_BYTES: usize = 64;

/// Parameters of the simulated large-core-count multicore (the paper's
/// Graphite-based RISC-V setup, Table I).
///
/// The reference configuration is 1024 single-threaded in-order cores at
/// 1 GHz with 4 KB private L1s, a shared distributed L2 of 8 KB per-core
/// slices (8 MB total), an invalidation-based MESI directory with
/// limited-4 sharer tracking, a 2-D mesh with X-Y routing (2-cycle hops,
/// link contention only), 32 memory controllers, and 320 GB/s DRAM at
/// 100 ns latency. Each core has a 4-lane 16-bit SIMD unit.
///
/// Per §V-D, when scaling the core count *down* the total cache capacity
/// stays constant (per-core caches grow) and the total DRAM bandwidth
/// stays constant (fewer controllers): use [`with_cores`](Self::with_cores).
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Number of cores (one kernel thread per core in the evaluation).
    pub cores: usize,
    /// Core clock in GHz (converts cycles to seconds for reporting).
    pub clock_ghz: f64,
    /// Private L1 data cache capacity per core, in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// Shared L2 capacity per core slice, in bytes.
    pub l2_slice_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 slice access latency in cycles (excluding the mesh).
    pub l2_latency: u64,
    /// Maximum sharers tracked exactly by the directory (Limited-4);
    /// additional readers evict an existing sharer.
    pub directory_limit: usize,
    /// Mesh hop latency in cycles (1 router + 1 link in the paper).
    pub hop_latency: u64,
    /// Number of memory controllers at the chip boundary.
    pub memory_controllers: usize,
    /// DRAM access latency in cycles (100 ns at 1 GHz).
    pub dram_latency: u64,
    /// Aggregate DRAM bandwidth in bytes per cycle (320 GB/s at 1 GHz).
    pub dram_bytes_per_cycle: f64,
    /// SIMD lanes per core (4 lanes of 16-bit operations in Table I).
    pub simd_lanes: usize,
    /// Non-SIMD bookkeeping cycles per processed non-zero (index loads,
    /// address arithmetic, loop overhead) on the in-order core.
    pub scalar_cycles_per_nnz: u64,
    /// Extra cycles per atomic read-modify-write beyond the coherence
    /// traffic itself (reservation/retry of the CAS loop).
    pub atomic_overhead: u64,
}

impl McConfig {
    /// The paper's Table I configuration at 1024 cores.
    pub fn table_i() -> Self {
        Self {
            cores: 1024,
            clock_ghz: 1.0,
            l1_bytes: 4 * 1024,
            l1_ways: 4,
            l1_latency: 1,
            l2_slice_bytes: 8 * 1024,
            l2_ways: 8,
            l2_latency: 8,
            directory_limit: 4,
            hop_latency: 2,
            memory_controllers: 32,
            dram_latency: 100,
            dram_bytes_per_cycle: 320.0,
            simd_lanes: 4,
            scalar_cycles_per_nnz: 6,
            atomic_overhead: 10,
        }
    }

    /// Scales the Table I machine to `cores`, holding total cache capacity
    /// and total DRAM bandwidth constant (§V-D): per-core L1/L2 grow as the
    /// core count shrinks, and controllers shrink proportionally.
    ///
    /// # Panics
    ///
    /// Panics unless `cores` is a power of two between 2 and 1024.
    pub fn with_cores(cores: usize) -> Self {
        assert!(
            cores.is_power_of_two() && (2..=1024).contains(&cores),
            "core count must be a power of two in [2, 1024]"
        );
        let scale = 1024 / cores;
        let base = Self::table_i();
        Self {
            cores,
            l1_bytes: base.l1_bytes * scale,
            l2_slice_bytes: base.l2_slice_bytes * scale,
            memory_controllers: (base.memory_controllers / scale).max(1),
            ..base
        }
    }

    /// Mesh side length (smallest square covering the cores).
    pub fn mesh_side(&self) -> usize {
        (self.cores as f64).sqrt().ceil() as usize
    }

    /// Average one-way hop count for uniformly distributed traffic on the
    /// X-Y routed mesh: `(Nx + Ny) / 3`.
    pub fn avg_hops(&self) -> f64 {
        2.0 * self.mesh_side() as f64 / 3.0
    }

    /// One-way network latency for an average-distance message, in cycles.
    pub fn avg_network_latency(&self) -> u64 {
        (self.avg_hops() * self.hop_latency as f64).round() as u64
    }

    /// Total shared L2 capacity in bytes.
    pub fn l2_total_bytes(&self) -> usize {
        self.l2_slice_bytes * self.cores
    }

    /// SIMD cycles to process one non-zero's multiply-accumulate across a
    /// `dim`-wide dense row.
    pub fn simd_cycles_per_nnz(&self, dim: usize) -> u64 {
        dim.div_ceil(self.simd_lanes) as u64
    }
}

impl Default for McConfig {
    fn default() -> Self {
        Self::table_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper() {
        let c = McConfig::table_i();
        assert_eq!(c.cores, 1024);
        assert_eq!(c.l1_bytes, 4 * 1024);
        assert_eq!(c.l2_slice_bytes, 8 * 1024);
        assert_eq!(c.l2_total_bytes(), 8 * 1024 * 1024); // 8 MB total
        assert_eq!(c.directory_limit, 4);
        assert_eq!(c.memory_controllers, 32);
        assert_eq!(c.dram_latency, 100);
        assert!((c.dram_bytes_per_cycle - 320.0).abs() < 1e-9);
        assert_eq!(c.hop_latency, 2);
        assert_eq!(c.mesh_side(), 32);
    }

    #[test]
    fn scaling_preserves_totals() {
        for cores in [64, 128, 256, 512, 1024] {
            let c = McConfig::with_cores(cores);
            assert_eq!(c.cores, cores);
            assert_eq!(c.l1_bytes * cores, 4 * 1024 * 1024); // 4 MB total L1
            assert_eq!(c.l2_total_bytes(), 8 * 1024 * 1024);
            assert!((c.dram_bytes_per_cycle - 320.0).abs() < 1e-9);
        }
        assert_eq!(McConfig::with_cores(64).memory_controllers, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_core_counts() {
        McConfig::with_cores(100);
    }

    #[test]
    fn simd_cycles_follow_dimension() {
        let c = McConfig::table_i();
        assert_eq!(c.simd_cycles_per_nnz(16), 4);
        assert_eq!(c.simd_cycles_per_nnz(2), 1);
        assert_eq!(c.simd_cycles_per_nnz(128), 32);
    }

    #[test]
    fn network_latency_grows_with_mesh() {
        let big = McConfig::with_cores(1024);
        let small = McConfig::with_cores(64);
        assert!(big.avg_network_latency() > small.avg_network_latency());
    }
}
