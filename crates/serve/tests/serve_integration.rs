//! End-to-end tests of the serving layer: correctness of batched
//! answers, hot swap, admission control, deadlines, and shutdown.

use std::sync::Arc;
use std::time::Duration;

use mpspmm_core::{ExecEngine, MergePathSpmm, SpmmKernel};
use mpspmm_gcn::GcnModel;
use mpspmm_serve::{Request, ServeConfig, ServeError, Server, Workload};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};

const NODES: usize = 24;

/// A deterministic ring-with-chords test graph whose values depend on
/// `seed`, so two versions of "the same" graph give different answers.
fn graph(seed: f32) -> CsrMatrix<f32> {
    let mut trips = Vec::new();
    for r in 0..NODES {
        trips.push((r, (r + 1) % NODES, seed + r as f32 * 0.25));
        if r % 3 == 0 {
            trips.push((r, (r + 7) % NODES, 0.5 * seed));
        }
    }
    CsrMatrix::from_triplets(NODES, NODES, &trips).unwrap()
}

fn feats(cols: usize, salt: usize) -> DenseMatrix<f32> {
    DenseMatrix::from_fn(NODES, cols, |r, c| {
        ((r * 31 + c * 7 + salt) % 13) as f32 * 0.5 - 3.0
    })
}

fn server(config: ServeConfig) -> Server {
    Server::start(
        Arc::new(ExecEngine::new(1)),
        Box::new(MergePathSpmm::with_threads(6)),
        config,
    )
}

fn req(graph: &str, tenant: &str, features: DenseMatrix<f32>, workload: Workload) -> Request {
    Request {
        graph: graph.into(),
        tenant: tenant.into(),
        features: Arc::new(features),
        workload,
        deadline: None,
    }
}

#[test]
fn spmm_requests_match_direct_kernel_execution() {
    let srv = server(ServeConfig::default());
    srv.register("g", graph(1.0), None);
    let kernel = MergePathSpmm::with_threads(6);
    let a = graph(1.0);
    for salt in 0..4 {
        let b = feats(5, salt);
        let expect = kernel.spmm(&a, &b).unwrap();
        let got = srv
            .submit(req("g", "t", b, Workload::Spmm))
            .unwrap()
            .wait()
            .unwrap();
        // Single-worker engine + column-independent batching => exact.
        assert_eq!(got.max_abs_diff(&expect).unwrap(), 0.0, "salt {salt}");
    }
    srv.shutdown();
}

#[test]
fn gcn_requests_match_unbatched_forward() {
    let srv = server(ServeConfig::default());
    let model = GcnModel::two_layer(6, 10, 3, 42);
    srv.register("g", graph(1.0), Some(model));
    let kernel = MergePathSpmm::with_threads(6);
    let a = graph(1.0);
    let reference = GcnModel::two_layer(6, 10, 3, 42);
    for salt in 0..3 {
        let x = feats(6, salt);
        let expect = reference.forward(&a, &x, &kernel).unwrap();
        let got = srv
            .submit(req("g", "t", x, Workload::Gcn))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(got.rows(), NODES);
        assert_eq!(got.cols(), 3);
        assert!(got.approx_eq(&expect, 1e-5).unwrap(), "salt {salt}");
    }
    srv.shutdown();
}

#[test]
fn concurrent_requests_coalesce_into_batches() {
    let srv = server(ServeConfig {
        max_linger: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    srv.register("g", graph(1.0), None);
    let kernel = MergePathSpmm::with_threads(6);
    let a = graph(1.0);
    // Submit everything before waiting on anything: the dispatcher's
    // linger window coalesces them.
    let tickets: Vec<_> = (0..6)
        .map(|salt| {
            let b = feats(3, salt);
            (salt, srv.submit(req("g", "t", b, Workload::Spmm)).unwrap())
        })
        .collect();
    for (salt, ticket) in tickets {
        let expect = kernel.spmm(&a, &feats(3, salt)).unwrap();
        let got = ticket.wait().unwrap();
        assert_eq!(got.max_abs_diff(&expect).unwrap(), 0.0, "salt {salt}");
    }
    let stats = srv.stats();
    assert_eq!(stats.completed, 6);
    assert!(
        stats.batches < 6 && stats.mean_batch_requests > 1.0,
        "expected coalescing, got {} batches for 6 requests",
        stats.batches
    );
    assert_eq!(stats.batched_cols, 18);
    assert_eq!(stats.tenants.len(), 1);
    assert_eq!(stats.tenants[0].completed, 6);
    assert_eq!(stats.tenants[0].in_flight, 0);
    srv.shutdown();
}

#[test]
fn bounded_tenant_queue_rejects_with_typed_error() {
    let srv = server(ServeConfig {
        tenant_queue_limit: 2,
        max_linger: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    srv.register("g", graph(1.0), None);
    let t1 = srv
        .submit(req("g", "small", feats(2, 0), Workload::Spmm))
        .unwrap();
    let t2 = srv
        .submit(req("g", "small", feats(2, 1), Workload::Spmm))
        .unwrap();
    // Third in-flight request for the same tenant bounces.
    let err = srv
        .submit(req("g", "small", feats(2, 2), Workload::Spmm))
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::QueueFull {
            tenant: "small".into(),
            limit: 2
        }
    );
    // A different tenant has its own bound and is admitted.
    let t3 = srv
        .submit(req("g", "big", feats(2, 3), Workload::Spmm))
        .unwrap();
    for t in [t1, t2, t3] {
        t.wait().unwrap();
    }
    let stats = srv.stats();
    assert_eq!(stats.rejected_queue_full, 1);
    let small = stats.tenants.iter().find(|t| t.tenant == "small").unwrap();
    assert_eq!(small.rejected_queue_full, 1);
    assert_eq!(small.completed, 2);
    // The slot freed once replies landed: the tenant can submit again.
    srv.submit(req("g", "small", feats(2, 4), Workload::Spmm))
        .unwrap()
        .wait()
        .unwrap();
    srv.shutdown();
}

#[test]
fn expired_deadlines_are_shed_not_computed() {
    let srv = server(ServeConfig::default());
    srv.register("g", graph(1.0), None);
    let mut r = req("g", "t", feats(2, 0), Workload::Spmm);
    r.deadline = Some(Duration::ZERO);
    let err = srv.submit(r).unwrap().wait().unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded);
    let stats = srv.stats();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.completed, 0);
    assert_eq!(
        stats.tenants[0].in_flight, 0,
        "shed requests free their slot"
    );
    // Subsequent requests are unaffected.
    srv.submit(req("g", "t", feats(2, 1), Workload::Spmm))
        .unwrap()
        .wait()
        .unwrap();
    srv.shutdown();
}

#[test]
fn hot_swap_serves_old_version_to_in_flight_requests() {
    let srv = server(ServeConfig {
        // Long linger: the v1 request is still lingering when v2 lands.
        max_linger: Duration::from_millis(250),
        ..ServeConfig::default()
    });
    srv.register("g", graph(1.0), None);
    let kernel = MergePathSpmm::with_threads(6);
    let b = feats(3, 0);
    let in_flight = srv
        .submit(req("g", "t", b.clone(), Workload::Spmm))
        .unwrap();
    // Swap while the request lingers in the batcher.
    let v2 = srv.register("g", graph(9.0), None);
    assert!(v2.version() > 1);
    let got_v1 = in_flight.wait().unwrap();
    let expect_v1 = kernel.spmm(&graph(1.0), &b).unwrap();
    assert_eq!(
        got_v1.max_abs_diff(&expect_v1).unwrap(),
        0.0,
        "in-flight request must complete against the version it was admitted with"
    );
    // New submissions resolve to v2.
    let got_v2 = srv
        .submit(req("g", "t", b.clone(), Workload::Spmm))
        .unwrap()
        .wait()
        .unwrap();
    let expect_v2 = kernel.spmm(&graph(9.0), &b).unwrap();
    assert_eq!(got_v2.max_abs_diff(&expect_v2).unwrap(), 0.0);
    // Retiring stops routing without touching anything in flight.
    srv.registry().retire("g").unwrap();
    let err = srv.submit(req("g", "t", b, Workload::Spmm)).unwrap_err();
    assert_eq!(err, ServeError::UnknownGraph("g".into()));
    srv.shutdown();
}

#[test]
fn admission_rejects_bad_requests_with_typed_errors() {
    let srv = server(ServeConfig::default());
    srv.register("plain", graph(1.0), None);
    srv.register("model", graph(1.0), Some(GcnModel::two_layer(6, 8, 2, 1)));

    let err = srv
        .submit(req("nope", "t", feats(2, 0), Workload::Spmm))
        .unwrap_err();
    assert_eq!(err, ServeError::UnknownGraph("nope".into()));

    let err = srv
        .submit(req("plain", "t", feats(2, 0), Workload::Gcn))
        .unwrap_err();
    assert_eq!(err, ServeError::NoModel("plain".into()));

    let wrong_rows = DenseMatrix::from_fn(NODES + 1, 2, |_, _| 0.0);
    let err = srv
        .submit(req("plain", "t", wrong_rows, Workload::Spmm))
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::BadShape {
            expected_rows: NODES,
            expected_cols: None,
            got: (NODES + 1, 2)
        }
    );

    // GCN fixes the column count to the model's input width.
    let err = srv
        .submit(req("model", "t", feats(5, 0), Workload::Gcn))
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::BadShape {
            expected_rows: NODES,
            expected_cols: Some(6),
            got: (NODES, 5)
        }
    );
    // None of the rejects consumed a queue slot.
    assert!(srv.stats().tenants.iter().all(|t| t.in_flight == 0));
    srv.shutdown();
}

#[test]
fn shutdown_answers_admitted_requests_then_refuses_new_ones() {
    let srv = server(ServeConfig {
        max_linger: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    srv.register("g", graph(1.0), None);
    let tickets: Vec<_> = (0..4)
        .map(|salt| {
            srv.submit(req("g", "t", feats(2, salt), Workload::Spmm))
                .unwrap()
        })
        .collect();
    // Grab a second handle pattern: shutdown consumes the server, so
    // submit-after-shutdown is exercised through a fresh server below.
    srv.shutdown();
    for t in tickets {
        t.wait().unwrap();
    }

    let srv = server(ServeConfig::default());
    srv.register("g", graph(1.0), None);
    let held = srv
        .submit(req("g", "t", feats(2, 0), Workload::Spmm))
        .unwrap();
    held.wait().unwrap();
    // Drop also shuts down; afterwards the dispatcher is gone, which we
    // can only observe through the typed refusal on a clone… instead,
    // verify the flag path directly on a live server that is told to
    // stop via Drop.
    drop(srv);
}

#[test]
fn engine_stats_are_threaded_through_serve_stats() {
    let srv = server(ServeConfig::default());
    srv.register("g", graph(1.0), None);
    srv.submit(req("g", "t", feats(4, 0), Workload::Spmm))
        .unwrap()
        .wait()
        .unwrap();
    let stats = srv.stats();
    assert_eq!(
        stats.engine.plan_cache_misses, 1,
        "registration warmed exactly one plan"
    );
    assert!(stats.engine.cached_plans >= 1);
    assert!(stats.latency.samples >= 1);
    assert!(stats.latency.p99_us >= stats.latency.p50_us);
    srv.shutdown();
}

#[test]
fn wide_hidden_dim_gcn_serves_through_column_stripes() {
    // A 256-wide hidden layer on a multi-worker engine: the aggregation
    // SpMM must route through the column-striped scheduler (Auto's
    // wide-dim choice) and the GEMM through k-blocks, both visible in
    // the snapshot — and the answer must match the plain forward.
    let srv = Server::start(
        Arc::new(ExecEngine::new(4)),
        Box::new(MergePathSpmm::with_threads(6)),
        ServeConfig::default(),
    );
    let model = GcnModel::two_layer(6, 256, 3, 42);
    srv.register("g", graph(1.0), Some(model));
    let x = feats(6, 0);
    let got = srv
        .submit(req("g", "t", x.clone(), Workload::Gcn))
        .unwrap()
        .wait()
        .unwrap();
    let reference = GcnModel::two_layer(6, 256, 3, 42);
    let expect = reference
        .forward(&graph(1.0), &x, &MergePathSpmm::with_threads(6))
        .unwrap();
    assert!(got.approx_eq(&expect, 1e-4).unwrap());
    let stats = srv.stats();
    assert!(
        stats.engine.stripes_executed > 0,
        "wide hidden dim routed through column stripes"
    );
    assert!(stats.engine.kblocks > 0, "GEMM k-block counter surfaced");
    srv.shutdown();
}

#[test]
fn tuned_engine_converges_while_serving_and_reports_through_stats() {
    let tuner = Arc::new(mpspmm_core::AutoTuner::in_memory());
    let engine = Arc::new(ExecEngine::new(2).with_autotuner(Arc::clone(&tuner)));
    let srv = Server::start(
        engine,
        Box::new(MergePathSpmm::with_threads(6)),
        ServeConfig::default(),
    );
    let g = srv.register("g", graph(1.0), None);
    assert!(
        g.tune_state().is_some(),
        "registration attaches a tuner slot to the warmed plan"
    );
    let kernel = MergePathSpmm::with_threads(6);
    let a = graph(1.0);
    // Serve requests until the explorer converges; every answer along
    // the way — whatever arm it was measured on — must stay correct.
    let mut runs = 0usize;
    while !g.tune_state().unwrap().is_converged() {
        runs += 1;
        assert!(runs <= 200, "tuner failed to converge while serving");
        let b = feats(4, runs);
        let expect = kernel.spmm(&a, &b).unwrap();
        let got = srv
            .submit(req("g", "t", b, Workload::Spmm))
            .unwrap()
            .wait()
            .unwrap();
        assert!(got.approx_eq(&expect, 1e-4).unwrap(), "run {runs}");
    }
    let stats = srv.stats();
    assert_eq!(stats.tuned_graphs.len(), 1);
    let status = &stats.tuned_graphs[0];
    assert_eq!(status.graph, "g");
    assert_eq!(status.version, g.version());
    assert!(status.converged, "snapshot must reflect convergence");
    assert!(
        status.explorations > 0,
        "convergence took live measurements"
    );
    assert!(stats.engine.tuner.explorations >= status.explorations);
    assert_eq!(stats.engine.tuner.converged_plans, 1);
    assert_eq!(tuner.len(), 1, "verdict filed in the calibration table");
    srv.shutdown();

    // An untuned server reports no tuning status at all.
    let plain = server(ServeConfig::default());
    plain.register("g", graph(1.0), None);
    if std::env::var_os("MPSPMM_TUNE").is_none_or(|v| v == "0") {
        assert!(plain.stats().tuned_graphs.is_empty());
    }
    plain.shutdown();
}

#[test]
fn fused_pipeline_stats_are_threaded_through_serve_stats() {
    let srv = server(ServeConfig::default());
    srv.register("g", graph(1.0), Some(GcnModel::two_layer(6, 10, 3, 42)));
    srv.submit(req("g", "t", feats(6, 0), Workload::Gcn))
        .unwrap()
        .wait()
        .unwrap();
    let stats = srv.stats();
    // The batched GCN path runs both halves of the fused layer pipeline
    // on the engine; its counters must surface through ServeStats.
    assert!(
        stats.engine.gemm_panels > 0,
        "combination GEMM ran on the engine"
    );
    assert!(stats.engine.gemm_ns > 0, "GEMM time was recorded");
    assert!(
        stats.engine.fused_epilogues > 0,
        "aggregation applied a fused epilogue"
    );
    srv.shutdown();
}

// ---------------------------------------------------------------------------
// Mega-batching: block-diagonal graph packing
// ---------------------------------------------------------------------------

/// A small ring-with-chords graph of arbitrary node count, structure
/// fixed by `nodes` and values by `seed` — so hot-swapping the seed is a
/// value-only swap.
fn small_graph(nodes: usize, seed: f32) -> CsrMatrix<f32> {
    let mut trips = Vec::new();
    for r in 0..nodes {
        trips.push((r, (r + 1) % nodes, seed + r as f32 * 0.25));
        if r % 3 == 0 {
            trips.push((r, (r + 5) % nodes, 0.5 * seed));
        }
    }
    CsrMatrix::from_triplets(nodes, nodes, &trips).unwrap()
}

fn small_feats(nodes: usize, cols: usize, salt: usize) -> DenseMatrix<f32> {
    DenseMatrix::from_fn(nodes, cols, |r, c| {
        ((r * 29 + c * 11 + salt) % 17) as f32 * 0.25 - 2.0
    })
}

fn pack_server(linger_ms: u64) -> Server {
    server(ServeConfig {
        pack_graphs: true,
        max_linger: Duration::from_millis(linger_ms),
        ..ServeConfig::default()
    })
}

#[test]
fn packed_windows_mix_graphs_and_match_sequential_execution() {
    let srv = pack_server(200);
    let sizes = [8usize, 12, 17, 24, 9, 31];
    for (i, &n) in sizes.iter().enumerate() {
        srv.register(&format!("g{i}"), small_graph(n, 1.0 + i as f32), None);
    }
    // Submit everything before waiting: one packed window coalesces all
    // six *different* graphs into a single block-diagonal execution.
    let tickets: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let b = small_feats(n, 4, i);
            let t = srv
                .submit(req(&format!("g{i}"), "t", b, Workload::Spmm))
                .unwrap();
            (i, n, t)
        })
        .collect();
    let reference = MergePathSpmm::with_threads(1);
    for (i, n, ticket) in tickets {
        let a = small_graph(n, 1.0 + i as f32);
        let (expect, _) = reference
            .spmm_sequential(&a, &small_feats(n, 4, i))
            .unwrap();
        let got = ticket.wait().unwrap();
        assert_eq!(got.rows(), n, "graph {i}");
        // Row-aligned packed execution is bit-identical to sequential.
        assert_eq!(got.max_abs_diff(&expect).unwrap(), 0.0, "graph {i}");
    }
    let stats = srv.stats();
    assert_eq!(stats.completed, 6);
    assert!(
        stats.packed_batches >= 1,
        "expected at least one packed window"
    );
    assert!(
        stats.mean_graphs_per_batch > 1.0,
        "packed windows hold more than one graph"
    );
    assert!(stats.packed_nnz > 0);
    assert!(
        stats.pack_efficiency > 0.0 && stats.pack_efficiency <= 1.0,
        "pack efficiency is a fraction of the window nnz budget, got {}",
        stats.pack_efficiency
    );
    assert_eq!(
        stats.graphs_per_batch_hist.iter().sum::<u64>(),
        stats.packed_batches,
        "every packed window lands in exactly one histogram bucket"
    );
    assert!(
        stats.engine.batch_plan_misses >= 1,
        "first window plans fresh"
    );
    srv.shutdown();
}

#[test]
fn inline_graphs_pack_with_registered_ones() {
    let srv = pack_server(200);
    srv.register("g", small_graph(16, 2.0), None);
    let t_reg = srv
        .submit(req("g", "t", small_feats(16, 3, 0), Workload::Spmm))
        .unwrap();
    let ad_hoc = small_graph(11, 3.5);
    let t_inline = srv
        .submit_inline("t", ad_hoc.clone(), Arc::new(small_feats(11, 3, 1)), None)
        .unwrap();
    let reference = MergePathSpmm::with_threads(1);
    let (expect_reg, _) = reference
        .spmm_sequential(&small_graph(16, 2.0), &small_feats(16, 3, 0))
        .unwrap();
    let (expect_inline, _) = reference
        .spmm_sequential(&ad_hoc, &small_feats(11, 3, 1))
        .unwrap();
    assert_eq!(
        t_reg.wait().unwrap().max_abs_diff(&expect_reg).unwrap(),
        0.0
    );
    assert_eq!(
        t_inline
            .wait()
            .unwrap()
            .max_abs_diff(&expect_inline)
            .unwrap(),
        0.0
    );
    assert_eq!(srv.stats().completed, 2);
    // Inline admission still validates shapes.
    let err = srv
        .submit_inline(
            "t",
            small_graph(9, 1.0),
            Arc::new(small_feats(8, 3, 0)),
            None,
        )
        .unwrap_err();
    assert!(matches!(err, ServeError::BadShape { .. }));
    srv.shutdown();
}

#[test]
fn packed_gcn_windows_share_one_model_across_graphs() {
    let srv = pack_server(200);
    let model = Arc::new(GcnModel::two_layer(5, 9, 2, 7));
    let sizes = [10usize, 14, 21];
    for (i, &n) in sizes.iter().enumerate() {
        srv.registry().register_shared(
            &format!("g{i}"),
            small_graph(n, 0.5 + i as f32),
            Some(Arc::clone(&model)),
        );
    }
    let tickets: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let x = small_feats(n, 5, i);
            let t = srv
                .submit(req(&format!("g{i}"), "t", x, Workload::Gcn))
                .unwrap();
            (i, n, t)
        })
        .collect();
    let ref_engine = ExecEngine::new(1);
    let ref_kernel = MergePathSpmm::with_threads(1);
    for (i, n, ticket) in tickets {
        let a = small_graph(n, 0.5 + i as f32);
        let expect = model
            .forward_cached(
                &a,
                &small_feats(n, 5, i),
                &ref_kernel,
                &ref_engine,
                i as u64,
            )
            .unwrap();
        let got = ticket.wait().unwrap();
        assert_eq!(got.max_abs_diff(&expect).unwrap(), 0.0, "graph {i}");
    }
    assert_eq!(srv.stats().completed, 3);
    srv.shutdown();
}

#[test]
fn value_only_hot_swap_keeps_batch_plan_structural_swap_rebuilds() {
    let srv = pack_server(200);
    for i in 0..4 {
        srv.register(&format!("g{i}"), graph(1.0 + i as f32), None);
    }
    let run_window = |salt: usize| -> Vec<DenseMatrix<f32>> {
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                srv.submit(req(
                    &format!("g{i}"),
                    "t",
                    feats(3, salt + i),
                    Workload::Spmm,
                ))
                .unwrap()
            })
            .collect();
        tickets.into_iter().map(|t| t.wait().unwrap()).collect()
    };
    run_window(0);
    let s1 = srv.stats();
    assert_eq!(s1.packed_batches, 1, "all four requests packed one window");
    assert_eq!(s1.engine.batch_plan_misses, 1);
    assert_eq!(s1.engine.batch_plan_hits, 0);

    // Value-only hot swap of one constituent: identical structure, new
    // edge weights. The batch-shape-class plan must survive untouched.
    srv.register("g1", graph(42.0), None);
    let outs = run_window(10);
    let s2 = srv.stats();
    assert_eq!(
        s2.engine.batch_plan_hits, 1,
        "value-only swap must reuse the packed plan"
    );
    assert_eq!(s2.engine.batch_plan_rebuilds, 0);
    assert_eq!(s2.engine.batch_plan_misses, 1);
    // The reused plan still reads the *new* values.
    let (expect_swapped, _) = MergePathSpmm::with_threads(1)
        .spmm_sequential(&graph(42.0), &feats(3, 11))
        .unwrap();
    assert_eq!(outs[1].max_abs_diff(&expect_swapped).unwrap(), 0.0);

    // Structural swap: one extra edge. Same size class (nnz bucket is
    // unchanged), new structure fingerprint — the slot re-prepares in
    // place instead of minting a new cache entry.
    let mut trips = Vec::new();
    for r in 0..NODES {
        trips.push((r, (r + 1) % NODES, 2.0 + r as f32 * 0.25));
        if r % 3 == 0 {
            trips.push((r, (r + 7) % NODES, 1.0));
        }
    }
    trips.push((0, 13, 1.0));
    let structural = CsrMatrix::from_triplets(NODES, NODES, &trips).unwrap();
    srv.register("g1", structural, None);
    run_window(20);
    let s3 = srv.stats();
    assert_eq!(
        s3.engine.batch_plan_rebuilds, 1,
        "structural swap re-prepares the slot in place"
    );
    assert_eq!(
        s3.engine.batch_plan_misses, 1,
        "composition class unchanged — no new cache slot"
    );
    assert_eq!(s3.engine.batch_plan_hits, 1);
    srv.shutdown();
}

#[test]
fn burst_submission_aligns_outcomes_and_groups_replies() {
    // Bulk admission front door: one burst mixing admissible requests
    // (different graphs, several tenants) with every admission-error
    // class. Outcome slot i must describe request i, rejected requests
    // must never reply, and every admitted request's packed answer must
    // be bit-identical to the sequential oracle.
    let srv = server(ServeConfig {
        pack_graphs: true,
        max_linger: Duration::from_millis(200),
        tenant_queue_limit: 2,
        ..ServeConfig::default()
    });
    let sizes = [9usize, 14, 21, 11];
    for (i, &n) in sizes.iter().enumerate() {
        srv.register(&format!("g{i}"), small_graph(n, 3.0 + i as f32), None);
    }
    let mut reqs: Vec<Request> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            req(
                &format!("g{i}"),
                if i % 2 == 0 { "even" } else { "odd" },
                small_feats(n, 3, i),
                Workload::Spmm,
            )
        })
        .collect();
    // Slot 4: unknown graph. Slot 5: wrong feature rows. Slot 6: third
    // request for tenant "even" (limit 2) — typed queue-full rejection.
    reqs.push(req("missing", "even", small_feats(9, 3, 4), Workload::Spmm));
    reqs.push(req("g1", "odd", small_feats(9, 3, 5), Workload::Spmm));
    reqs.push(req("g3", "even", small_feats(11, 3, 6), Workload::Spmm));
    let (outcomes, ticket) = srv.submit_many(reqs);
    assert_eq!(outcomes.len(), 7);
    assert!(
        outcomes[..4].iter().all(Option::is_none),
        "valid slots admit"
    );
    assert!(matches!(outcomes[4], Some(ServeError::UnknownGraph(_))));
    assert!(matches!(outcomes[5], Some(ServeError::BadShape { .. })));
    assert!(matches!(
        outcomes[6],
        Some(ServeError::QueueFull { ref tenant, limit: 2 }) if tenant == "even"
    ));
    assert_eq!(ticket.expected(), 4);
    let replies = ticket.wait_all();
    assert_eq!(replies.len(), 7);
    assert!(
        replies[4..].iter().all(Option::is_none),
        "rejected requests never reply"
    );
    let reference = MergePathSpmm::with_threads(1);
    for (i, &n) in sizes.iter().enumerate() {
        let a = small_graph(n, 3.0 + i as f32);
        let (expect, _) = reference
            .spmm_sequential(&a, &small_feats(n, 3, i))
            .unwrap();
        let got = replies[i]
            .as_ref()
            .expect("admitted request replies")
            .as_ref()
            .expect("burst request succeeds");
        assert_eq!(
            got.max_abs_diff(&expect).unwrap(),
            0.0,
            "burst slot {i} deviates from the sequential oracle"
        );
    }
    let stats = srv.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.rejected_queue_full, 1);
    assert!(
        stats.tenants.iter().all(|t| t.in_flight == 0),
        "rejections must not leak in-flight slots"
    );
    srv.shutdown();
}

#[test]
fn sharded_graph_routes_through_shard_engines_bit_exactly() {
    let srv = server(ServeConfig::default());
    let model = GcnModel::two_layer(6, 10, 3, 42);
    srv.register_sharded("g", graph(1.0), Some(model), 3, 4);
    // Oracle: the same model forwarded on a 1-shard engine — sharded
    // forwards agree bitwise at every shard count.
    let reference = GcnModel::two_layer(6, 10, 3, 42);
    let single = mpspmm_core::ShardedEngine::new(&graph(1.0), 1, 1);
    for salt in 0..3 {
        let x = feats(6, salt);
        let expect = reference.forward_sharded(&single, &x).unwrap();
        let got = srv
            .submit(req("g", "t", x, Workload::Gcn))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            got.max_abs_diff(&expect).unwrap(),
            0.0,
            "salt {salt}: sharded serving deviates from 1-shard forward"
        );
    }
    // Spmm workload routes through the shard engines too.
    let b = feats(5, 9);
    let kernel = MergePathSpmm::with_threads(6);
    let expect = kernel.spmm(&graph(1.0), &b).unwrap();
    let got = srv
        .submit(req("g", "t", b, Workload::Spmm))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(got.max_abs_diff(&expect).unwrap(), 0.0);
    let stats = srv.stats();
    assert_eq!(stats.sharded_requests, 4);
    assert!(stats.sharded_batches >= 1);
    assert_eq!(stats.sharded_graphs.len(), 1);
    let gs = &stats.sharded_graphs[0];
    assert_eq!(gs.graph, "g");
    assert_eq!(gs.shards.len(), 3);
    assert_eq!(gs.shards.iter().map(|s| s.rows).sum::<usize>(), NODES);
    assert!(
        gs.shards.iter().all(|s| s.depth == 0),
        "nothing in flight after replies"
    );
    assert!(gs.shards.iter().any(|s| s.executed > 0));
    srv.shutdown();
}
