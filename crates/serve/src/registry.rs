//! Named, versioned graphs and their warmed execution state.
//!
//! A serving process owns a set of graphs by name. Each registration
//! builds a [`ServedGraph`]: the adjacency matrix, a [`PreparedPlan`]
//! warmed through the engine's plan cache (merge-path scheduling, row
//! classification, and packed `u32` indices all done *before* the first
//! request), and optionally a [`GcnModel`] for full-inference requests.
//!
//! # Hot swap
//!
//! Replacing a graph is `register` on an existing name: the registry
//! swaps the `Arc` in its map and bumps the version. Requests admitted
//! *before* the swap keep their `Arc<ServedGraph>` and complete against
//! the old version — nothing is drained, nothing blocks — while requests
//! admitted after resolve to the new one. The batching scheduler keys
//! batches on `(name, version)`, so the two versions never mix in one
//! batch. Retired versions are freed when the last in-flight request
//! drops its `Arc`; their cached plans age out of the engine's LRU plan
//! cache (each version gets a fresh epoch, so keys never collide).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mpspmm_core::{ExecEngine, PreparedPlan, ShardedEngine, SpmmKernel};
use mpspmm_gcn::GcnModel;
use mpspmm_sparse::CsrMatrix;

/// Dense dimension a model-less graph's plan is warmed at. The row
/// classification a [`PreparedPlan`] carries is width-independent, so the
/// choice only seeds the merge-path cost heuristic; 32 is the middle of
/// the paper's evaluated dimension range.
pub const DEFAULT_PLAN_DIM: usize = 32;

/// One registered graph version: adjacency, warmed plan, optional model.
///
/// Immutable once built — hot swap replaces the whole `Arc` rather than
/// mutating in place, so in-flight requests are never torn.
#[derive(Debug)]
pub struct ServedGraph {
    name: String,
    version: u64,
    epoch: u64,
    adjacency: Arc<CsrMatrix<f32>>,
    /// [`CsrMatrix::structure_hash`] of `adjacency`, computed once at
    /// registration: the graph-packing scheduler folds it into every
    /// window's [`BatchShapeClass`](mpspmm_core::BatchShapeClass), so a
    /// value-only hot swap (same structure, new weights) keeps the
    /// batch fingerprint — and the cached batch plan — intact.
    structure_hash: u64,
    prep: Arc<PreparedPlan>,
    model: Option<Arc<GcnModel>>,
    /// Scale-out execution state for graphs registered through
    /// [`GraphRegistry::register_sharded`]: the row partition plus one
    /// private engine per shard. `None` for ordinary registrations —
    /// the dispatcher routes through the shared serving engine.
    sharding: Option<Arc<ShardedEngine>>,
}

impl ServedGraph {
    /// The name this version is (or was) registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registry-wide monotonic version; a replacement always observes a
    /// larger version than what it replaced.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Plan-cache epoch of this version (unique per version).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Node count — the row count every feature block must match.
    pub fn nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// The (normalized) adjacency matrix requests aggregate over.
    pub fn adjacency(&self) -> &Arc<CsrMatrix<f32>> {
        &self.adjacency
    }

    /// Cached sparsity-structure hash of the adjacency (values excluded)
    /// — the constituent identity batch-shape classes are built from.
    pub fn structure_hash(&self) -> u64 {
        self.structure_hash
    }

    /// The warmed, width-independent prepared plan.
    pub fn prep(&self) -> &Arc<PreparedPlan> {
        &self.prep
    }

    /// The model served for [`Workload::Gcn`](crate::Workload::Gcn)
    /// requests, if one was registered.
    pub fn model(&self) -> Option<&Arc<GcnModel>> {
        self.model.as_ref()
    }

    /// The sharded execution state, when this graph was registered for
    /// scale-out ([`GraphRegistry::register_sharded`]). The dispatcher
    /// routes such graphs through the shard engines instead of the
    /// shared serving engine.
    pub fn sharding(&self) -> Option<&Arc<ShardedEngine>> {
        self.sharding.as_ref()
    }

    /// Auto-tuner state of the warmed plan: `None` when the engine runs
    /// without a tuner, otherwise whether this graph's plan is still
    /// exploring arms or has converged on a measured winner.
    pub fn tune_state(&self) -> Option<mpspmm_core::TuneState> {
        self.prep.tune_state()
    }
}

/// Owner of all named graphs a server can route requests to.
pub struct GraphRegistry {
    engine: Arc<ExecEngine>,
    kernel: Box<dyn SpmmKernel>,
    graphs: Mutex<HashMap<String, Arc<ServedGraph>>>,
    next_version: AtomicU64,
}

impl GraphRegistry {
    /// A registry that warms plans on `engine` through `kernel`.
    pub fn new(engine: Arc<ExecEngine>, kernel: Box<dyn SpmmKernel>) -> Self {
        Self {
            engine,
            kernel,
            graphs: Mutex::new(HashMap::new()),
            next_version: AtomicU64::new(0),
        }
    }

    /// The engine this registry warms plans on.
    pub fn engine(&self) -> &Arc<ExecEngine> {
        &self.engine
    }

    /// Registers (or hot-swaps) `name`: plans and classifies the
    /// aggregation SpMM, packs indices, and publishes the new version
    /// atomically. Returns the published [`ServedGraph`].
    ///
    /// The plan is warmed at the model's widest layer (or
    /// [`DEFAULT_PLAN_DIM`] without a model); see the module docs for the
    /// in-flight semantics of a swap.
    ///
    /// # Panics
    ///
    /// Panics if a model is supplied whose input width can never be
    /// served (zero layers is impossible by `GcnModel` construction, so
    /// this only guards adjacency/model node-count agreement indirectly —
    /// mismatched feature widths are rejected per request, not here).
    pub fn register(
        &self,
        name: &str,
        adjacency: CsrMatrix<f32>,
        model: Option<GcnModel>,
    ) -> Arc<ServedGraph> {
        self.register_shared(name, adjacency, model.map(Arc::new))
    }

    /// [`register`](Self::register) with an already-shared model `Arc` —
    /// the registration path for mega-batched serving, where thousands
    /// of small graphs serve inference through **one** model and the
    /// packing scheduler batches across graphs that share it (models are
    /// compared by pointer, so each graph must hold the *same* `Arc`).
    pub fn register_shared(
        &self,
        name: &str,
        adjacency: CsrMatrix<f32>,
        model: Option<Arc<GcnModel>>,
    ) -> Arc<ServedGraph> {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        let plan_dim = model
            .as_deref()
            .map(GcnModel::max_features)
            .unwrap_or(DEFAULT_PLAN_DIM)
            .max(1);
        let prep = self
            .engine
            .plan_cached(self.kernel.as_ref(), &adjacency, plan_dim, version);
        let graph = Arc::new(ServedGraph {
            name: name.to_string(),
            version,
            epoch: version,
            structure_hash: adjacency.structure_hash(),
            adjacency: Arc::new(adjacency),
            prep,
            model,
            sharding: None,
        });
        self.graphs
            .lock()
            .unwrap()
            .insert(name.to_string(), Arc::clone(&graph));
        graph
    }

    /// Registers (or hot-swaps) `name` as a **sharded** graph: the
    /// adjacency is partitioned into `shards` contiguous,
    /// merge-item-balanced row bands, each owning a private engine with
    /// `total_workers / shards` workers
    /// ([`ShardedEngine`]; see DESIGN.md §2.15), and every shard's plan
    /// cache is warmed at the model's layer widths (or
    /// [`DEFAULT_PLAN_DIM`]). The dispatcher routes this graph's
    /// requests through the shard engines as a scatter/gather fan-out;
    /// the registry-level prepared plan is still warmed so non-sharded
    /// paths (e.g. a packed window containing this graph) keep working.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn register_sharded(
        &self,
        name: &str,
        adjacency: CsrMatrix<f32>,
        model: Option<Arc<GcnModel>>,
        shards: usize,
        total_workers: usize,
    ) -> Arc<ServedGraph> {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        let plan_dim = model
            .as_deref()
            .map(GcnModel::max_features)
            .unwrap_or(DEFAULT_PLAN_DIM)
            .max(1);
        let prep = self
            .engine
            .plan_cached(self.kernel.as_ref(), &adjacency, plan_dim, version);
        let sharded = ShardedEngine::new(&adjacency, shards, total_workers);
        let mut dims: Vec<usize> = model
            .as_deref()
            .map(|m| m.layers().iter().map(|l| l.out_features()).collect())
            .unwrap_or_default();
        dims.push(plan_dim);
        dims.sort_unstable();
        dims.dedup();
        sharded.warm_plans(&dims);
        let graph = Arc::new(ServedGraph {
            name: name.to_string(),
            version,
            epoch: version,
            structure_hash: adjacency.structure_hash(),
            adjacency: Arc::new(adjacency),
            prep,
            model,
            sharding: Some(Arc::new(sharded)),
        });
        self.graphs
            .lock()
            .unwrap()
            .insert(name.to_string(), Arc::clone(&graph));
        graph
    }

    /// Per-shard queue/served counters of every routed sharded graph,
    /// sorted by name — the scale-out slice of
    /// [`ServeStats`](crate::ServeStats).
    pub fn shard_statuses(&self) -> Vec<crate::stats::GraphShardStats> {
        let mut statuses: Vec<_> = self
            .graphs
            .lock()
            .unwrap()
            .values()
            .filter_map(|g| {
                g.sharding().map(|s| crate::stats::GraphShardStats {
                    graph: g.name().to_string(),
                    version: g.version(),
                    workers_per_shard: s.workers_per_shard(),
                    shards: s.shard_stats(),
                })
            })
            .collect();
        statuses.sort_by(|a, b| a.graph.cmp(&b.graph));
        statuses
    }

    /// Builds an **anonymous** served graph for a single ad-hoc request:
    /// planned and classified like a registration, but never inserted
    /// into the routing table and — deliberately — never put through the
    /// engine's LRU plan cache: ad-hoc graphs are one-shot, and minting
    /// a cache key per request would evict the plans of the graphs that
    /// *are* long-lived. The plan still matters: if the packing window
    /// ends up executing the request alone, it runs through this plan.
    pub fn inline_graph(&self, adjacency: CsrMatrix<f32>) -> Arc<ServedGraph> {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        let plan = self.kernel.plan(&adjacency, DEFAULT_PLAN_DIM);
        let prep = Arc::new(PreparedPlan::for_matrix(plan, &adjacency));
        Arc::new(ServedGraph {
            name: String::new(),
            version,
            epoch: version,
            structure_hash: adjacency.structure_hash(),
            adjacency: Arc::new(adjacency),
            prep,
            model: None,
            sharding: None,
        })
    }

    /// Removes `name` from the routing table. In-flight requests holding
    /// the version complete normally; new submissions get
    /// [`ServeError::UnknownGraph`](crate::ServeError::UnknownGraph).
    /// Returns the retired version, if any.
    pub fn retire(&self, name: &str) -> Option<Arc<ServedGraph>> {
        self.graphs.lock().unwrap().remove(name)
    }

    /// The currently routed version of `name`.
    pub fn get(&self, name: &str) -> Option<Arc<ServedGraph>> {
        self.graphs.lock().unwrap().get(name).cloned()
    }

    /// Resolves a whole burst of names under **one** table lock — the
    /// bulk-admission counterpart of [`get`](Self::get). Slot `i` of the
    /// result is the routed version of the `i`-th name (or `None`). The
    /// burst sees a single consistent snapshot of the routing table: a
    /// concurrent hot-swap lands either before every slot or after
    /// every slot, never between two of them.
    pub fn get_many<'a>(
        &self,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Vec<Option<Arc<ServedGraph>>> {
        let graphs = self.graphs.lock().unwrap();
        names.into_iter().map(|n| graphs.get(n).cloned()).collect()
    }

    /// Number of currently registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.lock().unwrap().len()
    }

    /// Whether no graph is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered names, unordered.
    pub fn names(&self) -> Vec<String> {
        self.graphs.lock().unwrap().keys().cloned().collect()
    }

    /// Auto-tuner status of every routed graph, sorted by name. Empty
    /// entries are skipped when the engine runs without a tuner, so on
    /// an untuned engine this is always empty.
    pub fn tune_statuses(&self) -> Vec<crate::stats::GraphTuneStatus> {
        let mut statuses: Vec<_> = self
            .graphs
            .lock()
            .unwrap()
            .values()
            .filter_map(|g| {
                g.tune_state().map(|state| {
                    let (converged, explorations) = match state {
                        mpspmm_core::TuneState::Exploring { explorations, .. } => {
                            (false, explorations)
                        }
                        mpspmm_core::TuneState::Converged { explorations, .. } => {
                            (true, explorations)
                        }
                    };
                    crate::stats::GraphTuneStatus {
                        graph: g.name().to_string(),
                        version: g.version(),
                        converged,
                        explorations,
                    }
                })
            })
            .collect();
        statuses.sort_by(|a, b| a.graph.cmp(&b.graph));
        statuses
    }
}

impl std::fmt::Debug for GraphRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphRegistry")
            .field("graphs", &self.names())
            .field("next_version", &self.next_version.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_core::MergePathSpmm;

    fn tiny(seed: f32) -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(4, 4, &[(0, 1, seed), (1, 0, 0.5), (3, 2, 2.0)]).unwrap()
    }

    fn registry() -> GraphRegistry {
        GraphRegistry::new(
            Arc::new(ExecEngine::new(1)),
            Box::new(MergePathSpmm::with_threads(3)),
        )
    }

    #[test]
    fn register_get_retire_roundtrip() {
        let reg = registry();
        assert!(reg.is_empty());
        let g = reg.register("cora", tiny(1.0), None);
        assert_eq!(g.name(), "cora");
        assert_eq!(g.nodes(), 4);
        assert!(g.prep().has_packed_indices(), "plan warmed at registration");
        assert!(Arc::ptr_eq(&reg.get("cora").unwrap(), &g));
        assert_eq!(reg.names(), vec!["cora".to_string()]);
        let retired = reg.retire("cora").unwrap();
        assert!(Arc::ptr_eq(&retired, &g));
        assert!(reg.get("cora").is_none());
        assert!(reg.retire("cora").is_none());
    }

    #[test]
    fn replace_bumps_version_and_keeps_old_version_alive() {
        let reg = registry();
        let v1 = reg.register("g", tiny(1.0), None);
        let v2 = reg.register("g", tiny(9.0), None);
        assert!(v2.version() > v1.version());
        assert_eq!(reg.len(), 1);
        assert!(Arc::ptr_eq(&reg.get("g").unwrap(), &v2));
        // The old version's state is untouched for in-flight holders.
        assert_eq!(v1.adjacency().row(0).vals, &[1.0]);
        assert_eq!(v2.adjacency().row(0).vals, &[9.0]);
        assert_ne!(v1.epoch(), v2.epoch());
    }

    #[test]
    fn model_graphs_plan_at_widest_layer() {
        let reg = registry();
        let model = GcnModel::two_layer(8, 16, 3, 7);
        let g = reg.register("m", tiny(1.0), Some(model));
        assert!(g.model().is_some());
        assert_eq!(g.model().unwrap().max_features(), 16);
    }
}
