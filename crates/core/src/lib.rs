//! MergePath-SpMM: load-balanced parallel sparse matrix–matrix
//! multiplication for GNN acceleration (ISPASS 2023) — the paper's core
//! contribution plus every software baseline it is evaluated against.
//!
//! # The problem
//!
//! GCN inference multiplies an ultra-sparse, power-law adjacency matrix
//! `A` by a dense feature product `XW`. Splitting rows across threads
//! balances nothing when a handful of *evil rows* hold most non-zeros;
//! splitting non-zeros (GNNAdvisor) balances work but forces **every**
//! output update through an atomic operation.
//!
//! # The algorithm
//!
//! [`Schedule`] partitions the merge path — rows *plus* non-zeros — into
//! equal per-thread shares (Algorithm 1, a 2-D binary search per thread
//! boundary, no preprocessing/reordering/format extension). The
//! [`MergePathSpmm`] kernel (Algorithm 2) then tracks which assigned rows
//! are *partial* (shared with neighbouring threads) and which are
//! *complete*: partial rows accumulate thread-locally and flush with one
//! atomic update; complete rows write directly. Synchronization is thereby
//! confined to at most two updates per thread.
//!
//! # Quickstart
//!
//! ```
//! use mpspmm_core::{MergePathSpmm, SpmmKernel};
//! use mpspmm_sparse::{CsrMatrix, DenseMatrix};
//!
//! let a = CsrMatrix::from_triplets(
//!     4,
//!     4,
//!     &[(0, 1, 1.0f32), (1, 0, 0.5), (1, 3, 0.5), (3, 2, 2.0)],
//! )?;
//! let xw = DenseMatrix::from_fn(4, 16, |r, c| (r * 16 + c) as f32 * 0.01);
//! let kernel = MergePathSpmm::new();
//! let (c, stats) = kernel.spmm_with_stats(&a, &xw)?;
//! assert_eq!(c.rows(), 4);
//! assert_eq!(stats.total_nnz(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid`: exactly four modules opt back in — the
// worker pool (`pool.rs`), for one lifetime-erasure transmute with a
// documented completion-barrier argument; the stealing scheduler
// (`steal.rs`), for the raw-pointer output view whose row-exclusivity
// argument is documented there; the column-striped executor
// (`stripe.rs`), for the raw-pointer output view whose column-window
// disjointness argument is documented there; and the wide-ISA kernel
// clones (`datapath::wide`), whose `#[target_feature]` calls are gated
// on the matching runtime CPU-feature proof. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod arena;
pub mod batch;
mod datapath;
pub mod engine;
mod epilogue;
pub mod executor;
mod gemm;
mod merge_path;
mod plan;
mod pool;
pub mod shard;
pub mod spgemm;
pub mod spmm;
pub mod spmv;
mod stats;
mod steal;
mod stripe;
pub mod tuner;
pub mod tuning;

pub use batch::BatchShapeClass;
pub use datapath::{fastmath_supported, DataPath, LaneWidth, WideIsa};
pub use engine::{
    EngineStats, ExecEngine, PreparedPlan, SchedPolicy, BATCH_PLAN_SLOTS,
    DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use epilogue::Epilogue;
pub use merge_path::{merge_path_search, MergeCoord, Schedule, ThreadAssignment};
pub use plan::{
    chunk_threads, static_span_skew, ChunkDesc, Flush, KernelPlan, PlanError, Segment, ThreadPlan,
};
pub use pool::parallel_apply_chunks;
pub use shard::{ShardQueueStats, ShardedEngine};
pub use spgemm::{
    classify_row, spgemm_flops_upper_bound, spgemm_sequential, AccumKind, SpgemmStrategy,
};
pub use spmm::{
    default_workers, plan_from_schedule, BatchMergeSpmm, CostPolicy, MergePathSerialFixup,
    MergePathSpmm, NeighborPartitionIndex, NnzSplitSpmm, RowSplitSpmm, SerialSpmm, SpmmKernel,
    BATCH_MIN_THREADS,
};
pub use stats::{SpgemmStats, TunerStats, WriteStats};
pub use tuner::{
    arm_space, spgemm_arm_space, ArmConfig, AutoTuner, GraphFingerprint, TuneState, CALIB_HEADER,
};
pub use tuning::{
    default_cost_for_dim, gemm_kc, panel_cols, stripe_panel_cols, thread_count, CacheModel,
    SimdMapping, GATHER_MAX_NNZ, GEMM_BAND_ROWS, GEMM_MR, GPU_SIMD_LANES, MIN_THREADS,
    PAR_APPLY_MIN_LEN, SPGEMM_DENSE_FILL_DIV, SPGEMM_HASH_MIN_SLOTS, SPGEMM_MERGE_MAX_WAYS,
    SPGEMM_MERGE_SCAN_MAX_WAYS, STEAL_CHUNKS_PER_WORKER, STEAL_SKEW_THRESHOLD, STRIPE_MIN_DIM,
    STRIPE_SKEW_MIN_DIM, TUNE_HALF_PANEL_MIN_DIM, TUNE_MEASURES_PER_ARM, TUNE_STEAL_MIN_SKEW_Q,
    TUNE_STRIPE_MIN_DIM, TUNE_TILED_MAX_DIM,
};
