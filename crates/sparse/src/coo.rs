use crate::SparseFormatError;

/// A sparse matrix in coordinate (COO / triplet) format.
///
/// COO is the natural output format of the graph generators: edges are
/// appended one at a time and converted into [`CsrMatrix`](crate::CsrMatrix)
/// once complete. Duplicate coordinates are rejected at
/// [`push`](Self::push) time so the conversion is infallible.
///
/// # Example
///
/// ```
/// use mpspmm_sparse::{CooMatrix, CsrMatrix};
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 1.0f32)?;
/// coo.push(1, 0, 1.0)?;
/// let csr = CsrMatrix::from(coo);
/// assert_eq!(csr.nnz(), 2);
/// # Ok::<(), mpspmm_sparse::SparseFormatError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T> {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, T)>,
    /// Occupancy bitmap would be O(rows*cols); instead we keep triplets
    /// unsorted and deduplicate lazily with a sorted shadow only in debug
    /// builds. For correctness we always check on push against a hash of
    /// occupied coordinates.
    occupied: std::collections::HashSet<(usize, usize)>,
}

impl<T> CooMatrix<T> {
    /// Creates an empty COO matrix with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            triplets: Vec::new(),
            occupied: std::collections::HashSet::new(),
        }
    }

    /// Creates an empty COO matrix with capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Self {
            rows,
            cols,
            triplets: Vec::with_capacity(cap),
            occupied: std::collections::HashSet::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinate is out of bounds or already
    /// occupied.
    pub fn push(&mut self, row: usize, col: usize, value: T) -> Result<(), SparseFormatError> {
        if row >= self.rows {
            return Err(SparseFormatError::RowOutOfBounds {
                position: self.triplets.len(),
                row,
                rows: self.rows,
            });
        }
        if col >= self.cols {
            return Err(SparseFormatError::ColumnOutOfBounds {
                position: self.triplets.len(),
                column: col,
                cols: self.cols,
            });
        }
        if !self.occupied.insert((row, col)) {
            return Err(SparseFormatError::UnsortedRow {
                row,
                position: self.triplets.len(),
            });
        }
        self.triplets.push((row, col, value));
        Ok(())
    }

    /// Whether the coordinate already holds an entry.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        self.occupied.contains(&(row, col))
    }

    /// Borrow the stored triplets in insertion order.
    pub fn triplets(&self) -> &[(usize, usize, T)] {
        &self.triplets
    }

    /// Consumes the matrix and returns `(rows, cols, triplets)`.
    pub fn into_raw_parts(self) -> (usize, usize, Vec<(usize, usize, T)>) {
        (self.rows, self.cols, self.triplets)
    }
}

impl<T: Copy> From<&crate::CsrMatrix<T>> for CooMatrix<T> {
    /// Expands a CSR matrix into its triplet view, in row-major order —
    /// the canonical flat form the sparse-output test helpers diff on.
    /// Cannot fail: CSR invariants (bounds, sortedness, duplicate
    /// freedom) imply every [`push`](CooMatrix::push) precondition.
    fn from(csr: &crate::CsrMatrix<T>) -> Self {
        let mut coo = CooMatrix::with_capacity(csr.rows(), csr.cols(), csr.nnz());
        for row in csr.iter_rows() {
            for (&c, &v) in row.cols.iter().zip(row.vals) {
                coo.push(row.index, c, v)
                    .expect("CsrMatrix invariants guarantee valid triplets");
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn push_and_convert() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 0, 5.0f32).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        assert_eq!(coo.nnz(), 2);
        assert!(coo.contains(2, 0));
        assert!(!coo.contains(0, 0));
        let csr = CsrMatrix::from(coo);
        assert_eq!(csr.row(2).cols, &[0]);
    }

    #[test]
    fn rejects_duplicate() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0f32).unwrap();
        let err = coo.push(0, 0, 2.0).unwrap_err();
        assert!(matches!(err, SparseFormatError::UnsortedRow { row: 0, .. }));
        assert_eq!(coo.nnz(), 1);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0f32).is_err());
        assert!(coo.push(0, 9, 1.0f32).is_err());
    }

    #[test]
    fn with_capacity_preallocates() {
        let coo = CooMatrix::<f32>::with_capacity(10, 10, 64);
        assert_eq!(coo.nnz(), 0);
        assert!(coo.triplets().is_empty());
    }

    #[test]
    fn csr_round_trip_via_coo_view() {
        let csr =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0f32), (1, 0, 2.0), (1, 2, 3.0)]).unwrap();
        let coo = CooMatrix::from(&csr);
        assert_eq!(
            coo.triplets(),
            &[(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0)],
            "triplets come out in row-major order"
        );
        assert_eq!(CsrMatrix::from(coo), csr);
    }
}
