//! Property tests pinning the work-stealing scheduler to the sequential
//! oracle: stealing defers every order-sensitive flush (shared regular
//! stores, atomic adds, carries) to a serial fixup applied in the
//! oracle's (thread, segment) order, so its output must be **bit-equal**
//! to [`mpspmm_core::executor::execute_sequential`] — at any worker
//! count, for any steal interleaving, on any data path.

use mpspmm_core::executor::execute_sequential;
use mpspmm_core::{
    default_workers, DataPath, ExecEngine, Flush, KernelPlan, MergePathSerialFixup, MergePathSpmm,
    NnzSplitSpmm, PreparedPlan, RowSplitSpmm, SchedPolicy, Segment, SpmmKernel, ThreadPlan,
    STEAL_SKEW_THRESHOLD, STRIPE_MIN_DIM, STRIPE_SKEW_MIN_DIM,
};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An adversarially skewed rectangular CSR matrix: row 0 holds **more
/// than half** of all non-zeros (the matrix is wide enough to fit them
/// in one row), a band of rows stays completely empty, and the rest is
/// uniform noise. This is the §III evil-row pathology, one level up:
/// any contiguous static span containing row 0 becomes the critical
/// path.
fn skewed_inputs(
    rows: usize,
    nnz: usize,
    dim: usize,
    seed: u64,
) -> (CsrMatrix<f32>, DenseMatrix<f32>) {
    let cols = nnz + 4; // wide: the evil row fits without capping
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coords = std::collections::BTreeSet::new();
    for c in 0..nnz / 2 + 1 {
        coords.insert((0usize, c));
    }
    // Rows in the back quarter stay empty; the rest get the leftovers.
    let live_rows = (rows * 3 / 4).max(2);
    while coords.len() < nnz {
        coords.insert((rng.gen_range(1..live_rows), rng.gen_range(0..cols)));
    }
    let triplets: Vec<(usize, usize, f32)> = coords
        .into_iter()
        .map(|(r, c)| (r, c, rng.gen_range(-2.0..2.0)))
        .collect();
    let a = CsrMatrix::from_triplets(rows, cols, &triplets).unwrap();
    let mut feat_rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let b = DenseMatrix::from_fn(cols, dim, |_, _| feat_rng.gen_range(-1.0..1.0));
    (a, b)
}

/// The four parallel kernels with small decompositions, so plans mix
/// regular, atomic, and carry flushes and chunking has threads to split.
fn kernels() -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(MergePathSpmm::with_threads(13)),
        Box::new(MergePathSerialFixup::with_threads(12)),
        Box::new(NnzSplitSpmm::with_ng_size(3)),
        Box::new(RowSplitSpmm::with_threads(11)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Stealing is bit-identical to the sequential oracle for every
    /// kernel family, data path, and worker count on skewed inputs.
    #[test]
    fn stealing_bit_matches_oracle_on_skewed_graphs(
        rows in 4usize..40,
        fill in 2usize..6,
        seed in any::<u64>(),
    ) {
        let nnz = rows * fill;
        for kernel in kernels() {
            for &dim in &[1usize, 5, 16, 33] {
                let (a, b) = skewed_inputs(rows, nnz, dim, seed);
                let plan = kernel.plan(&a, dim);
                let (want, _) = execute_sequential(&plan, &a, &b).unwrap();
                let prep = PreparedPlan::for_matrix(plan, &a);
                for path in [DataPath::Scalar, DataPath::Tiled, DataPath::Vector] {
                    for &workers in &[2usize, 3, 8] {
                        let engine =
                            ExecEngine::with_sched_policy(workers, path, SchedPolicy::Stealing);
                        let (got, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
                        prop_assert_eq!(
                            got.max_abs_diff(&want).unwrap(),
                            0.0,
                            "kernel={} path={:?} workers={} dim={}",
                            kernel.name(),
                            path,
                            workers,
                            dim
                        );
                    }
                }
            }
        }
    }

    /// `Auto` must agree with the oracle bit-for-bit whichever side of
    /// the skew threshold it lands on.
    #[test]
    fn auto_policy_bit_matches_oracle(
        rows in 4usize..40,
        dim in 1usize..=67,
        seed in any::<u64>(),
    ) {
        let (a, b) = skewed_inputs(rows, rows * 4, dim, seed);
        for kernel in kernels() {
            let plan = kernel.plan(&a, dim);
            let (want, _) = execute_sequential(&plan, &a, &b).unwrap();
            let prep = PreparedPlan::for_matrix(plan, &a);
            let engine = ExecEngine::with_sched_policy(4, DataPath::Vector, SchedPolicy::Auto);
            let stealing = engine.selects_stealing(&prep);
            let (got, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
            // The static multi-worker path CAS-accumulates shared rows in
            // nondeterministic order; only the stealing side promises bit
            // equality. Both must be within fp-accumulation tolerance.
            if stealing {
                prop_assert_eq!(
                    got.max_abs_diff(&want).unwrap(),
                    0.0,
                    "kernel={} dim={}",
                    kernel.name(),
                    dim
                );
            } else {
                let scale = want.frobenius_norm().max(1.0);
                prop_assert!(got.max_abs_diff(&want).unwrap() <= 1e-4 * scale);
            }
        }
    }
}

/// Stealing runs are deterministic: the serial fixup replays every
/// order-sensitive flush in plan order, so repeated executions are
/// bit-equal no matter how the chunks migrated between workers.
#[test]
fn stealing_is_deterministic_across_runs() {
    let (a, b) = skewed_inputs(48, 400, 19, 99);
    let kernel = RowSplitSpmm::with_threads(24);
    let plan = SpmmKernel::plan(&kernel, &a, 19);
    let prep = PreparedPlan::for_matrix(plan, &a);
    let engine = ExecEngine::with_sched_policy(8, DataPath::Vector, SchedPolicy::Stealing);
    let (first, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
    for run in 0..5 {
        let (again, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
        assert_eq!(
            again.max_abs_diff(&first).unwrap(),
            0.0,
            "run {run} diverged"
        );
    }
    let stats = engine.stats();
    assert!(stats.chunks_executed > 0, "stealing path actually ran");
}

/// Auto routes by measured span skew: a merge-path plan (nnz-balanced
/// per logical thread) stays on the static path, a row-split plan over
/// the same skewed graph exceeds the threshold and steals.
#[test]
fn auto_selection_follows_span_skew() {
    let (a, _) = skewed_inputs(64, 600, 8, 5);
    let engine = ExecEngine::with_sched_policy(4, DataPath::Vector, SchedPolicy::Auto);

    let mp = MergePathSpmm::with_threads(64);
    let mp_prep = PreparedPlan::for_matrix(SpmmKernel::plan(&mp, &a, 8), &a);
    assert!(mp_prep.static_span_skew(4) <= STEAL_SKEW_THRESHOLD);
    assert!(!engine.selects_stealing(&mp_prep));

    let rs = RowSplitSpmm::with_threads(64);
    let rs_prep = PreparedPlan::for_matrix(SpmmKernel::plan(&rs, &a, 8), &a);
    assert!(rs_prep.static_span_skew(4) > STEAL_SKEW_THRESHOLD);
    assert!(engine.selects_stealing(&rs_prep));
}

/// The engine at the resolved worker count (honouring `MPSPMM_WORKERS`,
/// which the tier-1 script sweeps over 1/2/8) stays bit-identical to the
/// oracle under both pinned-stealing and `Auto`.
#[test]
fn resolved_worker_count_bit_matches_oracle() {
    let workers = default_workers();
    let (a, b) = skewed_inputs(40, 320, 23, 7);
    for kernel in kernels() {
        let plan = kernel.plan(&a, 23);
        let (want, _) = execute_sequential(&plan, &a, &b).unwrap();
        let prep = PreparedPlan::for_matrix(plan, &a);
        let engine =
            ExecEngine::with_sched_policy(workers, DataPath::Vector, SchedPolicy::Stealing);
        let (got, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
        assert_eq!(
            got.max_abs_diff(&want).unwrap(),
            0.0,
            "kernel={} workers={}",
            kernel.name(),
            workers
        );
        if workers > 1 {
            let loads = engine.worker_loads();
            assert_eq!(loads.len(), workers);
            assert_eq!(loads.iter().sum::<u64>(), a.nnz() as u64);
        }
    }
}

/// A two-row matrix and a two-thread plan whose static worker spans
/// carry exactly (`nnz0`, `nnz1`) non-zeros — full control of the span
/// skew, down to the exact threshold value.
fn two_span_plan(nnz0: usize, nnz1: usize) -> (CsrMatrix<f32>, PreparedPlan) {
    let cols = nnz0.max(nnz1);
    let mut triplets = Vec::with_capacity(nnz0 + nnz1);
    for c in 0..nnz0 {
        triplets.push((0usize, c, 1.0f32));
    }
    for c in 0..nnz1 {
        triplets.push((1usize, c, 1.0f32));
    }
    let a = CsrMatrix::from_triplets(2, cols, &triplets).unwrap();
    let plan = KernelPlan {
        threads: vec![
            ThreadPlan {
                segments: vec![Segment {
                    row: 0,
                    nz_start: 0,
                    nz_end: nnz0,
                    flush: Flush::Regular,
                }],
            },
            ThreadPlan {
                segments: vec![Segment {
                    row: 1,
                    nz_start: nnz0,
                    nz_end: nnz0 + nnz1,
                    flush: Flush::Regular,
                }],
            },
        ],
    };
    plan.validate(&a).unwrap();
    let prep = PreparedPlan::for_matrix(plan, &a);
    (a, prep)
}

/// Satellite: the `Auto` heuristics at their exact threshold
/// boundaries, pinned before the tuner makes them overridable. The
/// skew comparison is strict — skew **equal** to
/// [`STEAL_SKEW_THRESHOLD`] keeps the bit-identical static path — and
/// the stripe dimension comparisons are inclusive at their minima.
#[test]
fn auto_routing_at_exact_threshold_boundaries() {
    let engine = ExecEngine::with_sched_policy(2, DataPath::Vector, SchedPolicy::Auto);

    // Spans (5, 3): skew = 5 / 4 = 1.25, *exactly* the threshold.
    let (_, at) = two_span_plan(5, 3);
    assert_eq!(at.static_span_skew(2), STEAL_SKEW_THRESHOLD);
    assert!(
        !engine.selects_stealing(&at),
        "skew == threshold must stay static (strict >)"
    );

    // Spans (51, 29): skew = 51 / 40 = 1.275, one step past.
    let (_, past) = two_span_plan(51, 29);
    assert!(past.static_span_skew(2) > STEAL_SKEW_THRESHOLD);
    assert!(engine.selects_stealing(&past));

    // Balanced spans: striping flips exactly at STRIPE_MIN_DIM.
    let (_, balanced) = two_span_plan(4, 4);
    assert_eq!(balanced.static_span_skew(2), 1.0);
    assert!(!engine.selects_striping(&balanced, STRIPE_MIN_DIM - 1));
    assert!(engine.selects_striping(&balanced, STRIPE_MIN_DIM));
    assert!(engine.selects_striping(&balanced, STRIPE_MIN_DIM + 1));

    // Skewed spans: the lower STRIPE_SKEW_MIN_DIM bound applies.
    assert!(!engine.selects_striping(&past, STRIPE_SKEW_MIN_DIM - 1));
    assert!(engine.selects_striping(&past, STRIPE_SKEW_MIN_DIM));

    // Skew exactly at the threshold does *not* unlock the skew-assisted
    // stripe dimension — only the unconditional one.
    assert!(!engine.selects_striping(&at, STRIPE_SKEW_MIN_DIM));
    assert!(!engine.selects_striping(&at, STRIPE_MIN_DIM - 1));
    assert!(engine.selects_striping(&at, STRIPE_MIN_DIM));

    // One worker never steals or stripes, whatever the skew or dim.
    let single = ExecEngine::with_sched_policy(1, DataPath::Vector, SchedPolicy::Auto);
    assert!(!single.selects_stealing(&past));
    assert!(!single.selects_striping(&past, STRIPE_MIN_DIM));
}
