//! Ablation — does degree-sort reordering rescue row-splitting?
//!
//! The classic remedy for evil rows is to *reorder* the matrix (sort rows
//! by degree) so contiguous chunks carry comparable work. MergePath-SpMM
//! claims the same balance with no reordering at all. This ablation
//! compares, measured on the real execution engine (current SIMD data
//! path, prepared plans, `Auto` scheduling):
//!
//! * row-splitting on the original matrix,
//! * row-splitting on the degree-sorted matrix with contiguous chunks —
//!   which backfires (the sort CONCENTRATES the heavy rows in one chunk),
//! * row-splitting on the sorted matrix with rows dealt round-robin to
//!   threads (the classic LPT-style scheme sorting actually enables),
//! * MergePath-SpMM on the original matrix, unsorted.
//!
//! Load-balance statistics ([`LoadBalance`]) show *why*: even the LPT
//! dealing cannot bound the per-thread maximum below the longest row; the
//! merge path bounds every thread's work by construction. The `sched`
//! columns show the engine's `Auto` policy reacting to exactly that: the
//! clustered sorted-contiguous plan trips the span-skew threshold and
//! runs under work stealing, the merge-path plan stays on the static
//! fast path.

use std::time::Instant;

use mpspmm_bench::{banner, full_size_requested, load, time_ns, SEED};
use mpspmm_core::analysis::LoadBalance;
use mpspmm_core::{
    default_workers, ExecEngine, Flush, KernelPlan, MergePathSpmm, PreparedPlan, RowSplitSpmm,
    Segment, SpmmKernel, ThreadPlan,
};
use mpspmm_graphs::find_dataset;
use mpspmm_sparse::reorder::{degree_sort_permutation, permute_rows};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};

/// Rows of the (sorted) matrix dealt round-robin onto `threads` logical
/// threads: the LPT-flavoured schedule degree sorting is meant to enable.
fn dealt_row_plan(a: &CsrMatrix<f32>, threads: usize) -> KernelPlan {
    let rp = a.row_ptr();
    let mut plans = vec![ThreadPlan::default(); threads];
    for row in 0..a.rows() {
        if rp[row + 1] > rp[row] {
            plans[row % threads].segments.push(Segment {
                row,
                nz_start: rp[row],
                nz_end: rp[row + 1],
                flush: Flush::Regular,
            });
        }
    }
    KernelPlan { threads: plans }
}

const SAMPLE: [&str; 4] = ["Oregon-1", "Nell", "soc-SlashDot811", "Pubmed"];

fn main() {
    let full = full_size_requested();
    banner(
        "Ablation: reordering",
        "row-splitting ± degree sort vs MergePath-SpMM on the engine (dim 16)",
        full,
    );
    println!("sample: {SAMPLE:?}, seed {SEED}\n");

    let dim = 16;
    let engine = ExecEngine::new(default_workers());
    println!(
        "{:<16} {:>9} {:>10} {:>10} {:>8} {:>9} | {:>7} {:>7} {:>7} {:>7} | {:>5}",
        "Graph",
        "RS µs",
        "sortRS µs",
        "sortLPT µs",
        "sort ms",
        "MP µs",
        "imb RS",
        "imb sRS",
        "imb LPT",
        "imb MP",
        "sched"
    );
    for name in SAMPLE {
        let (_, a) = load(find_dataset(name).expect("in Table II"), full);
        let threads = 1024usize;

        let t0 = Instant::now();
        let perm = degree_sort_permutation(&a);
        let sorted = permute_rows(&a, &perm);
        let sort_ms = t0.elapsed().as_secs_f64() * 1e3;

        let b = DenseMatrix::from_fn(a.cols(), dim, |r, c| {
            ((r * 31 + c * 7) % 17) as f32 * 0.125 - 1.0
        });
        let rs_plan = RowSplitSpmm::with_threads(threads).plan(&a, dim);
        let srs_plan = RowSplitSpmm::with_threads(threads).plan(&sorted, dim);
        let lpt_plan = dealt_row_plan(&sorted, threads);
        lpt_plan.validate(&sorted).expect("dealt plan is valid");
        let mp_plan = MergePathSpmm::new().plan(&a, dim);

        // Measure every scheme on the real engine: prepared (packed)
        // plans, current SIMD data path, Auto scheduling.
        let micros = |plan: &KernelPlan, m: &CsrMatrix<f32>| {
            let prep = PreparedPlan::for_matrix(plan.clone(), m);
            time_ns(2, 7, || {
                let _ = engine.execute_prepared(&prep, m, &b).unwrap();
            }) / 1e3
        };
        let rs = micros(&rs_plan, &a);
        let srs = micros(&srs_plan, &sorted);
        let lpt = micros(&lpt_plan, &sorted);
        let mp = micros(&mp_plan, &a);

        // Which scheduler Auto picks for the pathological plan vs the
        // merge-path one. Probed at 4 workers so the column stays
        // meaningful on single-core hosts (where stealing never engages).
        let probe = ExecEngine::with_sched_policy(
            4,
            mpspmm_core::DataPath::Vector,
            mpspmm_core::SchedPolicy::Auto,
        );
        let srs_prep = PreparedPlan::for_matrix(srs_plan.clone(), &sorted);
        let mp_prep = PreparedPlan::for_matrix(mp_plan.clone(), &a);
        let sched = format!(
            "{}/{}",
            if probe.selects_stealing(&srs_prep) {
                "st"
            } else {
                "su"
            },
            if probe.selects_stealing(&mp_prep) {
                "st"
            } else {
                "su"
            }
        );

        let imb = |plan: &KernelPlan| LoadBalance::of(plan).imbalance;
        println!(
            "{name:<16} {rs:>9.1} {srs:>10.1} {lpt:>10.1} {sort_ms:>8.2} {mp:>9.1} | {:>7.1} {:>7.1} {:>7.2} {:>7.2} | {sched:>5}",
            imb(&rs_plan),
            imb(&srs_plan),
            imb(&lpt_plan),
            imb(&mp_plan),
        );
    }
    println!(
        "\nReading: sorting with contiguous chunks BACKFIRES (it stacks the \
         heavy rows into one chunk); sorting with round-robin dealing (LPT) \
         balances the sums but still cannot split the longest row, so its \
         per-thread maximum stays unbounded. MergePath-SpMM reaches a \
         strictly tighter bound on the ORIGINAL matrix, with no sort cost \
         and no permuted output to undo. `sched` = Auto's choice at 4 workers for the \
         sorted-contiguous / merge-path plans (st = stealing, su = static): \
         the engine's span-skew test flags exactly the plan the sort \
         pathologized. Timings are real engine runs; on a single-core host \
         the µs columns track total work, the imbalance columns and `sched` \
         show what changes at higher worker counts."
    );
}
