//! Persistent worker pool for the execution engine.
//!
//! The seed executor spawned (scoped) OS threads on every `spmm` call;
//! for GNN inference — thousands of small SpMM calls — the spawn/join
//! cost is pure overhead the paper's GPU kernels never pay. This module
//! keeps a process-wide set of long-lived workers and hands them batches
//! of borrowed closures per call.
//!
//! # Safety argument (the one `unsafe` block)
//!
//! [`WorkerPool::scope_run`] accepts closures borrowing the caller's
//! stack (`'scope`) and erases that lifetime to `'static` so they can sit
//! in the shared job queue. Soundness rests on a completion barrier, the
//! same argument `std::thread::scope` / crossbeam's scope make:
//!
//! 1. every submitted job decrements the shared [`Completion`] counter
//!    exactly once — even when the closure panics, because the decrement
//!    happens after `catch_unwind`;
//! 2. `scope_run` does not return (not even by panicking) before the
//!    counter reaches zero — the only panic it raises is *after* the
//!    wait, to propagate worker panics;
//! 3. therefore no erased closure (or anything it borrows) is ever used
//!    after `scope_run` returns, so the `'scope` borrows never dangle.
//!
//! Jobs must not block on other jobs of the same pool (they don't: the
//! engine's static workers only touch disjoint output slices and
//! atomics, and the stealing workers ([`crate::steal`]) only contend on
//! short mutex-guarded deque pops — a steal takes work, it never waits
//! for another job to finish), and [`WorkerPool::scope_run`] must not be
//! called from inside a pool worker (the engine never does; it is only
//! entered from caller threads).

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A job after lifetime erasure, parked in the shared queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowed job as submitted by the engine.
pub(crate) type ScopedJob<'scope> = Box<dyn FnOnce() + Send + 'scope>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

struct Completion {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

/// A fixed set of long-lived worker threads consuming a shared job queue.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` detached workers (min 1).
    fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        });
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("mpspmm-pool-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        Self { shared }
    }

    /// The process-wide pool, sized to the default worker count minus the
    /// caller thread (which executes one job of every batch itself).
    pub(crate) fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::new(crate::spmm::default_workers().saturating_sub(1)))
    }

    /// Runs every job to completion before returning; the last job runs on
    /// the calling thread (so a batch of `n` jobs occupies `n - 1` pool
    /// workers plus the caller).
    ///
    /// # Panics
    ///
    /// Panics (after all jobs finished) if any job panicked.
    pub(crate) fn scope_run(&self, mut jobs: Vec<ScopedJob<'_>>) {
        let Some(local) = jobs.pop() else { return };
        let completion = Arc::new(Completion {
            remaining: Mutex::new(jobs.len()),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for job in jobs {
                // SAFETY: see the module-level safety argument — the
                // completion barrier below keeps this function from
                // returning until the erased closure has run, so its
                // borrows outlive every use.
                let job: Job = unsafe { std::mem::transmute::<ScopedJob<'_>, Job>(job) };
                let completion = Arc::clone(&completion);
                queue.push_back(Box::new(move || {
                    if catch_unwind(AssertUnwindSafe(job)).is_err() {
                        completion.panicked.store(true, Ordering::SeqCst);
                    }
                    let mut remaining = completion.remaining.lock().unwrap();
                    *remaining -= 1;
                    if *remaining == 0 {
                        completion.done.notify_all();
                    }
                }));
            }
            self.shared.job_ready.notify_all();
        }

        let local_result = catch_unwind(AssertUnwindSafe(local));

        let mut remaining = completion.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = completion.done.wait(remaining).unwrap();
        }
        drop(remaining);

        if local_result.is_err() || completion.panicked.load(Ordering::SeqCst) {
            panic!("engine worker job panicked");
        }
    }
}

/// Applies `f` to disjoint spans of `data` in parallel on the global
/// pool. Spans are aligned to `granule` elements (the last span takes the
/// remainder), and `f` receives each span's starting offset into `data`
/// alongside the span itself — so callers whose transform depends on the
/// position (e.g. a per-column bias on a row-major matrix with
/// `granule = cols`) stay correct under any split.
///
/// Small inputs (and single-worker processes) run inline on the caller:
/// the crossover is [`crate::tuning::PAR_APPLY_MIN_LEN`] elements, below
/// which the pool's wake/barrier cost exceeds the element-wise work.
pub fn parallel_apply_chunks<F>(data: &mut [f32], granule: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let granule = granule.max(1);
    let workers = crate::spmm::default_workers();
    let granules = data.len().div_ceil(granule);
    if workers <= 1 || data.len() < crate::tuning::PAR_APPLY_MIN_LEN || granules <= 1 {
        f(0, data);
        return;
    }
    let eff = workers.min(granules);
    let per_worker = granules.div_ceil(eff);
    let mut rest: &mut [f32] = data;
    let mut offset = 0usize;
    let mut jobs: Vec<ScopedJob<'_>> = Vec::with_capacity(eff);
    let f = &f;
    while !rest.is_empty() {
        let take = (per_worker * granule).min(rest.len());
        let (span, tail) = std::mem::take(&mut rest).split_at_mut(take);
        rest = tail;
        let start = offset;
        offset += take;
        jobs.push(Box::new(move || f(start, span)));
    }
    WorkerPool::global().scope_run(jobs);
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.job_ready.wait(queue).unwrap();
            }
        };
        // Jobs contain their own catch_unwind; a stray panic here would
        // only kill this worker, so keep the loop tight and let the
        // wrapper absorb unwinds.
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs_and_observes_borrowed_state() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<ScopedJob<'_>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as ScopedJob<'_>
            })
            .collect();
        pool.scope_run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn disjoint_mutable_borrows_work() {
        let pool = WorkerPool::new(2);
        let mut data = vec![0usize; 4];
        let jobs: Vec<ScopedJob<'_>> = data
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = i + 1;
                }) as ScopedJob<'_>
            })
            .collect();
        pool.scope_run(jobs);
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reuse_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..32 {
            let sum = AtomicUsize::new(0);
            let jobs: Vec<ScopedJob<'_>> = (0..5)
                .map(|i| {
                    let sum = &sum;
                    Box::new(move || {
                        sum.fetch_add(i, Ordering::SeqCst);
                    }) as ScopedJob<'_>
                })
                .collect();
            pool.scope_run(jobs);
            assert_eq!(sum.load(Ordering::SeqCst), 10, "round {round}");
        }
    }

    #[test]
    fn panicking_job_propagates_after_completion() {
        let pool = WorkerPool::new(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<ScopedJob<'_>> = vec![
                Box::new(|| panic!("boom")),
                Box::new(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                }),
            ];
            pool.scope_run(jobs);
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "other jobs still complete");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(1);
        pool.scope_run(Vec::new());
    }

    #[test]
    fn parallel_apply_chunks_covers_every_element_with_offsets() {
        // Large enough to cross PAR_APPLY_MIN_LEN, odd granule so the
        // final span is a remainder.
        let len = crate::tuning::PAR_APPLY_MIN_LEN + 37;
        let mut data = vec![0.0f32; len];
        parallel_apply_chunks(&mut data, 53, |start, span| {
            for (i, v) in span.iter_mut().enumerate() {
                *v = (start + i) as f32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f32, "element {i}");
        }
    }

    #[test]
    fn parallel_apply_chunks_inline_small_and_empty() {
        let mut small = vec![1.0f32; 8];
        parallel_apply_chunks(&mut small, 4, |_, span| {
            for v in span {
                *v += 1.0;
            }
        });
        assert!(small.iter().all(|&v| v == 2.0));
        let mut empty: Vec<f32> = Vec::new();
        parallel_apply_chunks(&mut empty, 16, |_, _| {});
    }

    #[test]
    fn global_pool_is_shared() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
    }
}
