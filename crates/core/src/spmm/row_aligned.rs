//! Row-aligned merge-path kernel for block-diagonal mega-batches.
//!
//! [`BatchMergeSpmm`] runs the same 2-D merge-path search as
//! [`MergePathSpmm`](super::MergePathSpmm) over the concatenated
//! `rows + nnz` of a packed batch, but **snaps every thread boundary to a
//! row edge**: no row is ever split across threads. Each non-empty row
//! becomes exactly one [`Flush::Regular`] segment, so the plan has zero
//! shared rows, zero atomic flushes, and zero carries.
//!
//! Why give up intra-row splitting? Mega-batches pack thousands of tiny
//! graphs whose longest row holds a few hundred non-zeros, so the
//! worst-case boundary deviation from the ideal merge-path split is one
//! row's nnz — noise against the batch total — while the payoff is
//! exact: every output row has a single writer that accumulates its
//! non-zeros in one flat ascending pass, which is the same float
//! fold [`execute_sequential`](crate::executor::execute_sequential)
//! performs. Packed execution is therefore **bit-identical** to running
//! each constituent sequentially, under every scheduler policy, data
//! path, and worker count. Load balance stays global: boundaries are
//! placed on the concatenated merge path, so a thread may span the tail
//! of one graph and the head of the next.

use mpspmm_sparse::CsrMatrix;

use crate::merge_path::merge_path_search;
use crate::plan::{Flush, KernelPlan, Segment, ThreadPlan};
use crate::tuning::{default_cost_for_dim, thread_count};

use super::SpmmKernel;

/// Merge-path SpMM with row-aligned thread boundaries — the planner for
/// block-diagonal mega-batches.
///
/// # Example
///
/// ```
/// use mpspmm_core::{BatchMergeSpmm, SpmmKernel};
/// use mpspmm_sparse::{CsrMatrix, DenseMatrix};
///
/// let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0f32), (2, 0, 1.0)])?;
/// let b = DenseMatrix::from_fn(3, 4, |r, c| (r + c) as f32);
/// let (c, stats) = BatchMergeSpmm::with_threads(2).spmm_with_stats(&a, &b)?;
/// assert_eq!(c.get(0, 0), 2.0); // 2 * B[1, 0]
/// assert_eq!(stats.atomic_row_updates, 0); // rows are never shared
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchMergeSpmm {
    threads: Option<usize>,
    min_threads: usize,
}

/// Logical-thread floor for batch plans. Batches feed the engine's
/// worker pool / stealing scheduler, which subdivide logical threads, so
/// a modest floor (not the paper's 1024 GPU-oriented one) keeps plan
/// metadata proportional to the batch instead of dominated by empty
/// threads on small packs.
pub const BATCH_MIN_THREADS: usize = 64;

impl BatchMergeSpmm {
    /// Auto policy: per-dimension merge-path cost with the
    /// [`BATCH_MIN_THREADS`] floor.
    pub fn new() -> Self {
        Self {
            threads: None,
            min_threads: BATCH_MIN_THREADS,
        }
    }

    /// Exact logical-thread count (boundaries still snap to rows, so
    /// fewer threads may end up non-empty).
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        Self {
            threads: Some(threads),
            min_threads: 1,
        }
    }

    /// Overrides the minimum-thread floor.
    pub fn min_threads(mut self, min_threads: usize) -> Self {
        self.min_threads = min_threads.max(1);
        self
    }
}

impl Default for BatchMergeSpmm {
    fn default() -> Self {
        Self::new()
    }
}

impl SpmmKernel for BatchMergeSpmm {
    fn name(&self) -> &'static str {
        "BatchMerge-SpMM"
    }

    fn plan(&self, a: &CsrMatrix<f32>, dim: usize) -> KernelPlan {
        let threads = self.threads.unwrap_or_else(|| {
            thread_count(a.merge_items(), default_cost_for_dim(dim), self.min_threads)
        });
        let rp = a.row_ptr();
        let (rows, nnz) = (a.rows(), a.nnz());
        let row_ends = &rp[1..];
        let items = rows + nnz;
        let per_thread = items.div_ceil(threads.max(1)).max(1);
        let mut plans = Vec::with_capacity(threads);
        let mut start_row = 0usize;
        for k in 1..=threads {
            let diag = (k * per_thread).min(items);
            // Number of rows fully consumed at `diag` — the row-aligned
            // boundary nearest the ideal merge-path split.
            let end_row = if k == threads {
                rows
            } else {
                merge_path_search(diag, row_ends, nnz)
                    .row
                    .clamp(start_row, rows)
            };
            let segments = (start_row..end_row)
                .filter(|&row| rp[row + 1] > rp[row])
                .map(|row| Segment {
                    row,
                    nz_start: rp[row],
                    nz_end: rp[row + 1],
                    flush: Flush::Regular,
                })
                .collect();
            plans.push(ThreadPlan { segments });
            start_row = end_row;
        }
        debug_assert_eq!(start_row, rows);
        KernelPlan { threads: plans }
    }

    fn config_fingerprint(&self) -> u64 {
        let (tag, value) = match self.threads {
            None => (0u64, 0u64),
            Some(t) => (1, t as u64),
        };
        super::mix_config(&[0xba7c4, tag, value, self.min_threads as u64])
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{
        check_kernel, check_vector_path_bit_identical, random_dense, random_matrix,
    };
    use super::super::SerialSpmm;
    use super::*;
    use crate::executor::execute_sequential;

    #[test]
    fn plans_are_row_aligned_and_atomic_free() {
        for seed in 0..4 {
            let a = random_matrix(120, 120, 900, seed);
            for threads in [1, 2, 7, 16, 200] {
                let plan = BatchMergeSpmm::with_threads(threads).plan(&a, 16);
                plan.validate(&a).unwrap();
                assert_eq!(plan.num_threads(), threads);
                let stats = plan.write_stats();
                assert_eq!(stats.atomic_row_updates, 0);
                assert_eq!(stats.serial_row_updates, 0);
                assert_eq!(stats.regular_nnz, a.nnz());
                // Each non-empty row is exactly one segment.
                let seg_rows: Vec<_> = plan.iter_segments().map(|(_, s)| s.row).collect();
                let mut sorted = seg_rows.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(seg_rows.len(), sorted.len(), "a row was split");
            }
        }
    }

    #[test]
    fn matches_oracle_on_random_matrices() {
        for seed in 0..4 {
            let a = random_matrix(80, 80, 500, seed);
            for threads in [1, 3, 8, 64] {
                check_kernel(&BatchMergeSpmm::with_threads(threads), &a, 8);
            }
            check_kernel(&BatchMergeSpmm::new(), &a, 16);
        }
    }

    #[test]
    fn vector_path_is_bit_identical() {
        let a = random_matrix(60, 60, 400, 5);
        for dim in [1, 5, 16, 33] {
            check_vector_path_bit_identical(&BatchMergeSpmm::with_threads(7), &a, dim);
        }
    }

    #[test]
    fn sequential_execution_bit_matches_serial_reference() {
        // Both plans put each row in one flat ascending segment, so the
        // float fold is identical — not just close.
        let a = random_matrix(90, 90, 700, 11);
        let b = random_dense(90, 16, 3);
        let reference = {
            let plan = SerialSpmm.plan(&a, 16);
            execute_sequential(&plan, &a, &b).unwrap().0
        };
        for threads in [1, 5, 13, 64] {
            let plan = BatchMergeSpmm::with_threads(threads).plan(&a, 16);
            let (got, _) = execute_sequential(&plan, &a, &b).unwrap();
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn evil_row_is_never_split() {
        let mut triplets: Vec<(usize, usize, f32)> = (0..100).map(|c| (0, c, 1.0)).collect();
        for r in 1..51 {
            triplets.push((r, r, 1.0));
        }
        let a = CsrMatrix::from_triplets(101, 101, &triplets).unwrap();
        let plan = BatchMergeSpmm::with_threads(10).plan(&a, 16);
        let owners: Vec<_> = plan
            .iter_segments()
            .filter(|(_, s)| s.row == 0)
            .map(|(t, _)| t)
            .collect();
        assert_eq!(owners.len(), 1, "evil row must stay with one thread");
        plan.validate(&a).unwrap();
    }

    #[test]
    fn handles_empty_and_tiny_matrices() {
        let empty = CsrMatrix::<f32>::zeros(0, 4);
        let plan = BatchMergeSpmm::with_threads(4).plan(&empty, 8);
        assert_eq!(plan.nnz_total(), 0);
        let zero_nnz = CsrMatrix::<f32>::zeros(6, 6);
        let plan = BatchMergeSpmm::with_threads(4).plan(&zero_nnz, 8);
        plan.validate(&zero_nnz).unwrap();
        assert_eq!(plan.nnz_total(), 0);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = BatchMergeSpmm::new().config_fingerprint();
        let b = BatchMergeSpmm::with_threads(4).config_fingerprint();
        let c = BatchMergeSpmm::new().min_threads(8).config_fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
