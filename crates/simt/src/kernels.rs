//! High-level GPU kernel simulation: couples the core crate's work
//! decompositions to the SIMT lowering and timing engine.

use mpspmm_core::{
    default_cost_for_dim, thread_count, MergePathSerialFixup, MergePathSpmm, NnzSplitSpmm,
    RowSplitSpmm, SpmmKernel, MIN_THREADS,
};
use mpspmm_sparse::CsrMatrix;

use crate::config::GpuConfig;
use crate::engine::{simulate, SimReport};
use crate::lower::{lower_with_policy, LoweringPolicy};

/// A GPU SpMM kernel configuration to simulate (one bar of Figures 2/4/7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuKernel {
    /// The proposed MergePath-SpMM (Algorithm 2).
    MergePath {
        /// Merge-path cost; `None` uses the per-dimension Figure 6 table.
        cost: Option<usize>,
    },
    /// GNNAdvisor nnz-splitting.
    GnnAdvisor {
        /// `true` = GNNAdvisor-opt: pack several neighbor groups per warp
        /// when the dimension is below the SIMD width (§IV-A).
        opt: bool,
        /// Neighbor-group size; `None` uses the average degree (paper
        /// default).
        ng_size: Option<usize>,
    },
    /// Row-splitting over contiguous row chunks (one row per thread).
    RowSplit,
    /// Merge-path with the serial fix-up phase (the Figure 2 "merge-path"
    /// baseline).
    SerialFixup {
        /// Logical threads; `None` uses the "few hundred warps" heuristic
        /// the original implementation favours.
        threads: Option<usize>,
    },
}

impl GpuKernel {
    /// The figure label of this kernel.
    pub fn name(&self) -> &'static str {
        match self {
            GpuKernel::MergePath { .. } => "MergePath-SpMM",
            GpuKernel::GnnAdvisor { opt: false, .. } => "GNNAdvisor",
            GpuKernel::GnnAdvisor { opt: true, .. } => "GNNAdvisor-opt",
            GpuKernel::RowSplit => "row-splitting",
            GpuKernel::SerialFixup { .. } => "merge-path (serial fixup)",
        }
    }

    /// Simulates this kernel computing `A × XW` at dense dimension `dim`.
    pub fn simulate(&self, a: &CsrMatrix<f32>, dim: usize, cfg: &GpuConfig) -> SimReport {
        let (plan, policy) = match *self {
            GpuKernel::MergePath { cost } => {
                let cost = cost.unwrap_or_else(|| default_cost_for_dim(dim));
                let kernel = MergePathSpmm::with_cost(cost);
                (kernel.plan(a, dim), LoweringPolicy::merge_path())
            }
            GpuKernel::GnnAdvisor { opt, ng_size } => {
                let kernel = match ng_size {
                    Some(s) => NnzSplitSpmm::with_ng_size(s),
                    None => NnzSplitSpmm::new(),
                };
                let policy = if opt {
                    LoweringPolicy::gnnadvisor_opt()
                } else {
                    LoweringPolicy::gnnadvisor()
                };
                (kernel.plan(a, dim), policy)
            }
            GpuKernel::RowSplit => {
                let kernel = RowSplitSpmm::with_threads(a.rows().max(1));
                (kernel.plan(a, dim), LoweringPolicy::merge_path())
            }
            GpuKernel::SerialFixup { threads } => {
                let threads = threads.unwrap_or_else(|| serial_fixup_threads(a.merge_items()));
                let kernel = MergePathSerialFixup::with_threads(threads);
                (kernel.plan(a, dim), LoweringPolicy::merge_path())
            }
        };
        let run = lower_with_policy(&plan, dim, cfg.lanes, policy, a.cols());
        simulate(&run, cfg)
    }

    /// Number of logical threads MergePath-SpMM spawns for this matrix at
    /// `dim` (for reporting).
    pub fn merge_path_threads(a: &CsrMatrix<f32>, dim: usize, cost: Option<usize>) -> usize {
        let cost = cost.unwrap_or_else(|| default_cost_for_dim(dim));
        thread_count(a.merge_items(), cost, MIN_THREADS)
    }
}

/// The original merge-path implementation tops out at "a few hundred
/// warps" (§II): its thread count grows slowly with the input and is
/// capped, because more threads mean more spanning rows in the serial
/// phase.
fn serial_fixup_threads(merge_items: usize) -> usize {
    (merge_items / 256).clamp(128, 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_graphs::{DatasetSpec, GraphClass};

    fn powerlaw(nodes: usize, nnz: usize, max_deg: usize) -> CsrMatrix<f32> {
        DatasetSpec::custom("t", GraphClass::PowerLaw, nodes, nnz, max_deg).synthesize(11)
    }

    #[test]
    fn all_kernels_simulate_deterministically() {
        let a = powerlaw(2_000, 8_000, 200);
        let cfg = GpuConfig::rtx6000();
        for k in [
            GpuKernel::MergePath { cost: None },
            GpuKernel::GnnAdvisor {
                opt: false,
                ng_size: None,
            },
            GpuKernel::GnnAdvisor {
                opt: true,
                ng_size: None,
            },
            GpuKernel::RowSplit,
            GpuKernel::SerialFixup { threads: None },
        ] {
            let r1 = k.simulate(&a, 16, &cfg);
            let r2 = k.simulate(&a, 16, &cfg);
            assert_eq!(r1, r2, "{} must be deterministic", k.name());
            assert!(r1.micros > 0.0);
        }
    }

    #[test]
    fn opt_beats_baseline_at_small_dims() {
        // §V: GNNAdvisor-opt outperforms GNNAdvisor by packing two NGs per
        // warp at dimension 16.
        let a = powerlaw(5_000, 25_000, 400);
        let cfg = GpuConfig::rtx6000();
        let base = GpuKernel::GnnAdvisor {
            opt: false,
            ng_size: None,
        }
        .simulate(&a, 16, &cfg);
        let opt = GpuKernel::GnnAdvisor {
            opt: true,
            ng_size: None,
        }
        .simulate(&a, 16, &cfg);
        assert!(
            opt.cycles < base.cycles,
            "opt {} vs base {}",
            opt.cycles,
            base.cycles
        );
    }

    #[test]
    fn serial_fixup_has_serial_phase_on_power_law() {
        let a = powerlaw(2_000, 8_000, 400);
        let cfg = GpuConfig::rtx6000();
        let report = GpuKernel::SerialFixup { threads: None }.simulate(&a, 16, &cfg);
        assert!(report.serial_cycles > 0.0);
        let mp = GpuKernel::MergePath { cost: None }.simulate(&a, 16, &cfg);
        assert_eq!(mp.serial_cycles, 0.0);
    }

    #[test]
    fn row_split_suffers_on_evil_rows() {
        // A graph with one huge row: row-splitting's longest warp chain
        // dwarfs MergePath's balanced chains.
        let a = powerlaw(4_000, 16_000, 2_000);
        let cfg = GpuConfig::rtx6000();
        let rs = GpuKernel::RowSplit.simulate(&a, 16, &cfg);
        let mp = GpuKernel::MergePath { cost: None }.simulate(&a, 16, &cfg);
        assert!(
            rs.cycles > mp.cycles,
            "row-split {} should lose to merge-path {}",
            rs.cycles,
            mp.cycles
        );
    }

    #[test]
    fn serial_fixup_thread_heuristic_is_clamped() {
        assert_eq!(serial_fixup_threads(1_000), 128);
        assert_eq!(serial_fixup_threads(256 * 512), 512);
        assert_eq!(serial_fixup_threads(100_000_000), 1024);
    }
}
