use mpspmm_sparse::CsrMatrix;

/// Structural class of an evaluation graph (the "Type" column of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphClass {
    /// Type I — power-law (heavy-tail) degree distribution with evil rows.
    PowerLaw,
    /// Type II — structured graphs with near-uniform row lengths
    /// (molecular datasets, Twitter-partial).
    Structured,
}

impl std::fmt::Display for GraphClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphClass::PowerLaw => f.write_str("I (power-law)"),
            GraphClass::Structured => f.write_str("II (structured)"),
        }
    }
}

/// One row of the paper's Table II: an evaluation dataset described by its
/// structural parameters.
///
/// [`synthesize`](Self::synthesize) materializes a deterministic synthetic
/// graph matching these parameters (see the crate docs for the substitution
/// rationale).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Type I (power law) or Type II (structured).
    pub class: GraphClass,
    /// Number of graph nodes (rows of the adjacency matrix).
    pub nodes: usize,
    /// Number of adjacency non-zeros (directed edge slots).
    pub nnz: usize,
    /// Maximum out-degree — the length of the worst evil row.
    pub max_degree: usize,
}

impl DatasetSpec {
    /// Creates a custom (non-Table II) spec, e.g. for tests or scaled-down
    /// experiments.
    pub const fn custom(
        name: &'static str,
        class: GraphClass,
        nodes: usize,
        nnz: usize,
        max_degree: usize,
    ) -> Self {
        Self {
            name,
            class,
            nodes,
            nnz,
            max_degree,
        }
    }

    /// Average degree implied by the spec (the "Avg. Deg." Table II column).
    pub fn avg_degree(&self) -> f64 {
        self.nnz as f64 / self.nodes as f64
    }

    /// Synthesizes the adjacency matrix for this spec.
    ///
    /// Deterministic for a given `(spec, seed)`. All entry values are `1.0`
    /// (apply [`gcn_normalize`](crate::gcn_normalize) for GCN-weighted
    /// edges); node and nnz counts match the spec exactly, the maximum
    /// out-degree matches exactly (one pinned evil row for power-law
    /// graphs), and the degree-distribution shape follows the class.
    ///
    /// # Panics
    ///
    /// Panics if the spec is infeasible (e.g. `nnz > nodes * (nodes - 1)`
    /// or `max_degree >= nodes`).
    pub fn synthesize(&self, seed: u64) -> CsrMatrix<f32> {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(
            self.max_degree < self.nodes,
            "max_degree must be < nodes (no duplicate targets, no self loops)"
        );
        assert!(
            self.nnz <= self.nodes * (self.nodes - 1),
            "nnz exceeds the number of off-diagonal slots"
        );
        assert!(
            self.nnz <= self.nodes * self.max_degree,
            "nnz exceeds nodes * max_degree"
        );
        match self.class {
            GraphClass::PowerLaw => crate::generate_powerlaw(self, seed),
            GraphClass::Structured => crate::generate_structured(self, seed),
        }
    }

    /// A proportionally scaled-down version of this spec with about
    /// `factor`× fewer nodes and non-zeros (degree profile preserved).
    ///
    /// Used by the figure harnesses to keep the multicore-simulator inputs
    /// tractable while preserving each graph's imbalance character.
    pub fn scaled_down(&self, factor: usize) -> DatasetSpec {
        assert!(factor >= 1, "factor must be >= 1");
        let nodes = (self.nodes / factor).max(16);
        let nnz = (self.nnz / factor).max(nodes);
        let max_degree = self.max_degree.min(nodes - 1).max(nnz.div_ceil(nodes));
        DatasetSpec {
            name: self.name,
            class: self.class,
            nodes,
            nnz: nnz.min(nodes * max_degree),
            max_degree,
        }
    }
}

/// The paper's Table II: all 23 evaluation graphs.
///
/// Order matches the paper (Type I by increasing non-zeros, then Type II).
pub const TABLE_II: [DatasetSpec; 23] = [
    DatasetSpec::custom("Cora", GraphClass::PowerLaw, 2_708, 10_556, 168),
    DatasetSpec::custom("Citeseer", GraphClass::PowerLaw, 3_327, 9_228, 99),
    DatasetSpec::custom("Pubmed", GraphClass::PowerLaw, 19_717, 99_203, 171),
    DatasetSpec::custom("Oregon-1", GraphClass::PowerLaw, 11_492, 46_818, 2_389),
    DatasetSpec::custom("As-caida", GraphClass::PowerLaw, 31_379, 106_762, 2_628),
    DatasetSpec::custom("Wiki-Vote", GraphClass::PowerLaw, 8_297, 103_689, 893),
    DatasetSpec::custom("email-Enron", GraphClass::PowerLaw, 36_692, 367_662, 1_383),
    DatasetSpec::custom("email-Euall", GraphClass::PowerLaw, 265_214, 420_045, 930),
    DatasetSpec::custom("Nell", GraphClass::PowerLaw, 65_755, 251_550, 4_549),
    DatasetSpec::custom("PPI", GraphClass::PowerLaw, 56_944, 818_716, 429),
    DatasetSpec::custom(
        "soc-SlashDot811",
        GraphClass::PowerLaw,
        77_357,
        905_468,
        2_508,
    ),
    DatasetSpec::custom("artist", GraphClass::PowerLaw, 50_515, 1_638_396, 1_469),
    DatasetSpec::custom("com-Amazon", GraphClass::PowerLaw, 334_863, 1_851_744, 549),
    DatasetSpec::custom(
        "coAuthorsDBLP",
        GraphClass::PowerLaw,
        299_067,
        1_955_352,
        336,
    ),
    DatasetSpec::custom(
        "soc-BlogCatalog",
        GraphClass::PowerLaw,
        88_784,
        2_093_195,
        2_538,
    ),
    DatasetSpec::custom(
        "amazon0601",
        GraphClass::PowerLaw,
        410_236,
        4_878_874,
        2_760,
    ),
    DatasetSpec::custom(
        "amazon0505",
        GraphClass::PowerLaw,
        403_394,
        5_478_357,
        2_760,
    ),
    DatasetSpec::custom("PROTEINS_full", GraphClass::Structured, 43_466, 162_088, 25),
    DatasetSpec::custom(
        "Twitter-partial",
        GraphClass::Structured,
        580_768,
        1_435_116,
        12,
    ),
    DatasetSpec::custom("DD", GraphClass::Structured, 334_925, 1_686_092, 19),
    DatasetSpec::custom("Yeast", GraphClass::Structured, 1_710_902, 3_636_546, 6),
    DatasetSpec::custom("OVCAR-8H", GraphClass::Structured, 1_889_542, 3_946_402, 5),
    DatasetSpec::custom("SW-620H", GraphClass::Structured, 1_888_584, 3_944_206, 5),
];

/// Returns the full Table II registry as a slice.
pub fn table_ii() -> &'static [DatasetSpec] {
    &TABLE_II
}

/// Looks up a Table II dataset by (case-insensitive) name.
pub fn find_dataset(name: &str) -> Option<&'static DatasetSpec> {
    TABLE_II.iter().find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper_counts() {
        assert_eq!(TABLE_II.len(), 23);
        let type1 = TABLE_II
            .iter()
            .filter(|s| s.class == GraphClass::PowerLaw)
            .count();
        assert_eq!(type1, 17);
        let nell = find_dataset("nell").unwrap();
        assert_eq!(nell.nodes, 65_755);
        assert_eq!(nell.nnz, 251_550);
        assert_eq!(nell.max_degree, 4_549);
        // Paper: "Nell graph has 4549 non-zeros in an evil row, whereas the
        // average degree of this graph is 3.9" (3.8 in Table II).
        assert!((nell.avg_degree() - 3.8).abs() < 0.1);
    }

    #[test]
    fn avg_degrees_match_table() {
        // Spot-check the printed Avg. Deg. column within rounding.
        for (name, avg) in [
            ("Cora", 3.9),
            ("Citeseer", 2.8),
            ("Pubmed", 5.1),
            ("Wiki-Vote", 12.5),
            ("artist", 32.4),
            ("Yeast", 2.1),
            ("Twitter-partial", 2.5),
        ] {
            let s = find_dataset(name).unwrap();
            assert!(
                (s.avg_degree() - avg).abs() < 0.15,
                "{name}: computed {} vs table {avg}",
                s.avg_degree()
            );
        }
    }

    #[test]
    fn find_is_case_insensitive_and_total() {
        assert!(find_dataset("CORA").is_some());
        assert!(find_dataset("nope").is_none());
        for s in table_ii() {
            assert_eq!(find_dataset(s.name).unwrap(), s);
        }
    }

    #[test]
    fn scaled_down_preserves_feasibility() {
        for s in table_ii() {
            let small = s.scaled_down(64);
            assert!(small.nodes >= 16);
            assert!(small.max_degree < small.nodes);
            assert!(small.nnz <= small.nodes * small.max_degree);
            assert!(small.nnz <= small.nodes * (small.nodes - 1));
        }
    }

    #[test]
    #[should_panic(expected = "max_degree must be < nodes")]
    fn infeasible_spec_panics() {
        DatasetSpec::custom("bad", GraphClass::PowerLaw, 10, 20, 10).synthesize(1);
    }
}
