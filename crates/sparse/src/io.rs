//! Binary serialization of CSR matrices.
//!
//! Synthesizing the larger Table II graphs takes seconds; pipelines that
//! run many harnesses over the same inputs can persist them once with
//! [`write_csr`] and reload with [`read_csr`]. The format is a small
//! versioned little-endian layout (magic, version, dimensions, then the
//! three CSR arrays), independent of `serde` so files are portable and
//! cheap to stream.

use std::io::{Read, Write};

use crate::{CsrMatrix, SparseFormatError};

/// File magic: "MPSM" (MergePath-SpMM) + format version 1.
const MAGIC: [u8; 4] = *b"MPSM";
const VERSION: u32 = 1;

/// Errors from reading a serialized matrix.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the expected magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u32),
    /// The decoded arrays do not form a valid CSR matrix.
    InvalidMatrix(SparseFormatError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::BadMagic(m) => write!(f, "bad magic {m:?}, expected \"MPSM\""),
            IoError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            IoError::InvalidMatrix(e) => write!(f, "decoded data is not valid CSR: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::InvalidMatrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn write_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a matrix to `w` in the MPSM v1 binary format.
///
/// A mutable reference to any writer can be passed (`&mut file`).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csr<W: Write>(mut w: W, matrix: &CsrMatrix<f32>) -> Result<(), IoError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_u64(&mut w, matrix.rows() as u64)?;
    write_u64(&mut w, matrix.cols() as u64)?;
    write_u64(&mut w, matrix.nnz() as u64)?;
    for &p in matrix.row_ptr() {
        write_u64(&mut w, p as u64)?;
    }
    for &c in matrix.col_indices() {
        write_u64(&mut w, c as u64)?;
    }
    for &v in matrix.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a matrix written by [`write_csr`], re-validating every CSR
/// invariant (a corrupted or truncated stream cannot produce an invalid
/// matrix).
///
/// # Errors
///
/// Returns [`IoError`] on I/O failure, wrong magic/version, or invalid
/// decoded structure.
pub fn read_csr<R: Read>(mut r: R) -> Result<CsrMatrix<f32>, IoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(IoError::BadMagic(magic));
    }
    let mut vbuf = [0u8; 4];
    r.read_exact(&mut vbuf)?;
    let version = u32::from_le_bytes(vbuf);
    if version != VERSION {
        return Err(IoError::BadVersion(version));
    }
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    let nnz = read_u64(&mut r)? as usize;
    let mut row_ptr = Vec::with_capacity(rows + 1);
    for _ in 0..=rows {
        row_ptr.push(read_u64(&mut r)? as usize);
    }
    let mut col_indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_indices.push(read_u64(&mut r)? as usize);
    }
    let mut values = Vec::with_capacity(nnz);
    let mut fbuf = [0u8; 4];
    for _ in 0..nnz {
        r.read_exact(&mut fbuf)?;
        values.push(f32::from_le_bytes(fbuf));
    }
    CsrMatrix::new(rows, cols, row_ptr, col_indices, values).map_err(IoError::InvalidMatrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(
            4,
            5,
            &[(0, 1, 1.5), (1, 0, -2.0), (1, 4, 3.25), (3, 2, 0.5)],
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let mut buf = Vec::new();
        write_csr(&mut buf, &m).unwrap();
        let back = read_csr(buf.as_slice()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn empty_matrix_round_trips() {
        let m = CsrMatrix::<f32>::zeros(3, 3);
        let mut buf = Vec::new();
        write_csr(&mut buf, &m).unwrap();
        assert_eq!(read_csr(buf.as_slice()).unwrap(), m);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_csr(&b"NOPE...."[..]).unwrap_err();
        assert!(matches!(err, IoError::BadMagic(_)));
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_csr(&mut buf, &sample()).unwrap();
        buf[4] = 99; // bump the version field
        assert!(matches!(
            read_csr(buf.as_slice()).unwrap_err(),
            IoError::BadVersion(99)
        ));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_csr(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_csr(buf.as_slice()).unwrap_err(),
            IoError::Io(_)
        ));
    }

    #[test]
    fn rejects_corrupted_structure() {
        let mut buf = Vec::new();
        write_csr(&mut buf, &sample()).unwrap();
        // Corrupt the first row-pointer entry (offset: 4 magic + 4 version
        // + 3×8 header = 32) to a non-zero start.
        buf[32] = 7;
        assert!(matches!(
            read_csr(buf.as_slice()).unwrap_err(),
            IoError::InvalidMatrix(_)
        ));
    }

    #[test]
    fn file_round_trip() {
        let m = sample();
        let path = std::env::temp_dir().join("mpspmm_io_test.mpsm");
        write_csr(std::fs::File::create(&path).unwrap(), &m).unwrap();
        let back = read_csr(std::fs::File::open(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(m, back);
    }
}
