//! Merge-path sparse matrix–vector multiplication (the §III-A setting).
//!
//! This is the original Merrill–Garland algorithm the paper builds on:
//! each thread walks its merge-path share, accumulating scalar dot-product
//! partials; complete rows are written directly and the running total for
//! the row spanning into the next thread is saved as a carry. A serial
//! fix-up pass then adds the carries. For SpMV the fix-up cost is one
//! scalar add per spanning thread — "tolerable", as the paper puts it —
//! which is exactly why the same idea needs rethinking for SpMM.

use mpspmm_sparse::{CsrMatrix, SparseFormatError};

use crate::merge_path::Schedule;

/// Computes `y = A·x` with the merge-path decomposition over
/// `num_threads` logical threads (executed deterministically).
///
/// # Errors
///
/// Returns [`SparseFormatError::ShapeMismatch`] if `x.len() != a.cols()`.
///
/// # Panics
///
/// Panics if `num_threads == 0`.
///
/// # Example
///
/// ```
/// use mpspmm_core::spmv::merge_path_spmv;
/// use mpspmm_sparse::CsrMatrix;
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0f32), (1, 0, 1.0)])?;
/// let y = merge_path_spmv(&a, &[3.0, 5.0], 4)?;
/// assert_eq!(y, vec![6.0, 3.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn merge_path_spmv(
    a: &CsrMatrix<f32>,
    x: &[f32],
    num_threads: usize,
) -> Result<Vec<f32>, SparseFormatError> {
    if x.len() != a.cols() {
        return Err(SparseFormatError::ShapeMismatch {
            left: (a.rows(), a.cols()),
            right: (x.len(), 1),
        });
    }
    let schedule = Schedule::build(a, num_threads);
    Ok(spmv_with_schedule(&schedule, a, x))
}

/// Executes merge-path SpMV with a prebuilt schedule (offline setting).
///
/// # Panics
///
/// Panics if the schedule does not match the matrix shape or
/// `x.len() != a.cols()`.
pub fn spmv_with_schedule(schedule: &Schedule, a: &CsrMatrix<f32>, x: &[f32]) -> Vec<f32> {
    assert!(schedule.matches(a), "schedule/matrix shape mismatch");
    assert_eq!(x.len(), a.cols(), "vector length mismatch");
    let rp = a.row_ptr();
    let cols = a.col_indices();
    let vals = a.values();
    let mut y = vec![0.0f32; a.rows()];
    // (row, partial) carries saved by each thread for the serial fix-up.
    let mut carries: Vec<(usize, f32)> = Vec::new();

    for asg in schedule.assignments() {
        if asg.is_empty() {
            continue;
        }
        let (mut row, mut k) = (asg.start.row, asg.start.nnz);
        let (end_row, end_nnz) = (asg.end.row, asg.end.nnz);
        let mut acc = 0.0f32;
        // Complete rows first: every row whose terminator this thread
        // consumes.
        while row < end_row {
            while k < rp[row + 1] {
                acc += vals[k] * x[cols[k]];
                k += 1;
            }
            if asg.start.nnz > rp[row] && row == asg.start.row {
                // First row started mid-way: its total belongs to the
                // carry chain, not a direct write.
                carries.push((row, acc));
            } else {
                y[row] = acc;
            }
            acc = 0.0;
            row += 1;
        }
        // Trailing partial row shared with the next thread.
        while k < end_nnz {
            acc += vals[k] * x[cols[k]];
            k += 1;
        }
        if end_nnz > rp[end_row] {
            carries.push((end_row, acc));
        }
    }

    // Serial fix-up: one scalar addition per carry.
    for (row, partial) in carries {
        y[row] += partial;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::test_support::random_matrix;

    fn reference(a: &CsrMatrix<f32>, x: &[f32]) -> Vec<f32> {
        (0..a.rows())
            .map(|r| {
                let row = a.row(r);
                row.cols.iter().zip(row.vals).map(|(&c, &v)| v * x[c]).sum()
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * y.abs().max(1.0),
                "index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference_across_thread_counts() {
        for seed in 0..4 {
            let a = random_matrix(50, 50, 300, seed);
            let x: Vec<f32> = (0..50).map(|i| (i as f32 * 0.37).sin()).collect();
            let want = reference(&a, &x);
            for threads in [1, 2, 3, 5, 8, 17, 64, 500] {
                let got = merge_path_spmv(&a, &x, threads).unwrap();
                assert_close(&got, &want);
            }
        }
    }

    #[test]
    fn evil_row_spanning_all_threads() {
        let triplets: Vec<(usize, usize, f32)> = (0..64).map(|c| (0, c, 1.0)).collect();
        let a = CsrMatrix::from_triplets(1, 64, &triplets).unwrap();
        let x = vec![1.0f32; 64];
        let y = merge_path_spmv(&a, &x, 16).unwrap();
        assert_eq!(y[0], 64.0);
    }

    #[test]
    fn rejects_wrong_vector_length() {
        let a = random_matrix(10, 10, 30, 1);
        assert!(merge_path_spmv(&a, &[0.0; 9], 4).is_err());
    }

    #[test]
    fn empty_rows_stay_zero() {
        let a = CsrMatrix::from_triplets(5, 5, &[(2, 2, 4.0f32)]).unwrap();
        let y = merge_path_spmv(&a, &[1.0; 5], 3).unwrap();
        assert_eq!(y, vec![0.0, 0.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn offline_schedule_reuse() {
        let a = random_matrix(40, 40, 200, 2);
        let x: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let schedule = Schedule::build(&a, 8);
        let once = spmv_with_schedule(&schedule, &a, &x);
        let twice = spmv_with_schedule(&schedule, &a, &x);
        assert_eq!(once, twice);
        assert_close(&once, &reference(&a, &x));
    }
}
