//! Figure 5 — distribution of output-write types in MergePath-SpMM.
//!
//! For every Table II graph at dimension 16 (merge-path cost 20), prints
//! the share of output updates — and of non-zeros funnelled through them —
//! that use atomic vs regular writes. This is the accounting behind the
//! paper's observation that MergePath-SpMM's advantage over
//! GNNAdvisor-opt tracks the atomic share: email-Euall (many rows, low
//! degree) needs few atomics while email-Enron (fewer rows, higher degree)
//! needs many; Type II graphs are almost entirely regular writes.

use mpspmm_bench::{banner, full_size_requested, load};
use mpspmm_core::{default_cost_for_dim, thread_count, MergePathSpmm, SpmmKernel, MIN_THREADS};
use mpspmm_graphs::{table_ii, GraphClass};

fn main() {
    let full = full_size_requested();
    banner(
        "Figure 5",
        "atomic vs regular output updates in MergePath-SpMM, dim 16",
        full,
    );

    let dim = 16;
    let cost = default_cost_for_dim(dim);
    println!("merge-path cost = {cost} (Figure 6 optimum at dim 16)\n");
    println!(
        "{:<5} {:<16} {:>8} {:>14} {:>14} {:>13} {:>12}",
        "Type", "Graph", "threads", "atomic upd %", "regular upd %", "atomic nnz %", "serial nnz"
    );
    for spec in table_ii() {
        let (used, a) = load(spec, full);
        let kernel = MergePathSpmm::with_cost(cost);
        let plan = kernel.plan(&a, dim);
        let stats = plan.write_stats();
        println!(
            "{:<5} {:<16} {:>8} {:>13.1}% {:>13.1}% {:>12.1}% {:>12}",
            match used.class {
                GraphClass::PowerLaw => "I",
                GraphClass::Structured => "II",
            },
            used.name,
            thread_count(a.merge_items(), cost, MIN_THREADS),
            100.0 * stats.atomic_update_fraction(),
            100.0 * (1.0 - stats.atomic_update_fraction()),
            100.0 * stats.atomic_nnz_fraction(),
            stats.serial_nnz,
        );
    }
    println!(
        "\nPaper shape: structured (Type II) graphs flush almost everything \
         with regular writes; among Type I graphs, email-Euall's atomic \
         share is far below email-Enron's despite similar non-zero counts, \
         which is exactly where Figure 4's MergePath advantage widens."
    );
}
