//! Row-splitting baseline (§II).
//!
//! Rows are divided into equal contiguous chunks, one per thread. Since
//! each row is owned by exactly one thread, no synchronization is ever
//! needed — but the non-zeros per chunk can differ wildly on power-law
//! graphs (the evil-rows problem), which is the load imbalance the paper's
//! hardware baselines (AWB-GCN et al.) added an auto-tuner to fix.

use mpspmm_sparse::CsrMatrix;

use crate::plan::{Flush, KernelPlan, Segment, ThreadPlan};

use super::SpmmKernel;

/// Row-splitting SpMM: contiguous equal-row chunks, no atomics.
///
/// # Example
///
/// ```
/// use mpspmm_core::{RowSplitSpmm, SpmmKernel};
/// use mpspmm_sparse::{CsrMatrix, DenseMatrix};
///
/// let a = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0f32), (3, 3, 1.0)])?;
/// let b = DenseMatrix::from_fn(4, 2, |r, _| r as f32);
/// let c = RowSplitSpmm::with_threads(2).spmm(&a, &b)?;
/// assert_eq!(c.get(3, 0), 3.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowSplitSpmm {
    threads: usize,
}

impl RowSplitSpmm {
    /// Row-splitting over `threads` contiguous chunks.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        Self { threads }
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for RowSplitSpmm {
    /// 1024 threads — the paper's minimum GPU thread floor.
    fn default() -> Self {
        Self::with_threads(crate::tuning::MIN_THREADS)
    }
}

impl SpmmKernel for RowSplitSpmm {
    fn name(&self) -> &'static str {
        "row-splitting"
    }

    fn config_fingerprint(&self) -> u64 {
        crate::spmm::mix_config(&[self.threads as u64])
    }

    fn plan(&self, a: &CsrMatrix<f32>, _dim: usize) -> KernelPlan {
        let rows = a.rows();
        let rp = a.row_ptr();
        let threads = self.threads.min(rows.max(1));
        let chunk = rows.div_ceil(threads.max(1)).max(1);
        let mut plans = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = (t * chunk).min(rows);
            let hi = ((t + 1) * chunk).min(rows);
            let segments = (lo..hi)
                .filter(|&r| rp[r + 1] > rp[r])
                .map(|r| Segment {
                    row: r,
                    nz_start: rp[r],
                    nz_end: rp[r + 1],
                    flush: Flush::Regular,
                })
                .collect();
            plans.push(ThreadPlan { segments });
        }
        KernelPlan { threads: plans }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{
        check_kernel, check_vector_path_bit_identical, random_matrix,
    };
    use super::*;

    #[test]
    fn matches_oracle() {
        for seed in 0..3 {
            let a = random_matrix(50, 50, 300, seed);
            for threads in [1, 2, 7, 64] {
                check_kernel(&RowSplitSpmm::with_threads(threads), &a, 8);
            }
        }
    }

    #[test]
    fn vector_path_is_bit_identical() {
        let a = random_matrix(50, 50, 300, 31);
        for dim in [1, 5, 16, 33] {
            check_vector_path_bit_identical(&RowSplitSpmm::with_threads(7), &a, dim);
        }
    }

    #[test]
    fn never_uses_atomics() {
        let a = random_matrix(64, 64, 400, 1);
        let plan = RowSplitSpmm::with_threads(8).plan(&a, 16);
        let stats = plan.write_stats();
        assert_eq!(stats.atomic_row_updates, 0);
        assert_eq!(stats.regular_nnz, a.nnz());
    }

    #[test]
    fn chunks_are_contiguous_and_disjoint() {
        let a = random_matrix(100, 100, 500, 2);
        let plan = RowSplitSpmm::with_threads(7).plan(&a, 16);
        plan.validate(&a).unwrap();
        let mut last_row = None;
        for (_, seg) in plan.iter_segments() {
            if let Some(prev) = last_row {
                assert!(seg.row > prev, "rows must appear in increasing order");
            }
            last_row = Some(seg.row);
        }
    }

    #[test]
    fn load_imbalance_on_evil_rows() {
        // Row 0 owns most non-zeros: thread 0's nnz dwarfs the others —
        // exactly the §II motivation for nnz-based splitting.
        let mut triplets: Vec<(usize, usize, f32)> = (0..90).map(|c| (0, c, 1.0)).collect();
        for r in 1..30 {
            triplets.push((r, 0, 1.0));
        }
        let a = CsrMatrix::from_triplets(90, 90, &triplets).unwrap();
        let plan = RowSplitSpmm::with_threads(3).plan(&a, 16);
        let nnz_per_thread: Vec<usize> = plan.threads.iter().map(|t| t.nnz()).collect();
        assert!(nnz_per_thread[0] > 5 * nnz_per_thread[1].max(1));
    }

    #[test]
    fn more_threads_than_rows_is_clamped() {
        let a = random_matrix(5, 5, 10, 3);
        let plan = RowSplitSpmm::with_threads(100).plan(&a, 16);
        assert!(plan.num_threads() <= 5);
        plan.validate(&a).unwrap();
    }
}
