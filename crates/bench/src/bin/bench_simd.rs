//! SIMD data-path benchmark — vectorized vs register-tiled engine paths.
//!
//! For the same Table II spread as `bench_engine`, times the PR-1
//! register-tiled path ([`DataPath::Tiled`]) against the vectorized,
//! cache-blocked path ([`DataPath::Vector`]) on identical prepared plans,
//! single-core, at dimensions 16 and 32. Both sides run through
//! [`ExecEngine::execute_prepared`], so the comparison isolates the inner
//! data path: wide-lane streaming kernels, panel blocking, packed u32
//! column indices, and the degree-adaptive gather/stream dispatcher.
//!
//! When `BENCH_engine.json` (written by `bench_engine`, whose timed loop
//! re-classifies the plan per call via `execute`) is present, the harness
//! also reports the end-to-end improvement of the vectorized prepared
//! path over that stored baseline — the number the PR acceptance gate
//! reads. Writes `BENCH_simd.json` with one record per
//! (dataset, kernel, dim):
//! `{dataset, kernel, dim, ns_per_nnz, vs_tiled, vs_baseline}`.

use mpspmm_bench::{
    banner, full_size_requested, geomean, load, parse_bench_records, time_ns, BenchRecord,
};
use mpspmm_core::{
    DataPath, ExecEngine, MergePathSpmm, NnzSplitSpmm, PreparedPlan, RowSplitSpmm, SpmmKernel,
    GATHER_MAX_NNZ,
};
use mpspmm_sparse::DenseMatrix;

const DATASETS: [&str; 6] = [
    "Cora",
    "Citeseer",
    "Pubmed",
    "Wiki-Vote",
    "PPI",
    "PROTEINS_full",
];

fn main() {
    let full = full_size_requested();
    banner(
        "BENCH simd",
        "register-tiled vs vectorized data path, single-core, dims {16, 32}",
        full,
    );

    let baseline: Vec<BenchRecord> = std::fs::read_to_string("BENCH_engine.json")
        .map(|s| parse_bench_records(&s))
        .unwrap_or_default();
    if baseline.is_empty() {
        println!(
            "note: no BENCH_engine.json found; run bench_engine first for vs-baseline numbers"
        );
    }

    let kernels: Vec<Box<dyn SpmmKernel>> = vec![
        Box::new(MergePathSpmm::new()),
        Box::new(NnzSplitSpmm::new()),
        Box::new(RowSplitSpmm::default()),
    ];
    let tiled = ExecEngine::with_data_path(1, DataPath::Tiled);
    let vector = ExecEngine::with_data_path(1, DataPath::Vector);

    println!(
        "\n{:<16} {:<16} {:>4} {:>11} {:>11} {:>9} {:>9}",
        "Graph", "Kernel", "dim", "tiled/nnz", "simd/nnz", "vs tiled", "vs PR-1"
    );
    let mut records = Vec::new();
    let mut vs_tiled_all = Vec::new();
    let mut vs_baseline_all = Vec::new();
    for name in DATASETS {
        let spec = find(name);
        let (used, a) = load(spec, full);
        for kernel in &kernels {
            for dim in [16usize, 32] {
                let b = DenseMatrix::from_fn(a.cols(), dim, |r, c| {
                    ((r * 31 + c * 7) % 17) as f32 * 0.125 - 1.0
                });
                // One preparation (classification + u32 packing), shared by
                // both paths — the GNN setting where the graph is fixed
                // across inferences and preparation is amortized away.
                let prep = PreparedPlan::for_matrix(kernel.plan(&a, dim), &a);
                let tiled_ns = time_ns(2, 7, || {
                    let _ = tiled.execute_prepared(&prep, &a, &b).unwrap();
                });
                let simd_ns = time_ns(2, 7, || {
                    let _ = vector.execute_prepared(&prep, &a, &b).unwrap();
                });
                let ns_per_nnz = simd_ns / a.nnz() as f64;
                let vs_tiled = tiled_ns / simd_ns;
                let vs_base = baseline
                    .iter()
                    .find(|r| r.dataset == used.name && r.kernel == kernel.name() && r.dim == dim)
                    .map(|r| r.ns_per_nnz / ns_per_nnz);
                println!(
                    "{:<16} {:<16} {:>4} {:>11.2} {:>11.2} {:>8.2}x {:>9}",
                    used.name,
                    kernel.name(),
                    dim,
                    tiled_ns / a.nnz() as f64,
                    ns_per_nnz,
                    vs_tiled,
                    vs_base.map_or_else(|| "-".into(), |v| format!("{v:.2}x")),
                );
                vs_tiled_all.push(vs_tiled);
                if let Some(v) = vs_base {
                    vs_baseline_all.push(v);
                }
                records.push(format!(
                    "    {{\"dataset\": \"{}\", \"kernel\": \"{}\", \"dim\": {}, \"ns_per_nnz\": {:.3}, \"vs_tiled\": {:.3}, \"vs_baseline\": {}}}",
                    used.name,
                    kernel.name(),
                    dim,
                    ns_per_nnz,
                    vs_tiled,
                    vs_base.map_or_else(|| "null".into(), |v| format!("{v:.3}")),
                ));
            }
        }
    }
    let g_tiled = geomean(&vs_tiled_all);
    let g_base = geomean(&vs_baseline_all);
    println!("\ngeomean vs register-tiled path (same prepared plan): {g_tiled:.2}x");
    if vs_baseline_all.is_empty() {
        println!("geomean vs PR-1 BENCH_engine.json baseline: n/a (no baseline records matched)");
    } else {
        println!(
            "geomean vs PR-1 BENCH_engine.json baseline ({} records): {g_base:.2}x",
            vs_baseline_all.len()
        );
    }

    // Dispatcher demography on one power-law graph: how much of the
    // merge-path schedule lands in the gather regime vs streaming.
    let (used, a) = load(find("Pubmed"), full);
    let kernel = MergePathSpmm::new();
    let schedule = kernel.schedule(&a, 16);
    let gather_frac = schedule.gather_bound_fraction(a.row_ptr(), GATHER_MAX_NNZ);
    let b = DenseMatrix::from_fn(a.cols(), 16, |r, c| ((r + c) % 7) as f32);
    vector.clear_cache();
    let prep = PreparedPlan::for_matrix(kernel.plan(&a, 16), &a);
    let _ = vector.execute_prepared(&prep, &a, &b).unwrap();
    let stats = vector.stats();
    println!(
        "\ndispatch on {} (dim 16): {:.0}% of threads gather-bound; \
         {} gather / {} stream segments this run",
        used.name,
        gather_frac * 100.0,
        stats.gather_segments,
        stats.stream_segments
    );

    let json = format!(
        "{{\n  \"baseline\": \"PR-1 tiled scalar data path, same engine\",\n  \"speedup\": {:.3},\n  \"results\": [\n{}\n  ],\n  \"geomean_vs_tiled\": {:.3},\n  \"geomean_vs_baseline\": {},\n  \"gather_bound_fraction_pubmed\": {:.3}\n}}\n",
        g_tiled,
        records.join(",\n"),
        g_tiled,
        if vs_baseline_all.is_empty() {
            "null".into()
        } else {
            format!("{g_base:.3}")
        },
        gather_frac
    );
    std::fs::write("BENCH_simd.json", &json).expect("write BENCH_simd.json");
    println!("wrote BENCH_simd.json");
}

fn find(name: &str) -> &'static mpspmm_graphs::DatasetSpec {
    mpspmm_graphs::find_dataset(name).expect("Table II dataset")
}
