//! Single-threaded reference kernel: the correctness oracle.

use mpspmm_sparse::CsrMatrix;

use crate::plan::{Flush, KernelPlan, Segment, ThreadPlan};

use super::SpmmKernel;

/// Serial row-by-row SpMM (Gustavson's row-wise dataflow on one thread).
///
/// # Example
///
/// ```
/// use mpspmm_core::{SerialSpmm, SpmmKernel};
/// use mpspmm_sparse::{CsrMatrix, DenseMatrix};
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(1, 0, 3.0f32)])?;
/// let b = DenseMatrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
/// let c = SerialSpmm.spmm(&a, &b)?;
/// assert_eq!(c.get(1, 1), 3.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialSpmm;

impl SpmmKernel for SerialSpmm {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn plan(&self, a: &CsrMatrix<f32>, _dim: usize) -> KernelPlan {
        let rp = a.row_ptr();
        let segments = (0..a.rows())
            .filter(|&r| rp[r + 1] > rp[r])
            .map(|r| Segment {
                row: r,
                nz_start: rp[r],
                nz_end: rp[r + 1],
                flush: Flush::Regular,
            })
            .collect();
        KernelPlan {
            threads: vec![ThreadPlan { segments }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{check_kernel, dense_reference, random_dense, random_matrix};
    use super::*;

    #[test]
    fn matches_oracle() {
        for seed in 0..3 {
            let a = random_matrix(30, 30, 150, seed);
            check_kernel(&SerialSpmm, &a, 8);
        }
    }

    #[test]
    fn empty_matrix_yields_zero_output() {
        let a = CsrMatrix::<f32>::zeros(4, 4);
        let b = random_dense(4, 3, 1);
        let c = SerialSpmm.spmm(&a, &b).unwrap();
        assert_eq!(c.frobenius_norm(), 0.0);
    }

    #[test]
    fn identity_matrix_copies_input() {
        let triplets: Vec<(usize, usize, f32)> = (0..5).map(|i| (i, i, 1.0)).collect();
        let a = CsrMatrix::from_triplets(5, 5, &triplets).unwrap();
        let b = random_dense(5, 4, 2);
        let c = SerialSpmm.spmm(&a, &b).unwrap();
        assert!(c.approx_eq(&b, 1e-7).unwrap());
        assert!(c.approx_eq(&dense_reference(&a, &b), 1e-7).unwrap());
    }
}
