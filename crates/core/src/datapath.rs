//! Vectorized, cache-blocked inner data path for the execution engine.
//!
//! PR 1's engine removed the *scheduling* overheads (thread spawn, global
//! atomics, re-planning); the inner loop it kept is a scalar-accumulator
//! kernel unrolled by 8/4. This module supplies the data-path side:
//!
//! * **Wide-lane streaming kernels** — const-generic register-accumulator
//!   blocks of 16 and 8 f32 lanes ([`LaneWidth`] picks the widest the CPU
//!   supports at runtime), each compiled to straight-line FMA-friendly
//!   code LLVM auto-vectorizes, with an 8/4/scalar tail cascade for
//!   dimension remainders.
//! * **Feature-dimension panel blocking** — for large `dim` a segment is
//!   swept in L1-resident column panels ([`crate::tuning::panel_cols`]),
//!   so the gathered rows of `B` are touched one cache-friendly panel at
//!   a time instead of streaming full rows past the accumulators.
//! * **Degree-adaptive dispatch** — segments with at most
//!   [`crate::tuning::GATHER_MAX_NNZ`] non-zeros (the short-row regime
//!   that dominates power-law graphs) skip the column-blocked machinery
//!   and run a gather microkernel that initializes the destination once
//!   and axpy-accumulates row by row; long segments take the streaming
//!   panel kernel. The engine records the split in
//!   [`crate::EngineStats`].
//! * **Packed indices** — every kernel is generic over the column-index
//!   type, so it runs on the `u32` SoA packing
//!   ([`mpspmm_sparse::PackedCsr`]-style, built by
//!   [`crate::PreparedPlan::pack_indices`]) when available and on the
//!   plain `usize` CSR arrays otherwise.
//!
//! # Why the scalar kernel stays the oracle
//!
//! Every kernel here gives each output column its **own** accumulator and
//! adds that column's products in non-zero order. Lane width, panel
//! boundaries, and the gather-vs-stream choice only change *which columns
//! are grouped together*, never the order of additions within a column —
//! so all paths produce exactly equal values (f32 `==`, zero tolerance)
//! to [`accumulate_segment_scalar`] (and hence to
//! [`crate::executor::execute_sequential`]). The streaming kernels fold
//! in the oracle's leading `0.0` and are bit-identical; the gather
//! microkernel fuses the products directly, which can differ from the
//! oracle only in the **sign of a zero** result (`-0.0` vs `+0.0`, a
//! 0-ulp difference) — the property tests assert exact equality, not a
//! tolerance, and pass because `-0.0 == 0.0`. Building with the
//! `force-scalar` feature pins [`DataPath::Auto`] to the scalar path,
//! keeping a known-good oracle build available at all times.
//!
//! # FastMath (opt-in FMA contraction)
//!
//! The exact kernels above keep multiply and add as separate
//! instructions — the price of bit-equality with the scalar oracle. The
//! opt-in **FastMath** mode ([`crate::ExecEngine::with_fast_math`] or
//! `MPSPMM_FASTMATH=1`) permits fused multiply-add contraction in the
//! streaming SpMM kernel and the GEMM microkernel: the same loops with
//! `f32::mul_add`, compiled under `#[target_feature]` clones that enable
//! the `fma` extension (a bare `mul_add` without it lowers to a libm
//! call). FMA skips the intermediate rounding of the product, so
//! FastMath results can differ from the oracle by a rounding-level
//! amount per product — it is **never** selected by default, never used
//! by the oracles, and the gather microkernel (too short to benefit)
//! stays exact even under FastMath. See DESIGN.md §2.11 for the
//! carve-out.
//!
//! # Tuning knobs
//!
//! Three environment variables, read **once per process** at the first
//! path resolution (never in the segment loop or per engine run):
//! `MPSPMM_GATHER_MAX` overrides the gather threshold
//! ([`GATHER_MAX_NNZ`]; `0` disables the gather kernel entirely),
//! `MPSPMM_NO_PREFETCH` disables the software prefetch, and
//! `MPSPMM_FASTMATH` (any value but `0`) opts the process into FastMath.
//! Like `MPSPMM_WORKERS`, changing them after the first engine run has no
//! effect — a serving process resolves its configuration at startup.

use mpspmm_sparse::{CsrMatrix, DenseMatrix};

use crate::plan::Segment;
use crate::tuning::{panel_cols, CacheModel, GATHER_MAX_NNZ, GEMM_MR};

/// Which inner data path an [`crate::ExecEngine`] drives its segments
/// through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataPath {
    /// Pick automatically: the vectorized path, unless the crate is built
    /// with the `force-scalar` feature (then the scalar oracle).
    #[default]
    Auto,
    /// Scalar per-column accumulation — the correctness oracle.
    Scalar,
    /// The PR-1 register-tiled kernel (8/4-unrolled, `usize` indices, no
    /// panel blocking). Kept selectable so benchmarks can regenerate the
    /// PR-1 baseline on the same binary.
    Tiled,
    /// Wide-lane streaming kernels with panel blocking, packed-index
    /// support, and degree-adaptive gather dispatch.
    Vector,
}

/// Accumulator width of the streaming kernel, selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneWidth {
    /// 8 f32 accumulators per block (two SSE vectors, one AVX vector).
    W8,
    /// 16 f32 accumulators per block (two AVX vectors, one AVX-512
    /// vector).
    W16,
}

impl LaneWidth {
    /// Picks the widest block the running CPU vectorizes profitably:
    /// 16 lanes with AVX2/AVX-512, 8 otherwise (and on non-x86_64).
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") || is_x86_feature_detected!("avx2") {
                return LaneWidth::W16;
            }
        }
        LaneWidth::W8
    }

    /// Number of f32 lanes per block.
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::W8 => 8,
            LaneWidth::W16 => 16,
        }
    }
}

/// Widest x86 vector extension the GEMM microkernel may be *compiled*
/// for, proven present at runtime. [`LaneWidth`] only sizes accumulator
/// blocks for the baseline autovectorizer; this goes further and selects
/// a `#[target_feature]` clone of the same kernel body, so the identical
/// scalar arithmetic (separate multiply and add, `k` ascending — never
/// FMA-contracted, which would change rounding) is emitted with 256- or
/// 512-bit instructions. Results stay bit-equal across all variants
/// because every vector lane is an independent output column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WideIsa {
    /// Baseline codegen (also all non-x86_64 targets).
    Portable,
    /// AVX2 proven by `is_x86_feature_detected!`.
    Avx2,
    /// AVX-512F proven by `is_x86_feature_detected!`.
    Avx512f,
}

impl WideIsa {
    /// Detects the widest ISA clone the running CPU supports.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return WideIsa::Avx512f;
            }
            if is_x86_feature_detected!("avx2") {
                return WideIsa::Avx2;
            }
        }
        WideIsa::Portable
    }
}

/// Concrete kernel family after [`DataPath`] resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PathKind {
    Scalar,
    Tiled,
    Vector,
}

/// A [`DataPath`] resolved against a dense dimension: the kernel family,
/// the lane width, the column panel, the gather threshold, and whether
/// FMA contraction is permitted, fixed once per engine run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResolvedPath {
    pub kind: PathKind,
    pub lanes: LaneWidth,
    pub wide_isa: WideIsa,
    pub panel: usize,
    pub gather_max: usize,
    pub prefetch: bool,
    /// FMA contraction permitted (FastMath): only ever `true` when the
    /// engine opted in **and** [`fastmath_supported`] proved the CPU can
    /// run the fma clones **and** the kernel family is `Vector` (the
    /// scalar/tiled baselines stay exact unconditionally).
    pub fastmath: bool,
}

impl DataPath {
    /// Resolves the path for one execution over a `dim`-column dense
    /// operand, with FastMath off (the exact default). Production call
    /// sites all thread the engine's FastMath flag through
    /// [`DataPath::resolve_fast`]; this shorthand remains for tests and
    /// any caller that wants the exact path unconditionally.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn resolve(self, dim: usize) -> ResolvedPath {
        self.resolve_fast(dim, false)
    }

    /// Resolves the path for one execution over a `dim`-column dense
    /// operand; `want_fastmath` requests FMA contraction, granted only
    /// when the resolved kernel family is `Vector` and the CPU supports
    /// the fma kernel clones.
    pub(crate) fn resolve_fast(self, dim: usize, want_fastmath: bool) -> ResolvedPath {
        let kind = match self {
            DataPath::Auto => {
                if cfg!(feature = "force-scalar") {
                    PathKind::Scalar
                } else {
                    PathKind::Vector
                }
            }
            DataPath::Scalar => PathKind::Scalar,
            DataPath::Tiled => PathKind::Tiled,
            DataPath::Vector => PathKind::Vector,
        };
        let lanes = LaneWidth::detect();
        ResolvedPath {
            kind,
            lanes,
            wide_isa: WideIsa::detect(),
            panel: panel_cols(dim, lanes.lanes(), &CacheModel::default()),
            gather_max: env_gather_max(),
            prefetch: env_prefetch(),
            fastmath: want_fastmath && kind == PathKind::Vector && fastmath_supported(),
        }
    }
}

/// Whether this CPU can run the FastMath kernel clones: on x86-64, a
/// proven `fma` extension alongside a wide ISA clone (AVX2/AVX-512F —
/// `fma` does not meaningfully exist without them); elsewhere always, as
/// `f32::mul_add` is a native instruction (e.g. NEON) on every supported
/// target. FastMath being *supported* does not make it *selected*: the
/// engine must still opt in.
pub fn fastmath_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("fma") && WideIsa::detect() != WideIsa::Portable
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        true
    }
}

/// `MPSPMM_FASTMATH` opt-in (any value but `0`), resolved once per
/// process like the other data-path knobs.
pub(crate) fn env_fastmath() -> bool {
    static FASTMATH: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FASTMATH.get_or_init(|| std::env::var_os("MPSPMM_FASTMATH").is_some_and(|v| v != "0"))
}

/// `MPSPMM_GATHER_MAX` override, resolved once per process (a request
/// server resolves hundreds of thousands of paths; the environment cannot
/// change under a running process anyway).
fn env_gather_max() -> usize {
    static GATHER_MAX: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *GATHER_MAX.get_or_init(|| {
        std::env::var("MPSPMM_GATHER_MAX")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(GATHER_MAX_NNZ)
    })
}

/// `MPSPMM_NO_PREFETCH` kill switch, resolved once per process.
fn env_prefetch() -> bool {
    static PREFETCH: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PREFETCH.get_or_init(|| std::env::var_os("MPSPMM_NO_PREFETCH").is_none())
}

/// Column-index view the kernels are generic over: plain CSR `usize`
/// indices or the packed `u32` form.
pub(crate) trait ColIdx: Copy {
    fn to_usize(self) -> usize;
}

impl ColIdx for usize {
    #[inline(always)]
    fn to_usize(self) -> usize {
        self
    }
}

impl ColIdx for u32 {
    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }
}

/// Scalar oracle: one column at a time, additions in non-zero order.
/// `off` shifts the window into `B`'s rows: the kernel computes output
/// columns `[off, off + dst.len())` into `dst[0..]` (the column-striped
/// executor hands each worker such a window; every full-row caller
/// passes `0`).
pub(crate) fn accumulate_segment_scalar<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    off: usize,
    dst: &mut [f32],
) {
    for (d, slot) in dst.iter_mut().enumerate() {
        let mut s = 0.0f32;
        for k in seg.nz_start..seg.nz_end {
            s += vals[k] * b.row(cols[k].to_usize())[off + d];
        }
        *slot = s;
    }
}

/// The PR-1 register-tiled kernel, re-expressed over the shared wide-lane
/// blocks: unrolled blocks of 8 and 4 plus a scalar tail, full-width (no
/// panel loop), `usize` indices. Arithmetic per column is unchanged from
/// PR 1 — same block cascade, same accumulation order. `off` windows the
/// source columns as in [`accumulate_segment_scalar`].
#[inline]
pub(crate) fn accumulate_segment_tiled(
    seg: &Segment,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
    off: usize,
    dst: &mut [f32],
) {
    let cols = a.col_indices();
    let vals = a.values();
    let dim = dst.len();
    let mut d = 0;
    while d + 8 <= dim {
        stream_block::<8, false, _>(seg, cols, vals, b, off, d, dst);
        d += 8;
    }
    if d + 4 <= dim {
        stream_block::<4, false, _>(seg, cols, vals, b, off, d, dst);
        d += 4;
    }
    tail_columns::<false, _>(seg, cols, vals, b, off, d..dim, dst);
}

/// One `W`-column register-accumulator block: `W` f32 accumulators live
/// across the whole segment sweep, loads of `B` go through a fixed-size
/// `[f32; W]` view so the inner loop is bounds-check-free straight-line
/// code LLVM vectorizes. Source columns start at `off + d` in `B`;
/// destination columns at `d` in `dst`. `FAST` switches the accumulate
/// to `mul_add` — only the FastMath `#[target_feature(…,fma)]` clones
/// instantiate it with `true`.
#[inline(always)]
fn stream_block<const W: usize, const FAST: bool, I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    off: usize,
    d: usize,
    dst: &mut [f32],
) {
    let mut acc = [0.0f32; W];
    for k in seg.nz_start..seg.nz_end {
        let v = vals[k];
        let row = b.row(cols[k].to_usize());
        let blk: &[f32; W] = row[off + d..off + d + W]
            .try_into()
            .expect("block inside dense row");
        for (a, &x) in acc.iter_mut().zip(blk) {
            if FAST {
                *a = v.mul_add(x, *a);
            } else {
                *a += v * x;
            }
        }
    }
    dst[d..d + W].copy_from_slice(&acc);
}

/// Scalar remainder columns of a panel (`range` indexes `dst`; the
/// source column is `off` further right).
#[inline(always)]
fn tail_columns<const FAST: bool, I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    off: usize,
    range: std::ops::Range<usize>,
    dst: &mut [f32],
) {
    for d in range {
        let mut s = 0.0f32;
        for k in seg.nz_start..seg.nz_end {
            let x = b.row(cols[k].to_usize())[off + d];
            if FAST {
                s = vals[k].mul_add(x, s);
            } else {
                s += vals[k] * x;
            }
        }
        dst[d] = s;
    }
}

/// Gather microkernel for short segments: fuse all (at most four) gathered
/// rows into a single register-accumulating pass over the destination —
/// one `dst` write per column, no per-block loop restarts, no staging
/// array. The column-blocked machinery would cost more than the segment
/// itself.
///
/// Per column the products are summed left-to-right in non-zero order,
/// the oracle's order; the only representational difference is that the
/// oracle folds in a leading `0.0` (which can flip a `-0.0` product to
/// `+0.0`), so results are equal under f32 `==` and may differ only in
/// the sign of zero.
pub(crate) fn gather_segment<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    off: usize,
    dst: &mut [f32],
) {
    let dim = dst.len();
    let k = seg.nz_start;
    let row = |i: usize| &b.row(cols[k + i].to_usize())[off..off + dim];
    match seg.len() {
        0 => dst.fill(0.0),
        1 => {
            let v0 = vals[k];
            for (slot, &x0) in dst.iter_mut().zip(row(0)) {
                *slot = v0 * x0;
            }
        }
        2 => {
            let (v0, v1) = (vals[k], vals[k + 1]);
            for ((slot, &x0), &x1) in dst.iter_mut().zip(row(0)).zip(row(1)) {
                *slot = v0 * x0 + v1 * x1;
            }
        }
        3 => {
            let (v0, v1, v2) = (vals[k], vals[k + 1], vals[k + 2]);
            for (((slot, &x0), &x1), &x2) in dst.iter_mut().zip(row(0)).zip(row(1)).zip(row(2)) {
                *slot = v0 * x0 + v1 * x1 + v2 * x2;
            }
        }
        4 => {
            let (v0, v1, v2, v3) = (vals[k], vals[k + 1], vals[k + 2], vals[k + 3]);
            for ((((slot, &x0), &x1), &x2), &x3) in dst
                .iter_mut()
                .zip(row(0))
                .zip(row(1))
                .zip(row(2))
                .zip(row(3))
            {
                *slot = v0 * x0 + v1 * x1 + v2 * x2 + v3 * x3;
            }
        }
        // Above four rows (a raised `MPSPMM_GATHER_MAX`): initialize from
        // the first row's product, then axpy the rest.
        _ => {
            let v0 = vals[k];
            for (slot, &x0) in dst.iter_mut().zip(row(0)) {
                *slot = v0 * x0;
            }
            for j in 1..seg.len() {
                let v = vals[k + j];
                for (slot, &x) in dst.iter_mut().zip(row(j)) {
                    *slot += v * x;
                }
            }
        }
    }
}

/// The streaming panel sweep shared by the exact kernel and its FastMath
/// clones: sweeps the destination window in `rp.panel`-column panels;
/// within a panel, wide-lane blocks at `rp.lanes`, then an 8/4/scalar
/// cascade for the remainder. `inline(always)` so each
/// `#[target_feature]` clone absorbs the whole cascade under its own
/// codegen features.
#[inline(always)]
fn stream_segment_body<const FAST: bool, I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    off: usize,
    dst: &mut [f32],
    rp: &ResolvedPath,
) {
    let dim = dst.len();
    let panel = rp.panel.max(1);
    let mut p0 = 0;
    while p0 < dim {
        let p1 = (p0 + panel).min(dim);
        let mut d = p0;
        if rp.lanes == LaneWidth::W16 {
            while d + 16 <= p1 {
                stream_block::<16, FAST, _>(seg, cols, vals, b, off, d, dst);
                d += 16;
            }
        }
        while d + 8 <= p1 {
            stream_block::<8, FAST, _>(seg, cols, vals, b, off, d, dst);
            d += 8;
        }
        if d + 4 <= p1 {
            stream_block::<4, FAST, _>(seg, cols, vals, b, off, d, dst);
            d += 4;
        }
        tail_columns::<FAST, _>(seg, cols, vals, b, off, d..p1, dst);
        p0 = p1;
    }
}

/// Streaming panel kernel for long segments — the exact (bit-equal to
/// the oracle) instantiation of [`stream_segment_body`].
pub(crate) fn stream_segment<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    off: usize,
    dst: &mut [f32],
    rp: &ResolvedPath,
) {
    stream_segment_body::<false, I>(seg, cols, vals, b, off, dst, rp);
}

/// FastMath streaming kernel: [`stream_segment_body`] with `mul_add`,
/// dispatched to the `#[target_feature(…, "fma")]` clone matching the
/// proven [`WideIsa`]. Only reachable when [`ResolvedPath::fastmath`] is
/// set, which implies the fma proof on x86-64.
fn stream_segment_fast<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    off: usize,
    dst: &mut [f32],
    rp: &ResolvedPath,
) {
    #[cfg(target_arch = "x86_64")]
    wide::stream_fast(seg, cols, vals, b, off, dst, rp);
    #[cfg(not(target_arch = "x86_64"))]
    stream_segment_body::<true, I>(seg, cols, vals, b, off, dst, rp);
}

/// The vectorized path's degree-adaptive dispatch: gather microkernel at
/// or below the threshold (always exact — a ≤ 4-nnz segment has no FMA
/// win), streaming panel kernel above it (FastMath clone when the
/// resolved path permits contraction).
#[inline]
pub(crate) fn vector_segment<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    off: usize,
    dst: &mut [f32],
    rp: &ResolvedPath,
) {
    if seg.len() <= rp.gather_max {
        gather_segment(seg, cols, vals, b, off, dst);
    } else if rp.fastmath {
        stream_segment_fast(seg, cols, vals, b, off, dst, rp);
    } else {
        stream_segment(seg, cols, vals, b, off, dst, rp);
    }
}

/// Accumulates one segment into `dst`, overwriting it, through the
/// resolved data path. `dst` covers output columns
/// `[off, off + dst.len())` — full rows pass `off = 0`, the
/// column-striped executor passes its stripe window. `cols32` is the
/// packed `u32` index array when the prepared plan carries one.
pub(crate) fn accumulate_segment_dispatch(
    rp: &ResolvedPath,
    seg: &Segment,
    a: &CsrMatrix<f32>,
    cols32: Option<&[u32]>,
    b: &DenseMatrix<f32>,
    off: usize,
    dst: &mut [f32],
) {
    match rp.kind {
        PathKind::Scalar => {
            accumulate_segment_scalar(seg, a.col_indices(), a.values(), b, off, dst);
        }
        PathKind::Tiled => accumulate_segment_tiled(seg, a, b, off, dst),
        PathKind::Vector => match cols32 {
            Some(cols) => vector_segment(seg, cols, a.values(), b, off, dst, rp),
            None => vector_segment(seg, a.col_indices(), a.values(), b, off, dst, rp),
        },
    }
}

/// Dense GEMM band kernel for [`crate::ExecEngine::gemm`]: computes the
/// `dst.len() / b.cols()` output rows starting at `row_start` of
/// `C = A · B` into the zeroed row-major slice `dst`. Returns the number
/// of column panels executed (the [`crate::EngineStats::gemm_panels`]
/// unit; the scalar path counts one panel per band).
///
/// The blocked path register-tiles [`GEMM_MR`] `A` rows against the same
/// wide-lane cascade as the streaming SpMM kernel (16-lane blocks when
/// [`LaneWidth::W16`], then 8/4/scalar tails), sweeping the output width
/// in [`panel_cols`]-sized panels. The reduction is **`k`-blocked** at
/// depth `kc` ([`crate::tuning::gemm_kc`]): the `kc`-deep `B` panel is
/// reused across every register tile of the band before the next block
/// streams in, keeping it L2-resident at wide output dims. Blocking does
/// not change results — blocks run in ascending `k` order and each
/// block's accumulators are seeded from the destination row, so every
/// output element still sums its products in exactly the naive `ikj`
/// loop's order, bit-equal to that loop up to the sign of zeros (this
/// kernel has **no** per-element `a == 0.0` skip; skipping is worthwhile
/// only for sparse feature inputs, which the GCN layer-0 path keeps on
/// the naive loop). Under FastMath ([`ResolvedPath::fastmath`]) the
/// microkernels contract to `mul_add` and the bit-equality carve-out of
/// the module docs applies.
pub(crate) fn gemm_band(
    a: &DenseMatrix<f32>,
    b: &DenseMatrix<f32>,
    packed: &[f32],
    row_start: usize,
    rp: &ResolvedPath,
    kc: usize,
    dst: &mut [f32],
) -> u64 {
    let n = b.cols();
    if n == 0 || dst.is_empty() {
        return 0;
    }
    if rp.kind == PathKind::Scalar {
        for (r, crow) in dst.chunks_exact_mut(n).enumerate() {
            for (p, &av) in a.row(row_start + r).iter().enumerate() {
                for (c, &bv) in crow.iter_mut().zip(b.row(p)) {
                    *c += av * bv;
                }
            }
        }
        return 1;
    }
    let k = a.cols();
    let kc = kc.max(1);
    let mut panels = 0u64;
    let mut kb0 = 0usize;
    loop {
        let kb1 = (kb0 + kc).min(k);
        let krange = kb0..kb1;
        let mut r = 0usize;
        let mut quads = dst.chunks_exact_mut(GEMM_MR * n);
        for quad in quads.by_ref() {
            let arows: [&[f32]; GEMM_MR] = std::array::from_fn(|i| a.row(row_start + r + i));
            let mut rows = quad.chunks_exact_mut(n);
            let mut crows: [&mut [f32]; GEMM_MR] =
                std::array::from_fn(|_| rows.next().expect("quad holds GEMM_MR rows"));
            panels += gemm_rows(arows, b, packed, n, rp, krange.clone(), &mut crows);
            r += GEMM_MR;
        }
        for crow in quads.into_remainder().chunks_exact_mut(n) {
            panels += gemm_rows(
                [a.row(row_start + r)],
                b,
                packed,
                n,
                rp,
                krange.clone(),
                &mut [crow],
            );
            r += 1;
        }
        kb0 = kb1;
        if kb0 >= k {
            break;
        }
    }
    panels
}

/// The lane width the GEMM pack buffer is blocked at for this resolved
/// path, or `None` when the path never enters the wide microkernel (the
/// scalar path) and packing would be wasted copies.
pub(crate) fn gemm_pack_width(rp: &ResolvedPath) -> Option<usize> {
    match rp.kind {
        PathKind::Scalar => None,
        _ => Some(if rp.lanes == LaneWidth::W16 { 16 } else { 8 }),
    }
}

/// Packs the full-width column blocks of `b` into a lane-blocked layout:
/// block `jb` (columns `jb*w .. jb*w + w`) occupies the contiguous
/// region `packed[jb*k*w ..][.. k*w]`, with its `k` rows of `w` floats
/// back to back. The leading microkernel loop then streams whole cache
/// lines sequentially instead of striding `n × 4` bytes per `k` step —
/// at `n = 512` that stride is 2 KiB, which aliases cache sets badly
/// enough to halve the kernel's throughput. Packing is pure data
/// movement (each value is copied, never recomputed), so it cannot
/// change one bit of the result; its one-pass cost is amortized over
/// every row band of the whole GEMM. Columns past the last full block
/// (`n % w`) stay unpacked — the narrower cascade tails read `b`
/// directly.
pub(crate) fn pack_b(b: &DenseMatrix<f32>, w: usize, packed: &mut [f32]) {
    let (k, n) = (b.rows(), b.cols());
    let nb = n / w.max(1);
    debug_assert_eq!(packed.len(), nb * k * w);
    for (kk, brow) in b.as_slice().chunks_exact(n.max(1)).enumerate() {
        for jb in 0..nb {
            let dst = jb * k * w + kk * w;
            packed[dst..dst + w].copy_from_slice(&brow[jb * w..(jb + 1) * w]);
        }
    }
}

/// Sweeps the full output width for one register tile of `MR` rows over
/// the `k`-block `krange`, through the widest kernel clone the CPU
/// proved it supports (see [`WideIsa`]) — the exact clones all run the
/// same [`gemm_rows_body`], so the choice affects instruction encoding
/// only, never results; the FastMath clones run the `mul_add` body.
#[inline]
fn gemm_rows<const MR: usize>(
    arows: [&[f32]; MR],
    b: &DenseMatrix<f32>,
    packed: &[f32],
    n: usize,
    rp: &ResolvedPath,
    krange: std::ops::Range<usize>,
    crows: &mut [&mut [f32]; MR],
) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if rp.wide_isa != WideIsa::Portable {
        return wide::gemm_rows_wide(arows, b, packed, n, rp, krange, crows);
    }
    if rp.fastmath {
        // Only reachable off x86-64 (resolve_fast requires a wide ISA
        // there), where `mul_add` is native.
        gemm_rows_body::<MR, true>(arows, b, packed, n, rp, krange, crows)
    } else {
        gemm_rows_body::<MR, false>(arows, b, packed, n, rp, krange, crows)
    }
}

/// The `#[target_feature]` clones of [`gemm_rows_body`] and
/// [`stream_segment_body`]. This is one of the four modules allowed out
/// of the crate's `deny(unsafe_code)` (with [`crate::pool`],
/// [`crate::steal`], and [`crate::stripe`]): calling a
/// `#[target_feature]` function is `unsafe` because executing it on a
/// CPU without the feature is undefined behavior — here each call is
/// gated on the matching `is_x86_feature_detected!` proof captured in
/// [`ResolvedPath::wide_isa`] (and, for the `fma` clones, the
/// [`fastmath_supported`] proof behind [`ResolvedPath::fastmath`]) at
/// path-resolution time.
///
/// The exact clones (`avx2` / `avx512f`, **no** fma) run the `FAST =
/// false` bodies: rustc never contracts a separate multiply and add into
/// an FMA on its own, so enabling wider encodings cannot perturb the
/// bit-exact path. The FastMath clones additionally enable `fma` and run
/// the `FAST = true` bodies, whose `mul_add` lowers to a single FMA
/// instruction.
#[cfg(target_arch = "x86_64")]
mod wide {
    #![allow(unsafe_code)]

    use super::{gemm_rows_body, stream_segment_body, ColIdx, DenseMatrix, ResolvedPath, WideIsa};
    use crate::plan::Segment;

    /// Dispatches one register tile to the AVX-512F or AVX2 clone
    /// (FastMath variant when the resolved path permits contraction).
    #[inline]
    pub(super) fn gemm_rows_wide<const MR: usize>(
        arows: [&[f32]; MR],
        b: &DenseMatrix<f32>,
        packed: &[f32],
        n: usize,
        rp: &ResolvedPath,
        krange: std::ops::Range<usize>,
        crows: &mut [&mut [f32]; MR],
    ) -> u64 {
        match (rp.wide_isa, rp.fastmath) {
            // SAFETY: `wide_isa` is only ever set to a non-`Portable`
            // variant by `WideIsa::detect` after the corresponding
            // `is_x86_feature_detected!` check succeeded on this CPU;
            // `fastmath` additionally carries the `fma` proof from
            // `fastmath_supported`.
            (WideIsa::Avx512f, false) => unsafe {
                gemm_rows_avx512f(arows, b, packed, n, rp, krange, crows)
            },
            (WideIsa::Avx512f, true) => unsafe {
                gemm_rows_avx512fma(arows, b, packed, n, rp, krange, crows)
            },
            (WideIsa::Avx2, false) => unsafe {
                gemm_rows_avx2(arows, b, packed, n, rp, krange, crows)
            },
            (WideIsa::Avx2, true) => unsafe {
                gemm_rows_avx2fma(arows, b, packed, n, rp, krange, crows)
            },
            (WideIsa::Portable, _) => {
                gemm_rows_body::<MR, false>(arows, b, packed, n, rp, krange, crows)
            }
        }
    }

    /// [`gemm_rows_body`] compiled with 256-bit codegen. No FMA: the
    /// body's separate multiply and add must stay separate instructions
    /// for bit-equality with the portable clone.
    #[target_feature(enable = "avx2")]
    unsafe fn gemm_rows_avx2<const MR: usize>(
        arows: [&[f32]; MR],
        b: &DenseMatrix<f32>,
        packed: &[f32],
        n: usize,
        rp: &ResolvedPath,
        krange: std::ops::Range<usize>,
        crows: &mut [&mut [f32]; MR],
    ) -> u64 {
        gemm_rows_body::<MR, false>(arows, b, packed, n, rp, krange, crows)
    }

    /// [`gemm_rows_body`] compiled with 512-bit codegen (a W16 block is
    /// exactly one `zmm` register).
    #[target_feature(enable = "avx512f")]
    unsafe fn gemm_rows_avx512f<const MR: usize>(
        arows: [&[f32]; MR],
        b: &DenseMatrix<f32>,
        packed: &[f32],
        n: usize,
        rp: &ResolvedPath,
        krange: std::ops::Range<usize>,
        crows: &mut [&mut [f32]; MR],
    ) -> u64 {
        gemm_rows_body::<MR, false>(arows, b, packed, n, rp, krange, crows)
    }

    /// FastMath [`gemm_rows_body`]: 256-bit codegen with FMA contraction.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn gemm_rows_avx2fma<const MR: usize>(
        arows: [&[f32]; MR],
        b: &DenseMatrix<f32>,
        packed: &[f32],
        n: usize,
        rp: &ResolvedPath,
        krange: std::ops::Range<usize>,
        crows: &mut [&mut [f32]; MR],
    ) -> u64 {
        gemm_rows_body::<MR, true>(arows, b, packed, n, rp, krange, crows)
    }

    /// FastMath [`gemm_rows_body`]: 512-bit codegen with FMA contraction.
    #[target_feature(enable = "avx512f,fma")]
    unsafe fn gemm_rows_avx512fma<const MR: usize>(
        arows: [&[f32]; MR],
        b: &DenseMatrix<f32>,
        packed: &[f32],
        n: usize,
        rp: &ResolvedPath,
        krange: std::ops::Range<usize>,
        crows: &mut [&mut [f32]; MR],
    ) -> u64 {
        gemm_rows_body::<MR, true>(arows, b, packed, n, rp, krange, crows)
    }

    /// Dispatches one segment to the AVX-512F or AVX2 FastMath stream
    /// clone matching the proven [`WideIsa`].
    #[inline]
    pub(super) fn stream_fast<I: ColIdx>(
        seg: &Segment,
        cols: &[I],
        vals: &[f32],
        b: &DenseMatrix<f32>,
        off: usize,
        dst: &mut [f32],
        rp: &ResolvedPath,
    ) {
        match rp.wide_isa {
            // SAFETY: `fastmath` is only set by `resolve_fast` after
            // `fastmath_supported` proved `fma` plus a non-Portable wide
            // ISA via `is_x86_feature_detected!` on this CPU.
            WideIsa::Avx512f => unsafe { stream_avx512fma(seg, cols, vals, b, off, dst, rp) },
            WideIsa::Avx2 => unsafe { stream_avx2fma(seg, cols, vals, b, off, dst, rp) },
            // Unreachable under `resolve_fast`'s gating; keep the exact
            // kernel as the safe fallback (a bare `mul_add` would be a
            // libm call here).
            WideIsa::Portable => stream_segment_body::<false, I>(seg, cols, vals, b, off, dst, rp),
        }
    }

    /// FastMath [`stream_segment_body`]: 256-bit codegen with FMA.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn stream_avx2fma<I: ColIdx>(
        seg: &Segment,
        cols: &[I],
        vals: &[f32],
        b: &DenseMatrix<f32>,
        off: usize,
        dst: &mut [f32],
        rp: &ResolvedPath,
    ) {
        stream_segment_body::<true, I>(seg, cols, vals, b, off, dst, rp)
    }

    /// FastMath [`stream_segment_body`]: 512-bit codegen with FMA.
    #[target_feature(enable = "avx512f,fma")]
    unsafe fn stream_avx512fma<I: ColIdx>(
        seg: &Segment,
        cols: &[I],
        vals: &[f32],
        b: &DenseMatrix<f32>,
        off: usize,
        dst: &mut [f32],
        rp: &ResolvedPath,
    ) {
        stream_segment_body::<true, I>(seg, cols, vals, b, off, dst, rp)
    }
}

/// The actual panel sweep for one register tile of `MR` rows over the
/// `k`-block `krange`: panel loop outside, wide-lane cascade inside —
/// the GEMM analogue of [`stream_segment`]'s panel sweep.
/// `inline(always)` so each `#[target_feature]` clone in [`wide`]
/// absorbs the whole body (and the microkernels below) under its own
/// codegen features. `FAST = true` contracts each multiply-add to
/// `mul_add`; the `false` instantiation is the exact default.
///
/// Every per-`k` slice is hoisted out of the hot loop here: the `A` rows
/// are restricted to the `k`-block once, and the block's `B` rows become
/// one contiguous slab the microkernels index directly — the `k` loop
/// itself carries no bounds checks or row-address recomputation, which
/// is what lets the autovectorizer keep the whole accumulator tile in
/// registers. (A wider 32-column leading block was tried and rejected:
/// two-register accumulator columns spill and devectorize the loop.)
/// Neither change touches results: each output element's products are
/// still added in ascending `k` order in its own accumulator chain.
///
/// When `packed` is non-empty it holds `B` re-laid into lane-width
/// column blocks by [`pack_b`]: the leading full-width loop then streams
/// one contiguous `W`-float line per `k` step instead of striding `n`
/// floats per row — at `n = 512` the unpacked stride is 2 KiB, which
/// aliases cache sets and stalls the sweep. Remainder columns (`n`
/// modulo the pack width) are not packed and fall through to the
/// unpacked cascade. Packing is pure data movement: every accumulator
/// still consumes the same products in the same ascending-`k` order, so
/// packed and unpacked sweeps are bit-identical.
#[inline(always)]
fn gemm_rows_body<const MR: usize, const FAST: bool>(
    arows: [&[f32]; MR],
    b: &DenseMatrix<f32>,
    packed: &[f32],
    n: usize,
    rp: &ResolvedPath,
    krange: std::ops::Range<usize>,
    crows: &mut [&mut [f32]; MR],
) -> u64 {
    let panel = rp.panel.max(1);
    let k = b.rows();
    let ablk: [&[f32]; MR] = std::array::from_fn(|i| &arows[i][krange.clone()]);
    let bslab = &b.as_slice()[krange.start * n..krange.end * n];
    let mut panels = 0u64;
    let mut p0 = 0;
    while p0 < n {
        let p1 = (p0 + panel).min(n);
        let mut d = p0;
        if rp.lanes == LaneWidth::W16 {
            if packed.is_empty() {
                while d + 16 <= p1 {
                    gemm_micro::<MR, 16, FAST>(ablk, bslab, n, d, crows);
                    d += 16;
                }
            } else {
                while d + 16 <= p1 {
                    // Panels are lane-aligned, so `d` sits on a block
                    // boundary; `d + 16 <= n` keeps `jb` a full block.
                    debug_assert_eq!(d % 16, 0);
                    let base = (d / 16) * k * 16;
                    let pb = &packed[base + krange.start * 16..base + krange.end * 16];
                    gemm_micro_packed::<MR, 16, FAST>(ablk, pb, d, crows);
                    d += 16;
                }
            }
        } else if !packed.is_empty() {
            while d + 8 <= p1 {
                debug_assert_eq!(d % 8, 0);
                let base = (d / 8) * k * 8;
                let pb = &packed[base + krange.start * 8..base + krange.end * 8];
                gemm_micro_packed::<MR, 8, FAST>(ablk, pb, d, crows);
                d += 8;
            }
        }
        while d + 8 <= p1 {
            gemm_micro::<MR, 8, FAST>(ablk, bslab, n, d, crows);
            d += 8;
        }
        if d + 4 <= p1 {
            gemm_micro::<MR, 4, FAST>(ablk, bslab, n, d, crows);
            d += 4;
        }
        gemm_tail::<MR, FAST>(ablk, bslab, n, d..p1, crows);
        p0 = p1;
        panels += 1;
    }
    panels
}

/// [`gemm_micro`] over a [`pack_b`] column block: identical accumulator
/// tile and ascending-`k` chains, but each `k` step reads one contiguous
/// `W`-float line from the packed block instead of a `W`-wide window of
/// an `n`-wide row. Bit-identical to the unpacked microkernel by
/// construction — same values, same order, only the load addresses
/// differ.
#[inline(always)]
fn gemm_micro_packed<const MR: usize, const W: usize, const FAST: bool>(
    ablk: [&[f32]; MR],
    pb: &[f32],
    d: usize,
    crows: &mut [&mut [f32]; MR],
) {
    let mut acc = [[0.0f32; W]; MR];
    for (accr, crow) in acc.iter_mut().zip(crows.iter()) {
        accr.copy_from_slice(&crow[d..d + W]);
    }
    let klen = ablk[0].len();
    for kk in 0..klen {
        let blk: &[f32; W] = pb[kk * W..kk * W + W].try_into().expect("packed block row");
        for (accr, ab) in acc.iter_mut().zip(&ablk) {
            let av = ab[kk];
            for (s, &bv) in accr.iter_mut().zip(blk) {
                if FAST {
                    *s = av.mul_add(bv, *s);
                } else {
                    *s += av * bv;
                }
            }
        }
    }
    for (accr, crow) in acc.iter().zip(crows.iter_mut()) {
        crow[d..d + W].copy_from_slice(accr);
    }
}

/// `MR × W` register microkernel: `MR * W` f32 accumulators live across
/// the whole `k`-block sweep, each loaded `B` block feeds all `MR` rows,
/// and the destination is written once per tile. The accumulators are
/// **seeded from the destination** (read-modify-write): the engine zeroes
/// `C` up front, so for the first `k`-block the seed is the literal
/// `0.0` the old unblocked kernel used, and each later block continues
/// the exact same addition sequence — `k`-blocking therefore cannot
/// change a single bit. No zero-skip branch — the dense inner loop stays
/// straight-line mul/add code (separate instructions when `FAST =
/// false`, so rounding matches the naive oracle even under the
/// FMA-capable [`wide`] clones; `FAST = true` fuses them to `mul_add`).
#[inline(always)]
fn gemm_micro<const MR: usize, const W: usize, const FAST: bool>(
    ablk: [&[f32]; MR],
    bslab: &[f32],
    n: usize,
    d: usize,
    crows: &mut [&mut [f32]; MR],
) {
    let mut acc = [[0.0f32; W]; MR];
    for (accr, crow) in acc.iter_mut().zip(crows.iter()) {
        accr.copy_from_slice(&crow[d..d + W]);
    }
    let klen = ablk[0].len();
    for kk in 0..klen {
        let brow = &bslab[kk * n..];
        let blk: &[f32; W] = brow[d..d + W].try_into().expect("block inside dense row");
        for (accr, ab) in acc.iter_mut().zip(&ablk) {
            let av = ab[kk];
            for (s, &bv) in accr.iter_mut().zip(blk) {
                if FAST {
                    *s = av.mul_add(bv, *s);
                } else {
                    *s += av * bv;
                }
            }
        }
    }
    for (accr, crow) in acc.iter().zip(crows.iter_mut()) {
        crow[d..d + W].copy_from_slice(accr);
    }
}

/// Scalar remainder columns of a GEMM panel, still `k`-ascending and
/// seeded from the destination like [`gemm_micro`].
#[inline(always)]
fn gemm_tail<const MR: usize, const FAST: bool>(
    ablk: [&[f32]; MR],
    bslab: &[f32],
    n: usize,
    range: std::ops::Range<usize>,
    crows: &mut [&mut [f32]; MR],
) {
    for d in range {
        for (ab, crow) in ablk.iter().zip(crows.iter_mut()) {
            let mut s = crow[d];
            for (&av, brow) in ab.iter().zip(bslab.chunks_exact(n)) {
                if FAST {
                    s = av.mul_add(brow[d], s);
                } else {
                    s += av * brow[d];
                }
            }
            crow[d] = s;
        }
    }
}

/// How many of the next segment's gathered rows to touch ahead of time.
const PREFETCH_ROWS: usize = 4;

/// Software prefetch of the next segment's first gathered `B` rows: a
/// handful of `black_box`-forced head loads pull the lines toward L1
/// while the current segment still has arithmetic in flight. `black_box`
/// keeps the loads from being optimized away without any `unsafe`
/// prefetch intrinsic (this crate denies `unsafe_code`). `off` is the
/// first output column the caller will touch — a column-stripe worker
/// prefetches its own window of the row, not column 0, so the pulled
/// line is the one its kernels actually read.
pub(crate) fn prefetch_segment_rows(
    rp: &ResolvedPath,
    next: Option<&Segment>,
    a: &CsrMatrix<f32>,
    cols32: Option<&[u32]>,
    b: &DenseMatrix<f32>,
    off: usize,
) {
    if rp.kind != PathKind::Vector || !rp.prefetch {
        return;
    }
    // Only prefetch ahead of *streaming* segments: a gather segment
    // finishes in fewer cycles than the prefetch distance, so the head
    // loads would cost more than the misses they hide.
    let Some(seg) = next.filter(|s| s.len() > rp.gather_max) else {
        return;
    };
    let end = (seg.nz_start + PREFETCH_ROWS).min(seg.nz_end);
    match cols32 {
        Some(cols) => {
            for &c in &cols[seg.nz_start..end] {
                std::hint::black_box(b.row(c.to_usize()).get(off).copied());
            }
        }
        None => {
            for &c in &a.col_indices()[seg.nz_start..end] {
                std::hint::black_box(b.row(c).get(off).copied());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Flush;
    use crate::spmm::test_support::{random_dense, random_matrix};

    fn seg(nz_start: usize, nz_end: usize) -> Segment {
        Segment {
            row: 0,
            nz_start,
            nz_end,
            flush: Flush::Regular,
        }
    }

    fn scalar_reference(
        s: &Segment,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
        dim: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        accumulate_segment_scalar(s, a.col_indices(), a.values(), b, 0, &mut out);
        out
    }

    fn resolved(kind: PathKind, lanes: LaneWidth, panel: usize) -> ResolvedPath {
        ResolvedPath {
            kind,
            lanes,
            wide_isa: WideIsa::detect(),
            panel,
            gather_max: GATHER_MAX_NNZ,
            prefetch: true,
            fastmath: false,
        }
    }

    /// Every kernel variant, lane width, panel size, and index type must be
    /// bit-identical to the scalar oracle on all dims 1..=67 — including
    /// empty segments and single-nnz rows.
    #[test]
    fn all_kernels_bit_match_scalar_oracle_dims_1_to_67() {
        let a = random_matrix(64, 64, 300, 21);
        let cols32: Vec<u32> = a.col_indices().iter().map(|&c| c as u32).collect();
        let row_end = a.row_ptr()[1];
        let segments = [
            seg(0, row_end), // the evil long row
            seg(0, 0),       // empty
            seg(2, 3),       // single non-zero
            seg(1, row_end - 1),
        ];
        for dim in 1..=67usize {
            let b = random_dense(64, dim, 22);
            for s in &segments {
                let want = scalar_reference(s, &a, &b, dim);
                let mut got = vec![f32::NAN; dim];
                accumulate_segment_tiled(s, &a, &b, 0, &mut got);
                assert_eq!(got, want, "tiled dim={dim} seg={s:?}");
                for lanes in [LaneWidth::W8, LaneWidth::W16] {
                    for panel in [8usize, 16, 32, 1024] {
                        let rp = resolved(PathKind::Vector, lanes, panel);
                        got.fill(f32::NAN);
                        vector_segment(s, a.col_indices(), a.values(), &b, 0, &mut got, &rp);
                        assert_eq!(
                            got, want,
                            "vector/usize dim={dim} lanes={lanes:?} panel={panel} seg={s:?}"
                        );
                        got.fill(f32::NAN);
                        vector_segment(s, &cols32, a.values(), &b, 0, &mut got, &rp);
                        assert_eq!(
                            got, want,
                            "vector/u32 dim={dim} lanes={lanes:?} panel={panel} seg={s:?}"
                        );
                    }
                }
                got.fill(f32::NAN);
                gather_segment(s, a.col_indices(), a.values(), &b, 0, &mut got);
                assert_eq!(got, want, "gather dim={dim} seg={s:?}");
                got.fill(f32::NAN);
                let rp = resolved(PathKind::Vector, LaneWidth::W16, 16);
                stream_segment(s, a.col_indices(), a.values(), &b, 0, &mut got, &rp);
                assert_eq!(got, want, "stream dim={dim} seg={s:?}");
            }
        }
    }

    #[test]
    fn dispatch_routes_short_segments_to_gather() {
        // The dispatch itself is value-transparent; this pins the routing
        // threshold semantics: len <= GATHER_MAX_NNZ gathers.
        let a = random_matrix(32, 32, 150, 5);
        let b = random_dense(32, 24, 6);
        let rp = DataPath::Vector.resolve(24);
        assert_eq!(rp.gather_max, GATHER_MAX_NNZ);
        let short = seg(0, GATHER_MAX_NNZ);
        let long = seg(0, GATHER_MAX_NNZ + 1);
        for s in [&short, &long] {
            let want = scalar_reference(s, &a, &b, 24);
            let mut got = vec![f32::NAN; 24];
            vector_segment(s, a.col_indices(), a.values(), &b, 0, &mut got, &rp);
            assert_eq!(got, want);
        }
    }

    /// Running every kernel on a column window `[off, off + w)` must
    /// reproduce exactly that slice of the full-row result — the
    /// column-striped executor's kernel-level correctness condition.
    #[test]
    fn windowed_kernels_match_full_row_slices() {
        let a = random_matrix(48, 48, 220, 31);
        let cols32: Vec<u32> = a.col_indices().iter().map(|&c| c as u32).collect();
        let row_end = a.row_ptr()[1];
        let segments = [seg(0, row_end), seg(0, 0), seg(2, 3), seg(1, row_end - 1)];
        for dim in [33usize, 67, 128] {
            let b = random_dense(48, dim, 32);
            // Window partitions including empty, single-column, and
            // lane-misaligned interior windows.
            let windows = [(0usize, dim), (0, dim / 2), (dim / 2, dim), (5, 6), (7, 7)];
            for s in &segments {
                let want = scalar_reference(s, &a, &b, dim);
                for &(lo, hi) in &windows {
                    let w = hi - lo;
                    let mut got = vec![f32::NAN; w];
                    got.fill(0.0);
                    accumulate_segment_scalar(s, a.col_indices(), a.values(), &b, lo, &mut got);
                    assert_eq!(got, want[lo..hi], "scalar window {lo}..{hi} dim={dim}");
                    got.fill(0.0);
                    accumulate_segment_tiled(s, &a, &b, lo, &mut got);
                    assert_eq!(got, want[lo..hi], "tiled window {lo}..{hi} dim={dim}");
                    got.fill(0.0);
                    gather_segment(s, a.col_indices(), a.values(), &b, lo, &mut got);
                    assert_eq!(got, want[lo..hi], "gather window {lo}..{hi} dim={dim}");
                    for lanes in [LaneWidth::W8, LaneWidth::W16] {
                        let rp = resolved(PathKind::Vector, lanes, 16);
                        got.fill(0.0);
                        vector_segment(s, a.col_indices(), a.values(), &b, lo, &mut got, &rp);
                        assert_eq!(
                            got,
                            want[lo..hi],
                            "vector/usize window {lo}..{hi} dim={dim} lanes={lanes:?}"
                        );
                        got.fill(0.0);
                        vector_segment(s, &cols32, a.values(), &b, lo, &mut got, &rp);
                        assert_eq!(
                            got,
                            want[lo..hi],
                            "vector/u32 window {lo}..{hi} dim={dim} lanes={lanes:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn resolve_fast_gates_on_kind_and_support() {
        // Default resolve never enables FastMath.
        assert!(!DataPath::Vector.resolve(256).fastmath);
        // Non-vector kinds never enable it even when asked.
        assert!(!DataPath::Scalar.resolve_fast(256, true).fastmath);
        assert!(!DataPath::Tiled.resolve_fast(256, true).fastmath);
        // The vector kind enables it iff the CPU proof holds.
        let rp = DataPath::Vector.resolve_fast(256, true);
        assert_eq!(rp.fastmath, fastmath_supported());
        assert!(!DataPath::Vector.resolve_fast(256, false).fastmath);
    }

    /// FastMath changes rounding (FMA keeps the infinitely precise
    /// product), so it is held to a relative tolerance against the scalar
    /// oracle, never bit-equality.
    #[test]
    fn fastmath_stream_stays_within_tolerance() {
        if !fastmath_supported() {
            return;
        }
        let a = random_matrix(64, 64, 400, 41);
        let row_end = a.row_ptr()[1];
        let s = seg(0, row_end);
        for dim in [48usize, 128, 256] {
            let b = random_dense(64, dim, 42);
            let want = scalar_reference(&s, &a, &b, dim);
            let rp = DataPath::Vector.resolve_fast(dim, true);
            assert!(rp.fastmath);
            let mut got = vec![0.0f32; dim];
            vector_segment(&s, a.col_indices(), a.values(), &b, 0, &mut got, &rp);
            for (d, (&g, &w)) in got.iter().zip(&want).enumerate() {
                let err = (g - w).abs();
                let tol = 1e-5 * w.abs().max(1.0);
                assert!(err <= tol, "dim={dim} col={d}: got {g}, want {w}");
            }
        }
    }

    #[test]
    fn resolve_honors_explicit_paths_and_panel_model() {
        assert_eq!(DataPath::Scalar.resolve(32).kind, PathKind::Scalar);
        assert_eq!(DataPath::Tiled.resolve(32).kind, PathKind::Tiled);
        assert_eq!(DataPath::Vector.resolve(32).kind, PathKind::Vector);
        let auto = DataPath::Auto.resolve(32).kind;
        if cfg!(feature = "force-scalar") {
            assert_eq!(auto, PathKind::Scalar);
        } else {
            assert_eq!(auto, PathKind::Vector);
        }
        let rp = DataPath::Vector.resolve(4096);
        assert_eq!(rp.panel % rp.lanes.lanes(), 0);
        assert!(rp.panel <= 4096 + rp.lanes.lanes());
    }

    #[test]
    fn lane_detection_is_stable_and_wide_enough() {
        let w = LaneWidth::detect();
        assert_eq!(w, LaneWidth::detect());
        assert!(w.lanes() >= 8);
    }

    #[test]
    fn prefetch_is_a_no_op_for_values() {
        // Prefetching must not write anything; just exercise both index
        // paths for coverage.
        let a = random_matrix(16, 16, 40, 9);
        let cols32: Vec<u32> = a.col_indices().iter().map(|&c| c as u32).collect();
        let b = random_dense(16, 8, 10);
        let rp = DataPath::Vector.resolve(8);
        let s = seg(0, a.nnz().min(6));
        prefetch_segment_rows(&rp, Some(&s), &a, None, &b, 0);
        prefetch_segment_rows(&rp, Some(&s), &a, Some(&cols32), &b, 0);
        prefetch_segment_rows(&rp, None, &a, None, &b, 4);
        let tiled = DataPath::Tiled.resolve(8);
        prefetch_segment_rows(&tiled, Some(&s), &a, None, &b, 0);
    }
}
