//! End-to-end integration: synthetic graph → GCN normalization → every
//! SpMM kernel → identical inference results.

use merge_path_spmm::core::{
    MergePathSerialFixup, MergePathSpmm, NnzSplitSpmm, RowSplitSpmm, SerialSpmm, SpmmKernel,
};
use merge_path_spmm::gcn::{online_inference, ops, GcnModel};
use merge_path_spmm::graphs::{find_dataset, gcn_normalize, DatasetSpec, GraphClass};
use merge_path_spmm::sparse::stats::DegreeStats;

fn kernels() -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(SerialSpmm),
        Box::new(RowSplitSpmm::with_threads(64)),
        Box::new(NnzSplitSpmm::new()),
        Box::new(MergePathSerialFixup::with_threads(50)),
        Box::new(MergePathSpmm::new()),
    ]
}

#[test]
fn full_gcn_pipeline_agrees_across_kernels() {
    let spec = DatasetSpec::custom("pipe", GraphClass::PowerLaw, 800, 3_600, 120);
    let a = gcn_normalize(&spec.synthesize(5));
    let model = GcnModel::two_layer(24, 16, 5, 77);
    let x = ops::random_features(a.rows(), 24, 0.4, 8);

    let reference = model.forward(&a, &x, &SerialSpmm).expect("serial forward");
    for kernel in kernels() {
        let out = model
            .forward(&a, &x, kernel.as_ref())
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
        let scale = reference.frobenius_norm().max(1.0);
        assert!(
            out.max_abs_diff(&reference).expect("same shape") < 1e-3 * scale,
            "{} diverges from the serial reference",
            kernel.name()
        );
    }
}

#[test]
fn structured_pipeline_agrees_too() {
    let spec = DatasetSpec::custom("mol", GraphClass::Structured, 1_500, 3_200, 6);
    let a = gcn_normalize(&spec.synthesize(9));
    let model = GcnModel::two_layer(8, 8, 3, 3);
    let x = ops::random_features(a.rows(), 8, 0.6, 4);
    let reference = model.forward(&a, &x, &SerialSpmm).expect("serial forward");
    for kernel in kernels() {
        let out = model.forward(&a, &x, kernel.as_ref()).expect("forward");
        assert!(out.approx_eq(&reference, 1e-3).expect("same shape"));
    }
}

#[test]
fn online_inference_overhead_is_sane_on_real_dataset() {
    let spec = find_dataset("Cora").expect("Cora in Table II");
    let a = gcn_normalize(&spec.synthesize(1));
    let model = GcnModel::two_layer(16, 16, 4, 5);
    let x = ops::random_features(a.rows(), 16, 0.3, 6);
    let kernel = MergePathSpmm::new();
    let (out, timing) = online_inference(&model, &a, &x, &kernel).expect("inference");
    assert_eq!(out.rows(), spec.nodes);
    assert!(timing.scheduling.as_nanos() > 0);
    // Scheduling must not dominate even on the smallest graph.
    assert!(
        timing.overhead_fraction() < 0.5,
        "scheduling overhead {:.1}% is implausible",
        timing.overhead_fraction() * 100.0
    );
}

#[test]
fn every_kernel_plan_is_valid_on_every_graph_class() {
    for (class, max_deg) in [(GraphClass::PowerLaw, 200), (GraphClass::Structured, 7)] {
        let spec = DatasetSpec::custom("v", class, 600, 2_400, max_deg);
        let a = spec.synthesize(11);
        let stats = DegreeStats::compute(&a);
        assert_eq!(stats.max, max_deg);
        for kernel in kernels() {
            for dim in [2usize, 16, 64] {
                let plan = kernel.plan(&a, dim);
                plan.validate(&a)
                    .unwrap_or_else(|e| panic!("{} dim {dim}: {e}", kernel.name()));
                assert_eq!(
                    plan.write_stats().total_nnz(),
                    a.nnz(),
                    "{} dim {dim}: plan must cover all non-zeros",
                    kernel.name()
                );
            }
        }
    }
}
