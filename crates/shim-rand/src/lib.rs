//! Offline drop-in subset of the `rand` crate API used by this workspace.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the handful of items the workspace consumes: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! and `Rng::gen::<f64>()`. The generator core is SplitMix64, which passes
//! the statistical bar the graph generators need (they enforce structural
//! invariants — exact nnz, degree caps — by construction, not by RNG
//! quality).
//!
//! Not a cryptographic generator; not a full `rand` replacement.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: everything derives from a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point (only `seed_from_u64` is used in this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience trait, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (SplitMix64). Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = SmallRng { state: seed };
            // Warm up so adjacent small seeds decorrelate immediately.
            for _ in 0..2 {
                let _ = rng.next_u64();
            }
            rng
        }
    }

    /// Alias so code written against `StdRng` keeps compiling.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&w));
            let x = rng.gen_range(0u64..=5);
            assert!(x <= 5);
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..8).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
