//! Merge-path with a serial fix-up phase: the Merrill–Garland SpMV
//! algorithm generalized to SpMM (the "merge-path" baseline of Figure 2).
//!
//! The decomposition is identical to MergePath-SpMM — the same equitable
//! merge-path schedule — but instead of atomically updating shared rows,
//! each thread saves its partial result for spanning rows as a *carry*
//! ("each thread saves its running total and row ID for subsequent
//! fix-up", §III-A) and a **serial** post-barrier phase adds the carries
//! into the output. For SpMV the carry is a scalar and the fix-up is
//! negligible; for SpMM it is a `dim`-wide vector per carry, and on
//! power-law graphs whose evil rows span hundreds of threads the serial
//! phase strangles parallelism — the paper's Figure 2 motivation.

use mpspmm_sparse::CsrMatrix;

use crate::merge_path::Schedule;
use crate::plan::{Flush, KernelPlan, Segment, ThreadPlan};
use crate::tuning::{thread_count, MIN_THREADS};

use super::SpmmKernel;

/// Merge-path SpMM with serial fix-up of spanning rows (no atomics).
///
/// # Example
///
/// ```
/// use mpspmm_core::{MergePathSerialFixup, SpmmKernel};
/// use mpspmm_sparse::{CsrMatrix, DenseMatrix};
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0f32), (0, 1, 1.0)])?;
/// let b = DenseMatrix::from_fn(2, 2, |r, c| (r + c) as f32);
/// let c = MergePathSerialFixup::with_threads(2).spmm(&a, &b)?;
/// assert_eq!(c.get(0, 0), 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergePathSerialFixup {
    threads: Option<usize>,
    cost: usize,
    min_threads: usize,
}

impl MergePathSerialFixup {
    /// Default configuration: the same merge-path cost/floor heuristics as
    /// MergePath-SpMM at dimension 16.
    pub fn new() -> Self {
        Self {
            threads: None,
            cost: 20,
            min_threads: MIN_THREADS,
        }
    }

    /// Fixed logical-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        Self {
            threads: Some(threads),
            cost: 20,
            min_threads: 1,
        }
    }

    /// Builds the merge-path schedule for `a`.
    pub fn schedule(&self, a: &CsrMatrix<f32>) -> Schedule {
        let threads = match self.threads {
            Some(t) => t,
            None => thread_count(a.merge_items(), self.cost, self.min_threads),
        };
        Schedule::build(a, threads)
    }
}

impl Default for MergePathSerialFixup {
    fn default() -> Self {
        Self::new()
    }
}

impl SpmmKernel for MergePathSerialFixup {
    fn name(&self) -> &'static str {
        "merge-path (serial fixup)"
    }

    fn plan(&self, a: &CsrMatrix<f32>, _dim: usize) -> KernelPlan {
        plan_with_serial_fixup(&self.schedule(a), a)
    }

    fn config_fingerprint(&self) -> u64 {
        super::mix_config(&[
            self.threads.map_or(0, |t| t as u64 + 1),
            self.cost as u64,
            self.min_threads as u64,
        ])
    }
}

/// Lowers a merge-path schedule with carry-based fix-up instead of atomics.
///
/// A row is *spanning* when its non-zeros are split across two or more
/// threads; each owning thread emits a [`Flush::Carry`] segment for its
/// share. Rows fully inside one thread flush regularly. (Unlike
/// MergePath-SpMM's conservative paper-faithful rule, sharing here is
/// determined exactly — the Merrill–Garland fix-up only visits rows that
/// truly cross thread boundaries.)
pub fn plan_with_serial_fixup(schedule: &Schedule, a: &CsrMatrix<f32>) -> KernelPlan {
    assert!(
        schedule.matches(a),
        "schedule/matrix shape mismatch: schedule {}x{} vs matrix {}x{}",
        schedule.rows(),
        schedule.nnz(),
        a.rows(),
        a.nnz()
    );
    let rp = a.row_ptr();
    let threads = schedule
        .assignments()
        .iter()
        .map(|asg| {
            let mut segments = Vec::new();
            if asg.is_empty() || asg.nnz() == 0 {
                return ThreadPlan::default();
            }
            let (i0, j0) = (asg.start.row, asg.start.nnz);
            let (i1, j1) = (asg.end.row, asg.end.nnz);
            if i0 == i1 {
                // Entire assignment inside one row. Spanning unless it
                // covers the whole row.
                let whole = j0 == rp[i0] && j1 == rp[i0 + 1];
                segments.push(Segment {
                    row: i0,
                    nz_start: j0,
                    nz_end: j1,
                    flush: if whole { Flush::Regular } else { Flush::Carry },
                });
            } else {
                if rp[i0 + 1] > j0 {
                    // Start row spans backwards iff it began in an earlier
                    // thread.
                    segments.push(Segment {
                        row: i0,
                        nz_start: j0,
                        nz_end: rp[i0 + 1],
                        flush: if j0 > rp[i0] {
                            Flush::Carry
                        } else {
                            Flush::Regular
                        },
                    });
                }
                for row in i0 + 1..i1 {
                    if rp[row + 1] > rp[row] {
                        segments.push(Segment {
                            row,
                            nz_start: rp[row],
                            nz_end: rp[row + 1],
                            flush: Flush::Regular,
                        });
                    }
                }
                if j1 > rp[i1] {
                    // End row spans forwards iff non-zeros remain for the
                    // next thread.
                    segments.push(Segment {
                        row: i1,
                        nz_start: rp[i1],
                        nz_end: j1,
                        flush: if j1 < rp[i1 + 1] {
                            Flush::Carry
                        } else {
                            Flush::Regular
                        },
                    });
                }
            }
            ThreadPlan { segments }
        })
        .collect();
    KernelPlan { threads }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{
        check_kernel, check_vector_path_bit_identical, random_matrix,
    };
    use super::*;

    #[test]
    fn vector_path_is_bit_identical() {
        let a = random_matrix(60, 60, 400, 34);
        for dim in [1, 5, 16, 33] {
            // Serial fix-up plans mix Regular and Carry flushes — the
            // vectorized path must preserve the post-barrier carry order.
            check_vector_path_bit_identical(&MergePathSerialFixup::with_threads(7), &a, dim);
        }
    }

    #[test]
    fn matches_oracle() {
        for seed in 0..5 {
            let a = random_matrix(60, 60, 400, seed);
            for threads in [1, 2, 3, 7, 16, 64] {
                check_kernel(&MergePathSerialFixup::with_threads(threads), &a, 8);
            }
        }
    }

    #[test]
    fn no_atomics_ever() {
        let a = random_matrix(64, 64, 400, 1);
        let plan = MergePathSerialFixup::with_threads(16).plan(&a, 16);
        let stats = plan.write_stats();
        assert_eq!(stats.atomic_row_updates, 0);
        assert_eq!(stats.atomic_nnz, 0);
    }

    #[test]
    fn spanning_rows_become_carries() {
        // One evil row split across threads: each owning thread carries.
        let mut triplets: Vec<(usize, usize, f32)> = (0..100).map(|c| (0, c, 1.0)).collect();
        for r in 1..21 {
            triplets.push((r, 0, 1.0));
        }
        let a = CsrMatrix::from_triplets(21, 100, &triplets).unwrap();
        let plan = MergePathSerialFixup::with_threads(8).plan(&a, 16);
        plan.validate(&a).unwrap();
        assert!(
            plan.serial_flushes() >= 4,
            "evil row must produce several carries, got {}",
            plan.serial_flushes()
        );
    }

    #[test]
    fn single_thread_has_no_carries() {
        let a = random_matrix(40, 40, 200, 2);
        let plan = MergePathSerialFixup::with_threads(1).plan(&a, 16);
        assert_eq!(plan.serial_flushes(), 0);
    }

    #[test]
    fn exact_sharing_rule_beats_conservative_rule() {
        // Same schedule as MergePath-SpMM, but the serial-fixup lowering
        // marks strictly fewer (or equal) shared flushes than the paper's
        // conservative atomic rule, because a boundary landing exactly at
        // a row's end does not count as sharing here.
        let a = random_matrix(80, 80, 500, 3);
        for threads in [4, 9, 16] {
            let schedule = Schedule::build(&a, threads);
            let fixup = plan_with_serial_fixup(&schedule, &a);
            let atomic = crate::spmm::plan_from_schedule(&schedule, &a);
            assert!(
                fixup.write_stats().serial_row_updates <= atomic.write_stats().atomic_row_updates,
                "exact rule must not exceed conservative rule"
            );
        }
    }
}
