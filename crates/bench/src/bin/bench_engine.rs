//! Engine benchmark — old executor vs the fast-path execution engine.
//!
//! For a spread of Table II graphs, times the seed baseline
//! (`executor::execute_parallel`, which routes every output element
//! through an atomic cell and spawns threads per call) against
//! [`ExecEngine`] on the *same* plan, single-core, at dimensions 16 and
//! 32, across merge-path, nnz-split (GNNAdvisor), and row-split kernels.
//! Writes `BENCH_engine.json` with one record per
//! (dataset, kernel, dim): `{dataset, kernel, dim, ns_per_nnz, speedup}`
//! where `ns_per_nnz` is the engine's time and `speedup` is
//! baseline-over-engine.
//!
//! The engine is pinned to [`DataPath::Tiled`] — the PR-1 register-tiled
//! path — so this file stays a stable baseline for `bench_simd`, which
//! measures the vectorized data path against it.
//!
//! Also demonstrates the plan cache on a 2-layer GCN (10 inferences on a
//! fixed graph epoch) and prints the observed hit rate.

use mpspmm_bench::{banner, full_size_requested, geomean, load, time_ns};
use mpspmm_core::executor::execute_parallel;
use mpspmm_core::{
    default_workers, DataPath, ExecEngine, MergePathSpmm, NnzSplitSpmm, RowSplitSpmm, SpmmKernel,
};
use mpspmm_gcn::{ops, GcnModel};
use mpspmm_graphs::{find_dataset, gcn_normalize};
use mpspmm_sparse::DenseMatrix;

const DATASETS: [&str; 6] = [
    "Cora",
    "Citeseer",
    "Pubmed",
    "Wiki-Vote",
    "PPI",
    "PROTEINS_full",
];

fn main() {
    let full = full_size_requested();
    banner(
        "BENCH engine",
        "seed executor vs fast-path engine, single-core, dims {16, 32}",
        full,
    );

    let kernels: Vec<Box<dyn SpmmKernel>> = vec![
        Box::new(MergePathSpmm::new()),
        Box::new(NnzSplitSpmm::new()),
        Box::new(RowSplitSpmm::default()),
    ];
    // Pinned to the register-tiled PR-1 data path: this harness is the
    // stable baseline `bench_simd` measures the vectorized path against,
    // so regenerating BENCH_engine.json must not absorb the SIMD work.
    let engine = ExecEngine::with_data_path(1, DataPath::Tiled);

    println!(
        "\n{:<16} {:<16} {:>4} {:>12} {:>12} {:>9}",
        "Graph", "Kernel", "dim", "old ns/nnz", "new ns/nnz", "speedup"
    );
    let mut records = Vec::new();
    let mut speedups = Vec::new();
    for name in DATASETS {
        let spec = find_dataset(name).expect("Table II dataset");
        let (used, a) = load(spec, full);
        for kernel in &kernels {
            for dim in [16usize, 32] {
                let b = DenseMatrix::from_fn(a.cols(), dim, |r, c| {
                    ((r * 31 + c * 7) % 17) as f32 * 0.125 - 1.0
                });
                let plan = kernel.plan(&a, dim);
                // Explicit warmup (untimed) before the min-of-N timed runs:
                // the first call faults in the output and operand pages.
                let old_ns = time_ns(2, 5, || {
                    let _ = execute_parallel(&plan, &a, &b, 1).unwrap();
                });
                let new_ns = time_ns(2, 7, || {
                    let _ = engine.execute(&plan, &a, &b).unwrap();
                });
                let speedup = old_ns / new_ns;
                let ns_per_nnz = new_ns / a.nnz() as f64;
                println!(
                    "{:<16} {:<16} {:>4} {:>12.2} {:>12.2} {:>8.2}x",
                    used.name,
                    kernel.name(),
                    dim,
                    old_ns / a.nnz() as f64,
                    ns_per_nnz,
                    speedup
                );
                speedups.push(speedup);
                records.push(format!(
                    "    {{\"dataset\": \"{}\", \"kernel\": \"{}\", \"dim\": {}, \"ns_per_nnz\": {:.3}, \"speedup\": {:.3}}}",
                    used.name,
                    kernel.name(),
                    dim,
                    ns_per_nnz,
                    speedup
                ));
            }
        }
    }
    let g = geomean(&speedups);
    println!("\ngeomean speedup (engine over seed executor, 1 core): {g:.2}x");

    // Plan-cache demonstration: a 2-layer GCN re-run on a fixed graph
    // epoch should plan twice (once per layer width) and hit thereafter.
    let a_hat = gcn_normalize(&load(find_dataset("Cora").unwrap(), full).1);
    let model = GcnModel::two_layer(32, 16, 7, 3);
    let x = ops::random_features(a_hat.rows(), 32, 0.4, 5);
    let cache_engine = ExecEngine::new(default_workers());
    let kernel = MergePathSpmm::new();
    for _ in 0..10 {
        model
            .forward_cached(&a_hat, &x, &kernel, &cache_engine, 0)
            .unwrap();
    }
    let stats = cache_engine.stats();
    println!(
        "plan cache on 2-layer GCN x10: {} hits / {} misses (hit rate {:.0}%)",
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.hit_rate() * 100.0
    );

    let json = format!(
        "{{\n  \"baseline\": \"seed SpmmExecutor, 1 worker\",\n  \"speedup\": {:.3},\n  \"results\": [\n{}\n  ],\n  \"geomean_speedup\": {:.3},\n  \"gcn_plan_cache_hit_rate\": {:.3}\n}}\n",
        g,
        records.join(",\n"),
        g,
        stats.hit_rate()
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
