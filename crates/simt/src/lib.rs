//! Deterministic GPU (SIMT) machine model for the MergePath-SpMM
//! reproduction, plus analytic models of the AWB-GCN accelerator and the
//! cuSPARSE vendor library.
//!
//! The paper's GPU evaluation (NVidia Quadro RTX 6000, §IV-A) is
//! substituted by this model — see DESIGN.md §1. Kernels are lowered from
//! the *same* [`mpspmm_core::KernelPlan`] decompositions that drive the
//! real CPU executors, mapped onto warps per §III-C ([`lower`]), and timed
//! by a bounded-resource engine ([`engine::simulate`]) capturing latency
//! hiding, atomic contention, bandwidth, and serial fix-up phases.
//!
//! # Example
//!
//! ```
//! use mpspmm_graphs::{DatasetSpec, GraphClass};
//! use mpspmm_simt::{GpuConfig, GpuKernel};
//!
//! let a = DatasetSpec::custom("demo", GraphClass::PowerLaw, 2_000, 8_000, 300)
//!     .synthesize(7);
//! let cfg = GpuConfig::rtx6000();
//! let mp = GpuKernel::MergePath { cost: None }.simulate(&a, 16, &cfg);
//! let gnn = GpuKernel::GnnAdvisor { opt: false, ng_size: None }.simulate(&a, 16, &cfg);
//! assert!(mp.micros > 0.0 && gnn.micros > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awbgcn;
mod config;
pub mod engine;
mod kernels;
mod lower;
pub mod vendor;
mod warp;

pub use config::GpuConfig;
pub use engine::{Bound, SimReport};
pub use kernels::GpuKernel;
pub use lower::{lower, lower_with_policy, LoweringPolicy};
pub use warp::{KernelRun, WarpWork};
