//! SpGEMM benchmark — merge-path-balanced engine vs the sequential
//! oracle.
//!
//! The container this harness usually runs in has a single hardware
//! core, so multi-worker *wall* times cannot demonstrate the numeric
//! phase's parallel win directly. The harness therefore follows the
//! `bench_steal` approach: real single-worker executions are measured,
//! and multi-worker totals are **modeled** from the engine's own chunk
//! decomposition,
//!
//! * calibrating nanoseconds per merge item (`rows + flop upper bound`,
//!   the cost [`mpspmm_core::chunk_threads`] balances on) from the
//!   measured one-worker numeric phase,
//! * simulating the self-scheduling cursor drain — chunks are claimed
//!   in order by the globally earliest-finishing worker, exactly the
//!   engine's `AtomicUsize` protocol — to get the numeric makespan, and
//! * keeping the measured serial part (symbolic pass + stitch) intact:
//!   `modeled_total(W) = (wall₁ − numeric₁) + makespan(W)`.
//!
//! The baseline is [`mpspmm_core::spgemm_sequential`], the bit-level
//! ground-truth oracle. A per-strategy one-worker comparison (Adaptive
//! vs pinned Dense/Hash/Merge) shows what the per-row classifier buys.
//!
//! Writes `BENCH_spgemm.json`. Pass `--smoke` for a seconds-fast run on
//! scaled-down graphs (the tier-1 gate).

use mpspmm_bench::{banner, geomean, time_ns, SEED};
use mpspmm_core::{
    chunk_threads, spgemm_flops_upper_bound, spgemm_sequential, ExecEngine, SpgemmStrategy,
    STEAL_CHUNKS_PER_WORKER,
};
use mpspmm_graphs::{gcn_normalize, DatasetSpec, GraphClass};
use mpspmm_sparse::CsrMatrix;

const STRATEGIES: [SpgemmStrategy; 4] = [
    SpgemmStrategy::Adaptive,
    SpgemmStrategy::Dense,
    SpgemmStrategy::Hash,
    SpgemmStrategy::Merge,
];

/// Cumulative per-row flop upper bounds — the symbolic phase's balance
/// signal, re-derived here to rebuild the engine's chunk decomposition.
fn upper_bound_ends(a: &CsrMatrix<f32>, b: &CsrMatrix<f32>) -> Vec<usize> {
    let mut ends = Vec::with_capacity(a.rows());
    let mut running = 0usize;
    for arow in a.iter_rows() {
        for &k in arow.cols {
            running += b.row_nnz(k);
        }
        ends.push(running);
    }
    ends
}

/// Simulated numeric-phase makespan in merge items for `workers`
/// workers over the engine's own chunk decomposition: chunks are
/// claimed **in order** off a shared cursor by whichever worker
/// finishes first — the engine's self-scheduling protocol, simulated
/// deterministically.
fn numeric_makespan_items(ub_ends: &[usize], workers: usize) -> u64 {
    let rows = ub_ends.len();
    let eff = workers.min(rows).max(1);
    let target = (eff * STEAL_CHUNKS_PER_WORKER).min(rows.max(1));
    let chunks = chunk_threads(ub_ends, target);
    let mut clock = vec![0u64; eff];
    for c in &chunks {
        let w = (0..eff).min_by_key(|&w| clock[w]).unwrap();
        clock[w] += (c.threads() + c.nnz) as u64;
    }
    clock.into_iter().max().unwrap_or(0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "BENCH spgemm",
        "CSR x CSR engine vs sequential oracle (measured 1-worker wall + modeled makespans)",
        !smoke,
    );

    let (warm, iters) = if smoke { (1, 3) } else { (2, 9) };
    let specs: Vec<DatasetSpec> = if smoke {
        vec![DatasetSpec::custom(
            "spgemm-powerlaw",
            GraphClass::PowerLaw,
            2_000,
            20_000,
            400,
        )]
    } else {
        vec![
            DatasetSpec::custom("spgemm-pl-small", GraphClass::PowerLaw, 4_000, 60_000, 600),
            DatasetSpec::custom(
                "spgemm-pl-mid",
                GraphClass::PowerLaw,
                10_000,
                140_000,
                1_500,
            ),
            DatasetSpec::custom(
                "spgemm-pl-large",
                GraphClass::PowerLaw,
                20_000,
                240_000,
                3_000,
            ),
        ]
    };
    let workers_list = [1usize, 2, 4, 8];

    println!(
        "\n{:<18} {:>9} {:>10} {:>12} {:>12} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "graph", "flops-ub", "out-nnz", "oracle ns", "wall1 ns", "num%", "x@1", "x@2", "x@4", "x@8"
    );

    let mut records = Vec::new();
    let mut speedups_at_4 = Vec::new();
    for spec in &specs {
        // Â·Â two-hop squaring: the GCN use case, normalized weights.
        let a = gcn_normalize(&spec.synthesize(SEED));
        let flops = spgemm_flops_upper_bound(&a, &a);
        let ub_ends = upper_bound_ends(&a, &a);
        let total_items = (a.rows() + flops) as u64;

        let oracle_ns = time_ns(warm, iters, || {
            let _ = spgemm_sequential(&a, &a).unwrap();
        });

        // Per-strategy one-worker walls: what the adaptive classifier
        // buys over pinning every row to one accumulator family.
        let mut strategy_walls = Vec::new();
        for strategy in STRATEGIES {
            let engine = ExecEngine::new(1).with_spgemm_strategy(strategy);
            let ns = time_ns(warm, iters, || {
                let _ = engine.spgemm(&a, &a).unwrap();
            });
            strategy_walls.push((strategy, ns));
        }
        let wall1 = strategy_walls[0].1; // Adaptive

        // Numeric fraction of the one-worker wall, from the engine's
        // own phase counters averaged over the timed runs.
        let engine = ExecEngine::new(1);
        let runs = (warm + iters) as u64;
        let out = engine.spgemm(&a, &a).unwrap();
        let out_nnz = out.nnz();
        engine.clear_cache();
        for _ in 0..runs {
            let _ = engine.spgemm(&a, &a).unwrap();
        }
        let st = engine.stats().spgemm;
        let numeric1 = (st.numeric_ns as f64 / runs as f64).min(wall1);
        let serial_ns = wall1 - numeric1;
        let ns_per_item = numeric1 / total_items as f64;

        let modeled: Vec<(usize, f64)> = workers_list
            .iter()
            .map(|&w| {
                let makespan = numeric_makespan_items(&ub_ends, w) as f64 * ns_per_item;
                (w, oracle_ns / (serial_ns + makespan).max(1.0))
            })
            .collect();
        let speedup_at_4 = modeled.iter().find(|&&(w, _)| w == 4).unwrap().1;
        speedups_at_4.push(speedup_at_4);

        println!(
            "{:<18} {:>9} {:>10} {:>12.0} {:>12.0} {:>5.0}% {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x",
            spec.name,
            flops,
            out_nnz,
            oracle_ns,
            wall1,
            numeric1 / wall1 * 100.0,
            modeled[0].1,
            modeled[1].1,
            modeled[2].1,
            modeled[3].1,
        );

        let strat_json: Vec<String> = strategy_walls
            .iter()
            .map(|(s, ns)| format!("\"{s:?}\": {ns:.0}"))
            .collect();
        let modeled_json: Vec<String> = modeled
            .iter()
            .map(|(w, x)| format!("\"{w}\": {x:.3}"))
            .collect();
        records.push(format!(
            concat!(
                "    {{\"graph\": \"{}\", \"rows\": {}, \"nnz\": {}, \"flops_ub\": {}, ",
                "\"out_nnz\": {}, \"oracle_ns\": {:.0}, \"wall_1w_ns\": {:.0}, ",
                "\"numeric_1w_ns\": {:.0}, \"rows_dense\": {}, \"rows_hash\": {}, ",
                "\"rows_merge\": {}, \"strategy_wall_1w_ns\": {{{}}}, ",
                "\"modeled_speedup\": {{{}}}}}"
            ),
            spec.name,
            a.rows(),
            a.nnz(),
            flops,
            out_nnz,
            oracle_ns,
            wall1,
            numeric1,
            st.accum_dense / runs,
            st.accum_hash / runs,
            st.accum_merge / runs,
            strat_json.join(", "),
            modeled_json.join(", ")
        ));
    }

    let g = geomean(&speedups_at_4);
    let pass = g >= 3.0;
    println!(
        "\npower-law geomean modeled speedup at 4 workers vs oracle: {g:.2}x (target >= 3.0: {})",
        if pass { "PASS" } else { "MISS" }
    );

    let json = format!(
        concat!(
            "{{\n  \"baseline\": \"sequential SpGEMM oracle (spgemm_sequential)\",\n",
            "  \"speedup\": {:.3},\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"acceptance\": {{\n",
            "    \"powerlaw_geomean_speedup_at_4_workers\": {:.3},\n",
            "    \"target\": 3.0,\n",
            "    \"pass\": {}\n",
            "  }}\n}}\n"
        ),
        g,
        records.join(",\n"),
        g,
        pass
    );
    std::fs::write("BENCH_spgemm.json", &json).expect("write BENCH_spgemm.json");
    println!("wrote BENCH_spgemm.json");
}
