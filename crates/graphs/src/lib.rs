//! Synthetic evaluation graphs reproducing Table II of the MergePath-SpMM
//! paper (ISPASS 2023).
//!
//! The paper evaluates on 23 real-world graphs: 17 *Type I* power-law graphs
//! (citation networks, web/social graphs, Nell, …) and 6 *Type II*
//! structured graphs (molecular datasets and Twitter-partial). The raw
//! datasets are not redistributable (and not downloadable in this build
//! environment), so this crate synthesizes **structure-equivalent** graphs:
//! deterministic, seeded generators parameterized by the exact Table II row
//! (node count, non-zero count, average degree, maximum degree).
//!
//! The SpMM kernels under study are sensitive only to the sparsity
//! *structure* — row count, total non-zeros, degree skew (evil rows), and
//! locality — all of which the generators match (nodes, nnz, and max degree
//! exactly; degree-distribution shape via a truncated power law).
//!
//! # Example
//!
//! ```
//! use mpspmm_graphs::{DatasetSpec, GraphClass};
//!
//! // Synthesize a miniature power-law graph and check its shape.
//! let spec = DatasetSpec::custom("mini", GraphClass::PowerLaw, 500, 2_000, 60);
//! let a = spec.synthesize(42);
//! assert_eq!(a.rows(), 500);
//! assert_eq!(a.nnz(), 2_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evolve;
mod normalize;
mod powerlaw;
mod spec;
mod structured;

pub use evolve::GraphStream;
pub use normalize::{add_self_loops, gcn_normalize, mean_normalize, sum_with_self_loops};
pub use spec::{find_dataset, table_ii, DatasetSpec, GraphClass, TABLE_II};

pub(crate) use powerlaw::generate_powerlaw;
pub(crate) use structured::generate_structured;
