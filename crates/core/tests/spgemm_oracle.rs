//! SpGEMM oracle suite: [`ExecEngine::spgemm`] must be **bit-identical**
//! to [`spgemm_sequential`] for every accumulator strategy and worker
//! count, on every graph shape the classifier can route differently —
//! power-law (evil rows → dense scratch), uniform short rows (merge),
//! empty rows, duplicate-column collision storms (hash probe chains),
//! and `A = B` squaring. The tier-1 script sweeps `MPSPMM_WORKERS` over
//! {1, 2, 8} and re-runs the suite under `MPSPMM_TUNE=1`, so the same
//! assertions cover tuned exploration runs.

use std::sync::Arc;

use mpspmm_core::{
    classify_row, default_workers, spgemm_sequential, AccumKind, AutoTuner, ExecEngine,
    SpgemmStrategy,
};
use mpspmm_graphs::{gcn_normalize, DatasetSpec, GraphClass};
use mpspmm_sparse::testing::assert_csr_eq;
use mpspmm_sparse::CsrMatrix;

const STRATEGIES: [SpgemmStrategy; 4] = [
    SpgemmStrategy::Adaptive,
    SpgemmStrategy::Dense,
    SpgemmStrategy::Hash,
    SpgemmStrategy::Merge,
];

/// The worker counts the tier-1 `MPSPMM_WORKERS` matrix pins — exercised
/// here explicitly so a single test run still covers all three.
const WORKER_MATRIX: [usize; 3] = [1, 2, 8];

/// A matrix with an empty-row band: rows `2..5` and the last row carry
/// nothing, row 1 carries a negative zero (the bit-equality canary),
/// and row 5 references B rows that are themselves empty.
fn empty_row_matrix() -> CsrMatrix<f32> {
    let mut rows: Vec<Vec<(usize, f32)>> = vec![Vec::new(); 12];
    rows[0] = vec![(0, 1.0), (7, 2.0)];
    rows[1] = vec![(3, -0.0), (11, 0.5)];
    rows[5] = vec![(2, 1.5), (3, -1.0), (4, 0.25)];
    rows[6] = (0..12).map(|c| (c, 0.125 * (c as f32 + 1.0))).collect();
    rows[8] = vec![(9, -3.0)];
    CsrMatrix::from_sorted_rows(12, &rows).unwrap()
}

/// A collision storm: every A row combines many B rows, and every B row
/// lands on the same four output columns, so the hash accumulator
/// probes long chains and signed contributions partially cancel
/// (`+x + -x` must stay an explicit `0.0` entry, and a leading `-0.0`
/// must survive first-touch assignment).
fn collision_pair() -> (CsrMatrix<f32>, CsrMatrix<f32>) {
    let k = 32;
    let a_rows: Vec<Vec<(usize, f32)>> = (0..8)
        .map(|r| {
            (0..k)
                .map(|j| (j, if (r + j) % 2 == 0 { 1.0 } else { -1.0 }))
                .collect()
        })
        .collect();
    let b_rows: Vec<Vec<(usize, f32)>> = (0..k)
        .map(|r| {
            vec![
                (0, if r == 0 { -0.0 } else { 0.5 }),
                (1, 1.0),
                (2, -0.5),
                (3, (r as f32) * 0.25),
            ]
        })
        .collect();
    (
        CsrMatrix::from_sorted_rows(k, &a_rows).unwrap(),
        CsrMatrix::from_sorted_rows(4, &b_rows).unwrap(),
    )
}

/// The named case suite: `(label, A, B)` pairs whose shapes chain.
fn cases() -> Vec<(&'static str, CsrMatrix<f32>, CsrMatrix<f32>)> {
    let pl =
        gcn_normalize(&DatasetSpec::custom("pl", GraphClass::PowerLaw, 120, 600, 40).synthesize(3));
    let pl_b = gcn_normalize(
        &DatasetSpec::custom("plb", GraphClass::PowerLaw, 120, 480, 25).synthesize(5),
    );
    let uniform = gcn_normalize(
        &DatasetSpec::custom("uni", GraphClass::Structured, 96, 384, 8).synthesize(2),
    );
    let empty = empty_row_matrix();
    let (coll_a, coll_b) = collision_pair();
    vec![
        ("power-law", pl.clone(), pl_b),
        ("uniform", uniform.clone(), uniform.clone()),
        ("empty-rows", empty.clone(), empty),
        ("collision", coll_a, coll_b),
        ("squaring", pl.clone(), pl),
    ]
}

/// Every case × strategy × worker count is bit-equal to the sequential
/// oracle — the tentpole's determinism contract, end to end.
#[test]
fn engine_bit_matches_oracle_for_every_strategy_and_worker_count() {
    for (label, a, b) in cases() {
        let want = spgemm_sequential(&a, &b).unwrap();
        for strategy in STRATEGIES {
            for workers in WORKER_MATRIX {
                let engine = ExecEngine::new(workers).with_spgemm_strategy(strategy);
                let got = engine.spgemm(&a, &b).unwrap();
                // assert_csr_eq panics with a structured diff; the label
                // in a wrapping message would be lost, so pin context
                // first with a cheap shape probe.
                assert_eq!(
                    (got.rows(), got.cols()),
                    (want.rows(), want.cols()),
                    "case={label} strategy={strategy:?} workers={workers}"
                );
                assert_csr_eq(&got, &want);
                let stats = engine.stats().spgemm;
                assert_eq!(
                    stats.rows,
                    a.rows() as u64,
                    "case={label}: every row classified exactly once"
                );
                assert_eq!(stats.classified_rows(), stats.rows);
            }
        }
    }
}

/// The engine at the resolved worker count — honouring `MPSPMM_WORKERS`,
/// which the tier-1 script sweeps over 1/2/8 — matches the oracle on
/// every case at the default `Adaptive` strategy, and repeated runs are
/// bit-equal to each other (worker-count-independent determinism).
#[test]
fn resolved_worker_count_matches_oracle_and_is_deterministic() {
    let engine = ExecEngine::new(default_workers());
    for (label, a, b) in cases() {
        let want = spgemm_sequential(&a, &b).unwrap();
        let first = engine.spgemm(&a, &b).unwrap();
        assert_csr_eq(&first, &want);
        for run in 0..3 {
            let again = engine.spgemm(&a, &b).unwrap();
            assert_eq!(
                (again.row_ptr(), again.col_indices()),
                (first.row_ptr(), first.col_indices()),
                "case={label} run={run} structure diverged"
            );
            assert_csr_eq(&again, &first);
        }
    }
}

/// Untuned engines (no `MPSPMM_TUNE`, no [`ExecEngine::with_autotuner`])
/// take the static [`classify_row`] heuristic with **zero** tuner
/// activity, and their output is byte-identical to a tuned engine's —
/// attaching a tuner may change speed, never bits.
#[test]
fn untuned_engine_takes_static_heuristic_with_zero_exploration() {
    if std::env::var_os("MPSPMM_TUNE").is_some_and(|v| v != "0") {
        // MPSPMM_TUNE attaches a tuner to every engine — there is no
        // untuned engine to observe in that configuration.
        return;
    }
    let (_, a, b) = cases().swap_remove(0);
    let want = spgemm_sequential(&a, &b).unwrap();

    let untuned = ExecEngine::new(2);
    assert!(untuned.autotuner().is_none());
    assert_eq!(untuned.spgemm_strategy(), SpgemmStrategy::Adaptive);
    let got = untuned.spgemm(&a, &b).unwrap();
    assert_csr_eq(&got, &want);
    assert_eq!(untuned.stats().tuner, Default::default());
    assert!(untuned.spgemm_tuned_strategy(&a, &b).is_none());

    // The per-class row counts are exactly the static heuristic's tally.
    let mut expect = [0u64; 3];
    for (arow, ub) in a.iter_rows().zip(per_row_upper_bounds(&a, &b)) {
        expect[classify_row(arow.cols.len(), ub, b.cols()) as usize] += 1;
    }
    let stats = untuned.stats().spgemm;
    assert_eq!(
        [stats.accum_merge, stats.accum_dense, stats.accum_hash],
        [
            expect[AccumKind::Merge as usize],
            expect[AccumKind::Dense as usize],
            expect[AccumKind::Hash as usize]
        ]
    );

    // A tuned engine explores — different schedule, identical bits.
    let tuned = ExecEngine::new(2).with_autotuner(Arc::new(AutoTuner::in_memory()));
    let tuned_out = tuned.spgemm(&a, &b).unwrap();
    assert_csr_eq(&tuned_out, &got);
    assert!(tuned.stats().tuner.explorations > 0);
}

/// A tuned engine converges for a repeated shape class: after enough
/// runs [`ExecEngine::spgemm_tuned_strategy`] returns a winner from the
/// arm space, tuner counters advance, and every exploration run along
/// the way stays bit-equal to the oracle.
#[test]
fn tuned_engine_converges_and_stays_bit_identical_throughout() {
    let (_, a, b) = cases().swap_remove(0);
    let want = spgemm_sequential(&a, &b).unwrap();
    let engine = ExecEngine::new(2).with_autotuner(Arc::new(AutoTuner::in_memory()));
    let mut winner = None;
    for _ in 0..64 {
        let got = engine.spgemm(&a, &b).unwrap();
        assert_csr_eq(&got, &want);
        winner = engine.spgemm_tuned_strategy(&a, &b);
        if winner.is_some() {
            break;
        }
    }
    let winner = winner.expect("slot must converge within the measure quota");
    let stats = engine.stats().tuner;
    assert!(stats.explorations > 0, "exploration runs were counted");
    assert!(stats.converged_plans > 0, "convergence was counted");
    // Post-convergence runs take the winner and stay bit-identical.
    let after = engine.spgemm(&a, &b).unwrap();
    assert_csr_eq(&after, &want);
    assert_eq!(engine.spgemm_tuned_strategy(&a, &b), Some(winner));
    // clear_cache drops the slots: the verdict is engine-local state.
    engine.clear_cache();
    assert!(engine.spgemm_tuned_strategy(&a, &b).is_none());
}

/// Per-row flop upper bounds (Σ nnz of the combined B rows) — the same
/// figure the symbolic phase computes, re-derived independently here.
fn per_row_upper_bounds(a: &CsrMatrix<f32>, b: &CsrMatrix<f32>) -> Vec<usize> {
    a.iter_rows()
        .map(|arow| arow.cols.iter().map(|&k| b.row_nnz(k)).sum())
        .collect()
}

/// Shape mismatches are reported, not panicked, through the engine.
#[test]
fn shape_mismatch_is_an_error() {
    let a = CsrMatrix::<f32>::zeros(3, 4);
    let b = CsrMatrix::<f32>::zeros(5, 2);
    let engine = ExecEngine::new(2);
    assert!(engine.spgemm(&a, &b).is_err());
    assert!(spgemm_sequential(&a, &b).is_err());
}
