//! Shared plumbing for the figure/table reproduction harnesses.
//!
//! Each `fig*`/`table*`/`ablation_*` binary in `src/bin/` regenerates one
//! table or figure of the MergePath-SpMM paper (see DESIGN.md §3 for the
//! experiment index). This library provides the common pieces: the
//! deterministic dataset seed, geometric means, and the scaled-down /
//! `--full` input handling that keeps the larger graphs tractable by
//! default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mpspmm_graphs::DatasetSpec;
use mpspmm_sparse::CsrMatrix;

/// The fixed seed used by every harness, so printed numbers are
/// reproducible run-to-run.
pub const SEED: u64 = 7;

/// Non-zero count above which harnesses scale a dataset down unless
/// `--full` is passed.
pub const SCALE_THRESHOLD_NNZ: usize = 2_500_000;

/// Scale factor applied to over-threshold datasets in default mode.
pub const DEFAULT_SCALE: usize = 4;

/// Geometric mean of a slice (empty slices yield 1).
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 1.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Whether `--full` was passed on the command line (run every dataset at
/// its published size).
pub fn full_size_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Synthesizes `spec`, scaling it down when it is over the threshold and
/// `full` is false. Returns the (possibly scaled) spec and its matrix.
pub fn load(spec: &DatasetSpec, full: bool) -> (DatasetSpec, CsrMatrix<f32>) {
    let spec = if !full && spec.nnz > SCALE_THRESHOLD_NNZ {
        spec.scaled_down(DEFAULT_SCALE)
    } else {
        spec.clone()
    };
    let a = spec.synthesize(SEED);
    (spec, a)
}

/// Times `f` and returns the best (minimum) wall-clock nanoseconds per
/// call over `iters` timed calls, after `warmup` untimed calls.
///
/// The minimum is the standard noise-robust point estimate for a
/// deterministic workload on a shared machine: every measurement is the
/// true cost plus non-negative interference.
pub fn time_ns<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = std::time::Instant::now();
        f();
        let dt = t0.elapsed().as_nanos() as f64;
        if dt < best {
            best = dt;
        }
    }
    best
}

/// One `(dataset, kernel, dim, ns_per_nnz)` record from a harness JSON
/// file (the shape both `BENCH_engine.json` and `BENCH_simd.json` share).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Dataset name (Table II spelling).
    pub dataset: String,
    /// Kernel display name.
    pub kernel: String,
    /// Dense feature dimension.
    pub dim: usize,
    /// Best-of-N nanoseconds per non-zero.
    pub ns_per_nnz: f64,
}

/// Parses the flat `"results"` records out of a harness JSON file.
///
/// This is a purpose-built reader for the JSON these harnesses emit (one
/// object per line inside `"results"`), not a general JSON parser — the
/// workspace deliberately has no serde dependency. Records missing any of
/// the four fields are skipped.
pub fn parse_bench_records(json: &str) -> Vec<BenchRecord> {
    fn str_field(obj: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\":");
        let rest = &obj[obj.find(&pat)? + pat.len()..];
        let open = rest.find('"')?;
        let rest = &rest[open + 1..];
        Some(rest[..rest.find('"')?].to_string())
    }
    fn num_field(obj: &str, key: &str) -> Option<f64> {
        let pat = format!("\"{key}\":");
        let rest = obj[obj.find(&pat)? + pat.len()..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
    json.lines()
        .filter(|l| l.contains("\"dataset\""))
        .filter_map(|obj| {
            Some(BenchRecord {
                dataset: str_field(obj, "dataset")?,
                kernel: str_field(obj, "kernel")?,
                dim: num_field(obj, "dim")? as usize,
                ns_per_nnz: num_field(obj, "ns_per_nnz")?,
            })
        })
        .collect()
}

/// Prints the standard harness banner.
pub fn banner(figure: &str, description: &str, full: bool) {
    println!("==================================================================");
    println!("{figure}: {description}");
    println!(
        "inputs: synthetic Table II graphs, seed {SEED}{}",
        if full {
            " (--full: published sizes)"
        } else {
            " (large graphs scaled 1/4; pass --full for published sizes)"
        }
    );
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_graphs::find_dataset;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parse_bench_records_reads_harness_json() {
        let json = concat!(
            "{\n  \"results\": [\n",
            "    {\"dataset\": \"Cora\", \"kernel\": \"merge-path\", \"dim\": 16, \"ns_per_nnz\": 12.5, \"speedup\": 2.1},\n",
            "    {\"dataset\": \"PPI\", \"kernel\": \"GNNAdvisor\", \"dim\": 32, \"ns_per_nnz\": 8.25e1}\n",
            "  ],\n  \"geomean_speedup\": 2.0\n}\n"
        );
        let recs = parse_bench_records(json);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].dataset, "Cora");
        assert_eq!(recs[0].kernel, "merge-path");
        assert_eq!(recs[0].dim, 16);
        assert!((recs[0].ns_per_nnz - 12.5).abs() < 1e-12);
        assert!((recs[1].ns_per_nnz - 82.5).abs() < 1e-9);
        // Malformed / irrelevant lines are skipped, not fatal.
        assert!(parse_bench_records("{\"geomean\": 1.0}").is_empty());
        assert!(parse_bench_records("    {\"dataset\": \"X\"}").is_empty());
    }

    #[test]
    fn load_scales_only_large_graphs() {
        let cora = find_dataset("Cora").unwrap();
        let (spec, a) = load(cora, false);
        assert_eq!(spec.nnz, cora.nnz);
        assert_eq!(a.nnz(), cora.nnz);
        let amazon = find_dataset("amazon0505").unwrap();
        let (spec, _) = load(amazon, false);
        assert!(spec.nnz < amazon.nnz);
    }
}
