//! Figure 4 — speedup over GNNAdvisor at the default dimension 16.
//!
//! For all 23 Table II graphs, simulates cuSPARSE (vendor model),
//! GNNAdvisor-opt, and MergePath-SpMM (merge-path cost 20, the Figure 6
//! optimum for dimension 16) on the RTX 6000 machine model, and prints
//! each kernel's speedup over the GNNAdvisor baseline plus geometric
//! means.

use mpspmm_bench::{banner, full_size_requested, geomean, load};
use mpspmm_graphs::{table_ii, GraphClass};
use mpspmm_simt::{vendor, GpuConfig, GpuKernel};

fn main() {
    let full = full_size_requested();
    banner(
        "Figure 4",
        "speedup of cuSPARSE / GNNAdvisor-opt / MergePath-SpMM over GNNAdvisor, dim 16",
        full,
    );

    let cfg = GpuConfig::rtx6000();
    let dim = 16;
    println!(
        "\n{:<5} {:<16} {:>10} {:>14} {:>15}",
        "Type", "Graph", "cuSPARSE", "GNNAdvisor-opt", "MergePath-SpMM"
    );
    let (mut cu, mut opt, mut mp) = (Vec::new(), Vec::new(), Vec::new());
    for spec in table_ii() {
        let (used, a) = load(spec, full);
        let base = GpuKernel::GnnAdvisor {
            opt: false,
            ng_size: None,
        }
        .simulate(&a, dim, &cfg)
        .micros;
        let s_cu = base / vendor::simulate_vendor(&a, dim, &cfg).report.micros;
        let s_opt = base
            / GpuKernel::GnnAdvisor {
                opt: true,
                ng_size: None,
            }
            .simulate(&a, dim, &cfg)
            .micros;
        let s_mp = base
            / GpuKernel::MergePath { cost: Some(20) }
                .simulate(&a, dim, &cfg)
                .micros;
        println!(
            "{:<5} {:<16} {:>10.2} {:>14.2} {:>15.2}",
            match used.class {
                GraphClass::PowerLaw => "I",
                GraphClass::Structured => "II",
            },
            used.name,
            s_cu,
            s_opt,
            s_mp
        );
        cu.push(s_cu);
        opt.push(s_opt);
        mp.push(s_mp);
    }
    println!(
        "\nGEOMEAN   cuSPARSE {:.2}   GNNAdvisor-opt {:.2}   MergePath-SpMM {:.2}",
        geomean(&cu),
        geomean(&opt),
        geomean(&mp)
    );
    println!(
        "MergePath-SpMM over GNNAdvisor-opt: {:.2}x",
        geomean(&mp) / geomean(&opt)
    );
    println!(
        "\nPaper: GNNAdvisor-opt 1.41x, MergePath-SpMM 1.85x over GNNAdvisor \
         (31% over -opt); cuSPARSE loses on Type I, wins or ties on Type II, \
         and dominates on Twitter-partial."
    );
}
