//! Row-length (degree) statistics for sparse matrices.
//!
//! The paper motivates MergePath-SpMM with the power-law degree
//! distributions of real-world graphs (Figure 1) and characterizes every
//! evaluation input by node count, non-zero count, average degree, and
//! maximum degree (Table II). This module computes those quantities plus
//! skew measures (Gini coefficient, tail CCDF) used by the generators'
//! verification tests and the Figure 1 harness.

use crate::CsrMatrix;

/// Summary statistics of a sparse matrix's row lengths.
///
/// For an adjacency matrix, row length is out-degree, so these are exactly
/// the per-graph columns of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Number of rows (graph nodes).
    pub rows: usize,
    /// Number of stored non-zeros (graph edges / adjacency entries).
    pub nnz: usize,
    /// Mean row length ("Avg. Deg." in Table II).
    pub avg: f64,
    /// Maximum row length ("Max. Deg." in Table II) — the length of the
    /// worst *evil row*.
    pub max: usize,
    /// Minimum row length.
    pub min: usize,
    /// Number of empty rows (zero-length rows the merge path must also
    /// distribute equitably).
    pub empty_rows: usize,
    /// Gini coefficient of the row lengths in `[0, 1]`; 0 = perfectly even
    /// (structured graphs), → 1 = extremely skewed (power law).
    pub gini: f64,
    /// 99th percentile row length.
    pub p99: usize,
}

impl DegreeStats {
    /// Computes statistics for a matrix.
    pub fn compute<T>(matrix: &CsrMatrix<T>) -> Self {
        let mut lengths = matrix.row_lengths();
        let rows = lengths.len();
        let nnz = matrix.nnz();
        if rows == 0 {
            return Self {
                rows: 0,
                nnz,
                avg: 0.0,
                max: 0,
                min: 0,
                empty_rows: 0,
                gini: 0.0,
                p99: 0,
            };
        }
        lengths.sort_unstable();
        let max = *lengths.last().unwrap();
        let min = lengths[0];
        let empty_rows = lengths.iter().take_while(|&&l| l == 0).count();
        let avg = nnz as f64 / rows as f64;
        let p99 = lengths[((rows - 1) as f64 * 0.99) as usize];
        let gini = gini_of_sorted(&lengths);
        Self {
            rows,
            nnz,
            avg,
            max,
            min,
            empty_rows,
            gini,
            p99,
        }
    }

    /// Ratio of the maximum degree to the average degree.
    ///
    /// The paper uses this disparity to identify evil rows — e.g. Nell has
    /// max degree 4549 against an average of 3.8, a ratio of ~1200.
    pub fn evil_row_ratio(&self) -> f64 {
        if self.avg == 0.0 {
            0.0
        } else {
            self.max as f64 / self.avg
        }
    }
}

/// Gini coefficient of a sorted (ascending) slice of non-negative values.
fn gini_of_sorted(sorted: &[usize]) -> f64 {
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().map(|&v| v as f64).sum();
    if total == 0.0 || sorted.len() < 2 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Histogram of row lengths: `histogram[d]` = number of rows of length `d`.
pub fn degree_histogram<T>(matrix: &CsrMatrix<T>) -> Vec<usize> {
    let mut hist = Vec::new();
    for r in 0..matrix.rows() {
        let d = matrix.row_nnz(r);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Complementary cumulative distribution of row lengths.
///
/// Returns `(degree, fraction_of_rows_with_length >= degree)` points at the
/// distinct degrees present. Plotting this on log-log axes shows the
/// straight-line tail characteristic of power-law graphs (paper Figure 1).
pub fn degree_ccdf<T>(matrix: &CsrMatrix<T>) -> Vec<(usize, f64)> {
    let hist = degree_histogram(matrix);
    let rows = matrix.rows() as f64;
    if rows == 0.0 {
        return Vec::new();
    }
    let mut remaining = matrix.rows();
    let mut points = Vec::new();
    for (degree, &count) in hist.iter().enumerate() {
        if count > 0 {
            points.push((degree, remaining as f64 / rows));
        }
        remaining -= count;
    }
    points
}

/// Least-squares estimate of the power-law exponent `alpha` for the degree
/// tail, fitted on `log(degree) → log(ccdf)` over degrees `>= d_min`.
///
/// Returns `None` when fewer than three distinct degrees lie in the tail.
/// For a CCDF `P(D >= d) ∝ d^{-(alpha-1)}`, the fitted slope `s` gives
/// `alpha = 1 - s`.
pub fn fit_powerlaw_alpha<T>(matrix: &CsrMatrix<T>, d_min: usize) -> Option<f64> {
    let pts: Vec<(f64, f64)> = degree_ccdf(matrix)
        .into_iter()
        .filter(|&(d, p)| d >= d_min.max(1) && p > 0.0)
        .map(|(d, p)| ((d as f64).ln(), p.ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(1.0 - slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    fn matrix_with_lengths(lengths: &[usize]) -> CsrMatrix<f32> {
        let cols = lengths.iter().copied().max().unwrap_or(0).max(1);
        let mut triplets = Vec::new();
        for (r, &len) in lengths.iter().enumerate() {
            for c in 0..len {
                triplets.push((r, c, 1.0));
            }
        }
        CsrMatrix::from_triplets(lengths.len(), cols, &triplets).unwrap()
    }

    #[test]
    fn basic_stats() {
        let m = matrix_with_lengths(&[0, 1, 2, 5]);
        let s = DegreeStats::compute(&m);
        assert_eq!(s.rows, 4);
        assert_eq!(s.nnz, 8);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 0);
        assert_eq!(s.empty_rows, 1);
        assert!((s.avg - 2.0).abs() < 1e-12);
        assert!((s.evil_row_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gini_zero_for_uniform() {
        let m = matrix_with_lengths(&[3, 3, 3, 3]);
        let s = DegreeStats::compute(&m);
        assert!(s.gini.abs() < 1e-12);
    }

    #[test]
    fn gini_increases_with_skew() {
        let even = DegreeStats::compute(&matrix_with_lengths(&[2, 2, 2, 2]));
        let skewed = DegreeStats::compute(&matrix_with_lengths(&[0, 0, 0, 8]));
        assert!(skewed.gini > even.gini);
        assert!(skewed.gini > 0.7);
    }

    #[test]
    fn histogram_counts_rows() {
        let m = matrix_with_lengths(&[0, 1, 1, 3]);
        let h = degree_histogram(&m);
        assert_eq!(h, vec![1, 2, 0, 1]);
    }

    #[test]
    fn ccdf_starts_at_one_and_decreases() {
        let m = matrix_with_lengths(&[0, 1, 2, 4, 4, 9]);
        let ccdf = degree_ccdf(&m);
        assert_eq!(ccdf[0], (0, 1.0));
        for w in ccdf.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        let last = ccdf.last().unwrap();
        assert_eq!(last.0, 9);
        assert!((last.1 - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn powerlaw_fit_recovers_exponent() {
        // Construct a synthetic degree sequence with an exact power-law
        // histogram: count(d) ∝ d^-3 over d in 1..=64 gives alpha ≈ 3.
        let mut lengths = Vec::new();
        for d in 1usize..=64 {
            let count = (100_000.0 / (d as f64).powi(3)).round() as usize;
            for _ in 0..count {
                lengths.push(d);
            }
        }
        let m = matrix_with_lengths(&lengths);
        let alpha = fit_powerlaw_alpha(&m, 2).unwrap();
        assert!(
            (2.0..4.0).contains(&alpha),
            "fitted alpha {alpha} should be near 3"
        );
    }

    #[test]
    fn powerlaw_fit_requires_tail_points() {
        let m = matrix_with_lengths(&[1, 1, 1]);
        assert!(fit_powerlaw_alpha(&m, 1).is_none());
    }

    #[test]
    fn empty_matrix_stats() {
        let m = CsrMatrix::<f32>::zeros(0, 0);
        let s = DegreeStats::compute(&m);
        assert_eq!(s.rows, 0);
        assert_eq!(s.gini, 0.0);
        assert!(degree_ccdf(&m).is_empty());
    }
}
