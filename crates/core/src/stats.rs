//! Execution statistics: the atomic/regular write accounting behind
//! Figure 5 of the paper.

use std::ops::AddAssign;

/// Counts of output-matrix update operations performed by an SpMM kernel.
///
/// The paper's key observation is that MergePath-SpMM confines atomic
/// operations to partial start/end rows while GNNAdvisor updates *every*
/// output row atomically; Figure 5 plots exactly this distribution for
/// MergePath-SpMM at dimension 16.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Output-row updates performed with atomic accumulation. Each counts
    /// one thread-local partial result flushed atomically (Algorithm 2
    /// lines 5, 9, 13) — or, for all-atomic kernels, one group flush.
    pub atomic_row_updates: usize,
    /// Output-row updates performed with regular (non-atomic) writes
    /// (Algorithm 2 line 15).
    pub regular_row_writes: usize,
    /// Output-row updates deferred to a post-barrier **serial phase** (one
    /// per carry segment; only the merge-path serial-fixup baseline
    /// produces these).
    pub serial_row_updates: usize,
    /// Non-zeros whose partial products were accumulated behind an atomic
    /// row update.
    pub atomic_nnz: usize,
    /// Non-zeros accumulated behind regular writes.
    pub regular_nnz: usize,
    /// Non-zeros processed in a *serial* fix-up phase (only non-zero for
    /// the merge-path serial-fixup baseline).
    pub serial_nnz: usize,
}

impl WriteStats {
    /// Total output-row updates of any kind.
    pub fn total_updates(&self) -> usize {
        self.atomic_row_updates + self.regular_row_writes + self.serial_row_updates
    }

    /// Total non-zeros processed.
    pub fn total_nnz(&self) -> usize {
        self.atomic_nnz + self.regular_nnz + self.serial_nnz
    }

    /// Fraction of output updates that were atomic, in `[0, 1]`
    /// (0 when no updates were performed).
    pub fn atomic_update_fraction(&self) -> f64 {
        let total = self.total_updates();
        if total == 0 {
            0.0
        } else {
            self.atomic_row_updates as f64 / total as f64
        }
    }

    /// Fraction of non-zeros processed behind atomic updates, in `[0, 1]`.
    ///
    /// This is the quantity Figure 5 plots: how much of the kernel's
    /// multiply-accumulate work funnels through synchronized output
    /// updates.
    pub fn atomic_nnz_fraction(&self) -> f64 {
        let total = self.total_nnz();
        if total == 0 {
            0.0
        } else {
            self.atomic_nnz as f64 / total as f64
        }
    }
}

/// Auto-tuner counters of one engine (embedded in
/// [`EngineStats`](crate::EngineStats)): how much live exploration the
/// online tuner (`crate::tuner`) has performed and what it has
/// converged. All counters are cumulative since engine construction or
/// the last [`clear_cache`](crate::ExecEngine::clear_cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunerStats {
    /// Executions that ran under a measured (exploring) arm ticket.
    /// Zero on a warm-started or tuning-disabled engine — the
    /// warm-restart acceptance check asserts exactly this.
    pub explorations: u64,
    /// Total wall nanoseconds of those measured executions.
    pub exploration_ns: u64,
    /// Nanoseconds the measured executions spent *over* the incumbent
    /// best arm — the true exploration overhead (a run on the best arm
    /// charges nothing).
    pub excess_ns: u64,
    /// Plans whose explorer converged on this engine (verdicts recorded
    /// to the calibration table).
    pub converged_plans: u64,
    /// Plans that entered the cache with a tuner slot attached.
    pub tuned_plans: u64,
    /// Plans that skipped exploration because the calibration table
    /// already held a verdict for their fingerprint.
    pub warm_plans: u64,
}

impl TunerStats {
    /// Fraction of the measured executions' wall time that was
    /// exploration overhead, in `[0, 1]` (0 before any exploration).
    /// This is the quantity the <5% overhead bound is stated over.
    pub fn overhead_fraction(&self) -> f64 {
        if self.exploration_ns == 0 {
            0.0
        } else {
            self.excess_ns as f64 / self.exploration_ns as f64
        }
    }
}

impl AddAssign for TunerStats {
    fn add_assign(&mut self, rhs: Self) {
        self.explorations += rhs.explorations;
        self.exploration_ns += rhs.exploration_ns;
        self.excess_ns += rhs.excess_ns;
        self.converged_plans += rhs.converged_plans;
        self.tuned_plans += rhs.tuned_plans;
        self.warm_plans += rhs.warm_plans;
    }
}

/// SpGEMM counters of one engine (embedded in
/// [`EngineStats`](crate::EngineStats)): rows executed through
/// [`spgemm`](crate::ExecEngine::spgemm), the per-row accumulator
/// distribution the adaptive classifier (or a forced strategy) chose,
/// and the wall-time split between the symbolic and numeric phases.
/// All counters are cumulative since engine construction or the last
/// [`clear_cache`](crate::ExecEngine::clear_cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpgemmStats {
    /// Output rows produced by `spgemm` runs.
    pub rows: u64,
    /// Rows computed with the dense-scratch accumulator (short, wide —
    /// upper bound a sizeable fraction of `B`'s columns).
    pub accum_dense: u64,
    /// Rows computed with the u32-keyed hash accumulator (sparse rows).
    pub accum_hash: u64,
    /// Rows computed with the sorted multi-way merge (few `B` rows
    /// combined).
    pub accum_merge: u64,
    /// Wall nanoseconds in the symbolic phase (per-row upper bounds +
    /// merge-path chunking), serial.
    pub symbolic_ns: u64,
    /// Wall nanoseconds in the parallel numeric phase (chunk execution;
    /// excludes the serial output stitch).
    pub numeric_ns: u64,
}

impl SpgemmStats {
    /// Total rows classified to any accumulator (equals
    /// [`rows`](Self::rows) — every row is classified exactly once).
    pub fn classified_rows(&self) -> u64 {
        self.accum_dense + self.accum_hash + self.accum_merge
    }
}

impl AddAssign for SpgemmStats {
    fn add_assign(&mut self, rhs: Self) {
        self.rows += rhs.rows;
        self.accum_dense += rhs.accum_dense;
        self.accum_hash += rhs.accum_hash;
        self.accum_merge += rhs.accum_merge;
        self.symbolic_ns += rhs.symbolic_ns;
        self.numeric_ns += rhs.numeric_ns;
    }
}

impl AddAssign for WriteStats {
    fn add_assign(&mut self, rhs: Self) {
        self.atomic_row_updates += rhs.atomic_row_updates;
        self.regular_row_writes += rhs.regular_row_writes;
        self.serial_row_updates += rhs.serial_row_updates;
        self.atomic_nnz += rhs.atomic_nnz;
        self.regular_nnz += rhs.regular_nnz;
        self.serial_nnz += rhs.serial_nnz;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_empty_stats() {
        let s = WriteStats::default();
        assert_eq!(s.atomic_update_fraction(), 0.0);
        assert_eq!(s.atomic_nnz_fraction(), 0.0);
    }

    #[test]
    fn accumulation_and_fractions() {
        let mut a = WriteStats {
            atomic_row_updates: 1,
            regular_row_writes: 3,
            serial_row_updates: 0,
            atomic_nnz: 10,
            regular_nnz: 30,
            serial_nnz: 0,
        };
        let b = WriteStats {
            atomic_row_updates: 1,
            regular_row_writes: 0,
            serial_row_updates: 1,
            atomic_nnz: 10,
            regular_nnz: 0,
            serial_nnz: 5,
        };
        a += b;
        assert_eq!(a.total_updates(), 6);
        assert_eq!(a.total_nnz(), 55);
        assert!((a.atomic_update_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert!((a.atomic_nnz_fraction() - 20.0 / 55.0).abs() < 1e-12);
    }
}
