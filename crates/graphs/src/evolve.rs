//! Evolving graphs for the online execution setting.
//!
//! §III-D: "In an online setting, the graph keeps evolving, or a new
//! graph is processed on each inference. Therefore, the MergePath-SpMM
//! schedule needs to be computed for each inference." This module provides
//! a deterministic stream of graph snapshots — a base graph plus batched
//! edge insertions/removals — so the online scenario can be exercised and
//! benchmarked end-to-end (every snapshot invalidates schedules and
//! GNNAdvisor partition indexes alike).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mpspmm_sparse::{CooMatrix, CsrMatrix};

use crate::DatasetSpec;

/// A deterministic stream of evolving graph snapshots.
///
/// Each call to [`step`](Self::step) applies one batch of random edge
/// churn (insertions of new edges and removals of existing ones) and
/// returns the new adjacency matrix. Node count is fixed; the edge set
/// drifts.
///
/// # Example
///
/// ```
/// use mpspmm_graphs::{DatasetSpec, GraphClass, GraphStream};
///
/// let spec = DatasetSpec::custom("live", GraphClass::PowerLaw, 300, 1_200, 50);
/// let mut stream = GraphStream::new(&spec, 9);
/// let first = stream.snapshot().clone();
/// let second = stream.step(20, 10).clone();
/// assert_eq!(second.nnz(), first.nnz() + 10); // +20 inserted, -10 removed
/// ```
#[derive(Debug, Clone)]
pub struct GraphStream {
    current: CsrMatrix<f32>,
    rng: SmallRng,
    generation: usize,
}

impl GraphStream {
    /// Starts a stream from a freshly synthesized `spec` snapshot.
    pub fn new(spec: &DatasetSpec, seed: u64) -> Self {
        Self::from_matrix(spec.synthesize(seed), seed)
    }

    /// Starts a stream from an existing adjacency matrix.
    pub fn from_matrix(matrix: CsrMatrix<f32>, seed: u64) -> Self {
        Self {
            current: matrix,
            rng: SmallRng::seed_from_u64(seed ^ 0x0DDB_1A5E_5BAD_5EED),
            generation: 0,
        }
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> &CsrMatrix<f32> {
        &self.current
    }

    /// How many churn batches have been applied.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Applies one churn batch: insert `insertions` new edges (uniform
    /// endpoints, skipping duplicates and self loops) and remove
    /// `removals` existing edges (uniformly chosen), then returns the new
    /// snapshot.
    ///
    /// Fewer edges may be inserted/removed if the graph runs out of free
    /// slots or edges; the realized counts are reflected in the snapshot's
    /// `nnz`.
    pub fn step(&mut self, insertions: usize, removals: usize) -> &CsrMatrix<f32> {
        let n = self.current.rows();
        // Collect the surviving edges.
        let keep_nnz = self.current.nnz().saturating_sub(removals);
        let mut drop_positions: Vec<usize> = Vec::new();
        if removals > 0 && self.current.nnz() > 0 {
            // Sample distinct positions to drop.
            let mut chosen = std::collections::BTreeSet::new();
            let target = removals.min(self.current.nnz());
            while chosen.len() < target {
                chosen.insert(self.rng.gen_range(0..self.current.nnz()));
            }
            drop_positions = chosen.into_iter().collect();
        }
        let mut coo = CooMatrix::with_capacity(n, n, keep_nnz + insertions);
        let mut drop_iter = drop_positions.iter().peekable();
        let mut k = 0usize;
        for r in 0..n {
            let row = self.current.row(r);
            for (&c, &v) in row.cols.iter().zip(row.vals) {
                if drop_iter.peek() == Some(&&k) {
                    drop_iter.next();
                } else {
                    coo.push(r, c, v).expect("existing edges are unique");
                }
                k += 1;
            }
        }
        // Insert new edges.
        let mut inserted = 0usize;
        let mut attempts = 0usize;
        while inserted < insertions && attempts < 50 * insertions + 100 {
            attempts += 1;
            let r = self.rng.gen_range(0..n);
            let c = self.rng.gen_range(0..n);
            if r != c && !coo.contains(r, c) {
                coo.push(r, c, 1.0).expect("checked for duplicates");
                inserted += 1;
            }
        }
        self.current = CsrMatrix::from(coo);
        self.generation += 1;
        &self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphClass;

    fn spec() -> DatasetSpec {
        DatasetSpec::custom("ev", GraphClass::PowerLaw, 200, 800, 40)
    }

    #[test]
    fn churn_changes_edge_counts_exactly() {
        let mut s = GraphStream::new(&spec(), 1);
        let base = s.snapshot().nnz();
        let after = s.step(30, 10).nnz();
        assert_eq!(after, base + 20);
        assert_eq!(s.generation(), 1);
        let after2 = s.step(0, 25).nnz();
        assert_eq!(after2, after - 25);
    }

    #[test]
    fn snapshots_stay_structurally_valid() {
        let mut s = GraphStream::new(&spec(), 2);
        for _ in 0..5 {
            let a = s.step(15, 15);
            // from_triplets validation would have panicked otherwise; spot
            // check no self loops appeared.
            for r in 0..a.rows() {
                assert!(!a.row(r).cols.contains(&r), "self loop at {r}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut s1 = GraphStream::new(&spec(), 7);
        let mut s2 = GraphStream::new(&spec(), 7);
        for _ in 0..3 {
            assert_eq!(s1.step(10, 5), s2.step(10, 5));
        }
        let mut s3 = GraphStream::new(&spec(), 8);
        assert_ne!(s1.snapshot(), s3.step(10, 5));
    }

    #[test]
    fn schedules_go_stale_across_snapshots() {
        // The point of the online setting: any per-graph structure is
        // invalidated by churn.
        let mut s = GraphStream::new(&spec(), 3);
        let before = s.snapshot().clone();
        let after = s.step(5, 0).clone();
        assert_ne!(before.nnz(), after.nnz());
    }
}
