//! Serving-layer benchmark — coalesced batching vs one-request batches.
//!
//! Two load shapes against `mpspmm-serve` on the Cora graph, with
//! single-column SpMM requests (the per-node inference regime the
//! serving layer exists for):
//!
//! * **Closed loop** (capacity probe): N client threads submit requests
//!   back-to-back (submit → wait → repeat), once with batching disabled
//!   (`max_batch_cols = 1`: every request is its own engine run) and
//!   once with coalescing. This measures each configuration's service
//!   capacity and per-request latency when clients self-throttle.
//! * **Open loop** (the headline): a generator offers requests at one
//!   fixed rate — well above the unbatched capacity — to both servers,
//!   spread over several tenants, never waiting for replies. Under a
//!   standing backlog the batcher's sweep fills whole batches with no
//!   linger idle, so every engine run amortizes plan traversal and runs
//!   full-width SIMD panels instead of a scalar single column. The
//!   completed-per-second ratio at this fixed offered load is the
//!   batching speedup. Overload surfaces as typed
//!   [`ServeError::QueueFull`](mpspmm_serve::ServeError) rejects and a
//!   queue depth capped by the per-tenant admission bound — never
//!   unbounded memory growth.
//!
//! The request stream (tenant choice, feature values) is deterministic
//! via the vendored `rand` shim; timings are machine-dependent as in
//! every harness. Writes `BENCH_serve.json`. Pass `--smoke` for the
//! quick tier-1 variant (same shapes, smaller counts).

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpspmm_bench::SEED;
use mpspmm_core::{default_workers, ExecEngine, MergePathSpmm};
use mpspmm_graphs::find_dataset;
use mpspmm_serve::{Request, ServeConfig, ServeError, Server, Workload};
use mpspmm_sparse::{CsrMatrix, DenseMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-request dense width: one column — a single node embedding, the
/// worst case for an unbatched engine run (pure scalar tail) and the
/// best case for coalescing.
const REQUEST_COLS: usize = 1;

struct LoadShape {
    clients: usize,
    requests_per_client: usize,
    open_loop_requests: usize,
    open_loop_tenants: usize,
}

fn shape(smoke: bool) -> LoadShape {
    if smoke {
        LoadShape {
            clients: 8,
            requests_per_client: 40,
            open_loop_requests: 800,
            open_loop_tenants: 4,
        }
    } else {
        LoadShape {
            clients: 8,
            requests_per_client: 300,
            open_loop_requests: 8_000,
            open_loop_tenants: 4,
        }
    }
}

fn server(engine: &Arc<ExecEngine>, a: &CsrMatrix<f32>, config: ServeConfig) -> Server {
    let srv = Server::start(Arc::clone(engine), Box::new(MergePathSpmm::new()), config);
    srv.register("cora", a.clone(), None);
    srv
}

/// Pre-generated request payloads: filling a 2708-row block costs more
/// RNG time than the request costs to serve, so on the single-core CI
/// box the generator must not synthesize features inside the timed loop.
fn feature_pool(nodes: usize, distinct: usize) -> Vec<Arc<DenseMatrix<f32>>> {
    (0..distinct)
        .map(|salt| {
            let mut rng = SmallRng::seed_from_u64(SEED ^ salt as u64);
            Arc::new(DenseMatrix::from_fn(nodes, REQUEST_COLS, |_, _| {
                rng.gen_range(-1.0f32..1.0)
            }))
        })
        .collect()
}

struct ClosedLoopResult {
    mode: &'static str,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_batch_requests: f64,
}

/// Closed loop: every client keeps exactly one request in flight.
fn closed_loop(
    mode: &'static str,
    engine: &Arc<ExecEngine>,
    a: &CsrMatrix<f32>,
    config: ServeConfig,
    shape: &LoadShape,
) -> ClosedLoopResult {
    let srv = server(engine, a, config);
    let pool = feature_pool(a.rows(), 32);
    let names: Vec<String> = (0..shape.clients).map(|c| format!("client-{c}")).collect();
    let total = shape.clients * shape.requests_per_client;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..shape.clients {
            let (srv, pool, names) = (&srv, &pool, &names);
            scope.spawn(move || {
                for r in 0..shape.requests_per_client {
                    let ticket = srv
                        .submit(Request {
                            graph: "cora".into(),
                            tenant: names[client].clone(),
                            features: Arc::clone(&pool[(client * 7 + r) % pool.len()]),
                            workload: Workload::Spmm,
                            deadline: None,
                        })
                        .expect("closed loop stays under the tenant bound");
                    ticket.wait().expect("closed-loop request failed");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = srv.stats();
    assert_eq!(stats.completed as usize, total);
    srv.shutdown();
    ClosedLoopResult {
        mode,
        throughput_rps: total as f64 / elapsed,
        p50_us: stats.latency.p50_us,
        p99_us: stats.latency.p99_us,
        mean_batch_requests: stats.mean_batch_requests,
    }
}

struct OpenLoopResult {
    mode: &'static str,
    offered_rps: f64,
    goodput_rps: f64,
    completed: u64,
    rejected_queue_full: u64,
    max_queue_depth: usize,
    mean_batch_requests: f64,
    p99_us: f64,
}

/// Open loop: offer requests at `offered_rps` regardless of completions;
/// replies are harvested on a side thread, rejects are dropped (typed).
fn open_loop(
    mode: &'static str,
    engine: &Arc<ExecEngine>,
    a: &CsrMatrix<f32>,
    config: ServeConfig,
    shape: &LoadShape,
    offered_rps: f64,
) -> OpenLoopResult {
    let srv = server(engine, a, config);
    let pool = feature_pool(a.rows(), 32);
    let names: Vec<String> = (0..shape.open_loop_tenants)
        .map(|t| format!("tenant-{t}"))
        .collect();
    // Pacing is bursty on purpose: per-request spin-waiting would pin
    // the single CPU the server also runs on. The generator submits one
    // slot's worth of requests, then sleeps to the slot boundary —
    // offered load is exact on average and the core is free in between.
    const SLOT: Duration = Duration::from_millis(1);
    let per_slot = offered_rps * SLOT.as_secs_f64();
    let (tx, rx) = mpsc::channel::<mpspmm_serve::Ticket>();
    let mut rejected_submit = 0u64;
    let mut max_queue_depth = 0usize;
    let bound = shape.open_loop_tenants * srv.config().tenant_queue_limit;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // Harvester: drains replies so tickets never pile up.
        scope.spawn(move || {
            while let Ok(ticket) = rx.recv() {
                let _ = ticket.wait();
            }
        });
        let mut rng = SmallRng::seed_from_u64(SEED);
        let mut sent = 0usize;
        let mut due = 0.0f64;
        let mut slot_end = Instant::now() + SLOT;
        while sent < shape.open_loop_requests {
            due += per_slot;
            while sent < shape.open_loop_requests && (sent as f64) < due {
                let tenant = rng.gen_range(0..shape.open_loop_tenants);
                match srv.submit(Request {
                    graph: "cora".into(),
                    tenant: names[tenant].clone(),
                    features: Arc::clone(&pool[sent % pool.len()]),
                    workload: Workload::Spmm,
                    deadline: None,
                }) {
                    Ok(ticket) => tx.send(ticket).expect("harvester alive"),
                    Err(ServeError::QueueFull { .. }) => rejected_submit += 1,
                    Err(e) => panic!("unexpected open-loop error: {e}"),
                }
                sent += 1;
            }
            max_queue_depth = max_queue_depth.max(srv.stats().queue_depth);
            if let Some(pause) = slot_end.checked_duration_since(Instant::now()) {
                std::thread::sleep(pause);
            }
            slot_end += SLOT;
        }
        drop(tx);
        // The scope also waits for the harvester: elapsed includes
        // draining every admitted request, so goodput is honest.
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = srv.stats();
    assert_eq!(stats.rejected_queue_full, rejected_submit);
    // Boundedness: admission caps in-flight work at the tenant limits, so
    // the queue can never exceed tenants × limit no matter the overload.
    assert!(
        max_queue_depth <= bound,
        "queue depth {max_queue_depth} escaped the admission bound {bound}"
    );
    srv.shutdown();
    OpenLoopResult {
        mode,
        offered_rps,
        goodput_rps: stats.completed as f64 / elapsed,
        completed: stats.completed,
        rejected_queue_full: stats.rejected_queue_full,
        max_queue_depth,
        mean_batch_requests: stats.mean_batch_requests,
        p99_us: stats.latency.p99_us,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = shape(smoke);
    println!("==================================================================");
    println!(
        "BENCH serve: coalesced batching vs one-request batches{}",
        if smoke { " (--smoke)" } else { "" }
    );
    println!(
        "inputs: synthetic Cora, seed {SEED}; {}-col requests; {} closed-loop clients x {}; \
         {} open-loop requests over {} tenants",
        REQUEST_COLS,
        shape.clients,
        shape.requests_per_client,
        shape.open_loop_requests,
        shape.open_loop_tenants
    );
    println!("==================================================================");

    let a = find_dataset("Cora")
        .expect("Table II dataset")
        .synthesize(SEED);
    let engine = Arc::new(ExecEngine::new(default_workers()));

    // A tighter per-tenant bound than the default 64: overload has to
    // surface as visible typed rejects within the benchmark's horizon.
    let unbatched_cfg = ServeConfig {
        max_batch_cols: 1, // a batch closes at its first request
        max_linger: Duration::ZERO,
        tenant_queue_limit: 32,
        ..ServeConfig::default()
    };
    let coalesced_cfg = ServeConfig {
        max_batch_cols: 64,
        max_linger: Duration::from_micros(100),
        tenant_queue_limit: 32,
        ..ServeConfig::default()
    };

    // Untimed warmup: fault in the engine pool, plan, and page cache so
    // the first measured configuration is not charged for first-touch.
    let warm_shape = LoadShape {
        clients: 4,
        requests_per_client: 10,
        open_loop_requests: 0,
        open_loop_tenants: 1,
    };
    closed_loop("warmup", &engine, &a, coalesced_cfg.clone(), &warm_shape);
    closed_loop("warmup", &engine, &a, unbatched_cfg.clone(), &warm_shape);

    // --- Closed loop (capacity probe) ----------------------------------
    let closed_unbatched = closed_loop("unbatched", &engine, &a, unbatched_cfg.clone(), &shape);
    let closed_coalesced = closed_loop("coalesced", &engine, &a, coalesced_cfg.clone(), &shape);
    println!(
        "\nclosed loop ({} clients, 1 in flight each):",
        shape.clients
    );
    println!(
        "{:<11} {:>12} {:>10} {:>10} {:>12}",
        "mode", "req/s", "p50 us", "p99 us", "mean batch"
    );
    for r in [&closed_unbatched, &closed_coalesced] {
        println!(
            "{:<11} {:>12.0} {:>10.0} {:>10.0} {:>12.2}",
            r.mode, r.throughput_rps, r.p50_us, r.p99_us, r.mean_batch_requests
        );
    }

    // --- Open loop (fixed offered load, the headline) -------------------
    // Offer far more than the unbatched server can complete so BOTH
    // servers run saturated; the goodput ratio at this one fixed rate is
    // then the true capacity ratio of coalesced over unbatched batching.
    let offered = 4.0 * closed_unbatched.throughput_rps;
    let open_unbatched = open_loop("unbatched", &engine, &a, unbatched_cfg, &shape, offered);
    let open_coalesced = open_loop("coalesced", &engine, &a, coalesced_cfg, &shape, offered);
    let speedup = open_coalesced.goodput_rps / open_unbatched.goodput_rps;
    println!("\nopen loop (fixed offered load {offered:.0} req/s):");
    println!(
        "{:<11} {:>11} {:>10} {:>9} {:>11} {:>11} {:>10}",
        "mode", "goodput r/s", "completed", "rejects", "max queue", "mean batch", "p99 us"
    );
    for r in [&open_unbatched, &open_coalesced] {
        println!(
            "{:<11} {:>11.0} {:>10} {:>9} {:>11} {:>11.2} {:>10.0}",
            r.mode,
            r.goodput_rps,
            r.completed,
            r.rejected_queue_full,
            r.max_queue_depth,
            r.mean_batch_requests,
            r.p99_us
        );
    }
    println!("\nbatching speedup (goodput at fixed offered load): {speedup:.2}x");
    println!(
        "backpressure: queue depth capped at {} (admission bound {}), overload surfaced as \
         {} typed QueueFull rejects, not memory growth",
        open_unbatched
            .max_queue_depth
            .max(open_coalesced.max_queue_depth),
        shape.open_loop_tenants * 32,
        open_unbatched.rejected_queue_full + open_coalesced.rejected_queue_full
    );

    let closed_json: Vec<String> = [&closed_unbatched, &closed_coalesced]
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"clients\": {}, \"throughput_rps\": {:.1}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_batch_requests\": {:.2}}}",
                r.mode, shape.clients, r.throughput_rps, r.p50_us, r.p99_us, r.mean_batch_requests
            )
        })
        .collect();
    let open_json: Vec<String> = [&open_unbatched, &open_coalesced]
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"offered_rps\": {:.1}, \"goodput_rps\": {:.1}, \
                 \"completed\": {}, \"rejected_queue_full\": {}, \"max_queue_depth\": {}, \
                 \"mean_batch_requests\": {:.2}, \"p99_us\": {:.1}}}",
                r.mode,
                r.offered_rps,
                r.goodput_rps,
                r.completed,
                r.rejected_queue_full,
                r.max_queue_depth,
                r.mean_batch_requests,
                r.p99_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"baseline\": \"unbatched per-request serving, same engine\",\n  \
         \"speedup\": {:.3},\n  \"smoke\": {},\n  \"request_cols\": {},\n  \"closed_loop\": [\n{}\n  ],\n  \
         \"open_loop\": [\n{}\n  ],\n  \"batching_speedup\": {:.3}\n}}\n",
        speedup,
        smoke,
        REQUEST_COLS,
        closed_json.join(",\n"),
        open_json.join(",\n"),
        speedup
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
