//! Work-stealing execution over merge-path chunk descriptors.
//!
//! The static pooled path ([`crate::engine`]) carves the plan's logical
//! threads into one contiguous span per worker. Merge-path plans are
//! nnz-balanced per logical thread, so that is near-optimal — but the
//! engine also executes row-split and GNNAdvisor plans, where a span that
//! draws the power-law hub rows becomes the critical path while every
//! other worker idles (the §III pathology, one level up). This module is
//! the dynamic alternative: the plan is pre-split into several
//! nnz-balanced [`ChunkDesc`]s per worker ([`crate::chunk_threads`]),
//! each worker drains its own deque from the bottom, and on exhaustion
//! steals from the *top* of a victim's deque — the classic Arora-style
//! split that keeps owners on their cache-warm, locality-ordered chunks
//! while thieves take the work farthest from the owner's current
//! position.
//!
//! # Why non-atomic stores stay legal
//!
//! The static path's safety story is the borrow checker: each `Direct`
//! row's `&mut` slice is moved into exactly one worker closure. Under
//! stealing the executing worker is not known in advance, so that story
//! is replaced by a short `unsafe` argument localized to [`SharedOut`]
//! (this is, with [`crate::pool`], [`crate::stripe`], and the
//! `#[target_feature]` clones in `datapath`, one of the four modules
//! allowed to opt out of `deny(unsafe_code)`):
//!
//! * a `Direct` row has exactly one `Regular` segment and no `Atomic`
//!   segment (the engine's row classification);
//! * that segment belongs to exactly one logical thread, and chunks
//!   partition logical threads ([`crate::chunk_threads`] boundaries are
//!   thread boundaries), so it lives in exactly one chunk;
//! * each chunk index is handed out exactly once — deque pops are
//!   mutex-serialized and a popped index never re-enters any deque;
//! * therefore at most one worker ever touches a `Direct` row's slice,
//!   and the pool's completion barrier orders all such writes before the
//!   caller reads the output.
//!
//! Rows that are *not* exclusively owned never see a parallel write at
//! all here: their flushes (shared regular stores, atomic adds, carries)
//! are computed into thread-local accumulators and applied **serially
//! after the join, sorted by (logical thread, segment)** — the same
//! order [`crate::executor::execute_sequential`] applies them in. That
//! buys more than safety: unlike the static path's CAS loop, the
//! stealing path performs *no* floating-point accumulation in
//! nondeterministic order, so its output is bit-identical to the
//! sequential oracle at any worker count, steal pattern regardless.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mpspmm_sparse::{CsrMatrix, DenseMatrix};

use crate::datapath::{accumulate_segment_dispatch, prefetch_segment_rows, ResolvedPath};
use crate::engine::{PreparedPlan, RowKind};
use crate::epilogue::Epilogue;
use crate::plan::{ChunkDesc, Flush};
use crate::pool::{ScopedJob, WorkerPool};

/// What one stealing run did, for [`crate::EngineStats`] and the
/// benchmark's busy-fraction report.
#[derive(Debug, Clone, Default)]
pub(crate) struct StealOutcome {
    /// Chunks executed by a worker other than the one they were dealt to.
    pub steals: u64,
    /// Steal probes that found the victim's deque empty.
    pub steal_fails: u64,
    /// Total chunks executed.
    pub chunks: u64,
    /// Non-zeros executed per worker (index = worker slot).
    pub worker_nnz: Vec<u64>,
}

/// Raw-pointer view of the output buffer for the duration of the
/// parallel phase. See the module docs for the aliasing argument.
struct SharedOut {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: `SharedOut` only exposes rows through `row_mut`, whose caller
// contract (exactly one worker per Direct row, see module docs) makes
// concurrent use race-free; the pointer itself is plain data.
unsafe impl Send for SharedOut {}
unsafe impl Sync for SharedOut {}

impl SharedOut {
    /// The `dim`-wide slice of output row `row`.
    ///
    /// # Safety
    ///
    /// The caller must be the only thread accessing row `row` until the
    /// pool barrier — guaranteed when `row` is `Direct` and the caller
    /// executes its owning chunk (each chunk is popped exactly once).
    // The `&self -> &mut` shape is the point: `SharedOut` is an
    // `UnsafeCell`-style shared-writer view, and the exclusivity clippy
    // cannot see is exactly the caller contract above.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, row: usize, dim: usize) -> &mut [f32] {
        debug_assert!((row + 1) * dim <= self.len, "row slice within output");
        // SAFETY: in-bounds by the assert; exclusive by the caller
        // contract above.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(row * dim), dim) }
    }
}

/// A deferred output update: `(logical thread, segment index, row,
/// flush, dim-wide accumulated values)`. Sorting by the first two fields
/// recovers the sequential executor's application order.
type Fixup = (u32, u32, usize, Flush, Vec<f32>);

/// Executes `prep` over `chunks` with `eff_workers` stealing workers,
/// writing `Direct` rows into `out` in place. Fusable rows (`Direct`
/// and carry-free) get `epi` applied at store time by whichever worker
/// executes their owning chunk — the exclusivity argument above covers
/// the epilogue too, since it runs inside the same `row_mut` borrow;
/// all other rows get their epilogue from the engine after the serial
/// fixup below. Caller guarantees `out.len() == rows * dim`, zeroed,
/// a validated `epi`, and `eff_workers >= 2`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_stealing(
    prep: &PreparedPlan,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
    dim: usize,
    eff_workers: usize,
    rp: &ResolvedPath,
    cols32: Option<&[u32]>,
    epi: &Epilogue,
    chunks: &[ChunkDesc],
    pool: &WorkerPool,
    out: &mut [f32],
) -> StealOutcome {
    // Deal contiguous chunk blocks so an undisturbed run visits logical
    // threads in the same order as the static partition (same locality).
    let per_worker = chunks.len().div_ceil(eff_workers).max(1);
    let deques: Vec<Mutex<VecDeque<u32>>> = (0..eff_workers)
        .map(|w| {
            let lo = (w * per_worker).min(chunks.len());
            let hi = ((w + 1) * per_worker).min(chunks.len());
            Mutex::new((lo as u32..hi as u32).collect())
        })
        .collect();
    let steals = AtomicU64::new(0);
    let steal_fails = AtomicU64::new(0);
    let executed = AtomicU64::new(0);
    let worker_nnz: Vec<AtomicU64> = (0..eff_workers).map(|_| AtomicU64::new(0)).collect();
    let all_fixups = Mutex::new(Vec::<Fixup>::new());
    let shared = SharedOut {
        ptr: out.as_mut_ptr(),
        len: out.len(),
    };

    let jobs: Vec<ScopedJob<'_>> = (0..eff_workers)
        .map(|w| {
            let deques = &deques;
            let steals = &steals;
            let steal_fails = &steal_fails;
            let executed = &executed;
            let worker_nnz = &worker_nnz;
            let all_fixups = &all_fixups;
            let shared = &shared;
            let epi = &*epi;
            Box::new(move || {
                let mut acc = vec![0.0f32; dim];
                let mut local_fixups: Vec<Fixup> = Vec::new();
                let mut local_nnz = 0u64;
                let mut local_chunks = 0u64;
                let mut local_steals = 0u64;
                let mut local_fails = 0u64;
                loop {
                    // Own work first, oldest chunk first (deque bottom).
                    let mut next = deques[w].lock().unwrap().pop_front();
                    if next.is_none() {
                        // Exhausted: probe victims' tops. A full empty
                        // scan terminates the worker — chunks never
                        // re-enter a deque, so nothing can appear later.
                        for i in 1..eff_workers {
                            let victim = (w + i) % eff_workers;
                            match deques[victim].lock().unwrap().pop_back() {
                                Some(c) => {
                                    local_steals += 1;
                                    next = Some(c);
                                    break;
                                }
                                None => local_fails += 1,
                            }
                        }
                    }
                    let Some(chunk_idx) = next else { break };
                    let chunk = &chunks[chunk_idx as usize];
                    local_chunks += 1;
                    local_nnz += chunk.nnz as u64;
                    run_chunk(
                        chunk,
                        prep,
                        a,
                        b,
                        dim,
                        rp,
                        cols32,
                        epi,
                        shared,
                        &mut acc,
                        &mut local_fixups,
                    );
                }
                worker_nnz[w].fetch_add(local_nnz, Ordering::Relaxed);
                executed.fetch_add(local_chunks, Ordering::Relaxed);
                steals.fetch_add(local_steals, Ordering::Relaxed);
                steal_fails.fetch_add(local_fails, Ordering::Relaxed);
                if !local_fixups.is_empty() {
                    all_fixups.lock().unwrap().append(&mut local_fixups);
                }
            }) as ScopedJob<'_>
        })
        .collect();
    pool.scope_run(jobs);

    // Serial fixup in the sequential executor's order: parallel-phase
    // flushes (shared regular stores, atomic adds) by (thread, segment)
    // first, then all carries by (thread, segment).
    let mut fixups = all_fixups.into_inner().unwrap();
    fixups.sort_unstable_by_key(|&(t, s, _, _, _)| (t, s));
    for (_, _, row, flush, vals) in &fixups {
        let dst = &mut out[row * dim..][..dim];
        match flush {
            Flush::Regular => dst.copy_from_slice(vals),
            Flush::Atomic => {
                for (d, v) in dst.iter_mut().zip(vals) {
                    *d += v;
                }
            }
            Flush::Carry => {}
        }
    }
    for (_, _, row, flush, vals) in &fixups {
        if *flush == Flush::Carry {
            for (d, v) in out[row * dim..][..dim].iter_mut().zip(vals) {
                *d += v;
            }
        }
    }

    StealOutcome {
        steals: steals.into_inner(),
        steal_fails: steal_fails.into_inner(),
        chunks: executed.into_inner(),
        worker_nnz: worker_nnz.into_iter().map(AtomicU64::into_inner).collect(),
    }
}

/// Executes every segment of one chunk: `Direct` regular segments store
/// straight into the output; everything else accumulates locally and is
/// deferred to the serial fixup.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    chunk: &ChunkDesc,
    prep: &PreparedPlan,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
    dim: usize,
    rp: &ResolvedPath,
    cols32: Option<&[u32]>,
    epi: &Epilogue,
    shared: &SharedOut,
    acc: &mut Vec<f32>,
    fixups: &mut Vec<Fixup>,
) {
    let fuse = !epi.is_noop();
    for t in chunk.thread_start..chunk.thread_end {
        let segments = &prep.plan().threads[t as usize].segments;
        for (s, seg) in segments.iter().enumerate() {
            if seg.is_empty() {
                continue;
            }
            prefetch_segment_rows(rp, segments.get(s + 1), a, cols32, b, 0);
            let direct = seg.flush == Flush::Regular
                && matches!(prep.row_kind[seg.row], RowKind::Direct { .. });
            if direct {
                // SAFETY: `seg.row` is Direct and this worker holds its
                // only Regular segment's chunk (see module docs).
                let dst = unsafe { shared.row_mut(seg.row, dim) };
                accumulate_segment_dispatch(rp, seg, a, cols32, b, 0, dst);
                if fuse && prep.fused_ok[seg.row] {
                    epi.apply_row(dst);
                }
            } else {
                if acc.len() != dim {
                    acc.resize(dim, 0.0);
                }
                accumulate_segment_dispatch(rp, seg, a, cols32, b, 0, acc);
                fixups.push((t, s as u32, seg.row, seg.flush, std::mem::take(acc)));
            }
        }
    }
}
